/**
 * @file
 * Reproduces paper Fig. 8: the ablation study of the three optimization
 * levels on the DNN models. Configurations: D (directives only),
 * L{n}+D (loop level n, one dataflow stage), and G{n}+L7+D (graph level n
 * with the best loop level). Larger n means larger unroll factors (L) or
 * finer dataflow granularity (G). The reported value is the throughput
 * speedup over the unoptimized baseline, log-scale shaped like the
 * paper's bars.
 */

#include <cstdio>

#include "api/scalehls.h"

using namespace scalehls;

namespace {

double
baselineInterval(Operation *(*build)(Operation *))
{
    auto module = createModule();
    build(module.get());
    Compiler compiler(std::move(module));
    compiler.lowerToLoops();
    return static_cast<double>(compiler.estimate().interval);
}

double
configSpeedup(Operation *(*build)(Operation *), double base_interval,
              int graph_level, int loop_level, bool directives)
{
    auto module = createModule();
    build(module.get());
    Compiler compiler(std::move(module));
    if (graph_level > 0)
        compiler.applyGraphOpt(graph_level);
    compiler.lowerToLoops();
    if (loop_level > 0)
        compiler.applyLoopOpt(loop_level);
    if (directives)
        compiler.applyDirectiveOpt(1);
    QoRResult qor = compiler.estimate();
    return base_interval / static_cast<double>(qor.interval);
}

} // namespace

int
main()
{
    struct ModelCase
    {
        const char *name;
        Operation *(*build)(Operation *);
    };
    const ModelCase cases[] = {
        {"ResNet-18", buildResNet18},
        {"VGG-16", buildVGG16},
        {"MobileNet", buildMobileNet},
    };
    // L7 would mean 64-way unrolling on every layer; level 5 (16-way) is
    // the largest level that fits one SLR in Table V, so the ablation
    // sweeps L1..L5 and uses L5 as the "best" loop level for the G sweep.
    constexpr int kBestLoopLevel = 5;

    std::printf("=== Fig. 8: ablation study of DNN models (speedup vs "
                "baseline, throughput metric) ===\n");
    std::printf("%-11s %-8s", "Model", "D");
    for (int l = 1; l <= kBestLoopLevel; ++l)
        std::printf(" %7s%d", "L", l);
    for (int g = 1; g <= 7; g += 2)
        std::printf(" %7s%d", "G", g);
    std::printf("   (L columns include D; G columns include L%d+D)\n",
                kBestLoopLevel);

    for (const ModelCase &model : cases) {
        double base = baselineInterval(model.build);
        std::printf("%-11s", model.name);
        // D alone (no graph split, no unrolling).
        std::printf(" %7.1fx",
                    configSpeedup(model.build, base, 0, 0, true));
        std::fflush(stdout);
        // L1..L5 with D.
        for (int l = 1; l <= kBestLoopLevel; ++l) {
            std::printf(" %7.1fx",
                        configSpeedup(model.build, base, 0, l, true));
            std::fflush(stdout);
        }
        // G1, G3, G5, G7 with L5 + D.
        for (int g = 1; g <= 7; g += 2) {
            std::printf(" %7.1fx",
                        configSpeedup(model.build, base, g,
                                      kBestLoopLevel, true));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nShape check (paper): loop optimization dominates "
                "(avg 130.9x at L7), graph optimization multiplies on "
                "top (avg 10.3x), directives alone are small (1.8x) but "
                "grow with unrolling.\n");
    return 0;
}
