/**
 * @file
 * Reproduces paper Table V: optimization results of representative DNN
 * models (ResNet-18, VGG-16, MobileNet at CIFAR-10 shapes) on one SLR of
 * a VU9P. Each model runs through the multi-level flow (graph dataflow
 * split -> loop unrolling -> directives) at the largest loop level whose
 * DSP usage fits the SLR; the baseline is the same model lowered without
 * any multi-level optimization. Speedup is on the throughput metric
 * (frame interval), as in the paper.
 */

#include <cstdio>

#include "api/scalehls.h"

using namespace scalehls;

namespace {

struct ModelCase
{
    const char *name;
    Operation *(*build)(Operation *);
    double paperSpeedup;
    double paperDspEff;
    double vtaDspEff;
};

void
runModel(const ModelCase &model, const ResourceBudget &budget)
{
    // Baseline: lowered to loops, no multi-level optimization.
    auto baseline_module = createModule();
    model.build(baseline_module.get());
    int64_t op_count =
        modelOpCount(getTopFunc(baseline_module.get()));
    Compiler baseline(std::move(baseline_module));
    baseline.lowerToLoops();
    QoRResult base_qor = baseline.estimate();

    // Optimized: finest dataflow granularity, largest fitting loop level.
    SynthesisReport report;
    QoRResult qor;
    double runtime = 0;
    int used_level = 0;
    for (int level = 6; level >= 1; --level) {
        auto module = createModule();
        model.build(module.get());
        Compiler compiler(std::move(module));
        compiler.applyGraphOpt(7)
            .lowerToLoops()
            .applyLoopOpt(level)
            .applyDirectiveOpt(1);
        qor = compiler.estimate();
        runtime = compiler.optSeconds();
        used_level = level;
        if (qor.resources.dsp <= budget.dsp)
        {
            report = compiler.synthesize(budget);
            break;
        }
    }

    double speedup = static_cast<double>(base_qor.interval) /
                     static_cast<double>(qor.interval);
    double dsp_eff =
        static_cast<double>(op_count) /
        (static_cast<double>(qor.interval) *
         static_cast<double>(std::max<int64_t>(1, qor.resources.dsp)));

    std::printf("%-10s %-9.1f %-9.1f %-9.2f %-16s %-15s %-15s %-9.3f "
                "%-9.3f %-6.3f L%d\n",
                model.name, speedup, model.paperSpeedup, runtime,
                (std::to_string(report.usage.memoryBits / 1024 / 1024) +
                 "Mb (" + std::to_string(int(report.memUtil())) + "%)")
                    .c_str(),
                (std::to_string(report.usage.dsp) + " (" +
                 std::to_string(int(report.dspUtil())) + "%)")
                    .c_str(),
                (std::to_string(report.usage.lut) + " (" +
                 std::to_string(int(report.lutUtil())) + "%)")
                    .c_str(),
                dsp_eff, model.paperDspEff, model.vtaDspEff, used_level);
}

} // namespace

int
main()
{
    ResourceBudget budget = vu9pSlr();
    std::printf("=== Table V: optimization results of representative DNN "
                "models (one %s SLR) ===\n",
                budget.name.c_str());
    std::printf("%-10s %-9s %-9s %-9s %-16s %-15s %-15s %-9s %-9s %-6s "
                "%s\n",
                "Model", "Speedup", "(paper)", "Runtime", "Memory(util)",
                "DSP(util)", "LUT(util)", "DSPEff", "(paper)", "VTA",
                "Lvl");

    const ModelCase cases[] = {
        {"ResNet-18", buildResNet18, 3825.0, 1.343, 0.344},
        {"VGG-16", buildVGG16, 1505.3, 0.744, 0.296},
        {"MobileNet", buildMobileNet, 1509.0, 0.791, 0.468},
    };
    for (const ModelCase &model : cases) {
        runModel(model, budget);
        std::fflush(stdout);
    }
    std::printf("\nSpeedup is baseline-interval / optimized-interval "
                "(throughput), baseline = lowered without multi-level "
                "optimization. DSPEff = OP/Cycle/DSP (paper Eq. 2); the "
                "VTA column quotes the paper's TVM-VTA reference.\n");
    return 0;
}
