/**
 * @file
 * Parallel DSE scaling: points evaluated per second at 1, 2, 4 and
 * hardware_concurrency QoR workers, plus the determinism guarantee (the
 * Pareto frontier of an N-thread run is bit-identical to the 1-thread
 * run at the same seed). Emits a human-readable table and one JSON line
 * per configuration for tools/run_benches.sh.
 */

#include <chrono>
#include <cstdio>
#include <set>

#include "common.h"

using namespace scalehls;

namespace {

struct RunResult
{
    unsigned threads = 1;
    size_t evaluations = 0;
    size_t materializations = 0;
    double seconds = 0;
    std::vector<EvaluatedPoint> frontier;
};

RunResult
runAtThreads(Operation *module, unsigned threads)
{
    DesignSpaceOptions space_options;
    space_options.maxTileSize = 16;
    space_options.maxTotalUnroll = 256;
    DesignSpace space(module, space_options);

    DSEOptions options;
    options.numInitialSamples = 60;
    options.maxIterations = 160;
    options.numThreads = threads;

    DSEEngine engine(space, options);
    auto start = std::chrono::steady_clock::now();
    auto frontier = engine.explore();
    RunResult result;
    result.threads = threads;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    result.evaluations = engine.numEvaluations();
    result.materializations = engine.numMaterializations();
    result.frontier = std::move(frontier);
    return result;
}

bool
sameFrontier(const std::vector<EvaluatedPoint> &a,
             const std::vector<EvaluatedPoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].point != b[i].point ||
            a[i].qor.latency != b[i].qor.latency ||
            a[i].qor.resources.dsp != b[i].qor.resources.dsp)
            return false;
    return true;
}

} // namespace

int
main()
{
    auto module = parseCToModule(polybenchSource("gemm", 32));
    raiseScfToAffine(module.get());

    unsigned hw = defaultThreadCount();
    std::printf("=== Parallel DSE scaling (GEMM 32, %u hardware "
                "threads) ===\n\n",
                hw);
    std::printf("%-10s %-12s %-14s %-12s %-12s %s\n", "Threads",
                "Evaluations", "Materialized", "Seconds", "Points/s",
                "Deterministic");

    std::vector<unsigned> configs = {1, 2, 4};
    if (hw > 4)
        configs.push_back(hw);

    RunResult reference;
    double base_rate = 0;
    for (unsigned threads : configs) {
        RunResult r = runAtThreads(module.get(), threads);
        bool deterministic = true;
        if (threads == 1) {
            reference = r;
            base_rate = r.evaluations / r.seconds;
        } else {
            deterministic = sameFrontier(reference.frontier, r.frontier);
        }
        double rate = r.evaluations / r.seconds;
        std::printf("%-10u %-12zu %-14zu %-12.3f %-12.1f %s\n", threads,
                    r.evaluations, r.materializations, r.seconds, rate,
                    deterministic ? "yes" : "NO (BUG)");
        std::printf("JSON {\"bench\":\"parallel_dse\",\"threads\":%u,"
                    "\"evaluations\":%zu,\"seconds\":%.4f,"
                    "\"points_per_second\":%.1f,\"speedup\":%.2f,"
                    "\"deterministic\":%s}\n",
                    threads, r.evaluations, r.seconds, rate,
                    base_rate > 0 ? rate / base_rate : 1.0,
                    deterministic ? "true" : "false");
        if (!deterministic)
            return 1;
    }
    return 0;
}
