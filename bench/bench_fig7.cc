/**
 * @file
 * Reproduces paper Fig. 7: the scalability study. The problem sizes of the
 * six kernels scale from 32 to 4096 and the DSE runs under each setting;
 * the reported series is the speedup over the unoptimized baseline. The
 * expected shape: stable speedups across sizes for BICG/GEMM/SYR2K/SYRK,
 * with smaller speedups at small sizes for GESUMMV and TRMM (small design
 * spaces cannot fill the device).
 */

#include "common.h"

using namespace scalehls;
using namespace scalehls::bench;

int
main()
{
    const std::vector<int64_t> sizes = {32, 64, 128, 256, 512, 1024, 2048,
                                        4096};
    ResourceBudget budget = xc7z020();

    std::printf("=== Fig. 7: scalability study (speedup vs problem size, "
                "%s) ===\n",
                budget.name.c_str());
    std::printf("%-9s", "Kernel");
    for (int64_t n : sizes)
        std::printf(" %8lld", static_cast<long long>(n));
    std::printf("\n");

    for (const std::string &kernel : polybenchKernelNames()) {
        std::printf("%-9s", kernel.c_str());
        std::fflush(stdout);
        for (int64_t n : sizes) {
            KernelResult result = runKernelDSE(
                kernel, n, budget, /*samples=*/40, /*iterations=*/80,
                /*max_unroll=*/128);
            std::printf(" %8.1f", result.speedup);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nShape check: speedups are stable across sizes once the "
                "problem is large enough to exploit the full unroll "
                "budget; small sizes limit the design space.\n");
    return 0;
}
