/**
 * @file
 * Reproduces paper Table III: DSE results of large-scale computation
 * kernels. Six PolyBench kernels at problem size 4096 are optimized by the
 * automated DSE under the XC7Z020 budget; we report the speedup over the
 * unoptimized baseline together with the parameters the DSE selected
 * (loop perfectization, variable-bound removal, permutation map, tile
 * sizes, pipeline II and array partition factors).
 */

#include "common.h"

using namespace scalehls;
using namespace scalehls::bench;

int
main()
{
    constexpr int64_t kProblemSize = 4096;
    ResourceBudget budget = xc7z020();

    std::printf("=== Table III: DSE results of large-scale computation "
                "kernels (size %lld, %s) ===\n",
                static_cast<long long>(kProblemSize), budget.name.c_str());
    std::printf("%-9s %-10s %-9s %-4s %-4s %-12s %-15s %-4s %s\n",
                "Kernel", "Speedup", "(paper)", "LP", "RVB", "Perm.Map",
                "TilingSizes", "II", "ArrayPartition");

    // Paper-reported speedups for shape comparison.
    const std::map<std::string, double> paper_speedup = {
        {"bicg", 41.7},  {"gemm", 768.1},  {"gesummv", 199.1},
        {"syr2k", 384.0}, {"syrk", 384.1}, {"trmm", 590.9}};

    for (const std::string &kernel : polybenchKernelNames()) {
        KernelResult result =
            runKernelDSE(kernel, kProblemSize, budget);
        if (!result.module) {
            std::printf("%-9s DSE found no feasible design\n",
                        kernel.c_str());
            continue;
        }
        int64_t ii = result.params.targetII;
        std::printf("%-9s %-10.1f %-9.1f %-4s %-4s %-12s %-15s %-4lld %s\n",
                    kernel.c_str(), result.speedup,
                    paper_speedup.at(kernel),
                    result.params.loopPerfectization ? "Yes" : "No",
                    result.params.removeVariableBound ? "Yes" : "No",
                    listString(result.params.permMap).c_str(),
                    listString(result.params.tileSizes).c_str(),
                    static_cast<long long>(ii),
                    result.partition.c_str());
        std::printf("          baseline %.3e cycles -> optimized %.3e "
                    "cycles, DSP %lld/%lld, %zu evals\n",
                    static_cast<double>(result.baselineLatency),
                    static_cast<double>(result.optimizedLatency),
                    static_cast<long long>(result.qor.resources.dsp),
                    static_cast<long long>(budget.dsp),
                    result.evaluations);
    }
    std::printf("\nShape check: GEMM-class kernels reach triple-digit "
                "speedups; BICG stays the smallest (loop-carried "
                "dependences in every loop).\n");
    return 0;
}
