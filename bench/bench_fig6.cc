/**
 * @file
 * Reproduces paper Fig. 6: design-space profiling of a GEMM kernel.
 * (a) the latency-DSP tradeoff space with Pareto points marked;
 * (b) PCA of the design-parameter vectors, demonstrating that Pareto
 * points cluster in the parameter space — the observation motivating the
 * neighbor-traversing DSE algorithm.
 */

#include <cmath>
#include <random>

#include "common.h"
#include "dse/pca.h"

using namespace scalehls;
using namespace scalehls::bench;

int
main()
{
    constexpr int64_t kProblemSize = 64;
    constexpr unsigned kSamples = 400;

    auto module = parseCToModule(polybenchSource("gemm", kProblemSize));
    raiseScfToAffine(module.get());
    DesignSpaceOptions options;
    options.maxTileSize = 16;
    options.maxTotalUnroll = 128;
    DesignSpace space(module.get(), options);

    std::printf("=== Fig. 6: design space profiling of a GEMM kernel "
                "(size %lld, %.0f points in the space) ===\n",
                static_cast<long long>(kProblemSize), space.spaceSize());

    // Random sampling of the space.
    std::mt19937 rng(6);
    CachingEvaluator evaluator(space);
    std::vector<DesignSpace::Point> points;
    std::vector<QoRPoint> qor_points;
    std::set<DesignSpace::Point> seen;
    while (points.size() < kSamples) {
        auto point = space.randomPoint(rng);
        if (!seen.insert(point).second)
            continue;
        QoRResult qor = evaluator.evaluate(point);
        if (!qor.feasible)
            continue;
        points.push_back(point);
        qor_points.push_back({qor.latency, qor.resources.dsp});
    }

    auto frontier = paretoIndices(qor_points);
    std::set<size_t> pareto(frontier.begin(), frontier.end());

    std::printf("\n-- (a) latency-area space (%zu feasible points, %zu "
                "Pareto) --\n",
                points.size(), frontier.size());
    std::printf("%-14s %-10s %s\n", "Latency(cyc)", "DSP", "Pareto");
    for (size_t idx : frontier)
        std::printf("%-14lld %-10lld yes\n",
                    static_cast<long long>(qor_points[idx].latency),
                    static_cast<long long>(qor_points[idx].area));
    // A sample of dominated points for the scatter.
    unsigned printed = 0;
    for (size_t i = 0; i < points.size() && printed < 12; ++i) {
        if (pareto.count(i))
            continue;
        std::printf("%-14lld %-10lld no\n",
                    static_cast<long long>(qor_points[i].latency),
                    static_cast<long long>(qor_points[i].area));
        ++printed;
    }

    // PCA of the design-parameter vectors.
    std::vector<std::vector<double>> samples;
    for (const auto &point : points) {
        std::vector<double> row;
        for (int v : point)
            row.push_back(static_cast<double>(v));
        samples.push_back(std::move(row));
    }
    auto projected = pcaProject2D(samples);

    // Clustering metric: mean pairwise PCA distance of Pareto points vs
    // all points (paper: Pareto points are clustered).
    auto meanPairwise = [&](const std::vector<size_t> &indices) {
        double total = 0;
        int count = 0;
        for (size_t a = 0; a < indices.size(); ++a) {
            for (size_t b = a + 1; b < indices.size(); ++b) {
                double dx = projected[indices[a]].first -
                            projected[indices[b]].first;
                double dy = projected[indices[a]].second -
                            projected[indices[b]].second;
                total += std::sqrt(dx * dx + dy * dy);
                ++count;
            }
        }
        return count ? total / count : 0.0;
    };
    std::vector<size_t> all_indices(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        all_indices[i] = i;

    std::printf("\n-- (b) PCA of the multi-dimensional design space --\n");
    std::printf("%-12s %-12s %s\n", "PC0", "PC1", "Pareto");
    for (size_t idx : frontier)
        std::printf("%-12.3f %-12.3f yes\n", projected[idx].first,
                    projected[idx].second);
    double pareto_spread = meanPairwise(frontier);
    double all_spread = meanPairwise(all_indices);
    std::printf("\nMean pairwise PCA distance: Pareto %.3f vs all %.3f "
                "(ratio %.2f; < 1 confirms the clustering the DSE "
                "exploits).\n",
                pareto_spread, all_spread,
                all_spread > 0 ? pareto_spread / all_spread : 0.0);
    return 0;
}
