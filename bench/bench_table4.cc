/**
 * @file
 * Reproduces paper Table IV: the GEMM-4096 case study. Four designs are
 * compared on cycles / speedup / DSP usage: the unoptimized baseline, the
 * DSE-optimized design, a manually optimized design (an expert schedule
 * written without the DSE), and the theoretical bound assuming all DSPs
 * run stall-free.
 */

#include "common.h"
#include "vhls/synthesizer.h"

using namespace scalehls;
using namespace scalehls::bench;

namespace {

/** The "expert" manual design: reduction outermost, j tiled by 16 with
 * II 2 — a good schedule a human would write in a few hours, but not the
 * DSE's best point (matching the paper's 1.67x gap). */
QoRResult
manualDesign(int64_t n)
{
    auto module = parseCToModule(polybenchSource("gemm", n));
    raiseScfToAffine(module.get());
    Operation *func = getTopFunc(module.get());
    applyLoopPerfectization(getLoopBands(func)[0][0]);
    auto band = getLoopNest(getLoopBands(func)[0][0]);
    applyLoopOrderOpt(band);
    band = getLoopNest(band[0]);
    band = applyLoopTiling(band, {1, 1, 16});
    applyLoopPipelining(band.back(), 2);
    applyCanonicalize(func);
    applySimplifyAffineIf(func);
    applyAffineStoreForward(func);
    applySimplifyMemrefAccess(func);
    applyCSE(func);
    applyArrayPartition(func);
    QoREstimator estimator(module.get());
    return estimator.estimateModule();
}

void
row(const char *name, double cycles, double baseline_cycles, int64_t dsp,
    int64_t budget_dsp)
{
    std::printf("%-20s %-12.3e %-10.1f %lld (%.1f%%)\n", name, cycles,
                baseline_cycles / cycles, static_cast<long long>(dsp),
                100.0 * static_cast<double>(dsp) /
                    static_cast<double>(budget_dsp));
}

} // namespace

int
main()
{
    constexpr int64_t kProblemSize = 4096;
    ResourceBudget budget = xc7z020();

    std::printf("=== Table IV: case study of GEMM kernel (size %lld, "
                "%s) ===\n",
                static_cast<long long>(kProblemSize), budget.name.c_str());
    std::printf("%-20s %-12s %-10s %s\n", "Design", "Cycles", "Speedup",
                "DSP (Util. %)");

    // Unoptimized baseline.
    auto baseline_module =
        parseCToModule(polybenchSource("gemm", kProblemSize));
    raiseScfToAffine(baseline_module.get());
    QoREstimator baseline_estimator(baseline_module.get());
    QoRResult baseline = baseline_estimator.estimateModule();
    double base_cycles = static_cast<double>(baseline.latency);
    row("Unoptimized", base_cycles, base_cycles, baseline.resources.dsp,
        budget.dsp);

    // DSE optimized.
    KernelResult dse = runKernelDSE("gemm", kProblemSize, budget);
    if (dse.module) {
        row("DSE Optimized", static_cast<double>(dse.optimizedLatency),
            base_cycles, dse.qor.resources.dsp, budget.dsp);
    }

    // Manually optimized.
    QoRResult manual = manualDesign(kProblemSize);
    row("Manually Optimized", static_cast<double>(manual.latency),
        base_cycles, manual.resources.dsp, budget.dsp);

    // Theoretical bound: one MAC = fmul (3 DSP) + fadd (2 DSP); with all
    // DSPs busy every cycle the kernel needs N^3 / floor(DSP/5) cycles.
    double macs = static_cast<double>(kProblemSize) * kProblemSize *
                  kProblemSize;
    int64_t parallel_macs = budget.dsp / 5;
    double bound = macs / static_cast<double>(parallel_macs);
    row("Theoretical Bound", bound, base_cycles, parallel_macs * 5,
        budget.dsp);

    if (dse.module) {
        double ratio =
            bound / static_cast<double>(dse.optimizedLatency);
        std::printf("\nDSE reaches %.2fx of the theoretical bound "
                    "(paper: 0.97x); manual/DSE gap %.2fx (paper: "
                    "1.67x).\n",
                    ratio,
                    static_cast<double>(manual.latency) /
                        static_cast<double>(dse.optimizedLatency));
        // Cross-check the chosen design with the virtual synthesizer.
        VirtualSynthesizer synthesizer(dse.module.get(), budget);
        SynthesisReport report = synthesizer.synthesize();
        std::printf("Virtual synthesis of the DSE design: %.3e cycles, "
                    "DSP %lld, fits=%s\n",
                    static_cast<double>(report.latency),
                    static_cast<long long>(report.usage.dsp),
                    report.fits() ? "yes" : "NO");
    }
    return 0;
}
