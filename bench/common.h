/**
 * @file
 * Shared helpers for the experiment harnesses: table formatting and the
 * standard DSE invocation used across Table III / IV and Fig. 6 / 7.
 */

#ifndef SCALEHLS_BENCH_COMMON_H
#define SCALEHLS_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "api/scalehls.h"
#include "support/utils.h"
#include "model/polybench.h"

namespace scalehls {
namespace bench {

/** Format a permutation / tile-size list like the paper: "[1, 2, 0]". */
inline std::string
listString(const std::vector<unsigned> &values)
{
    return "[" + join(values, ", ") + "]";
}
inline std::string
listString(const std::vector<int64_t> &values)
{
    return "[" + join(values, ", ") + "]";
}

/** The outcome of one kernel DSE run. */
struct KernelResult
{
    std::string kernel;
    int64_t problemSize = 0;
    double speedup = 0;
    int64_t baselineLatency = 0;
    int64_t optimizedLatency = 0;
    DesignSpace::Decoded params;
    std::string partition;
    QoRResult qor;
    size_t evaluations = 0;
    double seconds = 0;
    std::unique_ptr<Operation> module;
};

/** Run the automated DSE on one PolyBench kernel (paper Section VII-A). */
inline KernelResult
runKernelDSE(const std::string &kernel, int64_t n,
             const ResourceBudget &budget, unsigned samples = 80,
             unsigned iterations = 240, int64_t max_unroll = 256)
{
    KernelResult result;
    result.kernel = kernel;
    result.problemSize = n;

    auto module = parseCToModule(polybenchSource(kernel, n));
    raiseScfToAffine(module.get());
    QoREstimator baseline(module.get());
    result.baselineLatency = baseline.estimateModule().latency;

    DesignSpaceOptions space_options;
    space_options.maxTileSize = 64;
    space_options.maxTotalUnroll = max_unroll;
    DSEOptions options;
    options.numInitialSamples = samples;
    options.maxIterations = iterations;

    DesignSpace space(module.get(), space_options);
    DSEEngine engine(space, options);
    auto frontier = engine.explore();
    auto chosen = DSEEngine::finalize(frontier, budget);
    if (!chosen)
        return result;

    result.params = space.decode(chosen->point);
    result.qor = chosen->qor;
    result.optimizedLatency = chosen->qor.latency;
    result.speedup = static_cast<double>(result.baselineLatency) /
                     static_cast<double>(result.optimizedLatency);
    result.evaluations = engine.numEvaluations();
    result.module = space.materialize(chosen->point);
    if (result.module)
        result.partition = DesignSpace::partitionSummary(
            result.module.get());
    return result;
}

} // namespace bench
} // namespace scalehls

#endif // SCALEHLS_BENCH_COMMON_H
