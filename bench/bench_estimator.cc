/**
 * @file
 * Intra-point estimator scaling: QoR estimations per second at 1, 2, 4
 * and hardware_concurrency estimation threads over flat and
 * multi-function dataflow designs, plus the cross-point estimate cache's
 * hit rate. Self-check (the repo's determinism guarantee extended to the
 * estimator): parallel and cached estimation must produce bit-identical
 * QoR to the sequential, uncached path for every bench design. Emits a
 * human-readable table and one JSON line per configuration for
 * tools/run_benches.sh.
 */

#include <chrono>
#include <cstdio>

#include "common.h"
#include "estimate/estimate_cache.h"
#include "model/graph_builder.h"
#include "model/lower_graph.h"

using namespace scalehls;

namespace {

struct BenchDesign
{
    std::string name;
    std::unique_ptr<Operation> module;
};

std::vector<BenchDesign>
buildDesigns()
{
    std::vector<BenchDesign> designs;

    // Flat single-kernel design: no callees, so it pins the sequential
    // path and the cache behavior without intra-point parallelism.
    {
        auto module = parseCToModule(polybenchSource("gemm", 32));
        raiseScfToAffine(module.get());
        designs.push_back({"gemm-32", std::move(module)});
    }

    // Multi-function dataflow designs (paper Section VII-B flow): the
    // top function calls one sub-function per dataflow stage, which is
    // exactly where per-callee estimation fans out.
    auto dnn = [](Operation *(*build)(Operation *), int graph_level) {
        auto module = createModule();
        build(module.get());
        Compiler compiler(std::move(module));
        compiler.applyGraphOpt(graph_level)
            .lowerToLoops()
            .applyLoopOpt(2)
            .applyDirectiveOpt(1);
        return compiler.takeModule();
    };
    designs.push_back({"resnet18-g4", dnn(buildResNet18, 4)});
    designs.push_back({"vgg16-g7", dnn(buildVGG16, 7)});
    return designs;
}

bool
identical(const QoRResult &a, const QoRResult &b)
{
    return a.latency == b.latency && a.interval == b.interval &&
           a.feasible == b.feasible &&
           a.resources.dsp == b.resources.dsp &&
           a.resources.lut == b.resources.lut &&
           a.resources.bram18k == b.resources.bram18k &&
           a.resources.memoryBits == b.resources.memoryBits;
}

} // namespace

int
main()
{
    unsigned hw = defaultThreadCount();
    std::printf("=== Estimator scaling (intra-point parallel estimation "
                "+ cross-point cache, %u hardware threads) ===\n\n",
                hw);

    std::vector<unsigned> configs = {1, 2, 4};
    if (hw > 4)
        configs.push_back(hw);

    auto designs = buildDesigns();
    constexpr int kReps = 12;
    bool all_identical = true;

    for (const BenchDesign &design : designs) {
        // Sequential, uncached reference.
        QoRResult reference =
            QoREstimator(design.module.get()).estimateModule();
        std::printf("--- %s (reference: latency=%lld interval=%lld "
                    "DSP=%lld) ---\n",
                    design.name.c_str(),
                    static_cast<long long>(reference.latency),
                    static_cast<long long>(reference.interval),
                    static_cast<long long>(reference.resources.dsp));
        std::printf("%-10s %-12s %-12s %-12s %s\n", "Threads",
                    "Seconds", "Points/s", "CacheHit%", "Identical");

        double base_rate = 0;
        for (unsigned threads : configs) {
            ThreadPool pool(threads);
            EstimateCache cache;
            bool matches = true;
            auto start = std::chrono::steady_clock::now();
            // Each rep is one design-point estimation: a fresh estimator
            // instance (per-point memos do not carry over) over the
            // shared cross-point cache, exactly like the DSE evaluator.
            for (int rep = 0; rep < kReps; ++rep) {
                QoREstimator estimator(design.module.get(), &pool,
                                       &cache);
                QoRResult qor = estimator.estimateModule();
                matches &= identical(qor, reference);
            }
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            double rate = kReps / seconds;
            if (threads == 1)
                base_rate = rate;
            all_identical &= matches;
            std::printf("%-10u %-12.4f %-12.1f %-12.1f %s\n", threads,
                        seconds, rate, cache.hitRate() * 100,
                        matches ? "yes" : "NO (BUG)");
            std::printf(
                "JSON {\"bench\":\"estimator\",\"design\":\"%s\","
                "\"threads\":%u,\"reps\":%d,\"seconds\":%.4f,"
                "\"points_per_second\":%.1f,\"speedup\":%.2f,"
                "\"cache_hit_rate\":%.3f,\"identical\":%s}\n",
                design.name.c_str(), threads, kReps, seconds, rate,
                base_rate > 0 ? rate / base_rate : 1.0, cache.hitRate(),
                matches ? "true" : "false");
        }
        std::printf("\n");
    }

    if (!all_identical) {
        std::printf("SELF-CHECK FAILED: parallel/cached estimation "
                    "diverged from the sequential path\n");
        return 1;
    }
    return 0;
}
