/**
 * @file
 * Estimator scaling and cache benchmarks: QoR estimations per second at
 * 1, 2, 4 and hardware_concurrency estimation threads over flat and
 * multi-function dataflow designs (cross-point FUNCTION-tier cache), plus
 * a DSE-like sweep over a multi-band kernel (2mm) comparing the
 * function-tier-only configuration against the band-level cache tier,
 * a band-incremental materialization section (fast-path composition vs
 * the full cleanup+partition+estimate pipeline, materializations per
 * evaluated point pinned strictly below 1.0), a partition-aware
 * band-key section (masked vs partition-sensitive keying on a
 * tile-retuning sweep, masked hits pinned strictly above), and a
 * plan-first probe section (full materializations per point pinned at
 * <= 0.25 with zero-IR composition of warm points; `--probe` runs it
 * alone), and a snapshot-persistence section (`--persist` runs it
 * alone): a cold DNN kernel sweep saves its estimate cache to disk, a
 * FRESH sweep (new modules, spaces, evaluators and cache — a new
 * process in all but the pid) loads it back and must replay with zero
 * full materializations, at >= 2x the cold throughput, bit-identically.
 * Self-check (the repo's determinism guarantee extended to the
 * estimator): parallel and cached estimation — any tier, either
 * materialization path — must produce bit-identical QoR to the
 * sequential, uncached path for every bench design at every thread
 * count. Emits a human-readable table and one JSON line per
 * configuration for tools/run_benches.sh. `--smoke` runs a reduced
 * matrix for the sanitizer CI jobs.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/scalehls.h"
#include "common.h"
#include "dse/design_space.h"
#include "dse/evaluator.h"
#include "estimate/cache_io.h"
#include "estimate/estimate_cache.h"
#include "model/dnn_dse.h"
#include "model/graph_builder.h"
#include "model/lower_graph.h"

using namespace scalehls;

namespace {

struct BenchDesign
{
    std::string name;
    std::unique_ptr<Operation> module;
};

std::vector<BenchDesign>
buildDesigns(bool smoke)
{
    std::vector<BenchDesign> designs;

    // Flat single-kernel design: no callees, so it pins the sequential
    // path and the cache behavior without intra-point parallelism.
    {
        auto module = parseCToModule(polybenchSource("gemm", 32));
        raiseScfToAffine(module.get());
        designs.push_back({"gemm-32", std::move(module)});
    }
    if (smoke)
        return designs;

    // Multi-function dataflow designs (paper Section VII-B flow): the
    // top function calls one sub-function per dataflow stage, which is
    // exactly where per-callee estimation fans out.
    auto dnn = [](Operation *(*build)(Operation *), int graph_level) {
        auto module = createModule();
        build(module.get());
        Compiler compiler(std::move(module));
        compiler.applyGraphOpt(graph_level)
            .lowerToLoops()
            .applyLoopOpt(2)
            .applyDirectiveOpt(1);
        return compiler.takeModule();
    };
    designs.push_back({"resnet18-g4", dnn(buildResNet18, 4)});
    designs.push_back({"vgg16-g7", dnn(buildVGG16, 7)});
    return designs;
}

bool
identical(const QoRResult &a, const QoRResult &b)
{
    return a.latency == b.latency && a.interval == b.interval &&
           a.feasible == b.feasible &&
           a.resources.dsp == b.resources.dsp &&
           a.resources.lut == b.resources.lut &&
           a.resources.bram18k == b.resources.bram18k &&
           a.resources.memoryBits == b.resources.memoryBits;
}

/** Per-design scaling + function-tier cache benchmark (PR 2 behavior). */
bool
runScalingSection(const std::vector<unsigned> &configs, bool smoke)
{
    auto designs = buildDesigns(smoke);
    const int reps = smoke ? 3 : 12;
    bool all_identical = true;

    for (const BenchDesign &design : designs) {
        // Sequential, uncached reference.
        QoRResult reference =
            QoREstimator(design.module.get()).estimateModule();
        std::printf("--- %s (reference: latency=%lld interval=%lld "
                    "DSP=%lld) ---\n",
                    design.name.c_str(),
                    static_cast<long long>(reference.latency),
                    static_cast<long long>(reference.interval),
                    static_cast<long long>(reference.resources.dsp));
        std::printf("%-10s %-12s %-12s %-12s %s\n", "Threads",
                    "Seconds", "Points/s", "CacheHit%", "Identical");

        double base_rate = 0;
        for (unsigned threads : configs) {
            ThreadPool pool(threads);
            EstimateCache cache;
            bool matches = true;
            auto start = std::chrono::steady_clock::now();
            // Each rep is one design-point estimation: a fresh estimator
            // instance (per-point memos do not carry over) over the
            // shared cross-point cache, exactly like the DSE evaluator.
            for (int rep = 0; rep < reps; ++rep) {
                QoREstimator estimator(design.module.get(), &pool,
                                       &cache);
                QoRResult qor = estimator.estimateModule();
                matches &= identical(qor, reference);
            }
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            double rate = reps / seconds;
            if (threads == 1)
                base_rate = rate;
            all_identical &= matches;
            std::printf("%-10u %-12.4f %-12.1f %-12.1f %s\n", threads,
                        seconds, rate, cache.hitRate() * 100,
                        matches ? "yes" : "NO (BUG)");
            std::printf(
                "JSON {\"bench\":\"estimator\",\"design\":\"%s\","
                "\"threads\":%u,\"reps\":%d,\"seconds\":%.4f,"
                "\"points_per_second\":%.1f,\"speedup\":%.2f,"
                "\"cache_hit_rate\":%.3f,\"identical\":%s}\n",
                design.name.c_str(), threads, reps, seconds, rate,
                base_rate > 0 ? rate / base_rate : 1.0, cache.hitRate(),
                matches ? "true" : "false");
        }
        std::printf("\n");
    }
    return all_identical;
}

/** Band-level cache on a multi-band workload: a DSE-like sweep over 2mm
 * design points that differ only in ONE band's pipeline II. The function
 * digest changes on every point (so the function tier misses), but the
 * untouched band's digest is stable — the band tier turns those into
 * hits. Self-checks bit-identity of every configuration against the
 * sequential uncached reference, and that the band configuration scores
 * strictly more band hits than function-tier-only (which scores zero). */
bool
runBandCacheSection(const std::vector<unsigned> &configs)
{
    std::printf("=== Band-level estimate cache (multi-band 2mm sweep) "
                "===\n\n");

    auto module = parseCToModule(polybenchSource("2mm", 16));
    raiseScfToAffine(module.get());
    DesignSpace space(module.get());

    // The sweep: per band, the canonical seed with that band's II dial
    // turned through its first few candidates. Every point differs from
    // the seed in exactly one band.
    std::vector<DesignSpace::Point> points;
    DesignSpace::Point zero(space.numDims(), 0);
    points.push_back(zero);
    for (size_t b = 0; b < space.numBands(); ++b) {
        for (int v = 1; v <= 3; ++v) {
            DesignSpace::Point p = zero;
            p[space.dimTargetII(b)] = v;
            points.push_back(std::move(p));
        }
    }

    std::vector<std::unique_ptr<Operation>> modules;
    std::vector<QoRResult> reference;
    for (const auto &p : points) {
        auto m = space.materialize(p);
        if (!m) {
            std::printf("UNEXPECTED: sweep point not materializable\n");
            return false;
        }
        reference.push_back(QoREstimator(m.get()).estimateModule());
        modules.push_back(std::move(m));
    }
    std::printf("sweep: %zu points over %zu bands\n\n", points.size(),
                space.numBands());
    std::printf("%-10s %-12s %-14s %-14s %-14s %s\n", "Threads",
                "BandTier", "FuncHit%", "BandHit%", "BandHits",
                "Identical");

    bool ok = true;
    for (unsigned threads : configs) {
        size_t func_only_band_hits = 0;
        size_t band_tier_hits = 0;
        for (bool band_tier : {false, true}) {
            ThreadPool pool(threads);
            EstimateCache cache;
            bool matches = true;
            for (size_t i = 0; i < modules.size(); ++i) {
                QoREstimator estimator(modules[i].get(), &pool, &cache,
                                       band_tier);
                matches &= identical(estimator.estimateModule(),
                                     reference[i]);
            }
            if (band_tier)
                band_tier_hits = cache.bandHits();
            else
                func_only_band_hits = cache.bandHits();
            ok &= matches;
            std::printf("%-10u %-12s %-14.1f %-14.1f %-14zu %s\n",
                        threads, band_tier ? "on" : "off",
                        cache.hitRate() * 100, cache.bandHitRate() * 100,
                        cache.bandHits(), matches ? "yes" : "NO (BUG)");
            std::printf(
                "JSON {\"bench\":\"estimator_band_cache\","
                "\"design\":\"2mm-16\",\"threads\":%u,\"band_tier\":%s,"
                "\"func_hit_rate\":%.3f,\"band_hit_rate\":%.3f,"
                "\"band_hits\":%zu,\"identical\":%s}\n",
                threads, band_tier ? "true" : "false", cache.hitRate(),
                cache.bandHitRate(), cache.bandHits(),
                matches ? "true" : "false");
        }
        if (band_tier_hits <= func_only_band_hits) {
            std::printf("BAND CACHE CHECK FAILED: %zu hits with the band "
                        "tier vs %zu without\n",
                        band_tier_hits, func_only_band_hits);
            ok = false;
        }
    }
    std::printf("\n");
    return ok;
}

/** Band-incremental materialization throughput: an II cross-product
 * sweep over 2mm's two bands, evaluated border points first (each band
 * variant materializes fully once, seeding the schedule tier) and
 * interior points second (every band hits, so cleanup + partition + the
 * estimator walk are skipped and the QoR is composed from cached
 * entries). Hard checks: interior points all take the fast path (full
 * materializations per evaluated point strictly below 1.0), both
 * configurations stay bit-identical to the sequential uncached baseline
 * at every thread count, and incremental throughput does not fall below
 * the same-cache non-incremental ablation baseline (with slack for CI
 * timing noise). */
bool
runMaterializationSection(const std::vector<unsigned> &configs,
                          bool smoke)
{
    std::printf("=== Band-incremental materialization (2mm II "
                "cross-product) ===\n\n");

    const int size = smoke ? 8 : 16;
    const int dials = smoke ? 3 : 4;
    auto module = parseCToModule(polybenchSource("2mm", size));
    raiseScfToAffine(module.get());
    DesignSpace space(module.get());

    // Border points (a band variant appears for the first time) and
    // interior points (both variants already seen).
    std::vector<DesignSpace::Point> border;
    std::vector<DesignSpace::Point> interior;
    DesignSpace::Point zero(space.numDims(), 0);
    for (int a = 0; a < dials; ++a)
        for (int b = 0; b < dials; ++b) {
            DesignSpace::Point p = zero;
            p[space.dimTargetII(0)] = a;
            p[space.dimTargetII(1)] = b;
            (a == 0 || b == 0 ? border : interior)
                .push_back(std::move(p));
        }
    std::vector<DesignSpace::Point> all = border;
    all.insert(all.end(), interior.begin(), interior.end());

    // Sequential uncached reference.
    std::vector<QoRResult> reference;
    {
        CachingEvaluator evaluator(space);
        reference = evaluator.evaluateBatch(all);
    }
    std::printf("sweep: %zu points (%zu border + %zu interior)\n\n",
                all.size(), border.size(), interior.size());
    std::printf("%-10s %-14s %-14s %-12s %-14s %-14s %s\n", "Threads",
                "FullMat", "FastPath", "Mat/Point", "BasePts/s",
                "IncrPts/s", "Identical");

    bool ok = true;
    for (unsigned threads : configs) {
        ThreadPool pool(threads);

        auto timed_run = [&](EstimateCache *cache, bool incremental,
                             size_t *full, size_t *fast,
                             bool *out_identical) {
            EvaluatorOptions options;
            options.incremental = incremental;
            CachingEvaluator evaluator(space, &pool, cache, options);
            auto start = std::chrono::steady_clock::now();
            auto first = evaluator.evaluateBatch(border);
            auto second = evaluator.evaluateBatch(interior);
            double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 start)
                                 .count();
            first.insert(first.end(), second.begin(), second.end());
            bool matches = first.size() == reference.size();
            for (size_t i = 0; matches && i < first.size(); ++i)
                matches = identical(first[i], reference[i]);
            *out_identical = matches;
            if (full)
                *full = evaluator.numFullMaterializations();
            if (fast)
                *fast = evaluator.numFastPathHits();
            return seconds;
        };

        // Ablation baseline: the SAME two-tier estimate cache but no
        // schedule tier / fast path, so the delta isolates the skipped
        // phase-2 + estimator walk rather than cache bookkeeping.
        EstimateCache base_cache;
        size_t base_full = 0;
        bool base_identical = false;
        double base_seconds = timed_run(&base_cache, false, &base_full,
                                        nullptr, &base_identical);

        EstimateCache cache;
        size_t full = 0;
        size_t fast = 0;
        bool incr_identical = false;
        double incr_seconds =
            timed_run(&cache, true, &full, &fast, &incr_identical);

        double per_point =
            static_cast<double>(full) / static_cast<double>(all.size());
        double base_rate = all.size() / base_seconds;
        double incr_rate = all.size() / incr_seconds;
        // The rate pin guards only against a catastrophic fast-path
        // regression (0.5 slack): shared-runner scheduling noise on the
        // two short timed runs must not fail CI, and the structural
        // checks already gate correctness. Expected margin is ~1.4x;
        // the JSON record carries both rates for trend tracking.
        bool structural = incr_identical && base_identical &&
                          fast == interior.size() &&
                          full < all.size() && per_point < 1.0 &&
                          incr_rate >= 0.5 * base_rate;
        ok &= structural;
        std::printf("%-10u %-14zu %-14zu %-12.3f %-14.1f %-14.1f %s\n",
                    threads, full, fast, per_point, base_rate,
                    incr_rate, structural ? "yes" : "NO (BUG)");
        std::printf(
            "JSON {\"bench\":\"estimator_materialize\","
            "\"design\":\"2mm-%d\",\"threads\":%u,\"points\":%zu,"
            "\"full_materializations\":%zu,\"fast_path_hits\":%zu,"
            "\"materializations_per_point\":%.3f,"
            "\"baseline_points_per_second\":%.1f,"
            "\"incremental_points_per_second\":%.1f,\"identical\":%s}\n",
            size, threads, all.size(), full, fast, per_point, base_rate,
            incr_rate, structural ? "true" : "false");
    }
    std::printf("\n");
    return ok;
}

/** Partition-aware band keys vs the PR 3 partition-sensitive keying on
 * a tile-retuning sweep: retuning the SECOND band's outer tile
 * repartitions tmp along a dim the FIRST band never separates banks on,
 * so the masked keying keeps serving band 1's cached estimate while the
 * sensitive keying misses. Hard checks: the masked configuration scores
 * strictly more band-tier hits than the sensitive one on the same
 * sweep, at least one hit is partition-masked, and every configuration
 * stays bit-identical to the sequential uncached baseline. */
bool
runPartitionKeySection(const std::vector<unsigned> &configs, bool smoke)
{
    std::printf("=== Partition-aware band keys (2mm tile-retune sweep) "
                "===\n\n");

    const int size = smoke ? 8 : 16;
    auto module = parseCToModule(polybenchSource("2mm", size));
    raiseScfToAffine(module.get());
    DesignSpace space(module.get());

    // The base schedule (loop perfectization on — tiling needs perfect
    // nests) plus points retuning only band 1's outermost tile (which
    // repartitions tmp's first dim, a dim band 0 never separates banks
    // on) and band 1's pipeline II.
    std::vector<DesignSpace::Point> points;
    DesignSpace::Point base(space.numDims(), 0);
    base[space.dimLoopPerfectization()] = 1;
    points.push_back(base);
    for (int v = 1; v <= 2; ++v) {
        DesignSpace::Point p = base;
        p[space.dimFirstTile(1)] = v;
        points.push_back(std::move(p));
    }
    for (int v = 1; v <= 2; ++v) {
        DesignSpace::Point p = base;
        p[space.dimTargetII(1)] = v;
        points.push_back(std::move(p));
    }

    std::vector<std::unique_ptr<Operation>> modules;
    std::vector<QoRResult> reference;
    for (const auto &p : points) {
        auto m = space.materialize(p);
        if (!m) {
            std::printf("UNEXPECTED: sweep point not materializable\n");
            return false;
        }
        reference.push_back(QoREstimator(m.get()).estimateModule());
        modules.push_back(std::move(m));
    }
    std::printf("sweep: %zu points\n\n", points.size());
    std::printf("%-10s %-12s %-14s %-14s %-14s %s\n", "Threads",
                "Keys", "BandHit%", "BandHits", "MaskedHits",
                "Identical");

    bool ok = true;
    for (unsigned threads : configs) {
        size_t sensitive_hits = 0;
        size_t masked_hits = 0;
        size_t masked_tagged = 0;
        for (bool masked : {false, true}) {
            ThreadPool pool(threads);
            EstimateCache cache;
            bool matches = true;
            for (size_t i = 0; i < modules.size(); ++i) {
                QoREstimator estimator(modules[i].get(), &pool, &cache,
                                       true, masked);
                matches &= identical(estimator.estimateModule(),
                                     reference[i]);
            }
            if (masked) {
                masked_hits = cache.bandHits();
                masked_tagged = cache.bandMaskedHits();
            } else {
                sensitive_hits = cache.bandHits();
            }
            ok &= matches;
            std::printf("%-10u %-12s %-14.1f %-14zu %-14zu %s\n",
                        threads, masked ? "masked" : "sensitive",
                        cache.bandHitRate() * 100, cache.bandHits(),
                        cache.bandMaskedHits(),
                        matches ? "yes" : "NO (BUG)");
            std::printf(
                "JSON {\"bench\":\"estimator_band_keys\","
                "\"design\":\"2mm-%d\",\"threads\":%u,\"masked\":%s,"
                "\"band_hits\":%zu,\"band_hit_rate\":%.3f,"
                "\"masked_hits\":%zu,\"identical\":%s}\n",
                size, threads, masked ? "true" : "false",
                cache.bandHits(), cache.bandHitRate(),
                cache.bandMaskedHits(), matches ? "true" : "false");
        }
        if (masked_hits <= sensitive_hits || masked_tagged == 0) {
            std::printf("PARTITION KEY CHECK FAILED: %zu masked-key "
                        "hits (%zu partition-masked) vs %zu "
                        "sensitive-key hits\n",
                        masked_hits, masked_tagged, sensitive_hits);
            ok = false;
        }
    }
    std::printf("\n");
    return ok;
}

/** Plan-first point evaluation: the same border-first II cross-product
 * as the materialization section, but measuring the plan -> probe ->
 * overlay-materialize -> publish pipeline. Border points materialize
 * only their schedule-missing bands through copy-on-write overlays
 * (never the full pipeline), interior points compose from the PLAN tier
 * with zero IR built, and a warm-cache replay through a FRESH evaluator
 * must not create a single Operation (checked via the global creation
 * counter). Hard checks per kernel and thread count: zero full
 * materializations (mat/point <= 0.25, vs ~0.44 for the PR 5 fast
 * path whose border points ran the full pipeline), zero prediction
 * mismatches, the zero-clone replay, the counter partition
 * full + overlay + composed + infeasible == points, bit-identity with
 * the sequential uncached reference, and — on 3mm, whose first two
 * stages are symmetric gemms — schedule entries shared ACROSS bands by
 * the canonicalizing digest (crossBandHits > 0). */
bool
runProbeSection(const std::vector<unsigned> &configs, bool smoke)
{
    std::printf("=== Plan-first evaluation (plan -> probe -> overlay -> "
                "publish) ===\n\n");

    struct ProbeSpec
    {
        const char *kernel;
        bool expectCrossBand;
    };
    std::vector<ProbeSpec> specs = {{"2mm", false}};
    if (!smoke)
        specs.push_back({"3mm", true});
    const int size = smoke ? 8 : 16;
    const int dials = smoke ? 3 : 4;

    bool ok = true;
    for (const ProbeSpec &spec : specs) {
        auto module = parseCToModule(polybenchSource(spec.kernel, size));
        raiseScfToAffine(module.get());
        DesignSpace space(module.get());

        std::vector<DesignSpace::Point> border;
        std::vector<DesignSpace::Point> interior;
        DesignSpace::Point zero(space.numDims(), 0);
        for (int a = 0; a < dials; ++a)
            for (int b = 0; b < dials; ++b) {
                DesignSpace::Point p = zero;
                p[space.dimTargetII(0)] = a;
                p[space.dimTargetII(1)] = b;
                (a == 0 || b == 0 ? border : interior)
                    .push_back(std::move(p));
            }
        std::vector<DesignSpace::Point> all = border;
        all.insert(all.end(), interior.begin(), interior.end());

        // Sequential uncached reference.
        std::vector<QoRResult> reference;
        {
            CachingEvaluator evaluator(space);
            reference = evaluator.evaluateBatch(all);
        }
        std::printf("--- %s-%d: %zu points (%zu border + %zu interior) "
                    "---\n",
                    spec.kernel, size, all.size(), border.size(),
                    interior.size());
        std::printf("%-10s %-9s %-9s %-10s %-11s %-11s %-11s %s\n",
                    "Threads", "FullMat", "Overlay", "Composed",
                    "Mat/Point", "XBandHits", "ZeroClone", "Identical");

        for (unsigned threads : configs) {
            ThreadPool pool(threads);
            EstimateCache cache;
            CachingEvaluator evaluator(space, &pool, &cache);
            auto first = evaluator.evaluateBatch(border);
            auto second = evaluator.evaluateBatch(interior);
            first.insert(first.end(), second.begin(), second.end());
            bool matches = first.size() == reference.size();
            for (size_t i = 0; matches && i < first.size(); ++i)
                matches = identical(first[i], reference[i]);

            size_t full = evaluator.numFullMaterializations();
            size_t overlay = evaluator.numOverlayMaterializations();
            size_t composed = evaluator.numPlanComposed();
            size_t infeasible = evaluator.numPlanInfeasible();
            size_t mismatches = evaluator.numPlanMismatches();
            double per_point = static_cast<double>(full) /
                               static_cast<double>(all.size());

            // Warm-cache replay through a FRESH evaluator (empty memo):
            // every point must come out of the plan tier, creating ZERO
            // Operations.
            CachingEvaluator replay(space, &pool, &cache);
            size_t created_before = Operation::createdCount();
            auto replayed = replay.evaluateBatch(all);
            bool zero_clone =
                Operation::createdCount() == created_before;
            for (size_t i = 0; matches && i < replayed.size(); ++i)
                matches = identical(replayed[i], reference[i]);

            bool structural =
                matches && mismatches == 0 && full == 0 &&
                per_point <= 0.25 && zero_clone && composed > 0 &&
                full + overlay + composed + infeasible == all.size();
            if (spec.expectCrossBand)
                structural &= cache.crossBandHits() > 0;
            ok &= structural;
            std::printf(
                "%-10u %-9zu %-9zu %-10zu %-11.3f %-11zu %-11s %s\n",
                threads, full, overlay, composed, per_point,
                cache.crossBandHits(), zero_clone ? "yes" : "NO",
                structural ? "yes" : "NO (BUG)");
            std::printf(
                "JSON {\"bench\":\"estimator_probe\","
                "\"design\":\"%s-%d\",\"threads\":%u,\"points\":%zu,"
                "\"full_materializations\":%zu,"
                "\"overlay_materializations\":%zu,"
                "\"plan_composed\":%zu,\"plan_infeasible\":%zu,"
                "\"plan_mismatches\":%zu,\"cross_band_hits\":%zu,"
                "\"materializations_per_point\":%.3f,"
                "\"zero_clone_compose\":%s,\"identical\":%s}\n",
                spec.kernel, size, threads, all.size(), full, overlay,
                composed, infeasible, mismatches, cache.crossBandHits(),
                per_point, zero_clone ? "true" : "false",
                matches ? "true" : "false");
        }
        std::printf("\n");
    }
    return ok;
}

/** Audit-mode overhead and coverage: the probe sweep (2mm) and a DNN
 * kernel sweep run twice on fresh caches — auditing off, then on — and
 * a warm replay through a fresh evaluator drives the audited fast paths
 * (plan compose / overlay / schedule compose). Hard checks per design
 * and thread count: the auditors actually engage (checks > 0), they find
 * NOTHING on a healthy run (violations == 0), both configurations stay
 * bit-identical to the sequential uncached reference, and audited
 * throughput keeps at least half the unaudited rate (the documented
 * audit-mode overhead budget; generous slack because the timed runs are
 * short and CI runners are noisy). */
bool
runAuditedSweep(const char *design, DesignSpace &space,
                const std::vector<DesignSpace::Point> &border,
                const std::vector<DesignSpace::Point> &interior,
                const std::vector<QoRResult> &reference,
                const std::vector<unsigned> &configs)
{
    std::vector<DesignSpace::Point> all = border;
    all.insert(all.end(), interior.begin(), interior.end());
    std::printf("--- %s: %zu points (%zu border + %zu interior) ---\n",
                design, all.size(), border.size(), interior.size());
    std::printf("%-10s %-10s %-12s %-12s %-12s %-10s %s\n", "Threads",
                "Checks", "Violations", "PlainPts/s", "AuditPts/s",
                "Relative", "Identical");

    bool ok = true;
    for (unsigned threads : configs) {
        ThreadPool pool(threads);

        auto timed_run = [&](bool audit, size_t *checks,
                             size_t *violations, bool *out_identical) {
            EstimateCache cache;
            EvaluatorOptions options;
            options.audit = audit;
            CachingEvaluator evaluator(space, &pool, &cache, options);
            auto start = std::chrono::steady_clock::now();
            auto first = evaluator.evaluateBatch(border);
            auto second = evaluator.evaluateBatch(interior);
            // Warm replay through a FRESH evaluator (empty memo): every
            // point re-decides through the fast paths, which is where
            // the L3/L4 auditors live.
            CachingEvaluator replay(space, &pool, &cache, options);
            auto replayed = replay.evaluateBatch(all);
            double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 start)
                                 .count();
            first.insert(first.end(), second.begin(), second.end());
            bool matches = first.size() == reference.size();
            for (size_t i = 0; matches && i < first.size(); ++i)
                matches = identical(first[i], reference[i]);
            for (size_t i = 0; matches && i < replayed.size(); ++i)
                matches = identical(replayed[i], reference[i]);
            *out_identical = matches;
            *checks = evaluator.numAuditChecks() +
                      replay.numAuditChecks();
            *violations = evaluator.numAuditViolations() +
                          replay.numAuditViolations();
            return seconds;
        };

        size_t plain_checks = 0, plain_violations = 0;
        bool plain_identical = false;
        double plain_seconds = timed_run(false, &plain_checks,
                                         &plain_violations,
                                         &plain_identical);
        size_t checks = 0, violations = 0;
        bool audit_identical = false;
        double audit_seconds =
            timed_run(true, &checks, &violations, &audit_identical);

        double plain_rate = 2 * all.size() / plain_seconds;
        double audit_rate = 2 * all.size() / audit_seconds;
        double relative = plain_rate > 0 ? audit_rate / plain_rate : 0;
        bool structural = plain_identical && audit_identical &&
                          plain_checks == 0 && checks > 0 &&
                          violations == 0 && relative >= 0.5;
        ok &= structural;
        std::printf("%-10u %-10zu %-12zu %-12.1f %-12.1f %-10.2f %s\n",
                    threads, checks, violations, plain_rate, audit_rate,
                    relative, structural ? "yes" : "NO (BUG)");
        std::printf(
            "JSON {\"bench\":\"estimator_audit\",\"design\":\"%s\","
            "\"threads\":%u,\"points\":%zu,\"audit_checks\":%zu,"
            "\"audit_violations\":%zu,\"plain_points_per_second\":%.1f,"
            "\"audit_points_per_second\":%.1f,"
            "\"audit_relative_throughput\":%.3f,\"identical\":%s}\n",
            design, threads, all.size(), checks, violations, plain_rate,
            audit_rate, relative,
            plain_identical && audit_identical ? "true" : "false");
    }
    std::printf("\n");
    return ok;
}

/** The `--audit` section driver: audited probe sweep (2mm) plus an
 * audited DNN kernel sweep (resnet18 at graph level 4). */
bool
runAuditSection(const std::vector<unsigned> &configs, bool smoke)
{
    std::printf("=== Audit mode (L3 overlay aliasing + L4 cache "
                "coherence at every fast-path decision) ===\n\n");

    bool ok = true;
    {
        const int size = smoke ? 8 : 16;
        const int dials = smoke ? 3 : 4;
        auto module = parseCToModule(polybenchSource("2mm", size));
        raiseScfToAffine(module.get());
        DesignSpace space(module.get());
        std::vector<DesignSpace::Point> border;
        std::vector<DesignSpace::Point> interior;
        DesignSpace::Point zero(space.numDims(), 0);
        for (int a = 0; a < dials; ++a)
            for (int b = 0; b < dials; ++b) {
                DesignSpace::Point p = zero;
                p[space.dimTargetII(0)] = a;
                p[space.dimTargetII(1)] = b;
                (a == 0 || b == 0 ? border : interior)
                    .push_back(std::move(p));
            }
        std::vector<DesignSpace::Point> all = border;
        all.insert(all.end(), interior.begin(), interior.end());
        std::vector<QoRResult> reference;
        {
            CachingEvaluator evaluator(space);
            reference = evaluator.evaluateBatch(all);
        }
        char design[32];
        std::snprintf(design, sizeof(design), "2mm-%d", size);
        ok &= runAuditedSweep(design, space, border, interior, reference,
                              configs);
    }

    // One DNN kernel: the alloc-carrying dataflow-stage workload whose
    // fast path goes through evaluateScheduled (the L4 band-coherence
    // and entry-shape audits) rather than the planner.
    {
        auto kernels = buildDNNKernelModules("resnet18", 4, 1);
        if (kernels.empty()) {
            std::printf("UNEXPECTED: no DSE kernels extracted from "
                        "resnet18\n");
            return false;
        }
        DesignSpace space(kernels[0].module.get());
        const int dials = smoke ? 2 : 3;
        std::vector<DesignSpace::Point> border;
        std::vector<DesignSpace::Point> interior;
        DesignSpace::Point zero(space.numDims(), 0);
        for (int a = 0; a < dials; ++a)
            for (int b = 0; b < dials; ++b) {
                DesignSpace::Point p = zero;
                p[space.dimTargetII(0)] = a;
                if (space.numBands() > 1)
                    p[space.dimTargetII(1)] = b;
                else if (b > 0)
                    continue;
                (a == 0 || b == 0 ? border : interior)
                    .push_back(std::move(p));
            }
        std::vector<DesignSpace::Point> all = border;
        all.insert(all.end(), interior.begin(), interior.end());
        std::vector<QoRResult> reference;
        {
            CachingEvaluator evaluator(space);
            reference = evaluator.evaluateBatch(all);
        }
        std::string design = kernels[0].name + "-g4";
        ok &= runAuditedSweep(design.c_str(), space, border, interior,
                              reference, configs);
    }
    return ok;
}

/** DNN per-kernel fast-path sweep: the flagship workload class. Each
 * model is lowered at graph level 4 (multi-layer dataflow stages whose
 * intermediate feature maps are LOCAL allocs in the init / accumulate /
 * consume chain pattern) and its first kernels swept over an II
 * cross-product of their first two bands, border points first. Hard
 * checks per model and thread count: the fast path engages
 * (fastPathHits > 0), full materializations per evaluated point stay
 * strictly below 1.0, and every configuration is bit-identical to the
 * sequential uncached reference — the acceptance pin CI's dnn-bench job
 * enforces. */
bool
runDNNSection(const std::vector<unsigned> &configs, bool smoke)
{
    std::printf("=== DNN per-kernel fast path (alloc-carrying dataflow "
                "stages, graph level 4) ===\n\n");

    struct ModelSpec
    {
        const char *model;
        size_t kernels;
    };
    std::vector<ModelSpec> specs;
    if (smoke)
        specs = {{"resnet18", 1}};
    else
        specs = {{"resnet18", 4}, {"mobilenet", 4}};

    bool ok = true;
    for (const ModelSpec &spec : specs) {
        auto kernels = buildDNNKernelModules(spec.model, 4, spec.kernels);
        if (kernels.empty()) {
            std::printf("UNEXPECTED: no DSE kernels extracted from %s\n",
                        spec.model);
            return false;
        }

        // Per-kernel sweeps: the II cross-product of the first two
        // bands, border points (first appearance of each band variant)
        // before interior points (combinations composed entirely from
        // cached entries).
        const int dials = smoke ? 2 : 3;
        std::vector<std::unique_ptr<DesignSpace>> spaces;
        std::vector<std::vector<DesignSpace::Point>> borders;
        std::vector<std::vector<DesignSpace::Point>> interiors;
        std::vector<std::vector<QoRResult>> references;
        size_t total_points = 0;
        for (DNNKernel &kernel : kernels) {
            spaces.push_back(
                std::make_unique<DesignSpace>(kernel.module.get()));
            DesignSpace &space = *spaces.back();
            std::vector<DesignSpace::Point> border;
            std::vector<DesignSpace::Point> interior;
            DesignSpace::Point zero(space.numDims(), 0);
            for (int a = 0; a < dials; ++a) {
                for (int b = 0; b < dials; ++b) {
                    DesignSpace::Point p = zero;
                    p[space.dimTargetII(0)] = a;
                    if (space.numBands() > 1)
                        p[space.dimTargetII(1)] = b;
                    else if (b > 0)
                        continue;
                    (a == 0 || b == 0 ? border : interior)
                        .push_back(std::move(p));
                }
            }
            std::vector<DesignSpace::Point> all = border;
            all.insert(all.end(), interior.begin(), interior.end());
            total_points += all.size();
            CachingEvaluator reference(space);
            references.push_back(reference.evaluateBatch(all));
            borders.push_back(std::move(border));
            interiors.push_back(std::move(interior));
            std::printf("%-24s bands=%zu local-allocs=%zu points=%zu\n",
                        kernel.name.c_str(), kernel.numBands,
                        kernel.numAllocs, all.size());
        }
        std::printf("\n%-10s %-14s %-14s %-12s %-12s %s\n", "Threads",
                    "FullMat", "FastPath", "Mat/Point", "Pts/s",
                    "Identical");

        for (unsigned threads : configs) {
            ThreadPool pool(threads);
            // One estimate cache spans the model's kernels: repeated
            // stages (mobilenet's identical separable units) share
            // schedule entries ACROSS kernels, exactly like
            // optimizeFunctions' shared cache.
            EstimateCache cache;
            bool matches = true;
            size_t full = 0;
            size_t fast = 0;
            auto start = std::chrono::steady_clock::now();
            for (size_t k = 0; k < spaces.size(); ++k) {
                CachingEvaluator evaluator(*spaces[k], &pool, &cache);
                auto results = evaluator.evaluateBatch(borders[k]);
                auto rest = evaluator.evaluateBatch(interiors[k]);
                results.insert(results.end(), rest.begin(), rest.end());
                for (size_t i = 0; i < results.size(); ++i)
                    matches &= identical(results[i], references[k][i]);
                full += evaluator.numFullMaterializations();
                fast += evaluator.numFastPathHits();
            }
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            double per_point = static_cast<double>(full) /
                               static_cast<double>(total_points);
            double rate = total_points / seconds;
            bool structural =
                matches && fast > 0 && per_point < 1.0;
            ok &= structural;
            std::printf("%-10u %-14zu %-14zu %-12.3f %-12.1f %s\n",
                        threads, full, fast, per_point, rate,
                        structural ? "yes" : "NO (BUG)");
            std::printf(
                "JSON {\"bench\":\"estimator_dnn\",\"design\":\"%s-g4\","
                "\"threads\":%u,\"kernels\":%zu,\"points\":%zu,"
                "\"full_materializations\":%zu,\"fast_path_hits\":%zu,"
                "\"fast_path_hit_rate\":%.3f,"
                "\"materializations_per_point\":%.3f,"
                "\"points_per_second\":%.1f,\"identical\":%s}\n",
                spec.model, threads, spaces.size(), total_points, full,
                fast,
                static_cast<double>(fast) /
                    static_cast<double>(total_points),
                per_point, rate, matches ? "true" : "false");
        }
        std::printf("\n");
    }
    return ok;
}

/** Snapshot persistence (cross-process warm start): the DNN kernel
 * sweep run cold on a fresh estimate cache, the cache serialized to a
 * snapshot file, then the ENTIRE workload state rebuilt from scratch —
 * new kernel modules, new design spaces, new evaluators, a new cache —
 * and the snapshot loaded back, exactly what a fresh scalehls-opt or
 * scalehls-serve process sees. Hard checks per thread count: the load
 * succeeds with entries and ZERO recorded lookups (hit-rate baselines
 * measure this run, not history), the warm sweep performs zero full
 * materializations (every point composes from persisted schedule/plan
 * entries), warm throughput is at least 2x cold (the snapshot pays for
 * itself; the real margin is far larger), and warm QoR is bit-identical
 * to cold. */
bool
runPersistSection(bool smoke)
{
    std::printf("=== Snapshot persistence (cold sweep -> save -> fresh "
                "load -> warm sweep) ===\n\n");

    const char *model = "resnet18";
    const size_t num_kernels = smoke ? 1 : 4;
    const int dials = smoke ? 2 : 3;
    const char *tmp = std::getenv("TMPDIR");
    std::string snapshot = std::string(tmp && *tmp ? tmp : "/tmp") +
                           "/scalehls_bench_persist.shlsnap";

    // One sweep instance: everything a process holds in memory. Built
    // twice so the warm run shares NOTHING with the cold run but the
    // snapshot file.
    struct Sweep
    {
        std::vector<DNNKernel> kernels;
        std::vector<std::unique_ptr<DesignSpace>> spaces;
        std::vector<std::vector<DesignSpace::Point>> borders;
        std::vector<std::vector<DesignSpace::Point>> interiors;
        size_t totalPoints = 0;
    };
    auto build_sweep = [&]() {
        Sweep sweep;
        sweep.kernels = buildDNNKernelModules(model, 4, num_kernels);
        for (DNNKernel &kernel : sweep.kernels) {
            sweep.spaces.push_back(
                std::make_unique<DesignSpace>(kernel.module.get()));
            DesignSpace &space = *sweep.spaces.back();
            std::vector<DesignSpace::Point> border;
            std::vector<DesignSpace::Point> interior;
            DesignSpace::Point zero(space.numDims(), 0);
            for (int a = 0; a < dials; ++a) {
                for (int b = 0; b < dials; ++b) {
                    DesignSpace::Point p = zero;
                    p[space.dimTargetII(0)] = a;
                    if (space.numBands() > 1)
                        p[space.dimTargetII(1)] = b;
                    else if (b > 0)
                        continue;
                    (a == 0 || b == 0 ? border : interior)
                        .push_back(std::move(p));
                }
            }
            sweep.totalPoints += border.size() + interior.size();
            sweep.borders.push_back(std::move(border));
            sweep.interiors.push_back(std::move(interior));
        }
        return sweep;
    };
    auto run_sweep = [](Sweep &sweep, ThreadPool &pool,
                        EstimateCache &cache,
                        std::vector<QoRResult> &qors, size_t &full) {
        qors.clear();
        full = 0;
        auto start = std::chrono::steady_clock::now();
        for (size_t k = 0; k < sweep.spaces.size(); ++k) {
            CachingEvaluator evaluator(*sweep.spaces[k], &pool, &cache);
            auto results = evaluator.evaluateBatch(sweep.borders[k]);
            auto rest = evaluator.evaluateBatch(sweep.interiors[k]);
            qors.insert(qors.end(), results.begin(), results.end());
            qors.insert(qors.end(), rest.begin(), rest.end());
            full += evaluator.numFullMaterializations();
        }
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    std::vector<unsigned> configs = smoke ? std::vector<unsigned>{1, 2}
                                          : std::vector<unsigned>{1, 4};
    std::printf("%-10s %-12s %-12s %-10s %-10s %-10s %s\n", "Threads",
                "ColdPts/s", "WarmPts/s", "Speedup", "ColdFull",
                "WarmFull", "Identical");

    bool ok = true;
    for (unsigned threads : configs) {
        ThreadPool pool(threads);

        Sweep cold_sweep = build_sweep();
        EstimateCache cold_cache;
        std::vector<QoRResult> cold_qors;
        size_t cold_full = 0;
        double cold_seconds =
            run_sweep(cold_sweep, pool, cold_cache, cold_qors, cold_full);

        std::string error;
        if (!saveEstimateCache(cold_cache, snapshot, &error)) {
            std::printf("UNEXPECTED: snapshot save failed: %s\n",
                        error.c_str());
            return false;
        }

        // The warm process: fresh everything, then load the snapshot.
        Sweep warm_sweep = build_sweep();
        EstimateCache warm_cache;
        CacheLoadResult load = loadEstimateCache(warm_cache, snapshot);
        bool load_ok = load.status == CacheLoadStatus::Loaded &&
                       load.totalEntries() > 0 &&
                       warm_cache.funcStats().lookups() == 0 &&
                       warm_cache.bandStats().lookups() == 0;
        std::vector<QoRResult> warm_qors;
        size_t warm_full = 0;
        double warm_seconds =
            run_sweep(warm_sweep, pool, warm_cache, warm_qors, warm_full);

        bool matches = warm_qors.size() == cold_qors.size();
        for (size_t i = 0; matches && i < warm_qors.size(); ++i)
            matches = identical(warm_qors[i], cold_qors[i]);

        double cold_rate = cold_sweep.totalPoints / cold_seconds;
        double warm_rate = warm_sweep.totalPoints / warm_seconds;
        double speedup = cold_rate > 0 ? warm_rate / cold_rate : 0;
        double warm_per_point =
            static_cast<double>(warm_full) /
            static_cast<double>(warm_sweep.totalPoints);
        bool structural = load_ok && matches && warm_full == 0 &&
                          speedup >= 2.0;
        ok &= structural;
        std::printf("%-10u %-12.1f %-12.1f %-10.2f %-10zu %-10zu %s\n",
                    threads, cold_rate, warm_rate, speedup, cold_full,
                    warm_full, structural ? "yes" : "NO (BUG)");
        std::printf(
            "JSON {\"bench\":\"estimator_persist\","
            "\"design\":\"%s-g4\",\"threads\":%u,\"kernels\":%zu,"
            "\"points\":%zu,\"loaded_entries\":%zu,"
            "\"cold_points_per_second\":%.1f,"
            "\"warm_points_per_second\":%.1f,\"warm_speedup\":%.2f,"
            "\"cold_full_materializations\":%zu,"
            "\"warm_full_materializations\":%zu,"
            "\"warm_materializations_per_point\":%.3f,"
            "\"identical\":%s}\n",
            model, threads, cold_sweep.spaces.size(),
            cold_sweep.totalPoints, load.totalEntries(), cold_rate,
            warm_rate, speedup, cold_full, warm_full, warm_per_point,
            matches && load_ok ? "true" : "false");
    }
    std::remove(snapshot.c_str());
    std::printf("\n");
    return ok;
}

/** Whole-model DSE end-to-end: resnet18 at graph level 4 through
 * Compiler::optimizeModel on both device classes. Hard checks per
 * device: the composed design fits the budget, the frontier-composed
 * QoR prediction matches the re-estimated module bit-identically, the
 * stitched module re-verifies, the exchange-refined allocation strictly
 * beats the naive uniform budget split (lower bottleneck latency, or
 * the same bottleneck at strictly fewer DSPs), and every thread count
 * produces the identical design.
 *
 * The edge run uses xc7z020's compute budget (220 DSP / 53,200 LUT)
 * with the on-chip memory gate relaxed to the model's working set:
 * resnet18's feature maps (~43 Mb at graph level 4) exceed ANY design
 * point's 4.9 Mb on-chip capacity, so an edge deployment streams them
 * from DRAM and the budget that actually constrains the allocator is
 * compute. The vu9p-slr run keeps the full device gate (the paper's
 * DNN platform). */
bool
runDNNFullSection(const std::vector<unsigned> &configs, bool smoke)
{
    std::printf("=== Whole-model DSE (resnet18 end-to-end, global "
                "budget allocation) ===\n\n");

    const char *model = "resnet18";
    const int graph_level = 4;
    DSEOptions options;
    options.numInitialSamples = smoke ? 60 : 400;
    options.maxIterations = smoke ? 30 : 300;
    DesignSpaceOptions space_options;
    space_options.maxTileSize = 16;
    space_options.maxTotalUnroll = 256;

    ResourceBudget edge = xc7z020();
    edge.name = "xc7z020-dram";
    edge.memoryBits = 2500 * 18 * 1024;
    std::vector<ResourceBudget> devices = {edge, vu9pSlr()};
    bool ok = true;
    for (const ResourceBudget &budget : devices) {
        std::printf("%-10s %-8s %-14s %-14s %-14s %-8s %s\n", "Device",
                    "Threads", "E2eLatency", "Bottleneck", "Uniform",
                    "DSP%", "Checks");
        std::optional<Compiler::ModelDSEResult> reference;
        for (unsigned threads : configs) {
            Compiler compiler(buildLoweredDNN(model, graph_level));
            ExploreRequest request;
            request.budgetSpec = budget.name;
            request.budget = budget;
            request.space = space_options;
            request.dse = options;
            request.dse.numThreads = threads;
            auto start = std::chrono::steady_clock::now();
            auto result = compiler.optimizeModel(request);
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (!result) {
                std::printf("UNEXPECTED: optimizeModel(%s) failed "
                            "structurally\n",
                            budget.name.c_str());
                return false;
            }

            bool fits = result->allocation.feasible &&
                        budget.fits(result->allocation.resources);
            // Strictly better than the uniform split: a lower
            // bottleneck (an infeasible uniform split carries the
            // sentinel), or the same bottleneck at strictly fewer
            // DSPs. Smoke mode only insists on never-worse.
            bool beats_uniform =
                result->allocation.bottleneck <
                    result->uniform.bottleneck ||
                (result->allocation.bottleneck ==
                     result->uniform.bottleneck &&
                 (smoke ? result->allocation.resources.dsp <=
                              result->uniform.resources.dsp
                        : result->allocation.resources.dsp <
                              result->uniform.resources.dsp));
            bool deterministic = true;
            if (!reference)
                reference = *result;
            else
                deterministic =
                    identical(result->measured, reference->measured) &&
                    result->allocation.choice ==
                        reference->allocation.choice &&
                    result->uniform.bottleneck ==
                        reference->uniform.bottleneck;
            bool structural = fits && result->measured.feasible &&
                              result->composedVerified &&
                              result->verified && beats_uniform &&
                              deterministic;
            ok &= structural;

            double dsp_utilization =
                static_cast<double>(result->allocation.resources.dsp) /
                static_cast<double>(budget.dsp);
            size_t kernels = 0;
            for (const auto &stage : result->stages)
                kernels += stage.kernel;
            std::printf("%-10s %-8u %-14lld %-14lld %-14lld %-8.3f %s\n",
                        budget.name.c_str(), threads,
                        static_cast<long long>(result->measured.latency),
                        static_cast<long long>(
                            result->allocation.bottleneck),
                        static_cast<long long>(
                            result->uniform.bottleneck),
                        dsp_utilization,
                        structural ? "ok" : "FAILED");
            std::printf(
                "JSON {\"bench\":\"estimator_dnn_full\","
                "\"design\":\"%s-g%d\",\"device\":\"%s\","
                "\"threads\":%u,\"stages\":%zu,\"kernels\":%zu,"
                "\"evaluations\":%zu,\"end_to_end_latency\":%lld,"
                "\"bottleneck_latency\":%lld,"
                "\"uniform_bottleneck\":%lld,\"dsp\":%lld,"
                "\"uniform_dsp\":%lld,"
                "\"dsp_utilization\":%.4f,\"refinement_steps\":%zu,"
                "\"composed_verified\":%s,\"beats_uniform\":%s,"
                "\"seconds\":%.2f}\n",
                model, graph_level, budget.name.c_str(), threads,
                result->stages.size(), kernels, result->evaluations,
                static_cast<long long>(result->measured.latency),
                static_cast<long long>(result->allocation.bottleneck),
                static_cast<long long>(result->uniform.bottleneck),
                static_cast<long long>(result->allocation.resources.dsp),
                static_cast<long long>(result->uniform.resources.dsp),
                dsp_utilization, result->allocation.refinementSteps,
                result->composedVerified ? "true" : "false",
                beats_uniform ? "true" : "false", seconds);
        }
        std::printf("\n");
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool dnn_only = false;
    bool dnn_full = false;
    bool probe_only = false;
    bool audit_only = false;
    bool persist_only = false;
    for (int i = 1; i < argc; ++i) {
        smoke |= std::strcmp(argv[i], "--smoke") == 0;
        dnn_only |= std::strcmp(argv[i], "--dnn") == 0;
        dnn_full |= std::strcmp(argv[i], "--dnn-full") == 0;
        probe_only |= std::strcmp(argv[i], "--probe") == 0;
        audit_only |= std::strcmp(argv[i], "--audit") == 0;
        persist_only |= std::strcmp(argv[i], "--persist") == 0;
    }

    unsigned hw = defaultThreadCount();
    std::printf("=== Estimator scaling (intra-point parallel estimation "
                "+ cross-point cache, %u hardware threads%s) ===\n\n",
                hw, smoke ? ", smoke" : "");

    std::vector<unsigned> configs = {1, 2, 4};
    if (hw > 4 && !smoke)
        configs.push_back(hw);

    bool ok = true;
    if (dnn_full) {
        ok &= runDNNFullSection(configs, smoke);
        if (!dnn_only && !probe_only && !audit_only) {
            if (!ok) {
                std::printf(
                    "SELF-CHECK FAILED: the whole-model DSE composed "
                    "design missed its budget, prediction, "
                    "verification, uniform-split, or determinism "
                    "check\n");
                return 1;
            }
            return 0;
        }
    }
    if (audit_only) {
        ok &= runAuditSection(configs, smoke);
    } else if (persist_only) {
        ok &= runPersistSection(smoke);
    } else {
        if (!dnn_only && !probe_only) {
            ok &= runScalingSection(configs, smoke);
            ok &= runBandCacheSection(configs);
            ok &= runMaterializationSection(configs, smoke);
            ok &= runPartitionKeySection(configs, smoke);
        }
        if (!dnn_only)
            ok &= runProbeSection(configs, smoke);
        if (!probe_only)
            ok &= runDNNSection(configs, smoke);
        if (!dnn_only && !probe_only) {
            ok &= runAuditSection(configs, smoke);
            ok &= runPersistSection(smoke);
        }
    }

    if (!ok) {
        std::printf("SELF-CHECK FAILED: parallel/cached estimation "
                    "diverged from the sequential path, a cache tier "
                    "underperformed its baseline, the DNN fast path "
                    "failed to engage, or the audit sweep found a "
                    "violation / exceeded its overhead budget\n");
        return 1;
    }
    return 0;
}
