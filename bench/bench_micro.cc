/**
 * @file
 * Micro-benchmarks (google-benchmark) supporting the paper's runtime
 * claims and the DESIGN.md ablations: front-end + raising throughput,
 * estimator speed (the property enabling DSE at scale), DSE evaluation
 * rate, and the array-partition metric vs naive full partitioning.
 */

#include <benchmark/benchmark.h>

#include "api/scalehls.h"
#include "model/polybench.h"

using namespace scalehls;

namespace {

void
BM_ParseAndRaise(benchmark::State &state)
{
    std::string source = polybenchSource("gemm", state.range(0));
    for (auto _ : state) {
        auto module = parseCToModule(source);
        raiseScfToAffine(module.get());
        benchmark::DoNotOptimize(module);
    }
}
BENCHMARK(BM_ParseAndRaise)->Arg(64)->Arg(4096);

void
BM_QoREstimation(benchmark::State &state)
{
    auto module = parseCToModule(polybenchSource("gemm", state.range(0)));
    raiseScfToAffine(module.get());
    Operation *func = getTopFunc(module.get());
    applyLoopPerfectization(getLoopBands(func)[0][0]);
    auto band = getLoopNest(getLoopBands(func)[0][0]);
    applyLoopOrderOpt(band);
    band = getLoopNest(band[0]);
    band = applyLoopTiling(band, {1, 1, 8});
    applyLoopPipelining(band.back(), 1);
    applyCanonicalize(func);
    applyArrayPartition(func);
    for (auto _ : state) {
        QoREstimator estimator(module.get());
        benchmark::DoNotOptimize(estimator.estimateModule());
    }
}
BENCHMARK(BM_QoREstimation)->Arg(256)->Arg(4096);

void
BM_VirtualSynthesis(benchmark::State &state)
{
    auto module = parseCToModule(polybenchSource("gemm", state.range(0)));
    raiseScfToAffine(module.get());
    for (auto _ : state) {
        VirtualSynthesizer synthesizer(module.get(), xc7z020());
        benchmark::DoNotOptimize(synthesizer.synthesize());
    }
}
BENCHMARK(BM_VirtualSynthesis)->Arg(256);

void
BM_DSEEvaluation(benchmark::State &state)
{
    // One full materialize+estimate round trip: the unit of DSE cost.
    auto module = parseCToModule(polybenchSource("gemm", 256));
    raiseScfToAffine(module.get());
    DesignSpaceOptions options;
    options.maxTotalUnroll = static_cast<int64_t>(state.range(0));
    DesignSpace space(module.get(), options);
    CachingEvaluator evaluator(space);
    std::mt19937 rng(1);
    for (auto _ : state) {
        auto point = space.randomPoint(rng);
        benchmark::DoNotOptimize(evaluator.evaluate(point));
    }
}
BENCHMARK(BM_DSEEvaluation)->Arg(16)->Arg(128);

/** DESIGN.md ablation: access-pattern-driven partitioning (paper Eq. 1)
 * vs naively fully partitioning every dimension. The metric-driven plan
 * reaches the same II with far fewer banks. */
void
BM_PartitionMetricAblation(benchmark::State &state)
{
    bool naive = state.range(0) != 0;
    int64_t ii = 0;
    int64_t banks = 0;
    for (auto _ : state) {
        auto module = parseCToModule(polybenchSource("gemm", 64));
        raiseScfToAffine(module.get());
        Operation *func = getTopFunc(module.get());
        applyLoopPerfectization(getLoopBands(func)[0][0]);
        auto band = getLoopNest(getLoopBands(func)[0][0]);
        applyLoopOrderOpt(band);
        band = getLoopNest(band[0]);
        band = applyLoopTiling(band, {1, 1, 8});
        applyLoopPipelining(band.back(), 1);
        applyCanonicalize(func);
        if (naive) {
            Block *body = funcBody(func);
            for (unsigned i = 0; i < body->numArguments(); ++i) {
                Value *arg = body->argument(i);
                if (!arg->type().isMemRef())
                    continue;
                PartitionPlan plan;
                plan.kinds.assign(arg->type().rank(),
                                  PartitionKind::Cyclic);
                plan.factors.assign(arg->type().rank(), 8);
                applyPartitionPlan(arg, plan);
            }
        } else {
            applyArrayPartition(func);
        }
        QoREstimator estimator(module.get());
        QoRResult qor = estimator.estimateModule();
        ii = qor.interval;
        banks = 0;
        Block *body = funcBody(func);
        for (unsigned i = 0; i < body->numArguments(); ++i) {
            Value *arg = body->argument(i);
            if (!arg->type().isMemRef())
                continue;
            banks += decodePartitionMap(arg->type().layout(),
                                        arg->type().shape())
                         .totalBanks();
        }
        benchmark::DoNotOptimize(qor);
    }
    state.counters["banks"] = static_cast<double>(banks);
    state.counters["interval"] = static_cast<double>(ii);
}
BENCHMARK(BM_PartitionMetricAblation)
    ->Arg(0)  // Eq. 1 metric.
    ->Arg(1); // Naive full partition.

/** DESIGN.md ablation: the 5-step neighbor-traversing search vs pure
 * random sampling vs simulated annealing at the same evaluation budget.
 * Counters report the best feasible latency each strategy found. */
void
BM_DSEStrategyAblation(benchmark::State &state)
{
    auto strategy = static_cast<DSEStrategy>(state.range(0));
    int64_t best_latency = 0;
    for (auto _ : state) {
        auto module = parseCToModule(polybenchSource("gemm", 256));
        raiseScfToAffine(module.get());
        DesignSpaceOptions space_options;
        space_options.maxTileSize = 16;
        space_options.maxTotalUnroll = 128;
        DesignSpace space(module.get(), space_options);
        DSEOptions options;
        options.numInitialSamples = 30;
        options.maxIterations = 60;
        options.strategy = strategy;
        DSEEngine engine(space, options);
        auto frontier = engine.explore();
        auto best = DSEEngine::finalize(frontier, xc7z020());
        best_latency = best ? best->qor.latency : -1;
        benchmark::DoNotOptimize(best_latency);
    }
    state.counters["best_latency"] = static_cast<double>(best_latency);
}
BENCHMARK(BM_DSEStrategyAblation)
    ->Arg(0)  // NeighborTraversal (paper).
    ->Arg(1)  // RandomSampling.
    ->Arg(2)  // SimulatedAnnealing.
    ->Unit(benchmark::kMillisecond);

void
BM_DnnCompileFlow(benchmark::State &state)
{
    // The paper's "runtime (seconds)" claim: full multi-level flow.
    for (auto _ : state) {
        auto module = createModule();
        buildMobileNet(module.get());
        Compiler compiler(std::move(module));
        compiler.applyGraphOpt(7)
            .lowerToLoops()
            .applyLoopOpt(3)
            .applyDirectiveOpt(1);
        benchmark::DoNotOptimize(compiler.estimate());
    }
}
BENCHMARK(BM_DnnCompileFlow)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
