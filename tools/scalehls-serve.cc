/**
 * @file
 * scalehls-serve: the DSE-as-a-service front end. Reads newline-
 * delimited JSON requests from stdin (or accepts connections on a Unix
 * domain socket), dispatches them concurrently onto a ThreadPool
 * against ONE shared EstimateCache (api/serve.h), and writes one JSON
 * response line per request. The cache is loaded from a snapshot on
 * startup and saved on shutdown (and every --snapshot-every requests),
 * so a restarted server — or the next server sharing the same
 * $SCALEHLS_CACHE_DIR — answers warm: plan-composed evaluation, zero
 * full materializations.
 *
 * Responses are tagged by the request's "id" and may arrive out of
 * order under concurrency; the QoR of every response is independent of
 * the dispatch interleaving (deterministic per request seed).
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/serve.h"
#include "support/thread_pool.h"

using namespace scalehls;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --socket PATH        accept connections on a Unix domain\n"
        "                       socket instead of reading stdin\n"
        "  --dispatch N         concurrent request dispatch slots\n"
        "                       (default 2; 1 = serial)\n"
        "  --threads N          default DSE worker threads per request\n"
        "                       (requests override via \"threads\")\n"
        "  --cache-load PATH    estimate-cache snapshot to load\n"
        "  --cache-save PATH    snapshot path saved on shutdown\n"
        "  --snapshot-every N   also save every N completed requests\n"
        "  --cache-cap SPEC     cache bound: one count for all tiers or\n"
        "                       func:band:sched:plan\n"
        "Both cache paths default to\n"
        "$SCALEHLS_CACHE_DIR/estimate_cache.shlsnap when that is set.\n"
        "Protocol: one JSON request per line (see api/serve.h).\n",
        argv0);
    return 2;
}

/** Shared stdout writer: one response line per request, atomically. */
class ResponseWriter
{
  public:
    void
    writeLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }

  private:
    std::mutex mutex_;
};

/** Tracks in-flight dispatched requests so shutdown (and per-connection
 * teardown in socket mode) waits for every response. */
class Pending
{
  public:
    void
    add()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++count_;
    }
    void
    done()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --count_;
        if (count_ == 0)
            idle_.notify_all();
    }
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [&] { return count_ == 0; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable idle_;
    size_t count_ = 0;
};

/** stdin mode: read request lines, dispatch each onto the pool, write
 * responses to stdout. Returns once stdin closes or a quit request has
 * been answered (in-flight requests always complete first). */
void
serveStdin(ServeSession &session, ThreadPool &pool)
{
    ResponseWriter out;
    Pending pending;
    std::string line;
    while (!session.quitRequested() && std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        pending.add();
        std::string request = line;
        pool.submit([&session, &out, &pending, request] {
            out.writeLine(session.handleLine(request));
            pending.done();
        });
        // A quit request must stop the reader promptly; drain so its
        // response (and everything before it) is on the wire.
        if (request.find("\"quit\"") != std::string::npos)
            pending.wait();
    }
    pending.wait();
}

/** One accepted socket connection: newline-delimited requests in,
 * responses (order not guaranteed) out. */
void
serveConnection(ServeSession &session, ThreadPool &pool, int fd)
{
    auto write_mutex = std::make_shared<std::mutex>();
    auto respond = [fd, write_mutex](const std::string &response) {
        std::string line = response + "\n";
        std::lock_guard<std::mutex> lock(*write_mutex);
        size_t off = 0;
        while (off < line.size()) {
            ssize_t n =
                ::write(fd, line.data() + off, line.size() - off);
            if (n <= 0)
                break; // Peer gone; drop the rest.
            off += static_cast<size_t>(n);
        }
    };

    Pending pending;
    std::string buffer;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<size_t>(n));
        size_t start = 0;
        for (size_t nl = buffer.find('\n', start);
             nl != std::string::npos; nl = buffer.find('\n', start)) {
            std::string request = buffer.substr(start, nl - start);
            start = nl + 1;
            if (request.empty())
                continue;
            pending.add();
            pool.submit([&session, &pending, respond, request] {
                respond(session.handleLine(request));
                pending.done();
            });
        }
        buffer.erase(0, start);
        if (session.quitRequested())
            break;
    }
    pending.wait();
    ::close(fd);
}

int
serveSocket(ServeSession &session, ThreadPool &pool,
            const std::string &path)
{
    int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
        ::close(listener);
        return 1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listener, 16) != 0) {
        std::perror("bind/listen");
        ::close(listener);
        return 1;
    }
    std::fprintf(stderr, "scalehls-serve: listening on %s\n",
                 path.c_str());

    std::vector<std::thread> connections;
    while (!session.quitRequested()) {
        int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0)
            break;
        connections.emplace_back([&session, &pool, fd] {
            serveConnection(session, pool, fd);
        });
        if (session.quitRequested())
            break;
    }
    for (auto &thread : connections)
        thread.join();
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ServeOptions options;
    std::string socket_path;
    unsigned dispatch = 2;

    auto value_of = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--socket") {
            socket_path = value_of(i);
        } else if (arg == "--dispatch") {
            dispatch = static_cast<unsigned>(std::atoi(value_of(i)));
        } else if (arg == "--threads") {
            options.defaultThreads =
                static_cast<unsigned>(std::atoi(value_of(i)));
        } else if (arg == "--cache-load") {
            options.cacheLoadPath = value_of(i);
        } else if (arg == "--cache-save") {
            options.cacheSavePath = value_of(i);
        } else if (arg == "--snapshot-every") {
            options.snapshotEvery =
                static_cast<size_t>(std::atoll(value_of(i)));
        } else if (arg == "--cache-cap") {
            auto caps = parseEstimateCacheCaps(value_of(i));
            if (!caps) {
                std::fprintf(stderr, "bad --cache-cap spec\n");
                return 2;
            }
            options.tierCaps = *caps;
        } else if (arg == "-h" || arg == "--help") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return usage(argv[0]);
        }
    }

    ServeSession session(options);
    ThreadPool pool(std::max(1u, dispatch));

    int code = 0;
    if (socket_path.empty())
        serveStdin(session, pool);
    else
        code = serveSocket(session, pool, socket_path);
    pool.waitIdle();
    // ~ServeSession saves the shutdown snapshot.
    return code;
}
