/**
 * @file
 * scalehls-opt: the command-line optimization driver of the paper's tool
 * trio (scalehls-clang | scalehls-opt | scalehls-translate). Reads HLS C
 * from a file or stdin, applies the requested passes in order and prints
 * the resulting IR (or a QoR report).
 *
 * Examples (the paper's Fig. 5 pipeline):
 *   scalehls-opt syrk.c -affine-loop-perfectization \
 *       -remove-variable-bound -affine-loop-order-opt \
 *       -affine-loop-tile=1,2,1 -loop-pipelining \
 *       -canonicalize -simplify-affine-if -affine-store-forward \
 *       -simplify-memref-access -array-partition -cse
 *   scalehls-opt gemm.c -dse -estimate
 */

#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "api/explore_request.h"
#include "api/scalehls.h"
#include "model/dnn_dse.h"
#include "model/polybench.h"
#include "support/utils.h"

using namespace scalehls;

namespace {

void
usage()
{
    std::cerr
        << "usage: scalehls-opt [<input.c>|-] [passes...] [options]\n"
           "passes (applied in order):\n"
           "  -affine-loop-perfectization  -remove-variable-bound\n"
           "  -affine-loop-order-opt       -affine-loop-tile=<t0,t1,...>\n"
           "  -affine-loop-unroll=<f>      -affine-loop-merge\n"
           "  -loop-pipelining[=<II>]      -func-pipelining[=<II>]\n"
           "  -array-partition             -func-inline\n"
           "  -simplify-affine-if          -affine-store-forward\n"
           "  -simplify-memref-access      -canonicalize  -cse\n"
           "  -dse                         (automated DSE)\n"
           "  -dse-funcs                   (DSE every kernel function,\n"
           "                                explored concurrently)\n"
           "  -dse-model=<resnet18|vgg16|mobilenet>\n"
           "                               (whole-model graph-level DSE:\n"
           "                                lower the zoo model, explore\n"
           "                                every dataflow stage, compose\n"
           "                                one design under the global\n"
           "                                device budget; no C input)\n"
           "options:\n"
           "  -top=<name>    top function   -estimate   QoR report\n"
           "  -pass-timing   timing report  -emit-hlscpp  emit C++\n"
           "  -verify-each      verify the IR after every pass (always\n"
           "                    on in debug builds; SCALEHLS_VERIFY_EACH\n"
           "                    overrides either way)\n"
        << exploreFlagUsage();
}

std::vector<int64_t>
parseIntList(const std::string &text)
{
    std::vector<int64_t> values;
    std::istringstream is(text);
    std::string token;
    while (std::getline(is, token, ','))
        values.push_back(std::stoll(token));
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }

    // Split args into input, options and the pass pipeline. Everything
    // DSE-shaped funnels into the one unified ExploreRequest, decoded by
    // the same parser scalehls-serve and scalehls-smith use.
    std::string input_path;
    std::string top;
    bool estimate = false;
    bool timing = false;
    bool emit_cpp = false;
    bool run_dse = false;
    bool run_dse_funcs = false;
    ExploreRequest request;
    request.applyEnvDefaults();
    PassManager pm;

    auto value_of = [](const std::string &arg) {
        auto pos = arg.find('=');
        return pos == std::string::npos ? std::string()
                                        : arg.substr(pos + 1);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value = value_of(arg);
        std::string name = arg.substr(0, arg.find('='));
        if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        }
        std::string explore_error;
        if (parseExploreFlag(request, arg, &explore_error)) {
            if (!explore_error.empty()) {
                std::cerr << explore_error << "\n";
                return 1;
            }
            continue;
        }
        if (name == "-top") {
            top = value;
        } else if (arg == "-estimate") {
            estimate = true;
        } else if (arg == "-pass-timing") {
            timing = true;
        } else if (arg == "-emit-hlscpp") {
            emit_cpp = true;
        } else if (arg == "-dse") {
            run_dse = true;
        } else if (arg == "-dse-funcs") {
            run_dse_funcs = true;
        } else if (arg == "-verify-each") {
            pm.setVerifyEach(true);
        } else if (name == "-affine-loop-perfectization") {
            pm.addPass(createLoopPerfectizationPass());
        } else if (name == "-remove-variable-bound") {
            pm.addPass(createRemoveVariableBoundPass());
        } else if (name == "-affine-loop-order-opt") {
            pm.addPass(createLoopOrderOptPass());
        } else if (name == "-affine-loop-tile") {
            pm.addPass(createLoopTilePass(parseIntList(value)));
        } else if (name == "-affine-loop-unroll") {
            pm.addPass(createLoopUnrollPass(
                value.empty() ? 2 : std::stoll(value)));
        } else if (name == "-affine-loop-merge") {
            pm.addPass(createLoopMergePass());
        } else if (name == "-loop-pipelining") {
            pm.addPass(createLoopPipeliningPass(
                value.empty() ? 1 : std::stoll(value)));
        } else if (name == "-func-pipelining") {
            pm.addPass(createFuncPipeliningPass(
                value.empty() ? 1 : std::stoll(value)));
        } else if (name == "-array-partition") {
            pm.addPass(createArrayPartitionPass());
        } else if (name == "-func-inline") {
            pm.addPass(createFuncInlinePass());
        } else if (name == "-simplify-affine-if") {
            pm.addPass(createSimplifyAffineIfPass());
        } else if (name == "-affine-store-forward") {
            pm.addPass(createAffineStoreForwardPass());
        } else if (name == "-simplify-memref-access") {
            pm.addPass(createSimplifyMemrefAccessPass());
        } else if (name == "-canonicalize") {
            pm.addPass(createCanonicalizePass());
        } else if (name == "-cse") {
            pm.addPass(createCSEPass());
        } else if (arg == "-" || (!arg.empty() && arg[0] != '-')) {
            input_path = arg;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
            return 1;
        }
    }

    if (auto invalid = request.validate()) {
        std::cerr << *invalid << "\n";
        return 1;
    }

    try {
        if ((run_dse && run_dse_funcs) ||
            (!request.model.empty() && (run_dse || run_dse_funcs))) {
            std::cerr << "-dse, -dse-funcs and -dse-model are mutually "
                         "exclusive\n";
            return 1;
        }

        // -dse-model builds its own module from the zoo; every other
        // mode parses HLS C from the input.
        std::string source;
        std::unique_ptr<Operation> model_module;
        if (!request.model.empty()) {
            model_module =
                buildLoweredDNN(request.model, request.graphLevel);
            if (!model_module) {
                std::cerr << "-dse-model expects resnet18, vgg16 or "
                             "mobilenet, got '"
                          << request.model << "'\n";
                return 1;
            }
        } else if (input_path.empty() || input_path == "-") {
            std::ostringstream buffer;
            buffer << std::cin.rdbuf();
            source = buffer.str();
        } else {
            std::ifstream file(input_path);
            if (!file) {
                std::cerr << "cannot open " << input_path << "\n";
                return 1;
            }
            std::ostringstream buffer;
            buffer << file.rdbuf();
            source = buffer.str();
        }

        Compiler compiler = request.model.empty()
                                ? Compiler::fromC(source, top)
                                : Compiler(std::move(model_module));
        pm.run(compiler.module());

        // Own the estimate cache here so its hit rate is reportable for
        // both DSE modes (optimizeFunctions would otherwise create an
        // internal one).
        EstimateCache estimate_cache;
        request.dse.applyCacheBounds(estimate_cache);
        bool any_dse = run_dse || run_dse_funcs || !request.model.empty();
        if (request.dse.crossPointCache && any_dse)
            request.dse.sharedEstimates = &estimate_cache;
        // The tool owns the cache the exploration uses, so snapshot
        // persistence happens here (engines and the Compiler skip it
        // when sharedEstimates is injected).
        if (request.dse.sharedEstimates &&
            !request.dse.cacheLoadPath.empty())
            loadEstimateCacheLogged(estimate_cache,
                                    request.dse.cacheLoadPath);
        auto report_tier = [](const char *name, const CacheStats &tier) {
            std::cerr << name << " " << tier.hits << " hits / "
                      << tier.lookups() << " lookups ("
                      << static_cast<int>(tier.hitRate() * 100) << "%), "
                      << tier.entries << " entries";
            if (tier.evictions != 0)
                std::cerr << ", " << tier.evictions << " evicted";
        };
        auto report_cache = [&] {
            if (!request.dse.sharedEstimates)
                return;
            std::cerr << "estimate cache: ";
            report_tier("func tier", estimate_cache.funcStats());
            if (request.dse.bandLevelCache) {
                CacheStats band_tier = estimate_cache.bandStats();
                std::cerr << "; ";
                report_tier("band tier", band_tier);
                if (request.dse.partitionAwareBandKeys)
                    std::cerr << " (" << band_tier.maskedHits
                              << " partition-masked)";
                if (request.dse.incrementalMaterialize) {
                    std::cerr << "; ";
                    report_tier("schedule tier",
                                estimate_cache.scheduleStats());
                }
            }
            CacheStats plan_tier = estimate_cache.planStats();
            if (plan_tier.entries != 0 || plan_tier.lookups() != 0) {
                std::cerr << "; ";
                report_tier("plan tier", plan_tier);
            }
            std::cerr << "\n";
        };

        size_t audit_checks = 0;
        size_t audit_violations = 0;
        if (run_dse) {
            auto result = compiler.optimize(request);
            if (!result) {
                std::cerr << "DSE found no feasible design\n";
                return 1;
            }
            std::cerr << "DSE materializations: "
                      << result->fullMaterializations << " full, "
                      << result->fastPathHits
                      << " fast-path composed; finalized module "
                      << (result->moduleReused ? "reused"
                                               : "re-materialized")
                      << ", QoR "
                      << (result->qorVerified ? "verified" : "MISMATCH")
                      << "\n";
            audit_checks += result->auditChecks;
            audit_violations += result->auditViolations;
            report_cache();
        }
        if (run_dse_funcs) {
            auto results = compiler.optimizeFunctions(request);
            bool any_feasible = false;
            for (const auto &r : results) {
                std::cerr << "DSE " << r.func << ": ";
                if (r.qor.feasible) {
                    std::cerr << "latency=" << r.qor.latency
                              << " DSP=" << r.qor.resources.dsp << " ("
                              << r.evaluations << " evaluations)\n";
                    any_feasible = true;
                } else {
                    std::cerr << "no feasible design\n";
                }
                audit_checks += r.auditChecks;
                audit_violations += r.auditViolations;
            }
            report_cache();
            if (!any_feasible) {
                std::cerr << "DSE found no feasible design for any "
                             "kernel function\n";
                return 1;
            }
        }
        if (!request.model.empty()) {
            auto result = compiler.optimizeModel(request);
            if (!result) {
                std::cerr << "whole-model DSE: no dataflow top with "
                             "stages to optimize\n";
                return 1;
            }
            for (const auto &stage : result->stages) {
                std::cerr << "stage " << stage.func << ": ";
                if (stage.kernel)
                    std::cerr << stage.frontier.size()
                              << " frontier points, chose #"
                              << stage.chosen << ", ";
                else
                    std::cerr << "fixed baseline, ";
                std::cerr << "latency=" << stage.qor.latency
                          << " DSP=" << stage.qor.resources.dsp << "\n";
            }
            if (!result->allocation.feasible) {
                std::cerr << "whole-model DSE: no composition fits "
                          << request.budget.name << "\n";
                return 1;
            }
            std::cerr << "allocation: bottleneck="
                      << result->allocation.bottleneck << " ("
                      << result->allocation.refinementSteps
                      << " refinement steps, "
                      << result->allocation.exchanges
                      << " exchanges); uniform-split bottleneck="
                      << (result->uniform.feasible
                              ? std::to_string(
                                    result->uniform.bottleneck)
                              : std::string("infeasible"))
                      << "\n";
            std::cerr << "composed QoR: latency="
                      << result->measured.latency
                      << " interval=" << result->measured.interval
                      << " DSP=" << result->measured.resources.dsp
                      << " LUT=" << result->measured.resources.lut
                      << " BRAM18K="
                      << result->measured.resources.bram18k
                      << " (prediction "
                      << (result->composedVerified ? "verified"
                                                   : "MISMATCH")
                      << ", module "
                      << (result->verified ? "verified" : "INVALID")
                      << ", " << result->evaluations
                      << " evaluations)\n";
            report_cache();
            if (!result->verified)
                return 1;
        }
        if (request.dse.auditMode && (run_dse || run_dse_funcs)) {
            std::cerr << "dse-audit: " << audit_checks << " checks, "
                      << audit_violations << " violations\n";
            if (audit_violations != 0)
                return 1;
        }
        if (request.dse.sharedEstimates &&
            !request.dse.cacheSavePath.empty())
            saveEstimateCacheLogged(estimate_cache,
                                    request.dse.cacheSavePath);

        auto errors = verify(compiler.module());
        for (const auto &error : errors)
            std::cerr << "verifier: " << error << "\n";
        if (!errors.empty())
            return 1;

        if (timing)
            std::cerr << pm.timingReport();
        if (estimate) {
            QoRResult qor = compiler.estimate();
            std::cerr << "QoR: latency=" << qor.latency
                      << " interval=" << qor.interval
                      << " DSP=" << qor.resources.dsp
                      << " LUT=" << qor.resources.lut
                      << " BRAM18K=" << qor.resources.bram18k << "\n";
        }
        std::cout << (emit_cpp ? compiler.emitCpp() : compiler.printIR());
    } catch (const FatalError &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
