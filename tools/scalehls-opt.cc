/**
 * @file
 * scalehls-opt: the command-line optimization driver of the paper's tool
 * trio (scalehls-clang | scalehls-opt | scalehls-translate). Reads HLS C
 * from a file or stdin, applies the requested passes in order and prints
 * the resulting IR (or a QoR report).
 *
 * Examples (the paper's Fig. 5 pipeline):
 *   scalehls-opt syrk.c -affine-loop-perfectization \
 *       -remove-variable-bound -affine-loop-order-opt \
 *       -affine-loop-tile=1,2,1 -loop-pipelining \
 *       -canonicalize -simplify-affine-if -affine-store-forward \
 *       -simplify-memref-access -array-partition -cse
 *   scalehls-opt gemm.c -dse -estimate
 */

#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "api/scalehls.h"
#include "model/dnn_dse.h"
#include "model/polybench.h"
#include "support/utils.h"

using namespace scalehls;

namespace {

void
usage()
{
    std::cerr
        << "usage: scalehls-opt [<input.c>|-] [passes...] [options]\n"
           "passes (applied in order):\n"
           "  -affine-loop-perfectization  -remove-variable-bound\n"
           "  -affine-loop-order-opt       -affine-loop-tile=<t0,t1,...>\n"
           "  -affine-loop-unroll=<f>      -affine-loop-merge\n"
           "  -loop-pipelining[=<II>]      -func-pipelining[=<II>]\n"
           "  -array-partition             -func-inline\n"
           "  -simplify-affine-if          -affine-store-forward\n"
           "  -simplify-memref-access      -canonicalize  -cse\n"
           "  -dse                         (automated DSE)\n"
           "  -dse-funcs                   (DSE every kernel function,\n"
           "                                explored concurrently)\n"
           "  -dse-model=<resnet18|vgg16|mobilenet>\n"
           "                               (whole-model graph-level DSE:\n"
           "                                lower the zoo model, explore\n"
           "                                every dataflow stage, compose\n"
           "                                one design under the global\n"
           "                                device budget; no C input)\n"
           "options:\n"
           "  -dse-budget=<xc7z020|vu9p-slr|dsp:lut:bram18k>\n"
           "                 device budget for every DSE mode (default\n"
           "                 xc7z020; custom triple in BRAM18K blocks)\n"
           "  -dse-graph-level=<1..7>  graph granularity for -dse-model\n"
           "                 (default 4)\n"
           "  -top=<name>    top function   -estimate   QoR report\n"
           "  -pass-timing   timing report  -emit-hlscpp  emit C++\n"
           "  -dse-threads=<n>  QoR evaluation workers (default: all\n"
           "                    cores; results independent of <n>)\n"
           "  -dse-batch=<n>    points proposed per DSE round (part of\n"
           "                    the deterministic trajectory; default 8)\n"
           "  -dse-seed=<n>     DSE random seed\n"
           "  -dse-cache=<0|1>  cross-point estimate cache (default 1;\n"
           "                    content-keyed, never changes results);\n"
           "                    hit-rate stats are printed to stderr\n"
           "  -dse-band-cache=<0|1>  band-level tier of the estimate\n"
           "                    cache: reuse per-band estimates between\n"
           "                    points differing only in another band\n"
           "                    (default 1; content-keyed, never changes\n"
           "                    results)\n"
           "  -dse-partition-keys=<0|1>  partition-aware band keys:\n"
           "                    mask layout dims a band's estimate never\n"
           "                    reads out of its digest, so retuning one\n"
           "                    band no longer invalidates the others'\n"
           "                    cached estimates (default 1)\n"
           "  -dse-incremental=<0|1>  band-incremental materialization:\n"
           "                    points whose bands all hit the schedule\n"
           "                    tier skip cleanup/partition/estimation\n"
           "                    entirely (default 1; validated, results\n"
           "                    bit-identical)\n"
           "  -dse-dataflow-fastpath=<0|1>  extend the band-incremental\n"
           "                    fast path to dataflow-top and\n"
           "                    alloc-carrying functions (DNN stages):\n"
           "                    stage-overlap interval composition and\n"
           "                    double-buffered channel memory are\n"
           "                    replayed from cached per-band entries\n"
           "                    (default 1; validated, bit-identical)\n"
           "  -dse-cache-cap=<n|f:b:s:p>  max entries per estimate-\n"
           "                    cache tier, uniform or per tier as\n"
           "                    func:band:sched:plan (coarse FIFO\n"
           "                    eviction; default 0 = unbounded) so\n"
           "                    long sweeps stay bounded\n"
           "  -cache-load=<path>  estimate-cache snapshot loaded before\n"
           "                    DSE (warm start; corrupt or version-\n"
           "                    mismatched files fall back to a cold\n"
           "                    start with a warning)\n"
           "  -cache-save=<path>  snapshot saved after DSE; both paths\n"
           "                    default to $SCALEHLS_CACHE_DIR/\n"
           "                    estimate_cache.shlsnap when that is\n"
           "                    set ('' disables)\n"
           "  -verify-each      verify the IR after every pass (always\n"
           "                    on in debug builds; SCALEHLS_VERIFY_EACH\n"
           "                    overrides either way)\n"
           "  -dse-audit[=<0|1>]  audit every DSE fast-path decision:\n"
           "                    overlay aliasing, overlay IR, band\n"
           "                    digest coherence and schedule-entry\n"
           "                    shape are re-derived from the IR; any\n"
           "                    finding is reported and exits nonzero\n"
           "                    (findings fall back to the slow path,\n"
           "                    so results stay correct regardless).\n"
           "                    SCALEHLS_DSE_AUDIT sets the default\n";
}

unsigned
parseUnsignedArg(const std::string &name, const std::string &value)
{
    // std::stoul alone would wrap "-1" to ULONG_MAX; require digits only.
    bool all_digits = !value.empty();
    for (char c : value)
        all_digits &= c >= '0' && c <= '9';
    if (all_digits) {
        try {
            unsigned long parsed = std::stoul(value);
            if (parsed <= std::numeric_limits<unsigned>::max())
                return static_cast<unsigned>(parsed);
        } catch (const std::exception &) {
        }
    }
    std::cerr << name << " expects an unsigned integer, got '" << value
              << "'\n";
    std::exit(1);
}

std::vector<int64_t>
parseIntList(const std::string &text)
{
    std::vector<int64_t> values;
    std::istringstream is(text);
    std::string token;
    while (std::getline(is, token, ','))
        values.push_back(std::stoll(token));
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }

    // Split args into input, options and the pass pipeline.
    std::string input_path;
    std::string top;
    bool estimate = false;
    bool timing = false;
    bool emit_cpp = false;
    bool run_dse = false;
    bool run_dse_funcs = false;
    std::string dse_model;
    int dse_graph_level = 4;
    ResourceBudget dse_budget = xc7z020();
    DSEOptions dse_options;
    DesignSpaceOptions space_options;
    PassManager pm;

    auto value_of = [](const std::string &arg) {
        auto pos = arg.find('=');
        return pos == std::string::npos ? std::string()
                                        : arg.substr(pos + 1);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value = value_of(arg);
        std::string name = arg.substr(0, arg.find('='));
        if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (name == "-top") {
            top = value;
        } else if (arg == "-estimate") {
            estimate = true;
        } else if (arg == "-pass-timing") {
            timing = true;
        } else if (arg == "-emit-hlscpp") {
            emit_cpp = true;
        } else if (arg == "-dse") {
            run_dse = true;
        } else if (arg == "-dse-funcs") {
            run_dse_funcs = true;
        } else if (name == "-dse-model") {
            dse_model = value;
        } else if (name == "-dse-graph-level") {
            dse_graph_level = static_cast<int>(
                parseUnsignedArg(name, value));
            if (dse_graph_level < 1 || dse_graph_level > 7) {
                std::cerr << "-dse-graph-level expects 1..7\n";
                return 1;
            }
        } else if (name == "-dse-budget") {
            auto parsed = parseResourceBudget(value);
            if (!parsed) {
                std::cerr << "-dse-budget expects xc7z020, vu9p-slr or "
                             "dsp:lut:bram18k, got '"
                          << value << "'\n";
                return 1;
            }
            dse_budget = *parsed;
        } else if (name == "-dse-threads") {
            dse_options.numThreads = parseUnsignedArg(name, value);
        } else if (name == "-dse-batch") {
            dse_options.batchSize = parseUnsignedArg(name, value);
        } else if (name == "-dse-seed") {
            dse_options.seed = parseUnsignedArg(name, value);
        } else if (name == "-dse-cache") {
            dse_options.crossPointCache =
                parseUnsignedArg(name, value) != 0;
        } else if (name == "-dse-band-cache") {
            dse_options.bandLevelCache =
                parseUnsignedArg(name, value) != 0;
        } else if (name == "-dse-partition-keys") {
            dse_options.partitionAwareBandKeys =
                parseUnsignedArg(name, value) != 0;
        } else if (name == "-dse-incremental") {
            dse_options.incrementalMaterialize =
                parseUnsignedArg(name, value) != 0;
        } else if (name == "-dse-cache-cap") {
            auto caps = parseEstimateCacheCaps(value);
            if (!caps) {
                std::cerr << "-dse-cache-cap expects <n> or "
                             "func:band:sched:plan, got '"
                          << value << "'\n";
                return 1;
            }
            dse_options.estimateCacheTierCaps = *caps;
        } else if (name == "-cache-load" || name == "--cache-load") {
            dse_options.cacheLoadPath = value;
        } else if (name == "-cache-save" || name == "--cache-save") {
            dse_options.cacheSavePath = value;
        } else if (name == "-dse-dataflow-fastpath") {
            space_options.dataflowFastPath =
                parseUnsignedArg(name, value) != 0;
        } else if (arg == "-verify-each") {
            pm.setVerifyEach(true);
        } else if (name == "-dse-audit") {
            dse_options.auditMode =
                value.empty() || parseUnsignedArg(name, value) != 0;
        } else if (name == "-affine-loop-perfectization") {
            pm.addPass(createLoopPerfectizationPass());
        } else if (name == "-remove-variable-bound") {
            pm.addPass(createRemoveVariableBoundPass());
        } else if (name == "-affine-loop-order-opt") {
            pm.addPass(createLoopOrderOptPass());
        } else if (name == "-affine-loop-tile") {
            pm.addPass(createLoopTilePass(parseIntList(value)));
        } else if (name == "-affine-loop-unroll") {
            pm.addPass(createLoopUnrollPass(
                value.empty() ? 2 : std::stoll(value)));
        } else if (name == "-affine-loop-merge") {
            pm.addPass(createLoopMergePass());
        } else if (name == "-loop-pipelining") {
            pm.addPass(createLoopPipeliningPass(
                value.empty() ? 1 : std::stoll(value)));
        } else if (name == "-func-pipelining") {
            pm.addPass(createFuncPipeliningPass(
                value.empty() ? 1 : std::stoll(value)));
        } else if (name == "-array-partition") {
            pm.addPass(createArrayPartitionPass());
        } else if (name == "-func-inline") {
            pm.addPass(createFuncInlinePass());
        } else if (name == "-simplify-affine-if") {
            pm.addPass(createSimplifyAffineIfPass());
        } else if (name == "-affine-store-forward") {
            pm.addPass(createAffineStoreForwardPass());
        } else if (name == "-simplify-memref-access") {
            pm.addPass(createSimplifyMemrefAccessPass());
        } else if (name == "-canonicalize") {
            pm.addPass(createCanonicalizePass());
        } else if (name == "-cse") {
            pm.addPass(createCSEPass());
        } else if (arg == "-" || (!arg.empty() && arg[0] != '-')) {
            input_path = arg;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
            return 1;
        }
    }

    try {
        if ((run_dse && run_dse_funcs) ||
            (!dse_model.empty() && (run_dse || run_dse_funcs))) {
            std::cerr << "-dse, -dse-funcs and -dse-model are mutually "
                         "exclusive\n";
            return 1;
        }

        // -dse-model builds its own module from the zoo; every other
        // mode parses HLS C from the input.
        std::string source;
        std::unique_ptr<Operation> model_module;
        if (!dse_model.empty()) {
            model_module = buildLoweredDNN(dse_model, dse_graph_level);
            if (!model_module) {
                std::cerr << "-dse-model expects resnet18, vgg16 or "
                             "mobilenet, got '"
                          << dse_model << "'\n";
                return 1;
            }
        } else if (input_path.empty() || input_path == "-") {
            std::ostringstream buffer;
            buffer << std::cin.rdbuf();
            source = buffer.str();
        } else {
            std::ifstream file(input_path);
            if (!file) {
                std::cerr << "cannot open " << input_path << "\n";
                return 1;
            }
            std::ostringstream buffer;
            buffer << file.rdbuf();
            source = buffer.str();
        }

        Compiler compiler = dse_model.empty()
                                ? Compiler::fromC(source, top)
                                : Compiler(std::move(model_module));
        pm.run(compiler.module());

        // Own the estimate cache here so its hit rate is reportable for
        // both DSE modes (optimizeFunctions would otherwise create an
        // internal one).
        EstimateCache estimate_cache;
        dse_options.applyCacheBounds(estimate_cache);
        bool any_dse = run_dse || run_dse_funcs || !dse_model.empty();
        if (dse_options.crossPointCache && any_dse)
            dse_options.sharedEstimates = &estimate_cache;
        // The tool owns the cache the exploration uses, so snapshot
        // persistence happens here (engines and the Compiler skip it
        // when sharedEstimates is injected).
        if (dse_options.sharedEstimates &&
            !dse_options.cacheLoadPath.empty())
            loadEstimateCacheLogged(estimate_cache,
                                    dse_options.cacheLoadPath);
        auto report_tier = [](const char *name, const CacheStats &tier) {
            std::cerr << name << " " << tier.hits << " hits / "
                      << tier.lookups() << " lookups ("
                      << static_cast<int>(tier.hitRate() * 100) << "%), "
                      << tier.entries << " entries";
            if (tier.evictions != 0)
                std::cerr << ", " << tier.evictions << " evicted";
        };
        auto report_cache = [&] {
            if (!dse_options.sharedEstimates)
                return;
            std::cerr << "estimate cache: ";
            report_tier("func tier", estimate_cache.funcStats());
            if (dse_options.bandLevelCache) {
                CacheStats band_tier = estimate_cache.bandStats();
                std::cerr << "; ";
                report_tier("band tier", band_tier);
                if (dse_options.partitionAwareBandKeys)
                    std::cerr << " (" << band_tier.maskedHits
                              << " partition-masked)";
                if (dse_options.incrementalMaterialize) {
                    std::cerr << "; ";
                    report_tier("schedule tier",
                                estimate_cache.scheduleStats());
                }
            }
            CacheStats plan_tier = estimate_cache.planStats();
            if (plan_tier.entries != 0 || plan_tier.lookups() != 0) {
                std::cerr << "; ";
                report_tier("plan tier", plan_tier);
            }
            std::cerr << "\n";
        };

        size_t audit_checks = 0;
        size_t audit_violations = 0;
        if (run_dse) {
            auto result = compiler.optimize(dse_budget, space_options,
                                            dse_options);
            if (!result) {
                std::cerr << "DSE found no feasible design\n";
                return 1;
            }
            std::cerr << "DSE materializations: "
                      << result->fullMaterializations << " full, "
                      << result->fastPathHits
                      << " fast-path composed; finalized module "
                      << (result->moduleReused ? "reused"
                                               : "re-materialized")
                      << ", QoR "
                      << (result->qorVerified ? "verified" : "MISMATCH")
                      << "\n";
            audit_checks += result->auditChecks;
            audit_violations += result->auditViolations;
            report_cache();
        }
        if (run_dse_funcs) {
            auto results = compiler.optimizeFunctions(
                dse_budget, space_options, dse_options);
            bool any_feasible = false;
            for (const auto &r : results) {
                std::cerr << "DSE " << r.func << ": ";
                if (r.qor.feasible) {
                    std::cerr << "latency=" << r.qor.latency
                              << " DSP=" << r.qor.resources.dsp << " ("
                              << r.evaluations << " evaluations)\n";
                    any_feasible = true;
                } else {
                    std::cerr << "no feasible design\n";
                }
                audit_checks += r.auditChecks;
                audit_violations += r.auditViolations;
            }
            report_cache();
            if (!any_feasible) {
                std::cerr << "DSE found no feasible design for any "
                             "kernel function\n";
                return 1;
            }
        }
        if (!dse_model.empty()) {
            auto result = compiler.optimizeModel(
                dse_budget, space_options, dse_options);
            if (!result) {
                std::cerr << "whole-model DSE: no dataflow top with "
                             "stages to optimize\n";
                return 1;
            }
            for (const auto &stage : result->stages) {
                std::cerr << "stage " << stage.func << ": ";
                if (stage.kernel)
                    std::cerr << stage.frontier.size()
                              << " frontier points, chose #"
                              << stage.chosen << ", ";
                else
                    std::cerr << "fixed baseline, ";
                std::cerr << "latency=" << stage.qor.latency
                          << " DSP=" << stage.qor.resources.dsp << "\n";
            }
            if (!result->allocation.feasible) {
                std::cerr << "whole-model DSE: no composition fits "
                          << dse_budget.name << "\n";
                return 1;
            }
            std::cerr << "allocation: bottleneck="
                      << result->allocation.bottleneck << " ("
                      << result->allocation.refinementSteps
                      << " refinement steps, "
                      << result->allocation.exchanges
                      << " exchanges); uniform-split bottleneck="
                      << (result->uniform.feasible
                              ? std::to_string(
                                    result->uniform.bottleneck)
                              : std::string("infeasible"))
                      << "\n";
            std::cerr << "composed QoR: latency="
                      << result->measured.latency
                      << " interval=" << result->measured.interval
                      << " DSP=" << result->measured.resources.dsp
                      << " LUT=" << result->measured.resources.lut
                      << " BRAM18K="
                      << result->measured.resources.bram18k
                      << " (prediction "
                      << (result->composedVerified ? "verified"
                                                   : "MISMATCH")
                      << ", module "
                      << (result->verified ? "verified" : "INVALID")
                      << ", " << result->evaluations
                      << " evaluations)\n";
            report_cache();
            if (!result->verified)
                return 1;
        }
        if (dse_options.auditMode && (run_dse || run_dse_funcs)) {
            std::cerr << "dse-audit: " << audit_checks << " checks, "
                      << audit_violations << " violations\n";
            if (audit_violations != 0)
                return 1;
        }
        if (dse_options.sharedEstimates &&
            !dse_options.cacheSavePath.empty())
            saveEstimateCacheLogged(estimate_cache,
                                    dse_options.cacheSavePath);

        auto errors = verify(compiler.module());
        for (const auto &error : errors)
            std::cerr << "verifier: " << error << "\n";
        if (!errors.empty())
            return 1;

        if (timing)
            std::cerr << pm.timingReport();
        if (estimate) {
            QoRResult qor = compiler.estimate();
            std::cerr << "QoR: latency=" << qor.latency
                      << " interval=" << qor.interval
                      << " DSP=" << qor.resources.dsp
                      << " LUT=" << qor.resources.lut
                      << " BRAM18K=" << qor.resources.bram18k << "\n";
        }
        std::cout << (emit_cpp ? compiler.emitCpp() : compiler.printIR());
    } catch (const FatalError &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
