#!/usr/bin/env bash
# Run the experiment/bench binaries and dump a JSON index of the results,
# or compare two distilled bench JSON files.
#
# Usage: tools/run_benches.sh [build-dir] [output-dir]
#        tools/run_benches.sh --compare old.json new.json
#   build-dir   where the bench binaries live (default: build)
#   output-dir  where per-bench logs + results.json land
#               (default: bench-results)
#   BENCHES     (env) space-separated subset of benches to run
#               (default: all). An entry may carry arguments after a
#               colon, e.g. "bench_estimator:--dnn"; commas separate
#               multiple arguments ("bench_estimator:--dnn,--dnn-full").
#
# Every bench's stdout+stderr goes to <output-dir>/<bench>.txt; the JSON
# index records exit codes and wall-clock seconds, plus any machine
# readable "JSON {...}" lines the bench itself emitted. The performance
# records CI tracks are additionally distilled into
# <output-dir>/BENCH_pr4.json (throughput, per-tier estimate-cache hit
# rates, materializations per point) and <output-dir>/BENCH_pr5.json
# (the DNN fast-path sweep) for artifact upload.
#
# --compare exits nonzero when any points-per-second record of new.json
# regresses more than 15% below old.json, any pinned hit-rate field
# drops, any materializations-per-point field RISES (the plan-first
# pipeline drives it toward zero; more IR built per point is a
# regression even when results stay identical), any *violations
# field RISES (the audit sweeps pin zero L3/L4 findings on healthy
# runs; a single new violation is a correctness bug, not noise), any
# *divergences field RISES (the smith differential corpus pins zero
# cross-path disagreements; one means two evaluation paths answered
# differently for the same design point), any
# *latency field RISES (the whole-model DSE results are deterministic,
# so a longer composed design is a real QoR regression), or any
# *utilization field DROPS (the allocator leaving budget on the table
# it previously spent means worse global allocation), or any
# warm_speedup field drops (the committed baseline pins the snapshot
# warm-start acceptance floor: a warm sweep must stay >= 2x cold). Only
# fields present in BOTH matched records are compared, so a committed
# baseline may carry just the deterministic fields (hit rates,
# materializations per point, audit violations) while
# artifact-vs-artifact comparisons also gate throughput.

set -u

if [ "${1:-}" = "--compare" ]; then
    if [ $# -ne 3 ]; then
        echo "usage: $0 --compare old.json new.json" >&2
        exit 2
    fi
    python3 - "$2" "$3" <<'EOF'
import json, sys

RATE_DROP = 0.15  # points/sec may regress at most 15%.

def records(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for section, recs in data.items():
        for rec in recs or []:
            key_fields = {k: v for k, v in rec.items()
                          if isinstance(v, (str, bool))}
            for k in ("threads", "kernels", "points", "reps"):
                if k in rec:
                    key_fields[k] = rec[k]
            key = (section, json.dumps(key_fields, sort_keys=True))
            out[key] = rec
    return out

old, new = records(sys.argv[1]), records(sys.argv[2])
failures = []
for key, old_rec in sorted(old.items()):
    new_rec = new.get(key)
    if new_rec is None:
        failures.append("missing record: %s %s" % key)
        continue
    for field, old_value in old_rec.items():
        if field not in new_rec:
            continue
        new_value = new_rec[field]
        if not isinstance(old_value, (int, float)) or isinstance(
                old_value, bool):
            continue
        if "warm_speedup" in field:
            # The snapshot warm-start speedup is a pinned floor (the
            # committed baseline carries the acceptance threshold): any
            # drop below it means persistence stopped paying for itself.
            if new_value < old_value - 1e-9:
                failures.append(
                    "%s %s: %s dropped %.2f -> %.2f (warm start "
                    "regressed)" % (key[0], key[1], field, old_value,
                                    new_value))
        elif "points_per_second" in field:
            if new_value < (1.0 - RATE_DROP) * old_value:
                failures.append(
                    "%s %s: %s regressed %.1f -> %.1f (>15%%)"
                    % (key[0], key[1], field, old_value, new_value))
        elif field.endswith("hit_rate"):
            if new_value < old_value - 1e-9:
                failures.append(
                    "%s %s: %s dropped %.3f -> %.3f"
                    % (key[0], key[1], field, old_value, new_value))
        elif "materializations_per_point" in field:
            if new_value > old_value + 1e-9:
                failures.append(
                    "%s %s: %s rose %.3f -> %.3f"
                    % (key[0], key[1], field, old_value, new_value))
        elif field.endswith("violations"):
            if new_value > old_value:
                failures.append(
                    "%s %s: %s rose %d -> %d (audit findings!)"
                    % (key[0], key[1], field, old_value, new_value))
        elif field.endswith("divergences"):
            # The smith corpus pins ZERO cross-path divergences: a
            # single one means two evaluation paths disagreed on a QoR
            # or broke a counter invariant — a correctness bug.
            if new_value > old_value:
                failures.append(
                    "%s %s: %s rose %d -> %d (differential failure!)"
                    % (key[0], key[1], field, old_value, new_value))
        elif field.endswith("latency"):
            if new_value > old_value:
                failures.append(
                    "%s %s: %s rose %d -> %d (composed QoR regression)"
                    % (key[0], key[1], field, old_value, new_value))
        elif field.endswith("utilization"):
            if new_value < old_value - 1e-9:
                failures.append(
                    "%s %s: %s dropped %.4f -> %.4f"
                    % (key[0], key[1], field, old_value, new_value))
for failure in failures:
    print("REGRESSION:", failure)
if failures:
    sys.exit(1)
print("compare: no regressions (%d records matched)" % len(old))
EOF
    exit $?
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
mkdir -p "$OUT_DIR"

DEFAULT_BENCHES="bench_parallel_dse bench_estimator bench_fig6 bench_fig7 \
bench_fig8 bench_table3 bench_table4 bench_table5 \
scalehls-smith:--corpus,100,--seed,1"
read -r -a BENCHES <<< "${BENCHES:-$DEFAULT_BENCHES}"

json="$OUT_DIR/results.json"
printf '{\n  "benches": [\n' > "$json"
first=1

for spec in "${BENCHES[@]}"; do
    bench="${spec%%:*}"
    args="${spec#"$bench"}"
    args="${args#:}"
    args="${args//,/ }"
    bin="$BUILD_DIR/$bench"
    log="$OUT_DIR/$bench.txt"
    if [ ! -x "$bin" ]; then
        echo "skip: $bench (not built)"
        continue
    fi
    echo "running $bench ${args:+($args) }..."
    start=$(date +%s.%N)
    # shellcheck disable=SC2086
    "$bin" $args > "$log" 2>&1
    code=$?
    end=$(date +%s.%N)
    secs=$(echo "$end $start" | awk '{printf "%.2f", $1 - $2}')

    [ $first -eq 0 ] && printf ',\n' >> "$json"
    first=0
    printf '    {"name": "%s", "exit_code": %d, "seconds": %s, "log": "%s"' \
        "$bench" "$code" "$secs" "$bench.txt" >> "$json"
    # Inline any JSON records the bench emitted.
    records=$(grep '^JSON ' "$log" | sed 's/^JSON //' | paste -sd, -)
    if [ -n "$records" ]; then
        printf ', "records": [%s]' "$records" >> "$json"
    fi
    printf '}' >> "$json"
done

printf '\n  ]\n}\n' >> "$json"
echo "wrote $json"

collect() {
    # collect <log> <bench-name-filter>
    [ -f "$1" ] || return 0
    grep '^JSON ' "$1" | sed 's/^JSON //' |
        grep "\"bench\":\"$2\"" | paste -sd, -
}

# Distill the PR 4 performance records (throughput, per-tier cache hit
# rates, materializations per point) into one machine-readable file for
# the CI artifact.
pr4="$OUT_DIR/BENCH_pr4.json"
dse_records=$(collect "$OUT_DIR/bench_parallel_dse.txt" "parallel_dse")
est_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator")
band_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_band_cache")
mat_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_materialize")
key_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_band_keys")
{
    printf '{\n'
    printf '  "parallel_dse": [%s],\n' "${dse_records}"
    printf '  "estimator_scaling": [%s],\n' "${est_records}"
    printf '  "band_cache": [%s],\n' "${band_records}"
    printf '  "incremental_materialize": [%s],\n' "${mat_records}"
    printf '  "partition_aware_keys": [%s]\n' "${key_records}"
    printf '}\n'
} > "$pr4"
echo "wrote $pr4"

# Distill the PR 5 DNN fast-path records (fast-path hit rate on DNN
# points, materializations per point, points/sec) for the dnn-bench job.
pr5="$OUT_DIR/BENCH_pr5.json"
dnn_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_dnn")
{
    printf '{\n'
    printf '  "dnn_fast_path": [%s]\n' "${dnn_records}"
    printf '}\n'
} > "$pr5"
echo "wrote $pr5"

# Distill the PR 6 plan-first probe records (full/overlay
# materializations per point, zero-clone composition, prediction
# mismatches, cross-band schedule sharing) for the probe compare gate.
pr6="$OUT_DIR/BENCH_pr6.json"
probe_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_probe")
{
    printf '{\n'
    printf '  "probe": [%s]\n' "${probe_records}"
    printf '}\n'
} > "$pr6"
echo "wrote $pr6"

# Distill the PR 7 audit-mode records (L3/L4 audit checks + violations
# and audit-on vs audit-off throughput on probe + DNN sweeps) for the
# zero-findings compare gate.
pr7="$OUT_DIR/BENCH_pr7.json"
audit_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_audit")
{
    printf '{\n'
    printf '  "audit": [%s]\n' "${audit_records}"
    printf '}\n'
} > "$pr7"
echo "wrote $pr7"

# Distill the PR 8 whole-model DSE records (composed end-to-end latency,
# bottleneck latency, DSP utilization, uniform-split comparison) for the
# deterministic-QoR compare gate.
pr8="$OUT_DIR/BENCH_pr8.json"
full_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_dnn_full")
{
    printf '{\n'
    printf '  "dnn_full": [%s]\n' "${full_records}"
    printf '}\n'
} > "$pr8"
echo "wrote $pr8"

# Distill the PR 9 snapshot-persistence records (cross-process warm
# start: warm speedup, zero warm materializations, load+replay
# bit-identity) for the warm-start compare gate.
pr9="$OUT_DIR/BENCH_pr9.json"
persist_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_persist")
{
    printf '{\n'
    printf '  "persist": [%s]\n' "${persist_records}"
    printf '}\n'
} > "$pr9"
echo "wrote $pr9"

# Distill the PR 10 differential-fuzzing records (seeded smith corpus:
# sample/point/evaluation counts, cross-path divergences, audit
# violations, corpus throughput) for the zero-divergence compare gate.
pr10="$OUT_DIR/BENCH_pr10.json"
smith_records=$(collect "$OUT_DIR/scalehls-smith.txt" "smith_corpus")
{
    printf '{\n'
    printf '  "smith_corpus": [%s]\n' "${smith_records}"
    printf '}\n'
} > "$pr10"
echo "wrote $pr10"
