#!/usr/bin/env bash
# Run the experiment/bench binaries and dump a JSON index of the results.
#
# Usage: tools/run_benches.sh [build-dir] [output-dir]
#   build-dir   where the bench binaries live (default: build)
#   output-dir  where per-bench logs + results.json land
#               (default: bench-results)
#   BENCHES     (env) space-separated subset of benches to run
#               (default: all)
#
# Every bench's stdout+stderr goes to <output-dir>/<bench>.txt; the JSON
# index records exit codes and wall-clock seconds, plus any machine
# readable "JSON {...}" lines the bench itself emitted. The performance
# records CI tracks (points/sec, per-tier estimate-cache hit rates,
# materializations per evaluated point) are additionally distilled into
# <output-dir>/BENCH_pr4.json for artifact upload.

set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
mkdir -p "$OUT_DIR"

DEFAULT_BENCHES="bench_parallel_dse bench_estimator bench_fig6 bench_fig7 \
bench_fig8 bench_table3 bench_table4 bench_table5"
read -r -a BENCHES <<< "${BENCHES:-$DEFAULT_BENCHES}"

json="$OUT_DIR/results.json"
printf '{\n  "benches": [\n' > "$json"
first=1

for bench in "${BENCHES[@]}"; do
    bin="$BUILD_DIR/$bench"
    log="$OUT_DIR/$bench.txt"
    if [ ! -x "$bin" ]; then
        echo "skip: $bench (not built)"
        continue
    fi
    echo "running $bench ..."
    start=$(date +%s.%N)
    "$bin" > "$log" 2>&1
    code=$?
    end=$(date +%s.%N)
    secs=$(echo "$end $start" | awk '{printf "%.2f", $1 - $2}')

    [ $first -eq 0 ] && printf ',\n' >> "$json"
    first=0
    printf '    {"name": "%s", "exit_code": %d, "seconds": %s, "log": "%s"' \
        "$bench" "$code" "$secs" "$bench.txt" >> "$json"
    # Inline any JSON records the bench emitted.
    records=$(grep '^JSON ' "$log" | sed 's/^JSON //' | paste -sd, -)
    if [ -n "$records" ]; then
        printf ', "records": [%s]' "$records" >> "$json"
    fi
    printf '}' >> "$json"
done

printf '\n  ]\n}\n' >> "$json"
echo "wrote $json"

# Distill the PR 4 performance records (throughput, per-tier cache hit
# rates, materializations per point) into one machine-readable file for
# the CI artifact.
pr4="$OUT_DIR/BENCH_pr4.json"
collect() {
    # collect <log> <bench-name-filter>
    [ -f "$1" ] || return 0
    grep '^JSON ' "$1" | sed 's/^JSON //' |
        grep "\"bench\":\"$2\"" | paste -sd, -
}
dse_records=$(collect "$OUT_DIR/bench_parallel_dse.txt" "parallel_dse")
est_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator")
band_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_band_cache")
mat_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_materialize")
key_records=$(collect "$OUT_DIR/bench_estimator.txt" "estimator_band_keys")
{
    printf '{\n'
    printf '  "parallel_dse": [%s],\n' "${dse_records}"
    printf '  "estimator_scaling": [%s],\n' "${est_records}"
    printf '  "band_cache": [%s],\n' "${band_records}"
    printf '  "incremental_materialize": [%s],\n' "${mat_records}"
    printf '  "partition_aware_keys": [%s]\n' "${key_records}"
    printf '}\n'
} > "$pr4"
echo "wrote $pr4"
