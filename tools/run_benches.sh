#!/usr/bin/env bash
# Run the experiment/bench binaries and dump a JSON index of the results.
#
# Usage: tools/run_benches.sh [build-dir] [output-dir]
#   build-dir   where the bench binaries live (default: build)
#   output-dir  where per-bench logs + results.json land
#               (default: bench-results)
#
# Every bench's stdout+stderr goes to <output-dir>/<bench>.txt; the JSON
# index records exit codes and wall-clock seconds, plus any machine
# readable "JSON {...}" lines the bench itself emitted (currently
# bench_parallel_dse's per-thread-count scaling records).

set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
mkdir -p "$OUT_DIR"

BENCHES=(bench_parallel_dse bench_estimator bench_fig6 bench_fig7 bench_fig8
         bench_table3 bench_table4 bench_table5)

json="$OUT_DIR/results.json"
printf '{\n  "benches": [\n' > "$json"
first=1

for bench in "${BENCHES[@]}"; do
    bin="$BUILD_DIR/$bench"
    log="$OUT_DIR/$bench.txt"
    if [ ! -x "$bin" ]; then
        echo "skip: $bench (not built)"
        continue
    fi
    echo "running $bench ..."
    start=$(date +%s.%N)
    "$bin" > "$log" 2>&1
    code=$?
    end=$(date +%s.%N)
    secs=$(echo "$end $start" | awk '{printf "%.2f", $1 - $2}')

    [ $first -eq 0 ] && printf ',\n' >> "$json"
    first=0
    printf '    {"name": "%s", "exit_code": %d, "seconds": %s, "log": "%s"' \
        "$bench" "$code" "$secs" "$bench.txt" >> "$json"
    # Inline any JSON records the bench emitted.
    records=$(grep '^JSON ' "$log" | sed 's/^JSON //' | paste -sd, -)
    if [ -n "$records" ]; then
        printf ', "records": [%s]' "$records" >> "$json"
    fi
    printf '}' >> "$json"
done

printf '\n  ]\n}\n' >> "$json"
echo "wrote $json"
