/**
 * @file
 * scalehls-translate: the emission back-end of the paper's tool trio.
 * Reads HLS C, optionally applies the default optimization pipeline, and
 * emits synthesizable HLS C++ (-emit-hlscpp).
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "api/scalehls.h"
#include "support/utils.h"

using namespace scalehls;

int
main(int argc, char **argv)
{
    std::string input_path;
    std::string top;
    bool optimize = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-emit-hlscpp") {
            // Accepted for command-line compatibility (the default).
        } else if (arg.rfind("-top=", 0) == 0) {
            top = arg.substr(5);
        } else if (arg == "-optimize") {
            optimize = true;
        } else if (arg == "-h" || arg == "--help") {
            std::cerr << "usage: scalehls-translate [<input.c>|-] "
                         "[-emit-hlscpp] [-optimize] [-top=<name>]\n";
            return 0;
        } else if (arg == "-" || (!arg.empty() && arg[0] != '-')) {
            input_path = arg;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 1;
        }
    }

    try {
        std::string source;
        if (input_path.empty() || input_path == "-") {
            std::ostringstream buffer;
            buffer << std::cin.rdbuf();
            source = buffer.str();
        } else {
            std::ifstream file(input_path);
            if (!file) {
                std::cerr << "cannot open " << input_path << "\n";
                return 1;
            }
            std::ostringstream buffer;
            buffer << file.rdbuf();
            source = buffer.str();
        }
        Compiler compiler = Compiler::fromC(source, top);
        ExploreRequest request;
        if (optimize && !compiler.optimize(request)) {
            std::cerr << "DSE found no feasible design\n";
            return 1;
        }
        std::cout << compiler.emitCpp();
    } catch (const FatalError &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
