/**
 * @file
 * scalehls-smith: seeded random-kernel generator + four-path
 * differential oracle. Every sample is generated from a pure
 * (config, seed) pair, L1/L2-verified at birth, and its design points
 * are evaluated through plan-first, schedule-composed, band-cached and
 * uncached-reference evaluation at 1 and N threads; ANY QoR,
 * counter-invariant or L3/L4 audit divergence fails the run and dumps a
 * JSON reproducer that `--replay` re-executes exactly.
 *
 * The exploration knobs come in through the same unified ExploreRequest
 * flag surface as scalehls-opt (-dse-threads, -dse-audit, the space
 * bounds), so smith probes the design spaces the real tools build.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/explore_request.h"
#include "smith/generator.h"
#include "smith/oracle.h"
#include "support/utils.h"

using namespace scalehls;

namespace {

void
usage()
{
    std::cout
        << "scalehls-smith: differential fuzzer for the DSE stack\n\n"
        << "Usage: scalehls-smith [mode] [options]\n\n"
        << "Modes (default: --corpus):\n"
        << "  --corpus <n>      generate and check n samples (default 20)\n"
        << "  --time-box <sec>  generate until the wall-clock box expires\n"
        << "  --replay <file>   re-execute every reproducer line in file\n"
        << "  --self-test       corrupt a PLAN entry, require it caught,\n"
        << "                    dump + replay the reproducer\n\n"
        << "Options:\n"
        << "  --seed <n>        base corpus seed (default 1)\n"
        << "  --points <n>      design points per sample (default 6)\n"
        << "  --out <file>      reproducer sink (default "
           "smith-reproducers.jsonl)\n"
        << "  --max-bands <n>   generator band cap (default 3)\n"
        << "  --max-depth <n>   generator nest-depth cap (default 3)\n"
        << "  --no-calls        disable Escaping (call) samples\n"
        << "  --no-dataflow     never mark dataflow tops\n"
        << "  --no-directives   pristine samples only\n"
        << "\nShared explore flags (same parser as scalehls-opt; smith "
           "uses\nthe space bounds, -dse-threads and -dse-audit):\n"
        << exploreFlagUsage();
}

/** "--flag=value" or "--flag value" (advances @p i). */
bool
valueArg(int argc, char **argv, int &i, const std::string &name,
         std::string *value)
{
    std::string arg = argv[i];
    if (arg == name) {
        if (i + 1 >= argc)
            fatal(name + " expects a value");
        *value = argv[++i];
        return true;
    }
    if (arg.rfind(name + "=", 0) == 0) {
        *value = arg.substr(name.size() + 1);
        return true;
    }
    return false;
}

uint64_t
parseCount(const std::string &name, const std::string &value)
{
    try {
        size_t pos = 0;
        uint64_t n = std::stoull(value, &pos);
        if (pos == value.size())
            return n;
    } catch (const std::exception &) {
    }
    fatal(name + " expects an unsigned integer, got '" + value + "'");
}

/** One reproducer line is "reproduced" when the recorded failure shows
 * up again: a divergence for ordinary records, the caught corruption
 * for self-test records. */
bool
reproduced(const SmithOracleResult &result, bool corrupt_plan)
{
    if (!result.divergences.empty())
        return true;
    return corrupt_plan && result.corruptionCaught;
}

int
replayFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open reproducer file: " << path << "\n";
        return 1;
    }
    std::string line;
    size_t records = 0, ok = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++records;
        std::string report;
        SmithOracleResult result;
        if (!replayReproducer(line, &report, &result)) {
            std::cerr << report;
            continue;
        }
        std::cout << report;
        bool corrupt = line.find("\"corrupt_plan\":true") !=
                       std::string::npos;
        if (reproduced(result, corrupt)) {
            ++ok;
            std::cout << "record " << records << ": reproduced\n";
        } else {
            std::cout << "record " << records << ": did NOT reproduce\n";
        }
    }
    std::cout << "JSON {\"bench\":\"smith_replay\",\"records\":" << records
              << ",\"reproduced\":" << ok << "}" << std::endl;
    if (records == 0) {
        std::cerr << "no reproducer records in " << path << "\n";
        return 1;
    }
    return ok == records ? 0 : 1;
}

int
selfTest(const SmithGenConfig &gen, SmithOracleConfig oracle,
         uint64_t base_seed, const std::string &out_path)
{
    oracle.corruptPlan = true;
    // Not every sample is plan-eligible (calls, pipelined tops); scan
    // seeds until the poisoned entry is actually consulted.
    for (uint64_t attempt = 0; attempt < 200; ++attempt) {
        uint64_t seed = base_seed * 1000003ull + attempt;
        SmithSample sample = generateSmithSample(gen, seed);
        SmithOracleResult result = runSmithOracle(sample, oracle);
        if (!result.corruptionApplicable)
            continue;

        std::cout << "self-test seed " << seed << " shape "
                  << sample.shape << "\n";
        if (!result.corruptionCaught || !result.divergences.empty()) {
            std::cerr << "self-test FAILED: corruption caught="
                      << (result.corruptionCaught ? "yes" : "no")
                      << ", divergences=" << result.divergences.size()
                      << "\n";
            for (const auto &d : result.divergences)
                std::cerr << "  [" << d.path << "] " << d.detail << "\n";
            return 1;
        }

        // Dump the catch as a reproducer record and prove --replay
        // re-executes it exactly (regeneration + re-detection).
        SmithDivergence record{"self-test@plan-first@1t",
                               "corrupted PLAN entry caught", {}};
        std::string json = reproducerJson(sample, oracle, record);
        {
            std::ofstream out(out_path, std::ios::app);
            if (!out) {
                std::cerr << "cannot write " << out_path << "\n";
                return 1;
            }
            out << json << "\n";
        }
        std::string report;
        SmithOracleResult replayed;
        if (!replayReproducer(json, &report, &replayed)) {
            std::cerr << "self-test replay failed:\n" << report;
            return 1;
        }
        std::cout << report;
        if (!replayed.corruptionCaught) {
            std::cerr << "self-test FAILED: replay did not re-detect "
                         "the corruption\n";
            return 1;
        }
        std::cout << "self-test PASSED (reproducer in " << out_path
                  << ")\n";
        std::cout << "JSON {\"bench\":\"smith_self_test\",\"ok\":1,"
                     "\"seed\":"
                  << seed << "}" << std::endl;
        return 0;
    }
    std::cerr << "self-test FAILED: no plan-eligible sample in 200 "
                 "seeds\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t corpus = 20;
    uint64_t base_seed = 1;
    double time_box = 0;
    std::string replay_path;
    std::string out_path = "smith-reproducers.jsonl";
    bool self_test = false;
    int points_per_sample = 6;

    SmithGenConfig gen;
    ExploreRequest request;
    request.applyEnvDefaults();

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            std::string value;
            if (arg == "-h" || arg == "--help") {
                usage();
                return 0;
            }
            std::string explore_error;
            if (parseExploreFlag(request, arg, &explore_error)) {
                if (!explore_error.empty()) {
                    std::cerr << explore_error << "\n";
                    return 1;
                }
                continue;
            }
            if (valueArg(argc, argv, i, "--corpus", &value))
                corpus = parseCount("--corpus", value);
            else if (valueArg(argc, argv, i, "--seed", &value))
                base_seed = parseCount("--seed", value);
            else if (valueArg(argc, argv, i, "--points", &value))
                points_per_sample = static_cast<int>(
                    parseCount("--points", value));
            else if (valueArg(argc, argv, i, "--time-box", &value))
                time_box = static_cast<double>(
                    parseCount("--time-box", value));
            else if (valueArg(argc, argv, i, "--replay", &value))
                replay_path = value;
            else if (valueArg(argc, argv, i, "--out", &value))
                out_path = value;
            else if (valueArg(argc, argv, i, "--max-bands", &value))
                gen.maxBands = static_cast<int>(
                    parseCount("--max-bands", value));
            else if (valueArg(argc, argv, i, "--max-depth", &value))
                gen.maxDepth = static_cast<int>(
                    parseCount("--max-depth", value));
            else if (arg == "--self-test")
                self_test = true;
            else if (arg == "--no-calls")
                gen.allowCalls = false;
            else if (arg == "--no-dataflow")
                gen.allowDataflowTop = false;
            else if (arg == "--no-directives")
                gen.allowDirectives = false;
            else
                fatal("unknown option '" + arg + "' (try --help)");
        }
    } catch (const FatalError &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }

    if (auto invalid = request.validate()) {
        std::cerr << *invalid << "\n";
        return 1;
    }

    SmithOracleConfig oracle;
    oracle.space = request.space;
    oracle.audit = true; // Audits ARE the point of a fuzzing run.
    oracle.threads =
        request.dse.numThreads != 0 ? request.dse.numThreads : 4;
    oracle.pointsPerSample = points_per_sample;

    if (!replay_path.empty())
        return replayFile(replay_path);
    if (self_test)
        return selfTest(gen, oracle, base_seed, out_path);

    // Corpus mode: --corpus n samples, or open-ended inside --time-box.
    auto start = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    size_t samples = 0, points = 0, evaluations = 0;
    size_t divergences = 0, audit_violations = 0;
    std::map<std::string, size_t> shapes;
    std::ofstream repro_out;

    for (uint64_t i = 0;; ++i) {
        if (time_box > 0) {
            if (elapsed() >= time_box)
                break;
        } else if (i >= corpus) {
            break;
        }
        uint64_t seed = base_seed * 1000003ull + i;
        try {
            SmithSample sample = generateSmithSample(gen, seed);
            shapes[sample.shape.substr(0, sample.shape.find('+'))]++;
            SmithOracleResult result = runSmithOracle(sample, oracle);
            ++samples;
            points += result.points;
            evaluations += result.evaluations;
            if (!result.divergences.empty()) {
                divergences += result.divergences.size();
                for (const auto &d : result.divergences) {
                    std::cerr << "DIVERGENCE seed=" << seed << " ["
                              << d.path << "] " << d.detail << "\n";
                    if (d.path.rfind("audit@", 0) == 0)
                        ++audit_violations;
                }
                if (!repro_out.is_open())
                    repro_out.open(out_path, std::ios::app);
                repro_out << reproducerJson(sample, oracle,
                                            result.divergences.front())
                          << "\n";
            }
        } catch (const FatalError &error) {
            // A generator bug (invalid IR at birth) is as fatal as a
            // divergence: report and count it, keep fuzzing.
            std::cerr << "GENERATOR FAILURE seed=" << seed << ": "
                      << error.what() << "\n";
            ++divergences;
        }
    }

    double seconds = elapsed();
    std::cout << samples << " samples, " << points << " points, "
              << evaluations << " evaluations in " << seconds
              << "s; " << divergences << " divergence(s), "
              << audit_violations << " audit violation(s)\n";
    std::cout << "shape mix:";
    for (const auto &entry : shapes)
        std::cout << " " << entry.first << "=" << entry.second;
    std::cout << "\n";
    std::ostringstream bench;
    bench << "JSON {\"bench\":\"smith_corpus\",\"samples\":" << samples
          << ",\"points\":" << points
          << ",\"evaluations\":" << evaluations
          << ",\"divergences\":" << divergences
          << ",\"audit_violations\":" << audit_violations
          << ",\"seconds\":" << seconds << ",\"evals_per_sec\":"
          << (seconds > 0 ? static_cast<double>(evaluations) / seconds
                          : 0)
          << "}";
    std::cout << bench.str() << std::endl;
    if (divergences != 0)
        std::cerr << "reproducers appended to " << out_path << "\n";
    return divergences == 0 ? 0 : 1;
}
