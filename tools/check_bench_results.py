#!/usr/bin/env python3
"""Fail (exit 1) when any bench recorded in a run_benches.sh results.json
exited nonzero. Shared by the CI bench jobs so the results.json schema
knowledge lives next to run_benches.sh, which owns the format."""

import json
import sys

path = sys.argv[1] if len(sys.argv) > 1 else "bench-results/results.json"
with open(path) as f:
    results = json.load(f)
bad = [b["name"] for b in results["benches"] if b["exit_code"] != 0]
if bad:
    sys.exit("bench self-checks failed: %s" % ", ".join(bad))
print("all bench self-checks passed (%d benches)" % len(results["benches"]))
