#include "estimate/qor_estimator.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "analysis/loop_analysis.h"
#include "estimate/estimate_cache.h"
#include "support/thread_pool.h"
#include "support/utils.h"

namespace scalehls {

namespace {

/** Union-find over access indices for bank-conflict grouping. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }
    size_t
    find(size_t x)
    {
        while (parent_[x] != x)
            x = parent_[x] = parent_[parent_[x]];
        return x;
    }
    void
    merge(size_t a, size_t b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::vector<size_t> parent_;
};

/** Could accesses @p a and @p b hit the same physical bank? Per-dimension
 * reasoning over the partition plan; any unknown subscript difference is a
 * potential conflict. */
bool
possiblySameBank(const MemAccess &a, const MemAccess &b,
                 const PartitionPlan &plan,
                 const std::vector<int64_t> &shape)
{
    if (!a.normalized || !b.normalized)
        return true;
    unsigned rank = shape.size();
    if (a.indices.size() != rank || b.indices.size() != rank)
        return true;
    for (unsigned d = 0; d < rank; ++d) {
        auto diff = constantDiff(a.indices[d], b.indices[d]);
        if (!diff)
            continue; // Unknown relation along this dim: no separation,
                      // but another dim may still prove distinct banks.
        int64_t c = *diff;
        switch (plan.kinds[d]) {
          case PartitionKind::None:
            break; // One bank along this dim; can't separate.
          case PartitionKind::Cyclic:
            if (euclidMod(c, plan.factors[d]) != 0)
                return false; // Provably different banks.
            break;
          case PartitionKind::Block: {
            int64_t block = ceilDiv(shape[d], plan.factors[d]);
            if (c != 0 && std::abs(c) >= block)
                return false;
            break;
          }
        }
    }
    return true;
}

/** Deduplicate reads with identical subscripts (they may share a port,
 * paper Section V-E1). */
std::vector<MemAccess>
dedupeReads(const std::vector<MemAccess> &group)
{
    std::vector<MemAccess> out;
    std::set<std::string> seen;
    for (const MemAccess &access : group) {
        if (!access.normalized) {
            out.push_back(access);
            continue;
        }
        if (seen.insert(subscriptKey(access)).second)
            out.push_back(access);
    }
    return out;
}

int64_t
groupPressure(const std::vector<MemAccess> &accesses,
              const PartitionPlan &plan,
              const std::vector<int64_t> &shape, int ports)
{
    if (accesses.empty() || ports <= 0)
        return 0;
    UnionFind uf(accesses.size());
    for (size_t i = 0; i < accesses.size(); ++i)
        for (size_t j = i + 1; j < accesses.size(); ++j)
            if (possiblySameBank(accesses[i], accesses[j], plan, shape))
                uf.merge(i, j);
    std::map<size_t, int64_t> sizes;
    for (size_t i = 0; i < accesses.size(); ++i)
        ++sizes[uf.find(i)];
    int64_t pressure = 0;
    for (const auto &[root, count] : sizes)
        pressure = std::max(pressure, ceilDiv(count, ports));
    return pressure;
}

} // namespace

int64_t
memoryPortII(Operation *scope, const std::vector<Value *> &band_ivs)
{
    int64_t ii = 1;
    auto accesses = collectAccesses(scope, band_ivs);
    for (auto &[memref, group] : groupByMemRef(accesses)) {
        Type t = memref->type();
        if (!t.isMemRef())
            continue;
        PartitionPlan plan = decodePartitionMap(t.layout(), t.shape());
        MemKind kind = t.memorySpace();

        std::vector<MemAccess> reads;
        std::vector<MemAccess> writes;
        for (const MemAccess &access : group)
            (access.isWrite ? writes : reads).push_back(access);
        reads = dedupeReads(reads);

        if (kind == MemKind::BRAM_S2P || kind == MemKind::DRAM) {
            // Independent read and write ports.
            ii = std::max(ii, groupPressure(reads, plan, t.shape(),
                                            memReadPorts(kind)));
            ii = std::max(ii, groupPressure(writes, plan, t.shape(),
                                            memWritePorts(kind)));
        } else {
            // Shared ports (1P: one, T2P: two).
            std::vector<MemAccess> all = reads;
            all.insert(all.end(), writes.begin(), writes.end());
            int ports = kind == MemKind::BRAM_T2P ? 2 : 1;
            ii = std::max(ii, groupPressure(all, plan, t.shape(), ports));
        }
    }
    return ii;
}

int64_t
recurrencePathLatency(Operation *read, Operation *store)
{
    // Longest def-use path (in cycles) from the read to the store.
    std::map<Operation *, int64_t> memo;
    std::function<int64_t(Operation *)> longest =
        [&](Operation *op) -> int64_t {
        if (op == store)
            return opProfile(op).latency;
        auto it = memo.find(op);
        if (it != memo.end())
            return it->second;
        memo[op] = 0; // Cycle guard.
        int64_t best = 0;
        for (Value *result : op->results()) {
            for (Operation *user : result->users()) {
                int64_t path = longest(user);
                if (path > 0)
                    best = std::max(best, path);
            }
        }
        int64_t total = best > 0 ? best + opProfile(op).latency : 0;
        memo[op] = total;
        return total;
    };
    if (read == store)
        return opProfile(store).latency + 1;
    return longest(read);
}

QoREstimator::BlockEstimate
QoREstimator::estimateBlock(Block *block, EstimateContext &ctx)
{
    BlockEstimate result;
    std::map<Operation *, int64_t> finish;
    // Conservative memory ordering state.
    std::map<Value *, std::vector<Operation *>> last_accesses;
    std::map<Value *, Operation *> last_write;

    for (auto &op_ptr : block->ops()) {
        Operation *op = op_ptr.get();
        int64_t start = 0;
        // Define-use dependencies within the block (values defined in
        // enclosing blocks are ready at cycle 0).
        std::function<void(Operation *)> scanOperands =
            [&](Operation *nested) {
                for (Value *operand : nested->operands()) {
                    Operation *def =
                        operand ? operand->definingOp() : nullptr;
                    if (def && finish.count(def))
                        start = std::max(start, finish[def]);
                }
            };
        op->walk(scanOperands);

        // Memory dependencies: a write waits for all prior accesses of the
        // memref; any access waits for the last prior write.
        std::vector<std::pair<Value *, bool>> touched;
        op->walk([&](Operation *nested) {
            if (isMemoryAccess(nested))
                touched.push_back(
                    {accessedMemRef(nested), isMemoryWrite(nested)});
        });
        for (auto [memref, is_write] : touched) {
            if (auto it = last_write.find(memref); it != last_write.end())
                start = std::max(start, finish[it->second]);
            if (is_write)
                for (Operation *prior : last_accesses[memref])
                    start = std::max(start, finish[prior]);
        }

        int64_t latency = opLatency(op, ctx);
        if (latency < 0) {
            result.feasible = false;
            latency = 1;
        }
        finish[op] = start + latency;
        result.latency = std::max(result.latency, finish[op]);

        for (auto [memref, is_write] : touched) {
            last_accesses[memref].push_back(op);
            if (is_write)
                last_write[memref] = op;
        }
    }
    return result;
}

int64_t
QoREstimator::opLatency(Operation *op, EstimateContext &ctx)
{
    if (op->is(ops::AffineFor) && op->parentOp() &&
        op->parentOp()->is(ops::Func)) {
        // Top-level band: route through the per-band core so the latency
        // walk and the resource walk share one (possibly cached) band
        // computation.
        const BandEstimate &band = estimateBand(op, ctx);
        return band.feasible ? band.latency : -1;
    }
    if (op->is(ops::AffineFor) || op->is(ops::ScfFor)) {
        LoopEstimate est = estimateLoop(op, ctx);
        return est.feasible ? est.latency : -1;
    }
    if (op->is(ops::AffineIf) || op->is(ops::ScfIf)) {
        int64_t latency = 0;
        bool feasible = true;
        for (unsigned i = 0; i < op->numRegions(); ++i) {
            if (op->region(i).empty())
                continue;
            BlockEstimate est = estimateBlock(&op->region(i).front(), ctx);
            latency = std::max(latency, est.latency);
            feasible &= est.feasible;
        }
        return feasible ? latency + 1 : -1;
    }
    if (op->is(ops::Call)) {
        Operation *callee = lookupFunc(module_, op->attr(kCallee)
                                                    .getString());
        if (!callee)
            return 1;
        QoRResult est = calleeEstimate(callee, ctx);
        return est.feasible ? est.latency + 1 : -1;
    }
    if (op->is(ops::MemCopy)) {
        Value *src = op->operand(0);
        return src->type().isMemRef() ? src->type().numElements() : 1;
    }
    return opProfile(op).latency;
}

int64_t
QoREstimator::minLoopII(const std::vector<Operation *> &band,
                        Operation *pipelined)
{
    int64_t ii = 1;
    for (const Recurrence &rec : findRecurrences(band)) {
        int64_t path = recurrencePathLatency(rec.read, rec.store);
        if (path == 0)
            path = opProfile(rec.store).latency + 1;
        ii = std::max(ii, ceilDiv(path, std::max<int64_t>(
                                            1, rec.flatDistance)));
    }
    ii = std::max(ii, memoryPortII(pipelined, bandIVs(band)));
    return ii;
}

QoREstimator::LoopEstimate
QoREstimator::estimateLoop(Operation *loop, EstimateContext &ctx)
{
    LoopEstimate result;
    if (loop->is(ops::ScfFor)) {
        // Unraised loop: unknown trip count.
        result.feasible = false;
        result.latency = 1;
        result.interval = 1;
        return result;
    }

    // Descend through a flattened perfect chain to the pipelined leaf.
    std::vector<Operation *> chain = {loop};
    Operation *cur = loop;
    while (getLoopDirective(cur).flatten) {
        Block *body = AffineForOp(cur).body();
        if (body->size() != 1 || !body->front()->is(ops::AffineFor))
            break;
        cur = body->front();
        chain.push_back(cur);
    }
    Operation *leaf = chain.back();
    LoopDirective leaf_directive = getLoopDirective(leaf);

    if (leaf_directive.pipeline) {
        int64_t flat_trip = 1;
        for (Operation *member : chain) {
            auto trip = getTripCount(AffineForOp(member));
            if (!trip) {
                result.feasible = false;
                trip = 1;
            }
            flat_trip *= *trip;
        }
        BlockEstimate body = estimateBlock(AffineForOp(leaf).body(), ctx);
        result.feasible &= body.feasible;
        int64_t ii =
            std::max(leaf_directive.targetII, minLoopII(chain, leaf));
        // depth + II * (trip - 1), plus small pipeline control overhead.
        result.latency = body.latency + ii * (flat_trip - 1) + 2;
        result.interval = ii * flat_trip;
        return result;
    }

    // Sequential loop: nested structure handled by block recursion.
    AffineForOp for_op(loop);
    auto trip = getTripCount(for_op);
    if (!trip) {
        result.feasible = false;
        trip = 1;
    }
    BlockEstimate body = estimateBlock(for_op.body(), ctx);
    result.feasible &= body.feasible;
    result.latency = *trip * (body.latency + 1) + 2;
    result.interval = result.latency;
    return result;
}

void
QoREstimator::accountCompute(Operation *scope, BandEstimate &out)
{
    // Pipelined leaf loops inside scope share operators across II
    // cycles: instances = ceil(count / II).
    auto countsIn = [&](Operation *leaf) {
        std::map<std::string, int64_t> counts;
        leaf->walk([&](Operation *op) {
            if (op != leaf && isComputeOp(op)) {
                ++counts[op->name()];
                out.profiles.emplace(op->name(), opProfile(op));
            }
        });
        return counts;
    };

    std::vector<Operation *> pipelined;
    scope->walk([&](Operation *op) {
        if (op->is(ops::AffineFor) && getLoopDirective(op).pipeline)
            pipelined.push_back(op);
    });
    for (Operation *leaf : pipelined) {
        // Rebuild the flattened chain for the II.
        std::vector<Operation *> chain = {leaf};
        for (Operation *parent = leaf->parentOp();
             isa(parent, ops::AffineFor) &&
             getLoopDirective(parent).flatten;
             parent = parent->parentOp())
            chain.insert(chain.begin(), parent);
        int64_t ii = std::max(getLoopDirective(leaf).targetII,
                              minLoopII(chain, leaf));
        for (const auto &[kind, count] : countsIn(leaf)) {
            const OpProfile &profile = out.profiles[kind];
            int64_t instances = ceilDiv(count, ii);
            out.pipelinedCompute.dsp += instances * profile.dsp;
            out.pipelinedCompute.lut += instances * profile.lut;
        }
    }

    // Remaining sequential compute ops: counts only — instance sharing
    // for these spans all bands and happens in funcResources.
    scope->walk([&](Operation *op) {
        if (!isComputeOp(op))
            return;
        for (Operation *p = op->parentOp(); p; p = p->parentOp())
            if (p->is(ops::AffineFor) && getLoopDirective(p).pipeline)
                return; // Counted above.
        ++out.sequentialOps[op->name()];
        out.profiles.emplace(op->name(), opProfile(op));
    });

    // Control logic counts.
    scope->walk([&](Operation *op) {
        out.loops += isLoop(op) ? 1 : 0;
        out.calls += op->is(ops::Call) ? 1 : 0;
    });
}

const BandEstimate &
QoREstimator::estimateBand(Operation *band_root, EstimateContext &ctx)
{
    auto it = ctx.bands.find(band_root);
    if (it != ctx.bands.end())
        return it->second;

    // Band tier of the shared cache: content-keyed by the band digest
    // (partition-aware by default — irrelevant layout dims masked), so a
    // hit is value-identical to the computation below.
    std::string key;
    if (shared_ && band_cache_) {
        if (auto digest =
                bandEstimateDigestInfo(band_root, masked_band_keys_)) {
            key = digest->digest;
            if (auto cached =
                    shared_->lookupBand(key, digest->partitionMasked))
                return ctx.bands.emplace(band_root, *cached)
                    .first->second;
        }
    }

    BandEstimate band;
    LoopEstimate loop = estimateLoop(band_root, ctx);
    band.latency = loop.latency;
    band.interval = loop.interval;
    band.feasible = loop.feasible;
    std::vector<Operation *> nest = getLoopNest(band_root);
    band.memPortII = memoryPortII(band_root, bandIVs(nest));
    accountCompute(band_root, band);

    if (!key.empty())
        shared_->insertBand(key, band);
    return ctx.bands.emplace(band_root, std::move(band)).first->second;
}

void
BandResourceMerge::add(const BandEstimate &band)
{
    usage_ += band.pipelinedCompute;
    for (const auto &[kind, count] : band.sequentialOps)
        rest_[kind] += count;
    for (const auto &[kind, profile] : band.profiles)
        profiles_.emplace(kind, profile);
    loops_ += band.loops;
    calls_ += band.calls;
}

ResourceUsage
BandResourceMerge::finish(bool func_pipelined, int64_t target_ii) const
{
    ResourceUsage usage = usage_;
    // Sequential ops share one instance per kind ACROSS bands (or
    // ceil(count / targetII) instances under function pipelining).
    for (const auto &[kind, count] : rest_) {
        auto it = profiles_.find(kind);
        const OpProfile profile =
            it != profiles_.end() ? it->second : OpProfile{};
        int64_t instances =
            func_pipelined ? ceilDiv(count, target_ii) : 1;
        usage.dsp += instances * profile.dsp;
        usage.lut += instances * profile.lut;
    }
    // Control logic overheads.
    usage.lut += 200 + 50 * loops_ + 100 * calls_;
    return usage;
}

ResourceUsage
QoREstimator::funcResources(Operation *func, EstimateContext &ctx)
{
    ResourceUsage usage;
    FuncDirective fd = getFuncDirective(func);

    // Memories: local allocations only. Interface arrays of the top
    // function are external ports in Vivado HLS (the testbench owns the
    // storage), so they do not consume on-chip memory.
    std::vector<Type> memory_types;
    func->walk([&](Operation *op) {
        if (op->is(ops::Alloc))
            memory_types.push_back(op->result(0)->type());
    });
    for (const Type &t : memory_types) {
        ResourceUsage mem = memrefResource(t);
        if (fd.dataflow) {
            // Dataflow channels are double buffered (paper Fig. 4):
            // ping-pong buffering duplicates the storage (BRAM banks,
            // memory bits), not the LUT fabric around it.
            mem.bram18k *= 2;
            mem.memoryBits *= 2;
        }
        usage += mem;
    }

    // Compute resources, composed from per-band accounts (served from
    // the band cache when warm) plus a direct account of the non-band
    // glue ops, merged in body order so per-kind profile selection is
    // deterministic. The merge itself (pipelined contributions final per
    // band, sequential ops shared across bands, control-logic overhead)
    // lives in BandResourceMerge so the incremental fast path composes
    // with the identical arithmetic.
    BandResourceMerge merge;
    for (auto &op : funcBody(func)->ops()) {
        if (op->is(ops::AffineFor)) {
            merge.add(estimateBand(op.get(), ctx));
        } else {
            BandEstimate glue;
            accountCompute(op.get(), glue);
            merge.add(glue);
        }
    }
    usage += merge.finish(fd.pipeline, fd.targetII);

    // Sub-function instances (one hardware module per call site).
    func->walk([&](Operation *op) {
        if (!op->is(ops::Call))
            return;
        Operation *callee =
            lookupFunc(module_, op->attr(kCallee).getString());
        if (callee)
            usage += calleeEstimate(callee, ctx).resources;
    });
    return usage;
}

std::vector<Operation *>
collectDistinctCallees(Operation *func, Operation *module)
{
    std::vector<Operation *> callees;
    std::set<Operation *> seen;
    func->walk([&](Operation *op) {
        if (!op->is(ops::Call))
            return;
        Operation *callee =
            lookupFunc(module, op->attr(kCallee).getString());
        if (callee && seen.insert(callee).second)
            callees.push_back(callee);
    });
    return callees;
}

void
QoREstimator::ensureDigests(Operation *func)
{
    if (!shared_ || digests_.digest.count(func))
        return;
    // Digest only func's reachable set: a multi-kernel module clone
    // should not pay for serializing unrelated kernels on every
    // evaluated point.
    addFuncEstimateDigests(func, module_, digests_);
}

std::string
QoREstimator::sharedKeyOf(Operation *func) const
{
    if (!shared_ || digests_.cyclic.count(func))
        return {};
    auto it = digests_.digest.find(func);
    if (it == digests_.digest.end())
        return {}; // Function added after digesting: skip the cache.
    return EstimateCache::keyFor(funcName(func), it->second);
}

QoRResult
QoREstimator::calleeEstimate(Operation *callee, EstimateContext &ctx)
{
    auto it = ctx.memo.find(callee);
    if (it != ctx.memo.end())
        return it->second;
    if (ctx.active.count(callee)) {
        // Call cycle: not analyzable. The placeholder's latency is a
        // dummy — callers key off feasible=false and must propagate
        // infeasibility (the evaluator maps it to kInfeasibleQoR), never
        // trust the placeholder numbers.
        return QoRResult{1, 1, {}, false};
    }
    ctx.active.insert(callee);
    QoRResult result = estimateFuncImpl(callee, ctx);
    ctx.active.erase(callee);
    ctx.memo.emplace(callee, result);
    return result;
}

void
QoREstimator::prefetchCallees(Operation *func, EstimateContext &ctx)
{
    if (!pool_ || pool_->size() <= 1)
        return;
    std::vector<Operation *> callees;
    for (Operation *callee : collectDistinctCallees(func, module_))
        if (!ctx.memo.count(callee) && !ctx.active.count(callee))
            callees.push_back(callee);
    if (callees.size() < 2)
        return; // Nothing to overlap.

    // Estimate the callees concurrently, each on its own context seeded
    // with the parent call path (so a cycle through the parent is still
    // caught) and the parent's completed results (so shared transitive
    // sub-callees are not re-walked per sibling). The IR is read-only
    // during estimation and the shared cache is thread-safe;
    // per-function estimation is pure, so the joined results — merged in
    // callee order, first writer wins — are bit-identical to the
    // sequential path.
    std::vector<EstimateContext> children(callees.size());
    std::vector<QoRResult> results(callees.size());
    for (size_t i = 0; i < callees.size(); ++i) {
        children[i].active = ctx.active;
        children[i].active.insert(callees[i]);
        children[i].memo = ctx.memo;
    }
    pool_->parallelFor(callees.size(), [&](size_t i) {
        results[i] = estimateFuncImpl(callees[i], children[i]);
    });
    for (size_t i = 0; i < callees.size(); ++i) {
        ctx.memo.emplace(callees[i], results[i]);
        for (const auto &[func_done, result_done] : children[i].memo)
            ctx.memo.emplace(func_done, result_done);
    }
}

QoRResult
QoREstimator::estimateFuncImpl(Operation *func, EstimateContext &ctx)
{
    assert(isa(func, ops::Func));

    std::string key = sharedKeyOf(func);
    if (!key.empty()) {
        if (auto cached = shared_->lookup(key))
            return *cached;
    }

    // Fan the not-yet-known callees out before the sequential
    // latency/interval composition walks the body (the walk then joins
    // on memoized results).
    prefetchCallees(func, ctx);

    Block *body = funcBody(func);
    FuncDirective fd = getFuncDirective(func);
    QoRResult result;

    if (fd.dataflow) {
        // Stages execute overlapped across frames: the interval is the
        // slowest stage; a single frame still pays the summed latency.
        int64_t total = 0;
        int64_t max_stage = 1;
        bool feasible = true;
        for (auto &op : body->ops()) {
            int64_t latency = opLatency(op.get(), ctx);
            if (latency < 0) {
                feasible = false;
                latency = 1;
            }
            if (op->is(ops::Call) || isLoop(op.get()))
                max_stage = std::max(max_stage, latency);
            total += latency;
        }
        result.latency = total + 2;
        result.interval = max_stage;
        result.feasible = feasible;
    } else if (fd.pipeline) {
        BlockEstimate est = estimateBlock(body, ctx);
        result.latency = est.latency + 2;
        result.interval =
            std::max(fd.targetII, memoryPortII(func, {}));
        result.feasible = est.feasible;
    } else {
        BlockEstimate est = estimateBlock(body, ctx);
        result.latency = est.latency + 2;
        result.interval = result.latency;
        result.feasible = est.feasible;
    }

    result.resources = funcResources(func, ctx);
    if (!key.empty())
        shared_->insert(key, result);
    return result;
}

QoRResult
QoREstimator::estimateFunc(Operation *func)
{
    auto it = cache_.find(func);
    if (it != cache_.end())
        return it->second;

    ensureDigests(func);
    EstimateContext ctx;
    ctx.active.insert(func);
    QoRResult result = estimateFuncImpl(func, ctx);

    // Expose this run's band estimates (empty when the function tier hit
    // — the walk that fills them was skipped entirely).
    last_bands_ = std::move(ctx.bands);

    cache_.emplace(func, result);
    // Adopt the callee results completed along the way.
    for (const auto &[callee, callee_result] : ctx.memo)
        cache_.emplace(callee, callee_result);
    return result;
}

QoRResult
QoREstimator::estimateModule()
{
    Operation *top = getTopFunc(module_);
    assert(top && "module has no functions");
    return estimateFunc(top);
}

namespace {

PartitionPlan
trivialPlan(unsigned rank)
{
    PartitionPlan plan;
    plan.kinds.assign(rank, PartitionKind::None);
    plan.factors.assign(rank, 1);
    return plan;
}

/** What the slow path's applied-then-decoded plan looks like: trivial
 * merges are never applied (the pristine layout — empty on fast-path
 * workloads — decodes trivial), non-trivial ones round-trip through the
 * layout-map codec, which e.g. renormalizes block factors. */
PartitionPlan
canonicalPlan(const PartitionPlan &plan, const std::vector<int64_t> &shape)
{
    return decodePartitionMap(buildPartitionMap(plan, shape), shape);
}

} // namespace

std::optional<QoRResult>
composeScheduledQoR(const ScheduledFunction &function)
{
    const std::vector<ScheduledBand> &bands = function.bands;

    // The function's owned local buffers and their phase-1 kept/dead
    // verdicts. Entries carry the FINAL access pattern of digest-equal
    // bands, so any disagreement with the prediction (an entry touching
    // a buffer cleanup should have erased, or no entry reading a buffer
    // predicted kept — the creating points' cleanup behaved differently)
    // means the composition cannot be trusted: fall back.
    std::map<Value *, bool> owned_kept;
    for (const ScheduledFunction::OwnedAlloc &alloc : function.allocs)
        owned_kept.emplace(alloc.memref, alloc.kept);
    std::set<Value *> read_buffers;

    // Re-derive the function-wide partition plans from the entries'
    // per-band contributions — the exact analyzeFunc/mergedPlans rule:
    // bands in body order, strictly-greater factor wins a dim, the first
    // writer keeps the kind on ties. The flat scope contributes nothing
    // on fast-path-eligible functions (no accesses outside bands).
    std::map<Value *, PartitionPlan> merged;
    for (const ScheduledBand &band : bands) {
        if (!band.entry || !band.externals)
            return std::nullopt;
        for (const auto &m : band.entry->memrefs) {
            if (m.extId >= band.externals->size())
                return std::nullopt;
            Value *v = (*band.externals)[m.extId];
            if (!v || !v->type().isMemRef())
                return std::nullopt;
            if (auto it = owned_kept.find(v); it != owned_kept.end()) {
                if (!it->second)
                    return std::nullopt; // Entry touches an erased buffer.
                if (m.read)
                    read_buffers.insert(v);
            }
            unsigned rank = v->type().rank();
            if (m.relevant.size() != rank ||
                m.contribution.factors.size() != rank ||
                m.assumed.factors.size() != rank)
                return std::nullopt;
            auto [it, inserted] = merged.try_emplace(v, PartitionPlan());
            PartitionPlan &plan = it->second;
            if (inserted)
                plan = trivialPlan(rank);
            for (unsigned d = 0; d < rank; ++d) {
                if (m.contribution.factors[d] > plan.factors[d]) {
                    plan.factors[d] = m.contribution.factors[d];
                    plan.kinds[d] = m.contribution.kinds[d];
                }
            }
        }
    }
    for (const auto &[buffer, kept] : owned_kept)
        if (kept && !read_buffers.count(buffer))
            return std::nullopt; // No entry reads a kept buffer.

    // Validate: an entry's estimate transfers only if the layout it was
    // computed under agrees with the would-be merged layout on every dim
    // whose partitioning the band's estimate actually reads.
    for (const ScheduledBand &band : bands) {
        for (const auto &m : band.entry->memrefs) {
            Value *v = (*band.externals)[m.extId];
            PartitionPlan final_plan =
                canonicalPlan(merged.at(v), v->type().shape());
            for (unsigned d = 0; d < m.relevant.size(); ++d) {
                if (!m.relevant[d])
                    continue;
                if (final_plan.kinds[d] != m.assumed.kinds[d] ||
                    final_plan.factors[d] != m.assumed.factors[d])
                    return std::nullopt;
            }
        }
    }

    QoRResult result;
    bool feasible = true;
    if (function.dataflow) {
        // Replay estimateFuncImpl's dataflow composition: stages execute
        // overlapped across frames — the interval is the slowest stage,
        // a single frame pays the summed latency. Allocs and constants
        // in the body are latency-free, so only the bands contribute.
        int64_t total = 0;
        int64_t max_stage = 1;
        for (const ScheduledBand &band : bands) {
            int64_t latency = band.entry->estimate.latency;
            if (!band.entry->estimate.feasible) {
                feasible = false;
                latency = 1;
            }
            total += latency;
            max_stage = std::max(max_stage, latency);
        }
        result.latency = total + 2;
        result.interval = max_stage;
        result.feasible = feasible;
    } else {
        // Replay estimateBlock over the function body: constants and
        // allocs finish at cycle 0, so only the memory-dependence chain
        // between bands (a write waits for all prior accesses of the
        // memref; any access waits for the last prior write) schedules
        // them.
        int64_t max_finish = 0;
        std::map<Value *, int64_t> last_write;
        std::map<Value *, std::vector<int64_t>> accesses;
        for (const ScheduledBand &band : bands) {
            int64_t start = 0;
            for (const auto &m : band.entry->memrefs) {
                if (!m.read && !m.write)
                    continue;
                Value *v = (*band.externals)[m.extId];
                if (auto it = last_write.find(v); it != last_write.end())
                    start = std::max(start, it->second);
                if (m.write)
                    for (int64_t finish : accesses[v])
                        start = std::max(start, finish);
            }
            int64_t latency = band.entry->estimate.latency;
            if (!band.entry->estimate.feasible) {
                // opLatency's infeasible marker: latency 1 in the
                // schedule, feasibility propagated.
                feasible = false;
                latency = 1;
            }
            int64_t finish = start + latency;
            max_finish = std::max(max_finish, finish);
            for (const auto &m : band.entry->memrefs) {
                if (!m.read && !m.write)
                    continue;
                Value *v = (*band.externals)[m.extId];
                accesses[v].push_back(finish);
                if (m.write)
                    last_write[v] = finish;
            }
        }
        result.latency = max_finish + 2;
        result.interval = result.latency;
        result.feasible = feasible;
    }

    // The operator-sharing merge — the identical arithmetic
    // funcResources runs, minus the callee terms an eligible function
    // cannot have.
    BandResourceMerge resources;
    for (const ScheduledBand &band : bands)
        resources.add(band.entry->estimate);
    result.resources = resources.finish(false, 1);

    // The kept-buffer memory account funcResources reads off the final
    // allocs: each surviving buffer under the re-derived merged plan
    // (the exact type applyArrayPartition would leave — non-trivial
    // plans round-trip through the layout codec, trivial ones leave the
    // phase-1 type untouched), double buffered under a dataflow top
    // (ping-pong channels duplicate storage, not LUT fabric).
    for (const ScheduledFunction::OwnedAlloc &alloc : function.allocs) {
        if (!alloc.kept)
            continue;
        Type type = alloc.memref->type();
        if (auto it = merged.find(alloc.memref);
            it != merged.end() && !it->second.isTrivial())
            type = type.withLayout(
                buildPartitionMap(it->second, type.shape()));
        ResourceUsage mem = memrefResource(type);
        if (function.dataflow) {
            mem.bram18k *= 2;
            mem.memoryBits *= 2;
        }
        result.resources += mem;
    }
    return result;
}

std::optional<BandScheduleEntry>
buildBandScheduleEntry(Operation *band_root, const BandEstimate &estimate,
                       const std::vector<Value *> &externals)
{
    BandScheduleEntry entry;
    entry.estimate = estimate;

    // Touched memrefs exactly as estimateBlock's function-body walk sees
    // them (read/write presence drives the dependence replay).
    std::map<Value *, std::pair<bool, bool>> touched;
    band_root->walk([&](Operation *op) {
        if (!isMemoryAccess(op))
            return;
        auto &flags = touched[accessedMemRef(op)];
        (isMemoryWrite(op) ? flags.second : flags.first) = true;
    });

    // This band's partition contribution, exactly as analyzeFunc
    // computes it (computePartitionPlan reads subscripts and shape only,
    // so running it post-partition reproduces the pre-partition plan).
    auto nest = getLoopNest(band_root);
    auto band_accesses = collectAccesses(band_root, bandIVs(nest));
    std::map<Value *, PartitionPlan> contribution;
    for (auto &[memref, group] : groupByMemRef(band_accesses))
        contribution[memref] = computePartitionPlan(memref, group);

    auto relevance = partitionRelevantDims(band_root);

    std::set<Value *> memrefs;
    for (const auto &[memref, flags] : touched)
        memrefs.insert(memref);
    for (const auto &[memref, plan] : contribution)
        memrefs.insert(memref);

    for (Value *memref : memrefs) {
        if (!memref->type().isMemRef())
            return std::nullopt;
        auto position = std::find(externals.begin(), externals.end(),
                                  memref);
        if (position == externals.end())
            return std::nullopt; // Not replayable from the phase-1 key.
        unsigned rank = memref->type().rank();

        BandScheduleEntry::MemrefInfo info;
        info.extId =
            static_cast<unsigned>(position - externals.begin());
        if (auto it = touched.find(memref); it != touched.end()) {
            info.read = it->second.first;
            info.write = it->second.second;
        }
        if (auto it = relevance.find(memref);
            it != relevance.end() && it->second.size() == rank)
            info.relevant = it->second;
        else
            info.relevant.assign(rank, false);
        if (auto it = contribution.find(memref);
            it != contribution.end() &&
            it->second.factors.size() == rank)
            info.contribution = it->second;
        else
            info.contribution = trivialPlan(rank);
        info.assumed = decodePartitionMap(memref->type().layout(),
                                          memref->type().shape());
        entry.memrefs.push_back(std::move(info));
    }
    return entry;
}

int64_t
dynamicOpCount(Operation *func, Operation *module)
{
    std::function<int64_t(Block *)> countBlock = [&](Block *block) {
        int64_t total = 0;
        for (auto &op : block->ops()) {
            if (isComputeOp(op.get())) {
                ++total;
            } else if (op->is(ops::AffineFor)) {
                AffineForOp for_op(op.get());
                int64_t trip = getTripCount(for_op).value_or(1);
                total += trip * countBlock(for_op.body());
            } else if (op->is(ops::AffineIf) || op->is(ops::ScfIf)) {
                int64_t branch = 0;
                for (unsigned i = 0; i < op->numRegions(); ++i)
                    if (!op->region(i).empty())
                        branch = std::max(
                            branch, countBlock(&op->region(i).front()));
                total += branch;
            } else if (op->is(ops::Call) && module) {
                Operation *callee =
                    lookupFunc(module, op->attr(kCallee).getString());
                if (callee)
                    total += dynamicOpCount(callee, module);
            }
        }
        return total;
    };
    return countBlock(funcBody(func));
}

} // namespace scalehls
