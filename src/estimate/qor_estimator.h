/**
 * @file
 * The analytical QoR estimator (paper Section V-E1): ALAP-style critical
 * path scheduling of each block, memory ports as non-shareable resources
 * (identical-address reads excepted), define-use plus memory dependence
 * edges, pipelined/flattened loop latency composition, dataflow interval
 * computation, and resource accounting with II-driven operator sharing.
 */

#ifndef SCALEHLS_ESTIMATE_QOR_ESTIMATOR_H
#define SCALEHLS_ESTIMATE_QOR_ESTIMATOR_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/buffer_analysis.h"
#include "analysis/memory_analysis.h"
#include "estimate/resource_model.h"

namespace scalehls {

class EstimateCache;
class ThreadPool;

/** Canonical estimate digests of a set of functions (implemented in
 * estimate_cache.cc; EstimateCache itself lives in estimate_cache.h).
 *
 * A function's digest covers exactly what the QoR estimator reads: the
 * op tree (names, attributes including the hlscpp directives, operand
 * wiring, result/argument types with partition layouts) plus the digests
 * of its transitive callees. The hlscpp.top_func marker is excluded — it
 * selects which function a module-level estimate starts from but does
 * not change any function's own estimate, and the per-kernel DSE flow
 * marks different functions top in otherwise identical clones.
 *
 * Call cycles are folded into a fixed marker, which makes the digests of
 * the functions involved depend on the traversal entry point rather than
 * on content alone; such functions land in `cyclic` and must not be
 * shared through the cache (they are infeasible to estimate anyway). */
struct EstimateDigests
{
    std::map<Operation *, std::string> digest;
    /** Functions whose digest folded a cycle marker (directly or through
     * a callee): content does not fully determine their digest. */
    std::set<Operation *> cyclic;
};

/** Digest @p func and its transitive callees into @p out (functions
 * already present are kept). Digesting only the reachable set keeps the
 * DSE hot path from serializing unrelated functions of a multi-kernel
 * module on every evaluated point. */
void addFuncEstimateDigests(Operation *func, Operation *module,
                            EstimateDigests &out);

/** Digests of every function in @p module. */
EstimateDigests moduleEstimateDigests(Operation *module);

/** The distinct functions called (directly, at any nesting depth) from
 * @p func, in call-site appearance order. Shared by digesting, callee
 * prefetching, and any other pass that must see the same callee set —
 * keep call resolution in one place so they cannot diverge. */
std::vector<Operation *> collectDistinctCallees(Operation *func,
                                                Operation *module);

/** A band digest plus the context the incremental-materialization fast
 * path needs to interpret cache entries keyed by it. */
struct BandDigestInfo
{
    std::string digest;
    /** True when at least one NON-TRIVIALLY partitioned layout dim was
     * masked out of the digest — a hit under this key would have missed
     * under the partition-sensitive (PR 3) keying. */
    bool partitionMasked = false;
    /** Every value defined outside the band, in serializer-id order:
     * digest-equal bands assign identical ids, so an id recorded against
     * one band instance resolves to the corresponding value of any
     * other. */
    std::vector<Value *> externals;
};

/** Canonical estimate digest of one top-level loop band: the band's op
 * tree (structure, directives, operand wiring, types) plus, for every
 * value defined OUTSIDE the band, its type and enough of its definition
 * (constant value / alloc / argument) to make the digest
 * content-determined. Two bands with equal digests are guaranteed to
 * estimate identically, even across different functions.
 *
 * With @p mask_partitions set (the default), an external memref's layout
 * is digested PER DIMENSION and only along dims the band's estimate can
 * actually read (partitionRelevantDims): repartitioning an array along a
 * dim the band never separates banks on — the typical effect of retuning
 * a DIFFERENT band that shares the array — no longer changes this band's
 * key, so its cached estimate survives. With it clear, the full type
 * string (partition-sensitive, PR 3 behavior) is digested instead.
 *
 * Returns nullopt when the band is not content-determined from the
 * serializer's point of view — it contains a func.call (the estimate
 * would depend on callee bodies) or references an external value with an
 * unrecognized defining op — in which case the band must not be shared
 * through the cache.
 *
 * @p ownership (optional) folds each external local buffer's ownership
 * note (kept/dead, see AllocOwnershipInfo::digestNote) into the digest.
 * Phase-1 (schedule-tier) digests of alloc-carrying functions need this:
 * whether the write-only-buffer cleanup erases a buffer — and with it
 * the band's stores — depends on the buffer's users in OTHER bands,
 * which the band's own subtree cannot see. */
std::optional<BandDigestInfo> bandEstimateDigestInfo(
    Operation *band_root, bool mask_partitions = true,
    const AllocOwnershipInfo *ownership = nullptr);

/** Digest-only convenience wrapper over bandEstimateDigestInfo. */
std::optional<std::string> bandEstimateDigest(
    Operation *band_root, bool mask_partitions = true);

/** The reusable half of a band's PLAN key (plan-first evaluation): the
 * digest state of the PRISTINE band's serialization — including
 * ownership notes, which the zero-IR consumer cannot re-validate — plus
 * the pristine external-value table. Computed once per band at planner
 * construction; bandPlanKey() then extends the snapshot with a concrete
 * BandChoice in O(choice) per evaluated point, no IR walk. */
struct BandPlanSeed
{
    uint64_t laneA = 0;
    uint64_t laneB = 0;
    /** The pristine band's externals in first-reference order. Phase-1
     * external ids are translated onto this table through
     * BandPlanOutcome::extMap. */
    std::vector<Value *> externals;
};

/** Seed the plan key of @p band_root (a PRISTINE top-level band).
 * Returns nullopt when the band is not content-determined (same rule as
 * bandEstimateDigestInfo) — such bands cannot be planned. */
std::optional<BandPlanSeed> bandPlanSeed(
    Operation *band_root, const AllocOwnershipInfo *ownership);

/** The full plan key of one (pristine band, BandChoice) pair: the seed
 * extended with the per-band structural-transform parameters. Two equal
 * keys denote band variants whose phase-1 content is provably identical
 * — the transforms are deterministic functions of (pristine subtree,
 * choice). */
std::string bandPlanKey(const BandPlanSeed &seed,
                        bool loop_perfectization,
                        bool remove_variable_bound,
                        const std::vector<unsigned> &perm,
                        const std::vector<int64_t> &tiles,
                        int64_t target_ii);

/** Self-contained estimate of one top-level loop band (the unit of the
 * band-level cache tier). Latency/interval/feasibility come from the
 * band's loop composition; the resource side is kept DECOMPOSED — the
 * pipelined-leaf contributions are final, but sequential op counts and
 * per-kind profiles are merged at function level, because sequential
 * operator sharing (one instance per kind) spans all bands of a
 * function and is not a per-band quantity. */
struct BandEstimate
{
    int64_t latency = 0;
    int64_t interval = 0;
    bool feasible = true;
    /** Min II the band's memory accesses impose (port pressure over the
     * band's induction variables). Today's sequential/dataflow
     * composition reads only latency + the resource account, but cache
     * entries deliberately stay self-contained — interval and port
     * demand are what any future band-overlapping composition (or an
     * external consumer of lookupBand) needs, and recomputing them later
     * would require the IR the cache exists to avoid re-walking. */
    int64_t memPortII = 1;
    /** DSP/LUT of pipelined leaves inside the band (shared under each
     * leaf's achieved II; final, summable across bands). */
    ResourceUsage pipelinedCompute;
    /** Per-kind counts of compute ops outside pipelined leaves; the
     * function composition applies instance sharing across bands. */
    std::map<std::string, int64_t> sequentialOps;
    /** First-seen profile per op kind inside the band (pre-order). */
    std::map<std::string, OpProfile> profiles;
    /** Loop / call counts feeding the control-logic LUT overhead. */
    int64_t loops = 0;
    int64_t calls = 0;
};

/** One band's cached phase-2 outcome for the band-incremental
 * materialization fast path, keyed by the band's PHASE-1 digest (the
 * content right after the per-band structural transforms, BEFORE the
 * function-wide cleanup pipeline and array partition ran). The cleanup
 * passes are band-local on fast-path-eligible functions, so the final
 * (post-cleanup) band content — and with it this entry's estimate and
 * partition contribution — is a pure function of the phase-1 digest. The
 * one cross-band coupling, the globally merged array-partition plan, is
 * captured by `assumed` and re-validated against the would-be merged
 * plan at every use, so a replayed QoR is bit-identical to what the
 * skipped slow path would have produced. */
struct BandScheduleEntry
{
    /** The band's final estimate (as computed on the fully materialized
     * module of the point that created this entry). */
    BandEstimate estimate;

    /** One record per memref the band's FINAL content accesses. */
    struct MemrefInfo
    {
        /** The memref's id in the phase-1 digest's external-value
         * numbering (resolved per point via BandDigestInfo::externals). */
        unsigned extId = 0;
        /** Whether the band reads / writes the memref — replays the
         * function-level memory-dependence scheduling across bands. */
        bool read = false;
        bool write = false;
        /** Per-dim partition relevance of the band's final content. */
        std::vector<bool> relevant;
        /** The band's own per-scope partition plan (its contribution to
         * the function-wide max-factor merge). */
        PartitionPlan contribution;
        /** The final merged plan the estimate was computed under —
         * compared on relevant dims only at replay time. */
        PartitionPlan assumed;
    };
    std::vector<MemrefInfo> memrefs;

    /** Provenance label ("func#bandIndex") of the materialization that
     * built the entry. Purely statistical: a consumer passing its own
     * origin to EstimateCache::lookupSchedule counts hits against
     * entries born elsewhere (the crossBandHits stat — e.g. 3mm's
     * symmetric stages sharing one entry). Never part of the key and
     * never affects the replayed QoR. */
    std::string origin;
};

/** A band of the point under evaluation, resolved against its cached
 * schedule entry: `externals` is the CURRENT materialization's id-to-
 * value table (BandDigestInfo::externals of the phase-1 digest). */
struct ScheduledBand
{
    const BandScheduleEntry *entry = nullptr;
    const std::vector<Value *> *externals = nullptr;
};

/** A whole fast-path point resolved against its cached schedule entries:
 * the bands in function body order, the function-level composition mode
 * (sequential dependence scheduling vs dataflow stage overlap), and the
 * function's owned local buffers (phase-1 ownership), whose kept
 * survivors the composed resource account must charge for — with
 * ping-pong double buffering under a dataflow top. */
struct ScheduledFunction
{
    std::vector<ScheduledBand> bands;
    /** The function carries the dataflow directive: interval = slowest
     * stage, latency = summed stages, double-buffered channel memory. */
    bool dataflow = false;

    /** One owned local buffer of the function under evaluation. */
    struct OwnedAlloc
    {
        Value *memref = nullptr;
        /** Phase-1 prediction: cleanup keeps the buffer (some user
         * reads it) — kept buffers are charged to the memory account
         * under the re-derived merged partition plan. */
        bool kept = false;
    };
    std::vector<OwnedAlloc> allocs;
};

/** Latency / throughput / resource estimate of a design. */
struct QoRResult
{
    int64_t latency = 0;  ///< Cycles to process one invocation / frame.
    int64_t interval = 0; ///< Cycles between successive frames.
    ResourceUsage resources;
    bool feasible = true; ///< False when analysis failed (unknown trips).

    /** True when the design fits the budget. */
    bool
    fits(const ResourceBudget &budget) const
    {
        return budget.fits(resources);
    }
};

/** Analytical QoR estimator over the directive-level IR.
 *
 * Thread-safety: estimation only READS the IR — it never writes
 * attributes or touches global state. The per-function core
 * (estimateFuncImpl) is pure and re-entrant: every piece of mutable
 * recursion state (call-path guard, completed callee results) lives in
 * an explicit EstimateContext, never in the instance. That purity is
 * what enables the two levels of sharing:
 *
 *  - Intra-point parallelism: pass a ThreadPool and the distinct callees
 *    of a multi-function (e.g. dataflow) design estimate concurrently,
 *    each on its own context; the sequential latency/interval
 *    composition joins them. Results are bit-identical at any thread
 *    count because per-function estimation is a pure function of the IR.
 *  - Cross-point reuse: pass a shared EstimateCache and per-function
 *    results are published under content-derived (name, digest) keys, so
 *    other DSE workers evaluating points with identical function content
 *    reuse them instead of re-walking the IR. The cache has a second,
 *    finer tier keyed by BAND digests: a design point that differs from
 *    an evaluated one only inside one band of a function still reuses
 *    the estimates of every other band of that function (and of
 *    digest-identical bands in any other function).
 *
 * The instance-level memo (estimateFunc results across public calls) is
 * still unsynchronized: share the EstimateCache across threads, not one
 * QOREstimator instance. */
class QoREstimator
{
  public:
    /** @p pool (optional, not owned) fans callee estimation out;
     * @p shared (optional, not owned) is the cross-point cache.
     * @p band_cache additionally enables the band-level tier of
     * @p shared (no effect without a shared cache); @p masked_band_keys
     * selects partition-aware band keys (bandEstimateDigestInfo) over
     * the partition-sensitive PR 3 keying. */
    explicit QoREstimator(Operation *module, ThreadPool *pool = nullptr,
                          EstimateCache *shared = nullptr,
                          bool band_cache = true,
                          bool masked_band_keys = true)
        : module_(module), pool_(pool), shared_(shared),
          band_cache_(band_cache), masked_band_keys_(masked_band_keys)
    {}

    QoREstimator(const QoREstimator &) = delete;
    QoREstimator &operator=(const QoREstimator &) = delete;

    /** Estimate a function (memoized; call invalidate() after rewrites). */
    QoRResult estimateFunc(Operation *func);

    /** Estimate the module's top function. */
    QoRResult estimateModule();

    /** The per-band estimates of the most recent estimateFunc run, keyed
     * by band root. The evaluator reads these to build schedule-tier
     * entries without re-walking the IR or round-tripping the cache. */
    const std::map<Operation *, BandEstimate> &lastBandEstimates() const
    {
        return last_bands_;
    }

    /** Drop memoized function estimates and digests (the shared
     * EstimateCache itself is content-keyed and never needs
     * invalidation, but digests must be recomputed so rewritten
     * functions are keyed by their new content). */
    void
    invalidate()
    {
        cache_.clear();
        digests_.digest.clear();
        digests_.cyclic.clear();
    }

  private:
    /** Explicit recursion state of one estimation run. Each concurrent
     * callee estimation gets its own context (seeded with the parent call
     * path), so the core never races on hidden members. */
    struct EstimateContext
    {
        /** Functions on the current call path (recursion guard). */
        std::set<const Operation *> active;
        /** Completed per-function results of this run. */
        std::map<Operation *, QoRResult> memo;
        /** Completed band estimates of this run, so the latency walk and
         * the resource walk of one function share a single band
         * computation (and a single band-cache lookup). */
        std::map<Operation *, BandEstimate> bands;
    };

    struct LoopEstimate
    {
        int64_t latency = 0;
        int64_t interval = 0;
        bool feasible = true;
    };
    struct BlockEstimate
    {
        int64_t latency = 0;
        bool feasible = true;
    };

    /** The pure per-function core. Assumes @p func is already marked
     * active in @p ctx; callees go through calleeEstimate(). */
    QoRResult estimateFuncImpl(Operation *func, EstimateContext &ctx);

    /** Estimate a callee: context memo, then shared cache, then a fresh
     * estimateFuncImpl run. A call cycle yields the infeasible
     * placeholder (latency 1, feasible=false); callers must propagate
     * infeasibility, not the placeholder latency. */
    QoRResult calleeEstimate(Operation *callee, EstimateContext &ctx);

    /** Estimate the not-yet-memoized distinct callees of @p func
     * concurrently over pool_ (no-op without a multi-thread pool). */
    void prefetchCallees(Operation *func, EstimateContext &ctx);

    BlockEstimate estimateBlock(Block *block, EstimateContext &ctx);
    LoopEstimate estimateLoop(Operation *loop, EstimateContext &ctx);
    int64_t opLatency(Operation *op, EstimateContext &ctx);

    /** The per-band core: latency/II of @p band_root plus the band's
     * decomposed resource account, memoized in @p ctx and — for bands
     * whose digest is content-determined — shared through the band tier
     * of the EstimateCache. Cached values are exact copies of freshly
     * computed ones, so results stay bit-identical to the uncached
     * path. */
    const BandEstimate &estimateBand(Operation *band_root,
                                     EstimateContext &ctx);

    /** Fold the compute-resource account of @p scope (pipelined-leaf
     * sharing, sequential op counts, loop/call counts) into @p out.
     * Scope is a top-level band root or any other func-body op. */
    void accountCompute(Operation *scope, BandEstimate &out);

    /** Minimum legal II of a pipelined loop body given recurrences and
     * memory port pressure (paper's achievable-II analysis). */
    int64_t minLoopII(const std::vector<Operation *> &band,
                      Operation *pipelined);

    /** Resource usage of a function (compute sharing under II, memories,
     * sub-function instances). */
    ResourceUsage funcResources(Operation *func, EstimateContext &ctx);

    /** Digest @p func's reachable set if not yet digested. Called only
     * from the single-threaded public entry, BEFORE any fan-out; workers
     * then read digests_ concurrently but never write it. Only needed
     * with a shared cache. */
    void ensureDigests(Operation *func);
    /** The shared-cache key of @p func ("" when caching is off, the
     * function was not digested, or its digest folded a call cycle and
     * is therefore not content-determined). */
    std::string sharedKeyOf(Operation *func) const;

    Operation *module_;
    ThreadPool *pool_ = nullptr;
    EstimateCache *shared_ = nullptr;
    bool band_cache_ = true;
    bool masked_band_keys_ = true;
    EstimateDigests digests_;
    std::map<Operation *, QoRResult> cache_;
    std::map<Operation *, BandEstimate> last_bands_;
};

/** The function-level half of the resource model, shared between
 * funcResources (slow path) and composeScheduledQoR (fast path) so the
 * cross-band operator-sharing merge cannot drift between them: pipelined
 * contributions sum directly, sequential op counts merge per kind (with
 * the first-seen profile, in band order) before instance sharing, and
 * loop/call counts feed the control-logic LUT overhead. */
class BandResourceMerge
{
  public:
    /** Fold one band's (or glue scope's) account in; call in function
     * body order so per-kind profile selection stays deterministic. */
    void add(const BandEstimate &band);
    /** The merged compute usage: shared sequential instances (one per
     * kind, or ceil(count / target_ii) under function pipelining) plus
     * the control-logic overhead. */
    ResourceUsage finish(bool func_pipelined, int64_t target_ii) const;

  private:
    ResourceUsage usage_;
    std::map<std::string, int64_t> rest_;
    std::map<std::string, OpProfile> profiles_;
    int64_t loops_ = 0;
    int64_t calls_ = 0;
};

/** Compose the whole-function QoR of a fast-path point from its bands'
 * cached schedule entries, replaying exactly what estimateFuncImpl does
 * on a fast-path-eligible function (no callees, no flat-scope accesses,
 * every local buffer owned): the function-body composition over band
 * latencies — sequential dependence scheduling, or the dataflow stage
 * overlap (interval = max over stages) under a dataflow top — plus the
 * operator-sharing resource merge and the kept-buffer memory account
 * (double buffered under dataflow). First re-derives the function-wide
 * partition plans from the entries' contributions (the same max-factor
 * merge applyArrayPartition would run) and validates every entry's
 * `assumed` plan against them on partition-relevant dims, and the
 * entries' buffer accesses against the phase-1 ownership prediction;
 * returns nullopt — caller falls back to the full slow path — when any
 * validation fails or an entry cannot be resolved. A returned QoR is
 * bit-identical to the slow path's. */
std::optional<QoRResult> composeScheduledQoR(
    const ScheduledFunction &function);

/** Build the schedule entry of @p band_root (a top-level band of a fully
 * materialized, fast-path-eligible function) from its final estimate and
 * the phase-1 external-value table @p externals. Returns nullopt when
 * the band's accesses cannot be mapped back onto the phase-1 externals
 * (the entry would not be replayable). */
std::optional<BandScheduleEntry> buildBandScheduleEntry(
    Operation *band_root, const BandEstimate &estimate,
    const std::vector<Value *> &externals);

/** Memory port pressure (min II imposed by bank conflicts) of the accesses
 * inside @p scope, normalized over @p band_ivs. Shared helper for the
 * estimator and the virtual HLS synthesizer. */
int64_t memoryPortII(Operation *scope, const std::vector<Value *> &band_ivs);

/** Longest def-use path latency (cycles) from @p read's result to
 * @p store's stored value, both inclusive; 0 when no path exists. */
int64_t recurrencePathLatency(Operation *read, Operation *store);

/** Total dynamically executed arithmetic operation count of a function
 * (compute ops weighted by enclosing trip counts), for OP/cycle metrics. */
int64_t dynamicOpCount(Operation *func, Operation *module);

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_QOR_ESTIMATOR_H
