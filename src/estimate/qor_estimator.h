/**
 * @file
 * The analytical QoR estimator (paper Section V-E1): ALAP-style critical
 * path scheduling of each block, memory ports as non-shareable resources
 * (identical-address reads excepted), define-use plus memory dependence
 * edges, pipelined/flattened loop latency composition, dataflow interval
 * computation, and resource accounting with II-driven operator sharing.
 */

#ifndef SCALEHLS_ESTIMATE_QOR_ESTIMATOR_H
#define SCALEHLS_ESTIMATE_QOR_ESTIMATOR_H

#include <map>

#include "analysis/memory_analysis.h"
#include "estimate/resource_model.h"

namespace scalehls {

/** Latency / throughput / resource estimate of a design. */
struct QoRResult
{
    int64_t latency = 0;  ///< Cycles to process one invocation / frame.
    int64_t interval = 0; ///< Cycles between successive frames.
    ResourceUsage resources;
    bool feasible = true; ///< False when analysis failed (unknown trips).

    /** True when the design fits the budget. */
    bool
    fits(const ResourceBudget &budget) const
    {
        return budget.fits(resources);
    }
};

/** Analytical QoR estimator over the directive-level IR.
 *
 * Thread-safety: estimation only READS the IR — it never writes
 * attributes or touches global state — so distinct QoREstimator
 * instances over distinct modules (the parallel DSE gives each worker
 * its own materialized clone) may run concurrently. One instance is not
 * re-entrant (the per-function memo below is unsynchronized); do not
 * share an instance across threads. */
class QoREstimator
{
  public:
    explicit QoREstimator(Operation *module) : module_(module) {}

    QoREstimator(const QoREstimator &) = delete;
    QoREstimator &operator=(const QoREstimator &) = delete;

    /** Estimate a function (memoized; call invalidate() after rewrites). */
    QoRResult estimateFunc(Operation *func);

    /** Estimate the module's top function. */
    QoRResult estimateModule();

    /** Drop memoized function estimates. */
    void invalidate() { cache_.clear(); }

  private:
    struct LoopEstimate
    {
        int64_t latency = 0;
        int64_t interval = 0;
        bool feasible = true;
    };
    struct BlockEstimate
    {
        int64_t latency = 0;
        bool feasible = true;
    };

    BlockEstimate estimateBlock(Block *block);
    LoopEstimate estimateLoop(Operation *loop);
    int64_t opLatency(Operation *op);

    /** Minimum legal II of a pipelined loop body given recurrences and
     * memory port pressure (paper's achievable-II analysis). */
    int64_t minLoopII(const std::vector<Operation *> &band,
                      Operation *pipelined);

    /** Resource usage of a function (compute sharing under II, memories,
     * sub-function instances). */
    ResourceUsage funcResources(Operation *func);

    Operation *module_;
    std::map<Operation *, QoRResult> cache_;
};

/** Memory port pressure (min II imposed by bank conflicts) of the accesses
 * inside @p scope, normalized over @p band_ivs. Shared helper for the
 * estimator and the virtual HLS synthesizer. */
int64_t memoryPortII(Operation *scope, const std::vector<Value *> &band_ivs);

/** Longest def-use path latency (cycles) from @p read's result to
 * @p store's stored value, both inclusive; 0 when no path exists. */
int64_t recurrencePathLatency(Operation *read, Operation *store);

/** Total dynamically executed arithmetic operation count of a function
 * (compute ops weighted by enclosing trip counts), for OP/cycle metrics. */
int64_t dynamicOpCount(Operation *func, Operation *module);

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_QOR_ESTIMATOR_H
