/**
 * @file
 * The cross-point estimate cache: per-function QoR results keyed by
 * (function name, canonical directive/structure digest). Design points
 * that differ only in OTHER functions' directives leave a function's
 * content — and therefore its digest — unchanged, so its estimate is
 * reused instead of re-walking the IR. The key is content-derived, which
 * makes cache hits value-identical to recomputation: sharing one cache
 * across every DSE worker (and across the per-kernel explorations of
 * optimizeFunctions) changes wall-clock only, never results.
 */

#ifndef SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
#define SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H

#include <atomic>
#include <map>
#include <set>
#include <string>

#include "estimate/qor_estimator.h"
#include "support/concurrent_cache.h"

namespace scalehls {

/** The cached outcome of planning one (pristine band, BandChoice) pair —
 * the PLAN tier's value type. A plan outcome predicts, without building
 * any IR, what the per-band structural transforms of beginMaterialize
 * would produce for this band:
 *
 *  - `materializable` false: the transforms fail (e.g. pipelining cannot
 *    legalize the band) — any point selecting this choice is infeasible,
 *    decided with zero IR.
 *  - `digest`: the band's phase-1 (schedule-tier) digest.
 *  - `extMap`: phase-1 external id -> BandPlanSeed external index. The
 *    transforms permute the first-reference order of external values, so
 *    a schedule entry's ids must be translated onto the pristine table
 *    before composing.
 *  - `composable` false: the digest or extMap could not be established
 *    (an external of the transformed band has no pristine counterpart);
 *    the band must be materialized on every evaluation.
 *
 * Outcomes are recorded from an actual overlay materialization of the
 * band (never predicted blind), so a cached outcome is exact; the
 * digest-mismatch fallback in the planner double-checks this invariant
 * whenever an outcome and a materialization meet. */
struct BandPlanOutcome
{
    bool materializable = false;
    bool composable = false;
    std::string digest;
    std::vector<unsigned> extMap;
};

/** Per-tier max-entry bounds for the four EstimateCache tiers (coarse
 * LRU eviction; 0 = that tier unbounded). Lets operators size the
 * tiers independently — schedule/plan entries are an order of magnitude
 * larger than function QoRs, so one uniform cap either wastes memory or
 * starves the cheap tiers. */
struct EstimateCacheTierCaps
{
    size_t func = 0;
    size_t band = 0;
    size_t schedule = 0;
    size_t plan = 0;

    bool
    any() const
    {
        return func != 0 || band != 0 || schedule != 0 || plan != 0;
    }
};

/** Parse a cache-cap spec: either one count applied to every tier
 * ("4096") or four colon-separated per-tier counts in
 * func:band:sched:plan order ("1024:4096:2048:8192", 0 = unbounded).
 * nullopt on malformed input. */
std::optional<EstimateCacheTierCaps>
parseEstimateCacheCaps(const std::string &spec);

/** A fixed probe digest of the digest pipeline itself: feeds canonical
 * inputs through the same 128-bit hash the band/function digests use.
 * Any change to the hash constants or mixing shows up here, which folds
 * into the snapshot digest-schema salt (cache_io) so persisted caches
 * keyed under the old scheme are rejected wholesale instead of silently
 * missing (or worse, aliasing). */
std::string digestHashFingerprint();

/** Thread-safe four-tier estimate cache shared across concurrently
 * evaluating design points:
 *
 *  - the FUNCTION tier maps (function name, digest) keys to whole-
 *    function QoR estimates;
 *  - the BAND tier maps band digests to BandEstimate values, so points
 *    that differ only inside one band of a function still reuse the
 *    estimates of every other band (the band digest is self-contained,
 *    so digest-identical bands share even across functions);
 *  - the SCHEDULE tier maps PHASE-1 band digests (the content right
 *    after the per-band structural transforms, before cleanup and array
 *    partition) to BandScheduleEntry values — the band-incremental
 *    materialization fast path: a point whose bands all hit this tier
 *    skips the function-wide cleanup, array partition AND the estimator
 *    walk entirely (composeScheduledQoR re-validates the cross-band
 *    partition coupling before trusting an entry);
 *  - the PLAN tier maps (pristine band, BandChoice) keys — bandPlanKey,
 *    no IR built — to BandPlanOutcome values, which predict the phase-1
 *    digest analytically: a point whose bands all hit PLAN and (through
 *    the predicted digests) SCHEDULE composes its QoR with zero IR.
 *
 * All tiers are content-keyed (the schedule tier additionally validated
 * at use): hits are value-identical to recomputation at any thread
 * count. */
class EstimateCache
{
  public:
    /** The function-tier cache key of @p func given its precomputed
     * @p digest. The name is length-prefixed so the key is an injective
     * encoding of the (name, digest) pair — a '#' inside a function
     * name cannot alias another pair's key. */
    static std::string
    keyFor(const std::string &func_name, const std::string &digest)
    {
        return std::to_string(func_name.size()) + ':' + func_name + '#' +
               digest;
    }

    std::optional<QoRResult>
    lookup(const std::string &key) const
    {
        return cache_.lookup(key);
    }

    void
    insert(const std::string &key, const QoRResult &result)
    {
        cache_.insert(key, result);
    }

    /** @name Band tier
     * @p partition_masked tags lookups whose digest masked away a
     * non-trivially partitioned layout dim (bandEstimateDigestInfo): a
     * hit under such a key is one the PR 3 partition-sensitive keying
     * would have missed, counted separately in bandStats().maskedHits. */
    ///@{
    std::optional<BandEstimate>
    lookupBand(const std::string &digest,
               bool partition_masked = false) const
    {
        auto result = bands_.lookup(digest);
        if (result && partition_masked)
            masked_band_hits_.fetch_add(1, std::memory_order_relaxed);
        return result;
    }

    void
    insertBand(const std::string &digest, const BandEstimate &estimate)
    {
        bands_.insert(digest, estimate);
    }
    ///@}

    /** @name Schedule tier (incremental materialization)
     * @p origin (optional, "func#bandIndex") identifies the consumer: a
     * hit on an entry recorded under a DIFFERENT origin is counted in
     * crossBandHits() — a symmetric band reusing a sibling's (or another
     * function's) entry. Purely statistical. */
    ///@{
    std::optional<BandScheduleEntry>
    lookupSchedule(const std::string &phase1_digest,
                   const std::string &origin = std::string()) const
    {
        auto result = schedules_.lookup(phase1_digest);
        if (result && !origin.empty() && !result->origin.empty() &&
            result->origin != origin)
            cross_band_hits_.fetch_add(1, std::memory_order_relaxed);
        return result;
    }

    void
    insertSchedule(const std::string &phase1_digest,
                   const BandScheduleEntry &entry)
    {
        schedules_.insert(phase1_digest, entry);
    }
    ///@}

    /** @name Plan tier (plan-first evaluation) */
    ///@{
    std::optional<BandPlanOutcome>
    lookupPlan(const std::string &plan_key) const
    {
        return plans_.lookup(plan_key);
    }

    void
    insertPlan(const std::string &plan_key, const BandPlanOutcome &outcome)
    {
        plans_.insert(plan_key, outcome);
    }
    ///@}

    /** Bound each tier to @p max_entries_per_tier entries (coarse hit-count-informed LRU
     * eviction; see ConcurrentCache::setMaxEntries). 0 = unbounded (the
     * default). Content-keyed tiers just recompute evicted values, so
     * bounding changes memory, never results. Set before populating. */
    void
    setMaxEntries(size_t max_entries_per_tier)
    {
        cache_.setMaxEntries(max_entries_per_tier);
        bands_.setMaxEntries(max_entries_per_tier);
        schedules_.setMaxEntries(max_entries_per_tier);
        plans_.setMaxEntries(max_entries_per_tier);
    }

    /** Bound each tier independently (0 = that tier unbounded). Same
     * LRU/memory-only semantics as setMaxEntries. */
    void
    setTierMaxEntries(const EstimateCacheTierCaps &caps)
    {
        cache_.setMaxEntries(caps.func);
        bands_.setMaxEntries(caps.band);
        schedules_.setMaxEntries(caps.schedule);
        plans_.setMaxEntries(caps.plan);
    }

    /** @name Bulk export (snapshot persistence)
     * Visit every entry of one tier; the callback runs under the owning
     * shard's lock (see ConcurrentCache::forEach) and must not call back
     * into the cache. Iteration does NOT touch the hit/miss counters —
     * serialization is not a lookup. */
    ///@{
    template <typename Fn>
    void
    forEachFunc(Fn &&fn) const
    {
        cache_.forEach(std::forward<Fn>(fn));
    }
    template <typename Fn>
    void
    forEachBand(Fn &&fn) const
    {
        bands_.forEach(std::forward<Fn>(fn));
    }
    template <typename Fn>
    void
    forEachSchedule(Fn &&fn) const
    {
        schedules_.forEach(std::forward<Fn>(fn));
    }
    template <typename Fn>
    void
    forEachPlan(Fn &&fn) const
    {
        plans_.forEach(std::forward<Fn>(fn));
    }
    ///@}

    /** @name Statistics (delegated to the sharded tiers).
     * The unqualified accessors report the function tier (source
     * compatible with the single-tier cache); band* mirrors them for the
     * band tier; the stats() snapshots carry both in one read. */
    ///@{
    size_t hits() const { return cache_.hits(); }
    size_t misses() const { return cache_.misses(); }
    size_t lookups() const { return cache_.lookups(); }
    double hitRate() const { return cache_.hitRate(); }
    size_t size() const { return cache_.size(); }
    size_t bandHits() const { return bands_.hits(); }
    size_t bandMisses() const { return bands_.misses(); }
    size_t bandLookups() const { return bands_.lookups(); }
    double bandHitRate() const { return bands_.hitRate(); }
    size_t bandSize() const { return bands_.size(); }
    size_t bandMaskedHits() const
    {
        return masked_band_hits_.load(std::memory_order_relaxed);
    }
    CacheStats funcStats() const { return cache_.stats(); }
    CacheStats
    bandStats() const
    {
        CacheStats stats = bands_.stats();
        stats.maskedHits = bandMaskedHits();
        return stats;
    }
    size_t scheduleHits() const { return schedules_.hits(); }
    size_t scheduleLookups() const { return schedules_.lookups(); }
    CacheStats scheduleStats() const { return schedules_.stats(); }
    /** Schedule-tier hits whose entry was recorded under a different
     * origin than the consumer's — entry sharing across symmetric bands
     * or functions, enabled by the canonicalizing digest. */
    size_t crossBandHits() const
    {
        return cross_band_hits_.load(std::memory_order_relaxed);
    }
    size_t planHits() const { return plans_.hits(); }
    size_t planLookups() const { return plans_.lookups(); }
    CacheStats planStats() const { return plans_.stats(); }
    ///@}

    void
    clear()
    {
        cache_.clear();
        bands_.clear();
        schedules_.clear();
        plans_.clear();
        masked_band_hits_.store(0, std::memory_order_relaxed);
        cross_band_hits_.store(0, std::memory_order_relaxed);
    }

  private:
    ConcurrentCache<std::string, QoRResult> cache_;
    ConcurrentCache<std::string, BandEstimate> bands_;
    ConcurrentCache<std::string, BandScheduleEntry> schedules_;
    ConcurrentCache<std::string, BandPlanOutcome> plans_;
    mutable std::atomic<size_t> masked_band_hits_{0};
    mutable std::atomic<size_t> cross_band_hits_{0};
};

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
