/**
 * @file
 * The cross-point estimate cache: per-function QoR results keyed by
 * (function name, canonical directive/structure digest). Design points
 * that differ only in OTHER functions' directives leave a function's
 * content — and therefore its digest — unchanged, so its estimate is
 * reused instead of re-walking the IR. The key is content-derived, which
 * makes cache hits value-identical to recomputation: sharing one cache
 * across every DSE worker (and across the per-kernel explorations of
 * optimizeFunctions) changes wall-clock only, never results.
 */

#ifndef SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
#define SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H

#include <map>
#include <set>
#include <string>

#include "estimate/qor_estimator.h"
#include "support/concurrent_cache.h"

namespace scalehls {

/** Thread-safe map from (function name, digest) keys to function-level
 * QoR estimates, shared across concurrently evaluating design points. */
class EstimateCache
{
  public:
    /** The cache key of @p func given its precomputed @p digest. */
    static std::string
    keyFor(const std::string &func_name, const std::string &digest)
    {
        return func_name + '#' + digest;
    }

    std::optional<QoRResult>
    lookup(const std::string &key) const
    {
        return cache_.lookup(key);
    }

    void
    insert(const std::string &key, const QoRResult &result)
    {
        cache_.insert(key, result);
    }

    /** @name Statistics (delegated to the sharded cache). */
    ///@{
    size_t hits() const { return cache_.hits(); }
    size_t misses() const { return cache_.misses(); }
    size_t lookups() const { return cache_.lookups(); }
    double hitRate() const { return cache_.hitRate(); }
    size_t size() const { return cache_.size(); }
    ///@}

    void clear() { cache_.clear(); }

  private:
    ConcurrentCache<std::string, QoRResult> cache_;
};

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
