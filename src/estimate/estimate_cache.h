/**
 * @file
 * The cross-point estimate cache: per-function QoR results keyed by
 * (function name, canonical directive/structure digest). Design points
 * that differ only in OTHER functions' directives leave a function's
 * content — and therefore its digest — unchanged, so its estimate is
 * reused instead of re-walking the IR. The key is content-derived, which
 * makes cache hits value-identical to recomputation: sharing one cache
 * across every DSE worker (and across the per-kernel explorations of
 * optimizeFunctions) changes wall-clock only, never results.
 */

#ifndef SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
#define SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H

#include <map>
#include <set>
#include <string>

#include "estimate/qor_estimator.h"
#include "support/concurrent_cache.h"

namespace scalehls {

/** Thread-safe two-tier estimate cache shared across concurrently
 * evaluating design points:
 *
 *  - the FUNCTION tier maps (function name, digest) keys to whole-
 *    function QoR estimates;
 *  - the BAND tier maps band digests to BandEstimate values, so points
 *    that differ only inside one band of a function still reuse the
 *    estimates of every other band (the band digest is self-contained,
 *    so digest-identical bands share even across functions).
 *
 * Both tiers are content-keyed: hits are value-identical to
 * recomputation at any thread count. */
class EstimateCache
{
  public:
    /** The function-tier cache key of @p func given its precomputed
     * @p digest. The name is length-prefixed so the key is an injective
     * encoding of the (name, digest) pair — a '#' inside a function
     * name cannot alias another pair's key. */
    static std::string
    keyFor(const std::string &func_name, const std::string &digest)
    {
        return std::to_string(func_name.size()) + ':' + func_name + '#' +
               digest;
    }

    std::optional<QoRResult>
    lookup(const std::string &key) const
    {
        return cache_.lookup(key);
    }

    void
    insert(const std::string &key, const QoRResult &result)
    {
        cache_.insert(key, result);
    }

    /** @name Band tier */
    ///@{
    std::optional<BandEstimate>
    lookupBand(const std::string &digest) const
    {
        return bands_.lookup(digest);
    }

    void
    insertBand(const std::string &digest, const BandEstimate &estimate)
    {
        bands_.insert(digest, estimate);
    }
    ///@}

    /** @name Statistics (delegated to the sharded tiers).
     * The unqualified accessors report the function tier (source
     * compatible with the single-tier cache); band* mirrors them for the
     * band tier; the stats() snapshots carry both in one read. */
    ///@{
    size_t hits() const { return cache_.hits(); }
    size_t misses() const { return cache_.misses(); }
    size_t lookups() const { return cache_.lookups(); }
    double hitRate() const { return cache_.hitRate(); }
    size_t size() const { return cache_.size(); }
    size_t bandHits() const { return bands_.hits(); }
    size_t bandMisses() const { return bands_.misses(); }
    size_t bandLookups() const { return bands_.lookups(); }
    double bandHitRate() const { return bands_.hitRate(); }
    size_t bandSize() const { return bands_.size(); }
    CacheStats funcStats() const { return cache_.stats(); }
    CacheStats bandStats() const { return bands_.stats(); }
    ///@}

    void
    clear()
    {
        cache_.clear();
        bands_.clear();
    }

  private:
    ConcurrentCache<std::string, QoRResult> cache_;
    ConcurrentCache<std::string, BandEstimate> bands_;
};

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
