/**
 * @file
 * The cross-point estimate cache: per-function QoR results keyed by
 * (function name, canonical directive/structure digest). Design points
 * that differ only in OTHER functions' directives leave a function's
 * content — and therefore its digest — unchanged, so its estimate is
 * reused instead of re-walking the IR. The key is content-derived, which
 * makes cache hits value-identical to recomputation: sharing one cache
 * across every DSE worker (and across the per-kernel explorations of
 * optimizeFunctions) changes wall-clock only, never results.
 */

#ifndef SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
#define SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H

#include <atomic>
#include <map>
#include <set>
#include <string>

#include "estimate/qor_estimator.h"
#include "support/concurrent_cache.h"

namespace scalehls {

/** Thread-safe three-tier estimate cache shared across concurrently
 * evaluating design points:
 *
 *  - the FUNCTION tier maps (function name, digest) keys to whole-
 *    function QoR estimates;
 *  - the BAND tier maps band digests to BandEstimate values, so points
 *    that differ only inside one band of a function still reuse the
 *    estimates of every other band (the band digest is self-contained,
 *    so digest-identical bands share even across functions);
 *  - the SCHEDULE tier maps PHASE-1 band digests (the content right
 *    after the per-band structural transforms, before cleanup and array
 *    partition) to BandScheduleEntry values — the band-incremental
 *    materialization fast path: a point whose bands all hit this tier
 *    skips the function-wide cleanup, array partition AND the estimator
 *    walk entirely (composeScheduledQoR re-validates the cross-band
 *    partition coupling before trusting an entry).
 *
 * All tiers are content-keyed (the schedule tier additionally validated
 * at use): hits are value-identical to recomputation at any thread
 * count. */
class EstimateCache
{
  public:
    /** The function-tier cache key of @p func given its precomputed
     * @p digest. The name is length-prefixed so the key is an injective
     * encoding of the (name, digest) pair — a '#' inside a function
     * name cannot alias another pair's key. */
    static std::string
    keyFor(const std::string &func_name, const std::string &digest)
    {
        return std::to_string(func_name.size()) + ':' + func_name + '#' +
               digest;
    }

    std::optional<QoRResult>
    lookup(const std::string &key) const
    {
        return cache_.lookup(key);
    }

    void
    insert(const std::string &key, const QoRResult &result)
    {
        cache_.insert(key, result);
    }

    /** @name Band tier
     * @p partition_masked tags lookups whose digest masked away a
     * non-trivially partitioned layout dim (bandEstimateDigestInfo): a
     * hit under such a key is one the PR 3 partition-sensitive keying
     * would have missed, counted separately in bandStats().maskedHits. */
    ///@{
    std::optional<BandEstimate>
    lookupBand(const std::string &digest,
               bool partition_masked = false) const
    {
        auto result = bands_.lookup(digest);
        if (result && partition_masked)
            masked_band_hits_.fetch_add(1, std::memory_order_relaxed);
        return result;
    }

    void
    insertBand(const std::string &digest, const BandEstimate &estimate)
    {
        bands_.insert(digest, estimate);
    }
    ///@}

    /** @name Schedule tier (incremental materialization) */
    ///@{
    std::optional<BandScheduleEntry>
    lookupSchedule(const std::string &phase1_digest) const
    {
        return schedules_.lookup(phase1_digest);
    }

    void
    insertSchedule(const std::string &phase1_digest,
                   const BandScheduleEntry &entry)
    {
        schedules_.insert(phase1_digest, entry);
    }
    ///@}

    /** Bound each tier to @p max_entries_per_tier entries (coarse FIFO
     * eviction; see ConcurrentCache::setMaxEntries). 0 = unbounded (the
     * default). Content-keyed tiers just recompute evicted values, so
     * bounding changes memory, never results. Set before populating. */
    void
    setMaxEntries(size_t max_entries_per_tier)
    {
        cache_.setMaxEntries(max_entries_per_tier);
        bands_.setMaxEntries(max_entries_per_tier);
        schedules_.setMaxEntries(max_entries_per_tier);
    }

    /** @name Statistics (delegated to the sharded tiers).
     * The unqualified accessors report the function tier (source
     * compatible with the single-tier cache); band* mirrors them for the
     * band tier; the stats() snapshots carry both in one read. */
    ///@{
    size_t hits() const { return cache_.hits(); }
    size_t misses() const { return cache_.misses(); }
    size_t lookups() const { return cache_.lookups(); }
    double hitRate() const { return cache_.hitRate(); }
    size_t size() const { return cache_.size(); }
    size_t bandHits() const { return bands_.hits(); }
    size_t bandMisses() const { return bands_.misses(); }
    size_t bandLookups() const { return bands_.lookups(); }
    double bandHitRate() const { return bands_.hitRate(); }
    size_t bandSize() const { return bands_.size(); }
    size_t bandMaskedHits() const
    {
        return masked_band_hits_.load(std::memory_order_relaxed);
    }
    CacheStats funcStats() const { return cache_.stats(); }
    CacheStats
    bandStats() const
    {
        CacheStats stats = bands_.stats();
        stats.maskedHits = bandMaskedHits();
        return stats;
    }
    size_t scheduleHits() const { return schedules_.hits(); }
    size_t scheduleLookups() const { return schedules_.lookups(); }
    CacheStats scheduleStats() const { return schedules_.stats(); }
    ///@}

    void
    clear()
    {
        cache_.clear();
        bands_.clear();
        schedules_.clear();
        masked_band_hits_.store(0, std::memory_order_relaxed);
    }

  private:
    ConcurrentCache<std::string, QoRResult> cache_;
    ConcurrentCache<std::string, BandEstimate> bands_;
    ConcurrentCache<std::string, BandScheduleEntry> schedules_;
    mutable std::atomic<size_t> masked_band_hits_{0};
};

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_ESTIMATE_CACHE_H
