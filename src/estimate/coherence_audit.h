/**
 * @file
 * L4 cache-coherence auditing (see ir/verifier.h for the layer map).
 *
 * The schedule/PLAN fast paths replace IR work with cached claims: a
 * band's phase-1 digest names a schedule entry, the entry's external ids
 * index a value table, and the digest itself promises to cover every IR
 * fact the estimate reads. The auditors re-derive each claim from the
 * materialized IR and report any divergence as a VerifyError — a stale
 * entry, a malformed entry, or a digest-coverage gap — instead of letting
 * a silently wrong QoR escape. They run under DSEOptions::auditMode /
 * `-dse-audit`; a clean production run pays none of this.
 */

#ifndef SCALEHLS_ESTIMATE_COHERENCE_AUDIT_H
#define SCALEHLS_ESTIMATE_COHERENCE_AUDIT_H

#include <set>
#include <string>
#include <vector>

#include "estimate/qor_estimator.h"
#include "ir/verifier.h"

namespace scalehls {

/** Attribute keys the band/function serializer deliberately leaves out
 * of estimate digests. The serializer consults this set (single source
 * of truth), so the coverage audit and the digests cannot drift. */
const std::set<std::string> &digestExcludedAttrs();

/** Attribute keys the QoR estimator reads — the registry the coverage
 * audit checks against the serializer's exclusion set. Every key listed
 * here must reach the digest, or two IRs that estimate differently could
 * share a cache entry. */
const std::vector<std::string> &estimateRelevantAttrs();

/** Digest-coverage registry audit: every estimate-relevant attribute
 * must be visited by the serializer (i.e. not excluded). The two-set
 * overload exists so tests can prove the audit fires on a seeded gap. */
std::vector<VerifyError> auditDigestCoverage(
    const std::set<std::string> &excluded,
    const std::vector<std::string> &relevant);
std::vector<VerifyError> auditDigestCoverage();

/** Re-derive @p band_root's phase-1 digest from the materialized IR
 * (exactly as beginMaterialize computes it: partition-sensitive, with
 * ownership notes) and check it against @p claimed_digest — the digest
 * the schedule/PLAN machinery used to claim a cache entry for this band.
 * A mismatch means the fast path consulted an entry the IR no longer
 * backs (StaleScheduleEntry); an underivable digest means the band was
 * never eligible to carry one (MalformedScheduleEntry). */
std::vector<VerifyError> auditBandCoherence(
    Operation *band_root, const std::string &claimed_digest,
    const AllocOwnershipInfo *ownership);

/** Shape-audit one schedule entry against the external-value table it
 * will be resolved with: every memref record must index the table, land
 * on a memref-typed value, and carry per-dim vectors of the memref's
 * rank. @p path labels the diagnostics (defaults to the entry origin). */
std::vector<VerifyError> auditScheduleEntry(
    const BandScheduleEntry &entry, const std::vector<Value *> &externals,
    const std::string &path = std::string());

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_COHERENCE_AUDIT_H
