#include "estimate/cache_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "estimate/coherence_audit.h"

namespace scalehls {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'L', 'S', 'E', 'S', 'T', 'C'};

/** FNV-1a over the payload: cheap, deterministic, and enough to turn a
 * torn write or bit rot into a clean Corrupt verdict (the format guards
 * against accidents, not adversaries — the cache feeds a validated
 * pipeline either way). */
uint64_t
checksum(std::string_view bytes)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Little-endian fixed-width encoder into a growing byte string. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }
    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

    void
    resources(const ResourceUsage &r)
    {
        i64(r.dsp);
        i64(r.lut);
        i64(r.bram18k);
        i64(r.memoryBits);
    }

    void
    qor(const QoRResult &q)
    {
        i64(q.latency);
        i64(q.interval);
        resources(q.resources);
        boolean(q.feasible);
    }

    void
    profile(const OpProfile &p)
    {
        i64(p.latency);
        i64(p.ii);
        i64(p.dsp);
        i64(p.lut);
    }

    void
    band(const BandEstimate &b)
    {
        i64(b.latency);
        i64(b.interval);
        boolean(b.feasible);
        i64(b.memPortII);
        resources(b.pipelinedCompute);
        u64(b.sequentialOps.size());
        for (const auto &entry : b.sequentialOps) {
            str(entry.first);
            i64(entry.second);
        }
        u64(b.profiles.size());
        for (const auto &entry : b.profiles) {
            str(entry.first);
            profile(entry.second);
        }
        i64(b.loops);
        i64(b.calls);
    }

    void
    partitionPlan(const PartitionPlan &p)
    {
        u64(p.kinds.size());
        for (PartitionKind kind : p.kinds)
            u8(static_cast<uint8_t>(kind));
        u64(p.factors.size());
        for (int64_t factor : p.factors)
            i64(factor);
    }

    void
    schedule(const BandScheduleEntry &e)
    {
        band(e.estimate);
        u64(e.memrefs.size());
        for (const auto &m : e.memrefs) {
            u32(m.extId);
            boolean(m.read);
            boolean(m.write);
            u64(m.relevant.size());
            for (bool bit : m.relevant)
                boolean(bit);
            partitionPlan(m.contribution);
            partitionPlan(m.assumed);
        }
        str(e.origin);
    }

    void
    plan(const BandPlanOutcome &p)
    {
        boolean(p.materializable);
        boolean(p.composable);
        str(p.digest);
        u64(p.extMap.size());
        for (unsigned id : p.extMap)
            u32(id);
    }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounds-checked mirror of Writer: any overrun or bad tag latches
 * ok() false and makes every further read return a default — callers
 * check once at the end and treat failure as Corrupt. */
class Reader
{
  public:
    explicit Reader(std::string_view data) : data_(data) {}

    bool ok() const { return ok_; }
    bool atEnd() const { return pos_ == data_.size(); }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<uint8_t>(data_[pos_++]);
    }
    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }
    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }
    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }
    bool
    boolean()
    {
        uint8_t v = u8();
        if (v > 1)
            ok_ = false;
        return v == 1;
    }
    std::string
    str()
    {
        uint64_t n = u64();
        if (!need(n))
            return std::string();
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }
    /** A collection size: additionally bounded by the bytes remaining
     * (each element costs >= 1 byte), so a corrupt length cannot drive
     * a multi-gigabyte reserve before the overrun is noticed. */
    uint64_t
    count()
    {
        uint64_t n = u64();
        if (n > data_.size() - pos_)
            ok_ = false;
        return ok_ ? n : 0;
    }

    ResourceUsage
    resources()
    {
        ResourceUsage r;
        r.dsp = i64();
        r.lut = i64();
        r.bram18k = i64();
        r.memoryBits = i64();
        return r;
    }

    QoRResult
    qor()
    {
        QoRResult q;
        q.latency = i64();
        q.interval = i64();
        q.resources = resources();
        q.feasible = boolean();
        return q;
    }

    OpProfile
    profile()
    {
        OpProfile p;
        p.latency = static_cast<int>(i64());
        p.ii = static_cast<int>(i64());
        p.dsp = static_cast<int>(i64());
        p.lut = static_cast<int>(i64());
        return p;
    }

    BandEstimate
    band()
    {
        BandEstimate b;
        b.latency = i64();
        b.interval = i64();
        b.feasible = boolean();
        b.memPortII = i64();
        b.pipelinedCompute = resources();
        for (uint64_t i = 0, n = count(); ok_ && i < n; ++i) {
            std::string key = str();
            b.sequentialOps[key] = i64();
        }
        for (uint64_t i = 0, n = count(); ok_ && i < n; ++i) {
            std::string key = str();
            b.profiles[key] = profile();
        }
        b.loops = i64();
        b.calls = i64();
        return b;
    }

    PartitionPlan
    partitionPlan()
    {
        PartitionPlan p;
        for (uint64_t i = 0, n = count(); ok_ && i < n; ++i) {
            uint8_t kind = u8();
            if (kind > static_cast<uint8_t>(PartitionKind::Block)) {
                ok_ = false;
                break;
            }
            p.kinds.push_back(static_cast<PartitionKind>(kind));
        }
        for (uint64_t i = 0, n = count(); ok_ && i < n; ++i)
            p.factors.push_back(i64());
        return p;
    }

    BandScheduleEntry
    schedule()
    {
        BandScheduleEntry e;
        e.estimate = band();
        for (uint64_t i = 0, n = count(); ok_ && i < n; ++i) {
            BandScheduleEntry::MemrefInfo m;
            m.extId = u32();
            m.read = boolean();
            m.write = boolean();
            for (uint64_t j = 0, k = count(); ok_ && j < k; ++j)
                m.relevant.push_back(boolean());
            m.contribution = partitionPlan();
            m.assumed = partitionPlan();
            e.memrefs.push_back(std::move(m));
        }
        e.origin = str();
        return e;
    }

    BandPlanOutcome
    plan()
    {
        BandPlanOutcome p;
        p.materializable = boolean();
        p.composable = boolean();
        p.digest = str();
        for (uint64_t i = 0, n = count(); ok_ && i < n; ++i)
            p.extMap.push_back(u32());
        return p;
    }

  private:
    bool
    need(uint64_t n)
    {
        if (!ok_ || n > data_.size() - pos_) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::string_view data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Export one tier in sorted key order (forEach's shard order depends
 * on the hash; sorting makes snapshots a pure function of contents). */
template <typename Value, typename ForEach>
std::vector<std::pair<std::string, Value>>
sortedEntries(ForEach &&for_each)
{
    std::vector<std::pair<std::string, Value>> entries;
    for_each([&](const std::string &key, const Value &value) {
        entries.emplace_back(key, value);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return entries;
}

CacheLoadResult
reject(CacheLoadStatus status, std::string message)
{
    CacheLoadResult result;
    result.status = status;
    result.message = std::move(message);
    return result;
}

} // namespace

std::string
cacheSnapshotSalt()
{
    // Manual schema version: bump when the digest SERIALIZATION changes
    // in a way the registries and the hash fingerprint below cannot see
    // (e.g. TreeSerializer traversal order).
    std::string salt = "digest-schema-1";
    salt += "|excluded:";
    for (const std::string &attr : digestExcludedAttrs()) {
        salt += attr;
        salt += ',';
    }
    salt += "|relevant:";
    for (const std::string &attr : estimateRelevantAttrs()) {
        salt += attr;
        salt += ',';
    }
    salt += "|hash:";
    salt += digestHashFingerprint();
    return salt;
}

std::string
encodeEstimateCache(const EstimateCache &cache, uint32_t format_version,
                    const std::string &salt)
{
    Writer payload;

    auto funcs = sortedEntries<QoRResult>(
        [&](auto &&fn) { cache.forEachFunc(fn); });
    payload.u8('F');
    payload.u64(funcs.size());
    for (const auto &entry : funcs) {
        payload.str(entry.first);
        payload.qor(entry.second);
    }

    auto bands = sortedEntries<BandEstimate>(
        [&](auto &&fn) { cache.forEachBand(fn); });
    payload.u8('B');
    payload.u64(bands.size());
    for (const auto &entry : bands) {
        payload.str(entry.first);
        payload.band(entry.second);
    }

    auto schedules = sortedEntries<BandScheduleEntry>(
        [&](auto &&fn) { cache.forEachSchedule(fn); });
    payload.u8('S');
    payload.u64(schedules.size());
    for (const auto &entry : schedules) {
        payload.str(entry.first);
        payload.schedule(entry.second);
    }

    auto plans = sortedEntries<BandPlanOutcome>(
        [&](auto &&fn) { cache.forEachPlan(fn); });
    payload.u8('P');
    payload.u64(plans.size());
    for (const auto &entry : plans) {
        payload.str(entry.first);
        payload.plan(entry.second);
    }

    std::string body = payload.take();

    Writer out;
    for (char c : kMagic)
        out.u8(static_cast<uint8_t>(c));
    out.u32(format_version);
    out.str(salt.empty() ? cacheSnapshotSalt() : salt);
    out.u64(body.size());
    out.u64(checksum(body));
    std::string bytes = out.take();
    bytes += body;
    return bytes;
}

CacheLoadResult
decodeEstimateCache(EstimateCache &cache, std::string_view bytes)
{
    Reader header(bytes);
    for (char expected : kMagic) {
        if (header.u8() != static_cast<uint8_t>(expected) || !header.ok())
            return reject(CacheLoadStatus::Corrupt,
                          "not an estimate-cache snapshot (bad magic)");
    }
    uint32_t version = header.u32();
    if (!header.ok())
        return reject(CacheLoadStatus::Corrupt, "truncated header");
    if (version != kCacheSnapshotFormatVersion)
        return reject(CacheLoadStatus::VersionMismatch,
                      "snapshot format version " + std::to_string(version) +
                          " != supported " +
                          std::to_string(kCacheSnapshotFormatVersion));
    std::string salt = header.str();
    if (!header.ok())
        return reject(CacheLoadStatus::Corrupt, "truncated header");
    if (salt != cacheSnapshotSalt())
        return reject(CacheLoadStatus::SaltMismatch,
                      "snapshot digest schema differs from this build "
                      "(keys would not be comparable)");
    uint64_t body_size = header.u64();
    uint64_t body_sum = header.u64();
    if (!header.ok())
        return reject(CacheLoadStatus::Corrupt, "truncated header");
    // The body is exactly the bytes after the fixed-layout header
    // (magic, version, length-prefixed salt, size, checksum).
    size_t header_size = sizeof(kMagic) + 4 + 8 + salt.size() + 8 + 8;
    std::string_view body = bytes.substr(header_size);
    if (body.size() != body_size)
        return reject(CacheLoadStatus::Corrupt,
                      "payload size mismatch (truncated file)");
    if (checksum(body) != body_sum)
        return reject(CacheLoadStatus::Corrupt,
                      "payload checksum mismatch (torn write or bit rot)");

    // Decode the full payload into local buffers BEFORE the first
    // insert: a corrupt section must not leave the cache half-loaded.
    Reader reader(body);
    std::vector<std::pair<std::string, QoRResult>> funcs;
    std::vector<std::pair<std::string, BandEstimate>> bands;
    std::vector<std::pair<std::string, BandScheduleEntry>> schedules;
    std::vector<std::pair<std::string, BandPlanOutcome>> plans;

    if (reader.u8() != 'F')
        return reject(CacheLoadStatus::Corrupt, "bad function-tier tag");
    for (uint64_t i = 0, n = reader.count(); reader.ok() && i < n; ++i) {
        std::string key = reader.str();
        funcs.emplace_back(std::move(key), reader.qor());
    }
    if (reader.u8() != 'B')
        return reject(CacheLoadStatus::Corrupt, "bad band-tier tag");
    for (uint64_t i = 0, n = reader.count(); reader.ok() && i < n; ++i) {
        std::string key = reader.str();
        bands.emplace_back(std::move(key), reader.band());
    }
    if (reader.u8() != 'S')
        return reject(CacheLoadStatus::Corrupt, "bad schedule-tier tag");
    for (uint64_t i = 0, n = reader.count(); reader.ok() && i < n; ++i) {
        std::string key = reader.str();
        schedules.emplace_back(std::move(key), reader.schedule());
    }
    if (reader.u8() != 'P')
        return reject(CacheLoadStatus::Corrupt, "bad plan-tier tag");
    for (uint64_t i = 0, n = reader.count(); reader.ok() && i < n; ++i) {
        std::string key = reader.str();
        plans.emplace_back(std::move(key), reader.plan());
    }
    if (!reader.ok() || !reader.atEnd())
        return reject(CacheLoadStatus::Corrupt,
                      "truncated or trailing payload bytes");

    // Bulk-load: plain first-writer-wins inserts, so a snapshot loaded
    // into a warm cache never overwrites newer entries, and the stats
    // counters (hits/misses) stay untouched — this run's hit rate
    // starts from zero lookups.
    CacheLoadResult result;
    result.status = CacheLoadStatus::Loaded;
    for (auto &entry : funcs)
        cache.insert(entry.first, entry.second);
    for (auto &entry : bands)
        cache.insertBand(entry.first, entry.second);
    for (auto &entry : schedules)
        cache.insertSchedule(entry.first, entry.second);
    for (auto &entry : plans)
        cache.insertPlan(entry.first, entry.second);
    result.funcEntries = funcs.size();
    result.bandEntries = bands.size();
    result.scheduleEntries = schedules.size();
    result.planEntries = plans.size();
    return result;
}

bool
saveEstimateCache(const EstimateCache &cache, const std::string &path,
                  std::string *error)
{
    std::string bytes = encodeEstimateCache(cache);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (error)
                *error = "cannot open " + tmp + " for writing";
            return false;
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            if (error)
                *error = "short write to " + tmp;
            return false;
        }
    }
    // Atomic publish: a concurrent loader sees either the old snapshot
    // or the new one, never a truncated in-between.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename " + tmp + " to " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

CacheLoadResult
loadEstimateCache(EstimateCache &cache, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return reject(CacheLoadStatus::NoFile, "no snapshot at " + path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return reject(CacheLoadStatus::Corrupt,
                      "read error on " + path);
    return decodeEstimateCache(cache, bytes);
}

CacheLoadResult
loadEstimateCacheLogged(EstimateCache &cache, const std::string &path)
{
    CacheLoadResult result = loadEstimateCache(cache, path);
    switch (result.status) {
    case CacheLoadStatus::Loaded:
        std::fprintf(stderr,
                     "cache snapshot: loaded %zu entries from %s "
                     "(func %zu, band %zu, schedule %zu, plan %zu)\n",
                     result.totalEntries(), path.c_str(),
                     result.funcEntries, result.bandEntries,
                     result.scheduleEntries, result.planEntries);
        break;
    case CacheLoadStatus::NoFile:
        // First run against a cache dir: silent cold start.
        break;
    default:
        std::fprintf(stderr,
                     "warning: ignoring cache snapshot %s (%s); "
                     "starting cold\n",
                     path.c_str(), result.message.c_str());
        break;
    }
    return result;
}

bool
saveEstimateCacheLogged(const EstimateCache &cache, const std::string &path)
{
    std::string error;
    if (saveEstimateCache(cache, path, &error))
        return true;
    std::fprintf(stderr, "warning: cache snapshot not saved: %s\n",
                 error.c_str());
    return false;
}

std::string
defaultCacheSnapshotPath()
{
    const char *dir = std::getenv("SCALEHLS_CACHE_DIR");
    if (!dir || !*dir)
        return std::string();
    std::string path = dir;
    if (path.back() != '/')
        path += '/';
    path += "estimate_cache.shlsnap";
    return path;
}

} // namespace scalehls
