/**
 * @file
 * Snapshot persistence for the four-tier EstimateCache: a versioned,
 * checksummed binary format that lets the content-keyed cache tiers
 * outlive the process (DSE-as-a-service warm starts). Safety rests on
 * properties the tiers already have, not on trusting the file:
 *
 *  - every key is injective and content-derived (EstimateCache::keyFor,
 *    self-contained band digests, bandPlanKey), so entries are valid in
 *    any process — there is nothing process-local to go stale;
 *  - schedule and plan entries are re-validated at every use with a
 *    slow-path fallback, so an entry that no longer matches this
 *    build's pipeline costs a recomputation, never a wrong QoR;
 *  - a format version plus a digest-schema salt in the header reject
 *    snapshots written under an incompatible layout or digest scheme
 *    wholesale, and any truncated/corrupt/unreadable file loads as an
 *    EMPTY cache (cold start with a warning — never a crash, never a
 *    partially-trusted payload).
 *
 * Loading inserts entries only: the hit/miss/eviction counters of the
 * receiving cache are left untouched, so hit-rate reports and bench
 * compare gates always measure THIS run's lookups, not the serialized
 * process's history.
 */

#ifndef SCALEHLS_ESTIMATE_CACHE_IO_H
#define SCALEHLS_ESTIMATE_CACHE_IO_H

#include <cstdint>
#include <string>
#include <string_view>

#include "estimate/estimate_cache.h"

namespace scalehls {

/** Snapshot byte-layout version; bump on any change to the encoding
 * below (field order, widths, new tiers). Version-mismatched snapshots
 * are rejected wholesale. */
inline constexpr uint32_t kCacheSnapshotFormatVersion = 1;

/** The digest-schema salt stamped into every snapshot header: a manual
 * schema version, the digest attribute-coverage registries
 * (estimateRelevantAttrs / digestExcludedAttrs), and a live fingerprint
 * of the digest hash itself (digestHashFingerprint). A snapshot whose
 * salt differs was keyed under a different digest scheme and is
 * rejected wholesale — its keys could silently miss or, worse, alias
 * this build's keys. */
std::string cacheSnapshotSalt();

/** Why (or that) a snapshot load populated the cache. Everything except
 * Loaded leaves the receiving cache exactly as it was (cold start). */
enum class CacheLoadStatus
{
    Loaded,          ///< Entries inserted; counts in CacheLoadResult.
    NoFile,          ///< Path missing/unreadable — silent cold start.
    VersionMismatch, ///< Other format version; rejected wholesale.
    SaltMismatch,    ///< Digest schema changed; rejected wholesale.
    Corrupt          ///< Bad magic/checksum/truncation; rejected.
};

struct CacheLoadResult
{
    CacheLoadStatus status = CacheLoadStatus::NoFile;
    size_t funcEntries = 0;
    size_t bandEntries = 0;
    size_t scheduleEntries = 0;
    size_t planEntries = 0;
    /** Human-readable reason on any non-Loaded status. */
    std::string message;

    bool loaded() const { return status == CacheLoadStatus::Loaded; }
    size_t
    totalEntries() const
    {
        return funcEntries + bandEntries + scheduleEntries + planEntries;
    }
};

/** Serialize all four tiers of @p cache into the snapshot byte format.
 * Entries are exported per tier in sorted key order, so byte-identical
 * cache contents produce byte-identical snapshots regardless of insert
 * order or shard layout. @p format_version / @p salt exist for tests
 * exercising the rejection paths; production callers use the
 * defaults. */
std::string encodeEstimateCache(
    const EstimateCache &cache,
    uint32_t format_version = kCacheSnapshotFormatVersion,
    const std::string &salt = std::string());

/** Validate @p bytes and bulk-insert its entries into @p cache.
 * All-or-nothing: the payload is fully decoded and checksummed before
 * the first insert, so a rejected snapshot leaves @p cache untouched.
 * Inserts are first-writer-wins and never touch the stats counters. */
CacheLoadResult decodeEstimateCache(EstimateCache &cache,
                                    std::string_view bytes);

/** encodeEstimateCache to @p path (written via a temp file + rename, so
 * a concurrent loader never observes a half-written snapshot). Returns
 * false with @p error set on IO failure. */
bool saveEstimateCache(const EstimateCache &cache, const std::string &path,
                       std::string *error = nullptr);

/** Read @p path and decodeEstimateCache it. A missing file is a silent
 * NoFile cold start; every other failure carries a message. */
CacheLoadResult loadEstimateCache(EstimateCache &cache,
                                  const std::string &path);

/** loadEstimateCache, logging rejection/corruption warnings (and a
 * one-line load summary) to stderr — the convenience wrapper the tools
 * and the Compiler use. */
CacheLoadResult loadEstimateCacheLogged(EstimateCache &cache,
                                        const std::string &path);

/** saveEstimateCache, logging IO failures to stderr. */
bool saveEstimateCacheLogged(const EstimateCache &cache,
                             const std::string &path);

/** The default snapshot path under $SCALEHLS_CACHE_DIR
 * ("<dir>/estimate_cache.shlsnap"), or "" when the variable is unset or
 * empty — the load-on-start/save-on-exit hook every DSE entry point
 * resolves its unset cache paths against. */
std::string defaultCacheSnapshotPath();

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_CACHE_IO_H
