#include "estimate/coherence_audit.h"

#include "dialect/ops.h"
#include "ir/printer.h"

namespace scalehls {

const std::vector<std::string> &
estimateRelevantAttrs()
{
    // Keys the estimator (or the analyses it composes: directives, loop
    // bounds, access maps, constants, call targets) reads. kTopFunc and
    // kSymName are deliberately absent: they select WHICH function an
    // estimate starts from, never what a function's own estimate is.
    static const std::vector<std::string> keys = {
        kLoopDirective, kFuncDirective, kDataflowStage, kPointLoop,
        kLowerMap,      kUpperMap,      kLbCount,       kStep,
        kMap,           kCondition,     kValue,         kCallee,
    };
    return keys;
}

std::vector<VerifyError>
auditDigestCoverage(const std::set<std::string> &excluded,
                    const std::vector<std::string> &relevant)
{
    std::vector<VerifyError> errors;
    for (const std::string &key : relevant)
        if (excluded.count(key))
            errors.push_back(
                {VerifyKind::DigestCoverageGap, "digest-registry",
                 "estimate-relevant attribute '" + key +
                     "' is excluded from the band serializer — "
                     "digest-equal bands could estimate differently"});
    return errors;
}

std::vector<VerifyError>
auditDigestCoverage()
{
    return auditDigestCoverage(digestExcludedAttrs(),
                               estimateRelevantAttrs());
}

std::vector<VerifyError>
auditBandCoherence(Operation *band_root, const std::string &claimed_digest,
                   const AllocOwnershipInfo *ownership)
{
    std::vector<VerifyError> errors;
    auto info = bandEstimateDigestInfo(band_root,
                                       /*mask_partitions=*/false,
                                       ownership);
    if (!info) {
        errors.push_back(
            {VerifyKind::MalformedScheduleEntry, opPath(band_root),
             "band claims schedule digest '" + claimed_digest +
                 "' but its digest cannot be derived from the IR"});
        return errors;
    }
    if (info->digest != claimed_digest)
        errors.push_back(
            {VerifyKind::StaleScheduleEntry, opPath(band_root),
             "band digest re-derived from IR is '" + info->digest +
                 "' but the cache entry was claimed under '" +
                 claimed_digest + "'"});
    return errors;
}

std::vector<VerifyError>
auditScheduleEntry(const BandScheduleEntry &entry,
                   const std::vector<Value *> &externals,
                   const std::string &path)
{
    std::vector<VerifyError> errors;
    std::string where = !path.empty()           ? path
                        : !entry.origin.empty() ? entry.origin
                                                : std::string("<entry>");
    auto bad = [&](const std::string &msg) {
        errors.push_back({VerifyKind::MalformedScheduleEntry, where, msg});
    };
    for (size_t m = 0; m < entry.memrefs.size(); ++m) {
        const auto &info = entry.memrefs[m];
        std::string label = "memref record #" + std::to_string(m);
        if (info.extId >= externals.size()) {
            bad(label + ": external id " + std::to_string(info.extId) +
                " out of range (" + std::to_string(externals.size()) +
                " externals)");
            continue;
        }
        Value *memref = externals[info.extId];
        if (!memref || !memref->type().isMemRef()) {
            bad(label + ": external id " + std::to_string(info.extId) +
                " does not resolve to a memref value");
            continue;
        }
        if (!info.read && !info.write)
            bad(label + ": entry lists a memref the band neither reads "
                        "nor writes");
        size_t rank = memref->type().rank();
        if (info.relevant.size() != rank)
            bad(label + ": relevance mask covers " +
                std::to_string(info.relevant.size()) + " dims of a rank-" +
                std::to_string(rank) + " memref");
        auto checkPlan = [&](const PartitionPlan &plan,
                             const char *name) {
            if (plan.kinds.size() != plan.factors.size())
                bad(label + ": " + name +
                    " plan kind/factor arity mismatch");
            else if (!plan.factors.empty() && plan.factors.size() != rank)
                bad(label + ": " + name + " plan covers " +
                    std::to_string(plan.factors.size()) +
                    " dims of a rank-" + std::to_string(rank) + " memref");
        };
        checkPlan(info.contribution, "contribution");
        checkPlan(info.assumed, "assumed");
    }
    return errors;
}

} // namespace scalehls
