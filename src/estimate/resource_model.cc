#include "estimate/resource_model.h"

#include "analysis/memory_analysis.h"
#include "dialect/ops.h"
#include "support/utils.h"

namespace scalehls {

bool
isComputeOp(const Operation *op)
{
    return (op->dialect() == "arith" || op->dialect() == "math") &&
           !op->is(ops::Constant);
}

OpProfile
opProfile(const Operation *op)
{
    // Memory accesses: BRAM-style 2-cycle reads, 1-cycle writes.
    if (op->is(ops::AffineLoad) || op->is(ops::MemLoad))
        return {2, 1, 0, 0};
    if (op->is(ops::AffineStore) || op->is(ops::MemStore))
        return {1, 1, 0, 0};

    if (!isComputeOp(op))
        return {0, 1, 0, 0};

    // The widest float lane among operands and results decides the
    // profile. operand(0) alone mis-profiles mixed-precision ops: an
    // arith op with a narrow first operand feeding a double datapath
    // (or producing a double result) must be costed at the wide width.
    // Only float widths vote — an i1 select condition or an i64 index
    // operand must not promote a single-precision core to double.
    unsigned width = 0;
    auto vote = [&](const Value *value) {
        if (value && value->type().isFloat())
            width = std::max(width, value->type().bitWidth());
    };
    for (unsigned i = 0; i < op->numOperands(); ++i)
        vote(op->operand(i));
    for (const Value *result : op->results())
        vote(result);
    if (width == 0)
        width = 32; // Pure integer/index op; profiles below are fixed.
    bool is_double = width > 32;

    // Floating point cores (Vivado HLS "full_dsp" configurations).
    if (op->is(ops::AddF) || op->is(ops::SubF))
        return is_double ? OpProfile{7, 1, 3, 400} : OpProfile{4, 1, 2, 200};
    if (op->is(ops::MulF))
        return is_double ? OpProfile{6, 1, 11, 300}
                         : OpProfile{3, 1, 3, 100};
    if (op->is(ops::DivF))
        return is_double ? OpProfile{30, 1, 0, 3200}
                         : OpProfile{12, 1, 0, 800};
    if (op->is(ops::MaxF) || op->is(ops::MinF) || op->is(ops::CmpF))
        return {1, 1, 0, 80};
    if (op->is(ops::NegF))
        return {1, 1, 0, 40};
    if (op->is(ops::Exp))
        return is_double ? OpProfile{20, 1, 26, 2000}
                         : OpProfile{10, 1, 7, 600};

    // Integer / index arithmetic (address computation is mostly fabric).
    if (op->is(ops::MulI))
        return {1, 1, 0, 60};
    if (op->is(ops::DivSI) || op->is(ops::RemSI))
        return {8, 1, 0, 400};
    if (op->is(ops::AddI) || op->is(ops::SubI))
        return {1, 1, 0, 20};
    if (op->is(ops::CmpI))
        return {1, 1, 0, 20};
    if (op->is(ops::Select))
        return {1, 1, 0, 30};
    if (op->is(ops::SIToFP) || op->is(ops::FPToSI))
        return {3, 1, 0, 150};
    if (op->is(ops::IndexCast))
        return {0, 1, 0, 0};
    return {1, 1, 0, 20};
}

ResourceBudget
xc7z020()
{
    ResourceBudget budget;
    budget.name = "xc7z020";
    budget.dsp = 220;
    budget.lut = 53200;
    budget.memoryBits = static_cast<int64_t>(4.9 * 1024 * 1024);
    return budget;
}

ResourceBudget
vu9pSlr()
{
    ResourceBudget budget;
    budget.name = "vu9p-slr";
    budget.dsp = 2280;
    budget.lut = 394080;
    budget.memoryBits = static_cast<int64_t>(115.3 * 1024 * 1024);
    return budget;
}

std::optional<ResourceBudget>
parseResourceBudget(const std::string &spec)
{
    if (spec == "xc7z020")
        return xc7z020();
    if (spec == "vu9p-slr")
        return vu9pSlr();

    // Custom "dsp:lut:bram18k" triple.
    int64_t fields[3];
    size_t begin = 0;
    for (int i = 0; i < 3; ++i) {
        size_t end = i < 2 ? spec.find(':', begin) : spec.size();
        if (end == std::string::npos || end == begin)
            return std::nullopt;
        int64_t value = 0;
        for (size_t pos = begin; pos < end; ++pos) {
            char c = spec[pos];
            if (c < '0' || c > '9')
                return std::nullopt;
            value = value * 10 + (c - '0');
            if (value > (int64_t(1) << 40))
                return std::nullopt;
        }
        fields[i] = value;
        begin = end + 1;
    }
    ResourceBudget budget;
    budget.name = spec;
    budget.dsp = fields[0];
    budget.lut = fields[1];
    budget.memoryBits = fields[2] * 18 * 1024;
    return budget;
}

ResourceUsage
memrefResource(Type memref_type)
{
    ResourceUsage usage;
    if (!memref_type.isMemRef())
        return usage;
    if (memref_type.memorySpace() == MemKind::DRAM)
        return usage; // Off-chip.

    int64_t elements = memref_type.numElements();
    int64_t width = memref_type.elementType().bitWidth();
    PartitionPlan plan =
        decodePartitionMap(memref_type.layout(), memref_type.shape());
    int64_t banks = plan.totalBanks();
    int64_t per_bank_elements = ceilDiv(elements, banks);
    int64_t per_bank_bits = per_bank_elements * width;

    usage.memoryBits = elements * width;
    // Small banks go to LUTRAM; larger ones consume whole BRAM18Ks.
    constexpr int64_t kLutRamThresholdBits = 1024;
    if (per_bank_bits > kLutRamThresholdBits) {
        usage.bram18k = banks * ceilDiv(per_bank_bits, 18 * 1024);
    } else {
        usage.lut = banks * ceilDiv(per_bank_bits, 64);
    }
    return usage;
}

} // namespace scalehls
