/**
 * @file
 * The FPGA resource model: per-operator latency/resource profiles
 * calibrated to Vivado HLS floating-point cores, device budgets for the
 * paper's two platforms, and resource usage accounting.
 */

#ifndef SCALEHLS_ESTIMATE_RESOURCE_MODEL_H
#define SCALEHLS_ESTIMATE_RESOURCE_MODEL_H

#include <cstdint>
#include <optional>
#include <string>

#include "ir/ir.h"

namespace scalehls {

/** Latency / initiation interval / resource cost of one operator
 * instance. */
struct OpProfile
{
    int latency = 0; ///< Cycles from operand availability to result.
    int ii = 1;      ///< Cycles between successive inputs of one instance.
    int dsp = 0;
    int lut = 0;
};

/** Profile of an operation (by name and operand bit width). Memory access
 * profiles model BRAM reads (1-cycle address, 1-cycle data) and writes. */
OpProfile opProfile(const Operation *op);

/** True if the op consumes a schedulable functional unit (arith/math). */
bool isComputeOp(const Operation *op);

/** Resource usage of a design (or part of one). */
struct ResourceUsage
{
    int64_t dsp = 0;
    int64_t lut = 0;
    int64_t bram18k = 0;
    int64_t memoryBits = 0;

    ResourceUsage &
    operator+=(const ResourceUsage &other)
    {
        dsp += other.dsp;
        lut += other.lut;
        bram18k += other.bram18k;
        memoryBits += other.memoryBits;
        return *this;
    }
};

/** A device resource budget. */
struct ResourceBudget
{
    std::string name;
    int64_t dsp = 0;
    int64_t lut = 0;
    int64_t memoryBits = 0; ///< On-chip memory capacity.

    bool
    fits(const ResourceUsage &usage) const
    {
        return usage.dsp <= dsp && usage.lut <= lut &&
               usage.memoryBits <= memoryBits;
    }
};

/** Xilinx XC7Z020 (edge platform of Table III): 4.9 Mb BRAM, 220 DSP,
 * 53,200 LUT. */
ResourceBudget xc7z020();

/** One SLR of a Xilinx VU9P (platform of Table V): 115.3 Mb, 2,280 DSP,
 * 394,080 LUT. */
ResourceBudget vu9pSlr();

/** Parse a device budget spec: the named profiles "xc7z020" and
 * "vu9p-slr", or a custom "dsp:lut:bram18k" triple (non-negative
 * integers; the BRAM18K count converts to memoryBits at 18 Kb per
 * block). Returns nullopt on malformed specs. */
std::optional<ResourceBudget> parseResourceBudget(const std::string &spec);

/** BRAM/bit usage of one memref value under its partition layout. Each
 * bank is at least one BRAM18K once it exceeds the LUTRAM threshold. */
ResourceUsage memrefResource(Type memref_type);

} // namespace scalehls

#endif // SCALEHLS_ESTIMATE_RESOURCE_MODEL_H
