#include "estimate/estimate_cache.h"

#include <cstdint>
#include <set>
#include <vector>

#include "dialect/ops.h"

namespace scalehls {

namespace {

/** Double-lane hash over the canonical serialization: FNV-1a in lane A,
 * an FNV-style mix with a genuinely different odd multiplier (the
 * murmur3 finalizer constant) in lane B. Two decorrelated 64-bit lanes
 * give a 128-bit digest; a collision would need both lanes to collide on
 * the same pair of serializations, which is negligible against the
 * cache's lifetime. */
struct Digest128
{
    static constexpr uint64_t kMulA = 0x100000001b3ull;
    static constexpr uint64_t kMulB = 0xff51afd7ed558ccdull;

    uint64_t lane_a = 0xcbf29ce484222325ull;
    uint64_t lane_b = 0x9e3779b97f4a7c15ull;

    void
    feed(std::string_view text)
    {
        for (unsigned char c : text) {
            lane_a = (lane_a ^ c) * kMulA;
            lane_b = (lane_b ^ c) * kMulB + 0x2545f4914f6cdd1dull;
        }
        // Length separator: "ab" + "c" must not digest like "a" + "bc".
        lane_a = (lane_a ^ text.size()) * kMulA;
        lane_b = (lane_b ^ text.size()) * kMulB;
    }

    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(32, '0');
        uint64_t lanes[2] = {lane_a, lane_b};
        for (int lane = 0; lane < 2; ++lane)
            for (int i = 0; i < 16; ++i)
                out[lane * 16 + i] =
                    digits[(lanes[lane] >> (60 - 4 * i)) & 0xf];
        return out;
    }
};

/** Serialize the op tree of @p op into @p digest: op names, attributes
 * (AttrMap is ordered, so iteration is deterministic), operand wiring via
 * function-local value numbering, and result / block-argument types. */
class FuncSerializer
{
  public:
    explicit FuncSerializer(Digest128 &digest) : digest_(digest) {}

    void
    serialize(Operation *op)
    {
        digest_.feed("op");
        digest_.feed(op->name());
        for (const auto &[name, attr] : op->attrs()) {
            if (name == kTopFunc)
                continue; // Estimation-irrelevant; see header comment.
            digest_.feed(name);
            digest_.feed(attr.toString());
        }
        for (Value *operand : op->operands())
            digest_.feed(operand ? refOf(operand) : std::string("null"));
        for (Value *result : op->results()) {
            define(result);
            digest_.feed(result->type().toString());
        }
        for (unsigned r = 0; r < op->numRegions(); ++r) {
            digest_.feed("region");
            for (const auto &block : op->region(r).blocks()) {
                digest_.feed("block");
                for (Value *arg : block->arguments()) {
                    define(arg);
                    digest_.feed(arg->type().toString());
                }
                for (const auto &nested : block->ops())
                    serialize(nested.get());
            }
        }
        digest_.feed("end");
    }

  private:
    void define(const Value *value) { ids_.emplace(value, ids_.size()); }

    std::string
    refOf(const Value *value)
    {
        auto it = ids_.find(value);
        // Values defined outside the function (there are none in this
        // IR's top-level-function structure) degrade to a fixed marker.
        return it == ids_.end() ? std::string("ext")
                                : "%" + std::to_string(it->second);
    }

    Digest128 &digest_;
    std::map<const Value *, unsigned> ids_;
};

/** Digest @p func, recursing into callees through @p out. @p on_path
 * guards call cycles: a back edge folds into a marker instead of
 * recursing forever, and every function the marker reaches (directly or
 * through a callee) is recorded in out.cyclic — its digest depends on
 * the traversal entry, not on content alone. */
const std::string &
digestFunc(Operation *func, Operation *module, EstimateDigests &out,
           std::set<Operation *> &on_path)
{
    auto it = out.digest.find(func);
    if (it != out.digest.end())
        return it->second;

    Digest128 digest;
    FuncSerializer(digest).serialize(func);

    // Fold in direct callees (ordered by call-site appearance; duplicates
    // deduplicated) so a callee-body change invalidates the caller too.
    // The same collection feeds the estimator's callee prefetch, so the
    // digested and the estimated callee sets cannot diverge.
    on_path.insert(func);
    for (Operation *callee : collectDistinctCallees(func, module)) {
        digest.feed(funcName(callee));
        if (on_path.count(callee)) {
            digest.feed("cycle");
            out.cyclic.insert(func);
        } else {
            digest.feed(digestFunc(callee, module, out, on_path));
            if (out.cyclic.count(callee))
                out.cyclic.insert(func);
        }
    }
    on_path.erase(func);

    return out.digest.emplace(func, digest.hex()).first->second;
}

} // namespace

void
addFuncEstimateDigests(Operation *func, Operation *module,
                       EstimateDigests &out)
{
    std::set<Operation *> on_path;
    digestFunc(func, module, out, on_path);
}

EstimateDigests
moduleEstimateDigests(Operation *module)
{
    EstimateDigests out;
    for (const auto &op : module->region(0).front().ops())
        if (op->is(ops::Func))
            addFuncEstimateDigests(op.get(), module, out);
    return out;
}

} // namespace scalehls
