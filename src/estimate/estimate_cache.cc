#include "estimate/estimate_cache.h"

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/buffer_analysis.h"
#include "analysis/memory_analysis.h"
#include "dialect/ops.h"
#include "estimate/coherence_audit.h"

namespace scalehls {

const std::set<std::string> &
digestExcludedAttrs()
{
    // The serializer skips exactly this set, and the digest-coverage
    // audit (estimate/coherence_audit) checks it against the registry of
    // estimate-relevant attributes — one source of truth for both.
    static const std::set<std::string> excluded = {kTopFunc};
    return excluded;
}

namespace {

/** Double-lane hash over the canonical serialization: FNV-1a in lane A,
 * an FNV-style mix with a genuinely different odd multiplier (the
 * murmur3 finalizer constant) in lane B. Two decorrelated 64-bit lanes
 * give a 128-bit digest; a collision would need both lanes to collide on
 * the same pair of serializations, which is negligible against the
 * cache's lifetime. */
struct Digest128
{
    static constexpr uint64_t kMulA = 0x100000001b3ull;
    static constexpr uint64_t kMulB = 0xff51afd7ed558ccdull;

    uint64_t lane_a = 0xcbf29ce484222325ull;
    uint64_t lane_b = 0x9e3779b97f4a7c15ull;

    void
    feed(std::string_view text)
    {
        for (unsigned char c : text) {
            lane_a = (lane_a ^ c) * kMulA;
            lane_b = (lane_b ^ c) * kMulB + 0x2545f4914f6cdd1dull;
        }
        // Length separator: "ab" + "c" must not digest like "a" + "bc".
        lane_a = (lane_a ^ text.size()) * kMulA;
        lane_b = (lane_b ^ text.size()) * kMulB;
    }

    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(32, '0');
        uint64_t lanes[2] = {lane_a, lane_b};
        for (int lane = 0; lane < 2; ++lane)
            for (int i = 0; i < 16; ++i)
                out[lane * 16 + i] =
                    digits[(lanes[lane] >> (60 - 4 * i)) & 0xf];
        return out;
    }
};

/** Serialize an op tree into @p digest: op names, attributes (AttrMap is
 * ordered, so iteration is deterministic), operand wiring via tree-local
 * value numbering, and result / block-argument types. One traversal
 * serves both cache tiers — function-tier and band-tier digests must
 * never drift in what they cover — and the modes differ only in how
 * values defined OUTSIDE the serialized tree are referenced:
 *
 *  - Function mode: externals degrade to a fixed "ext" marker (none
 *    exist in this IR's top-level-function structure).
 *  - Band mode: a fixed marker would alias bands that access different
 *    arrays, so every external value gets a stable local id on first
 *    reference, and its type (covering memref shapes and partition
 *    layouts) plus a canonical summary of its definition are folded in:
 *    block arguments as "arg"; arith.constant as "const" + the value
 *    (trip counts and guards computed from external constants depend on
 *    it); memref.alloc as "alloc" (the estimate reads only the memref
 *    type). Any other defining op makes the band NOT content-determined
 *    — estimation may read through it in ways the digest cannot see —
 *    and the band must not be shared. A func.call inside the band also
 *    disqualifies it: the band estimate would depend on callee bodies
 *    the digest does not cover. Callee coverage in function mode comes
 *    from digestFunc folding callee digests instead.
 *
 * The hlscpp.top_func attribute is skipped in both modes: it selects the
 * entry point of a module-level estimate but never changes a function's
 * (or band's) own estimate, and band roots never carry it anyway. */
class TreeSerializer
{
  public:
    enum class Mode
    {
        Function,
        Band
    };

    /** @p relevance (band mode with @p mask_partitions only): per-dim
     * partition relevance of the band's accessed memrefs; external
     * memref layouts are digested per dim and masked along irrelevant
     * dims (see bandEstimateDigestInfo). @p ownership (band mode only):
     * folds each external alloc's kept/dead note into the digest — the
     * write-only-buffer cleanup's per-buffer verdict, which the band's
     * own subtree cannot determine (see AllocOwnershipInfo). */
    TreeSerializer(Digest128 &digest, Mode mode,
                   bool mask_partitions = false,
                   const std::map<Value *, std::vector<bool>> *relevance =
                       nullptr,
                   const AllocOwnershipInfo *ownership = nullptr)
        : digest_(digest), mode_(mode),
          mask_partitions_(mask_partitions), relevance_(relevance),
          ownership_(ownership)
    {}

    /** False when band mode found content the digest cannot determine
     * (always true in function mode). */
    bool cacheable() const { return cacheable_; }

    /** True when a non-trivially partitioned layout dim was masked. */
    bool partitionMasked() const { return partition_masked_; }

    /** External values in first-reference (id) order. */
    const std::vector<Value *> &externals() const { return externals_; }

    void
    serialize(Operation *op)
    {
        if (mode_ == Mode::Band && op->is(ops::Call)) {
            cacheable_ = false;
            return;
        }
        digest_.feed("op");
        digest_.feed(op->name());
        for (const auto &[name, attr] : op->attrs()) {
            if (digestExcludedAttrs().count(name))
                continue; // Estimation-irrelevant; see class comment.
            digest_.feed(name);
            digest_.feed(attr.toString());
        }
        if (isCommutativeOp(op)) {
            // Canonicalize commutative noise: resolve the refs in operand
            // order (first-reference registration must stay deterministic)
            // but feed them sorted, so `a+b` and `b+a` digest equally.
            // Sound because estimation is operand-order symmetric for
            // these ops and CSE merges swapped duplicates (see
            // isCommutativeOp); symmetric bands — 3mm's identical stages
            // with operand-order drift — then share schedule entries.
            std::string lhs = op->operand(0)
                                  ? refOf(op->operand(0))
                                  : std::string("null");
            std::string rhs = op->operand(1)
                                  ? refOf(op->operand(1))
                                  : std::string("null");
            if (rhs < lhs)
                std::swap(lhs, rhs);
            digest_.feed(lhs);
            digest_.feed(rhs);
        } else {
            for (Value *operand : op->operands())
                digest_.feed(operand ? refOf(operand)
                                     : std::string("null"));
        }
        for (Value *result : op->results()) {
            define(result);
            digest_.feed(result->type().toString());
        }
        for (unsigned r = 0; r < op->numRegions(); ++r) {
            digest_.feed("region");
            for (const auto &block : op->region(r).blocks()) {
                digest_.feed("block");
                for (Value *arg : block->arguments()) {
                    define(arg);
                    digest_.feed(arg->type().toString());
                }
                for (const auto &nested : block->ops())
                    serialize(nested.get());
            }
        }
        digest_.feed("end");
    }

  private:
    void define(const Value *value) { ids_.emplace(value, ids_.size()); }

    /** Digest an external value's type. Partition-aware keying digests
     * memrefs decomposed — shape, element, memory space, then the
     * DECODED partition plan per dimension, masked to a fixed marker
     * along dims the band's estimate provably never reads (the estimator
     * consults layouts only through decodePartitionMap, so digesting the
     * decoded plan is exactly as discriminating as the estimate is
     * sensitive). Everything else keeps the full type string. */
    void
    feedExternalType(Value *value)
    {
        Type t = value->type();
        if (!mask_partitions_ || !t.isMemRef()) {
            digest_.feed(t.toString());
            return;
        }
        digest_.feed("memref");
        for (int64_t s : t.shape())
            digest_.feed(std::to_string(s));
        digest_.feed(t.elementType().toString());
        digest_.feed(std::to_string(static_cast<int>(t.memorySpace())));
        PartitionPlan plan = decodePartitionMap(t.layout(), t.shape());
        const std::vector<bool> *mask = nullptr;
        if (relevance_) {
            auto it = relevance_->find(value);
            if (it != relevance_->end() &&
                it->second.size() == t.rank())
                mask = &it->second;
        }
        for (unsigned d = 0; d < t.rank(); ++d) {
            if (mask && (*mask)[d]) {
                digest_.feed(
                    std::to_string(static_cast<int>(plan.kinds[d])) +
                    ":" + std::to_string(plan.factors[d]));
            } else {
                digest_.feed("*");
                if (plan.kinds[d] != PartitionKind::None ||
                    plan.factors[d] != 1)
                    partition_masked_ = true;
            }
        }
    }

    std::string
    refOf(Value *value)
    {
        auto it = ids_.find(value);
        if (it != ids_.end())
            return "%" + std::to_string(it->second);
        if (mode_ == Mode::Function)
            return "ext";
        // Band mode, first reference to an external value: register it
        // and fold its type and definition summary into the digest.
        unsigned id = static_cast<unsigned>(ids_.size());
        ids_.emplace(value, id);
        externals_.push_back(value);
        digest_.feed("ext");
        digest_.feed(std::to_string(id));
        feedExternalType(value);
        Operation *def = value->definingOp();
        if (!def) {
            digest_.feed("arg");
        } else if (def->is(ops::Constant)) {
            digest_.feed("const");
            digest_.feed(def->attr(kValue).toString());
        } else if (def->is(ops::Alloc)) {
            digest_.feed("alloc");
            if (ownership_)
                digest_.feed(ownership_->digestNote(value));
        } else {
            cacheable_ = false;
        }
        return "%" + std::to_string(id);
    }

    Digest128 &digest_;
    Mode mode_;
    bool mask_partitions_ = false;
    const std::map<Value *, std::vector<bool>> *relevance_ = nullptr;
    const AllocOwnershipInfo *ownership_ = nullptr;
    bool cacheable_ = true;
    bool partition_masked_ = false;
    std::map<const Value *, unsigned> ids_;
    std::vector<Value *> externals_;
};

/** Digest @p func, recursing into callees through @p out. @p on_path
 * guards call cycles: a back edge folds into a marker instead of
 * recursing forever, and every function the marker reaches (directly or
 * through a callee) is recorded in out.cyclic — its digest depends on
 * the traversal entry, not on content alone. */
const std::string &
digestFunc(Operation *func, Operation *module, EstimateDigests &out,
           std::set<Operation *> &on_path)
{
    auto it = out.digest.find(func);
    if (it != out.digest.end())
        return it->second;

    Digest128 digest;
    TreeSerializer(digest, TreeSerializer::Mode::Function)
        .serialize(func);

    // Fold in direct callees (ordered by call-site appearance; duplicates
    // deduplicated) so a callee-body change invalidates the caller too.
    // The same collection feeds the estimator's callee prefetch, so the
    // digested and the estimated callee sets cannot diverge.
    on_path.insert(func);
    for (Operation *callee : collectDistinctCallees(func, module)) {
        digest.feed(funcName(callee));
        if (on_path.count(callee)) {
            digest.feed("cycle");
            out.cyclic.insert(func);
        } else {
            digest.feed(digestFunc(callee, module, out, on_path));
            if (out.cyclic.count(callee))
                out.cyclic.insert(func);
        }
    }
    on_path.erase(func);

    return out.digest.emplace(func, digest.hex()).first->second;
}

} // namespace

void
addFuncEstimateDigests(Operation *func, Operation *module,
                       EstimateDigests &out)
{
    std::set<Operation *> on_path;
    digestFunc(func, module, out, on_path);
}

std::optional<BandDigestInfo>
bandEstimateDigestInfo(Operation *band_root, bool mask_partitions,
                       const AllocOwnershipInfo *ownership)
{
    Digest128 digest;
    // Domain-separate from function digests AND between the keying
    // schemes — masked, partition-sensitive and ownership-annotated keys
    // must never alias when several feed one cache.
    digest.feed(mask_partitions ? "band-masked" : "band");
    digest.feed(ownership ? "owned" : "plain");
    std::map<Value *, std::vector<bool>> relevance;
    if (mask_partitions)
        relevance = partitionRelevantDims(band_root);
    TreeSerializer serializer(digest, TreeSerializer::Mode::Band,
                              mask_partitions, &relevance, ownership);
    serializer.serialize(band_root);
    if (!serializer.cacheable())
        return std::nullopt;
    BandDigestInfo info;
    info.digest = digest.hex();
    info.partitionMasked = serializer.partitionMasked();
    info.externals = serializer.externals();
    return info;
}

std::optional<BandPlanSeed>
bandPlanSeed(Operation *band_root, const AllocOwnershipInfo *ownership)
{
    Digest128 digest;
    // Own domain: plan keys must never alias the band/schedule digests
    // (they hash PRISTINE content plus a BandChoice, not transformed
    // content). Ownership notes are REQUIRED key material — the zero-IR
    // compose path consumes plan outcomes without ever materializing the
    // band, so nothing downstream would catch an ownership mismatch.
    digest.feed("plan");
    digest.feed(ownership ? "owned" : "plain");
    TreeSerializer serializer(digest, TreeSerializer::Mode::Band,
                              /*mask_partitions=*/false, nullptr,
                              ownership);
    serializer.serialize(band_root);
    if (!serializer.cacheable())
        return std::nullopt;
    BandPlanSeed seed;
    seed.laneA = digest.lane_a;
    seed.laneB = digest.lane_b;
    seed.externals = serializer.externals();
    return seed;
}

std::string
bandPlanKey(const BandPlanSeed &seed, bool loop_perfectization,
            bool remove_variable_bound, const std::vector<unsigned> &perm,
            const std::vector<int64_t> &tiles, int64_t target_ii)
{
    Digest128 digest;
    digest.lane_a = seed.laneA;
    digest.lane_b = seed.laneB;
    digest.feed("choice");
    digest.feed(loop_perfectization ? "lp1" : "lp0");
    digest.feed(remove_variable_bound ? "rvb1" : "rvb0");
    digest.feed("perm");
    for (unsigned p : perm)
        digest.feed(std::to_string(p));
    digest.feed("tile");
    for (int64_t t : tiles)
        digest.feed(std::to_string(t));
    digest.feed("ii");
    digest.feed(std::to_string(target_ii));
    return digest.hex();
}

std::optional<std::string>
bandEstimateDigest(Operation *band_root, bool mask_partitions)
{
    auto info = bandEstimateDigestInfo(band_root, mask_partitions);
    if (!info)
        return std::nullopt;
    return std::move(info->digest);
}

EstimateDigests
moduleEstimateDigests(Operation *module)
{
    EstimateDigests out;
    for (const auto &op : module->region(0).front().ops())
        if (op->is(ops::Func))
            addFuncEstimateDigests(op.get(), module, out);
    return out;
}

std::string
digestHashFingerprint()
{
    // Canonical probe through the exact digest pipeline entry points the
    // cache keys come from: the raw hash (lane constants, mixing, the
    // length separator) and the domain tags of the band/plan keying. Any
    // change to either moves this fingerprint, which moves the snapshot
    // salt, which invalidates persisted caches keyed under the old
    // scheme.
    Digest128 digest;
    digest.feed("scalehls-digest-probe");
    digest.feed("band-masked");
    digest.feed("band");
    digest.feed("owned");
    digest.feed("plain");
    digest.feed("plan");
    digest.feed("choice");
    return digest.hex();
}

std::optional<EstimateCacheTierCaps>
parseEstimateCacheCaps(const std::string &spec)
{
    std::vector<size_t> parts;
    size_t begin = 0;
    while (begin <= spec.size()) {
        size_t end = spec.find(':', begin);
        if (end == std::string::npos)
            end = spec.size();
        std::string part = spec.substr(begin, end - begin);
        if (part.empty() ||
            part.find_first_not_of("0123456789") != std::string::npos)
            return std::nullopt;
        parts.push_back(std::stoull(part));
        begin = end + 1;
        if (end == spec.size())
            break;
    }
    EstimateCacheTierCaps caps;
    if (parts.size() == 1) {
        caps.func = caps.band = caps.schedule = caps.plan = parts[0];
        return caps;
    }
    if (parts.size() != 4)
        return std::nullopt;
    caps.func = parts[0];
    caps.band = parts[1];
    caps.schedule = parts[2];
    caps.plan = parts[3];
    return caps;
}

} // namespace scalehls
