/**
 * @file
 * -array-partition (paper Section V-C2): detects the memory access pattern
 * of each array (metric of Eq. 1), selects a cyclic/block partition per
 * dimension and encodes it into the memref's affine layout map. An
 * inter-procedural pass: arrays passed into sub-functions are resolved to
 * their roots so one globally optimal plan is chosen per array.
 */

#include <map>
#include <set>

#include "analysis/memory_analysis.h"
#include "transform/pass.h"

namespace scalehls {

void
applyPartitionPlan(Value *memref, const PartitionPlan &plan)
{
    Type t = memref->type();
    assert(t.isMemRef());
    AffineMap layout = buildPartitionMap(plan, t.shape());
    memref->setType(t.withLayout(layout));
}

namespace {

/** Accumulates alias sets and per-scope access groups for root memrefs. */
class PartitionAnalysis
{
  public:
    explicit PartitionAnalysis(Operation *module) : module_(module) {}

    void
    analyzeFunc(Operation *func,
                const std::map<Value *, Value *> &arg_to_root)
    {
        // Record aliases so layouts can be propagated to callee args.
        for (const auto &[alias, root] : arg_to_root)
            aliases_[root].push_back(alias);

        auto resolveRoot = [&](Value *memref) {
            auto it = arg_to_root.find(memref);
            return it == arg_to_root.end() ? memref : it->second;
        };

        // Accesses inside each top-level band, normalized over band IVs.
        std::vector<Operation *> band_roots;
        for (auto &band : getLoopBands(func)) {
            band_roots.push_back(band.front());
            auto accesses = collectAccesses(band.front(), bandIVs(band));
            for (MemAccess &access : accesses)
                access.memref = resolveRoot(access.memref);
            for (auto &[memref, group] : groupByMemRef(accesses))
                scopeGroups_[memref].push_back(std::move(group));
        }

        // Straight-line accesses (outside every band) form one more scope.
        std::vector<MemAccess> flat;
        func->walk([&](Operation *op) {
            if (!isMemoryAccess(op))
                return;
            for (Operation *root : band_roots)
                if (root == op || root->isAncestorOf(op))
                    return;
            auto accesses = collectAccesses(op, {});
            for (MemAccess &access : accesses) {
                access.memref = resolveRoot(access.memref);
                flat.push_back(std::move(access));
            }
        });
        for (auto &[memref, group] : groupByMemRef(flat))
            scopeGroups_[memref].push_back(std::move(group));

        // Recurse into callees with argument mapping. on_path_ guards
        // against call cycles (recursive designs would otherwise recurse
        // until stack overflow; the estimator rejects them as infeasible,
        // but the partition analysis must survive walking them).
        on_path_.insert(func);
        func->walk([&](Operation *op) {
            if (!op->is(ops::Call))
                return;
            Operation *callee =
                lookupFunc(module_, op->attr(kCallee).getString());
            if (!callee || on_path_.count(callee))
                return;
            std::map<Value *, Value *> callee_map;
            Block *callee_body = funcBody(callee);
            for (unsigned i = 0; i < op->numOperands(); ++i) {
                if (i < callee_body->numArguments() &&
                    op->operand(i)->type().isMemRef())
                    callee_map[callee_body->argument(i)] =
                        resolveRoot(op->operand(i));
            }
            analyzeFunc(callee, callee_map);
        });
        on_path_.erase(func);
    }

    /** Compute per-scope plans and merge (max factor wins per dim). */
    std::map<Value *, PartitionPlan>
    mergedPlans() const
    {
        std::map<Value *, PartitionPlan> plans;
        for (const auto &[memref, groups] : scopeGroups_) {
            if (!memref->type().isMemRef())
                continue;
            unsigned rank = memref->type().rank();
            PartitionPlan merged;
            merged.kinds.assign(rank, PartitionKind::None);
            merged.factors.assign(rank, 1);
            for (const auto &group : groups) {
                PartitionPlan plan = computePartitionPlan(memref, group);
                for (unsigned d = 0; d < rank; ++d) {
                    if (plan.factors[d] > merged.factors[d]) {
                        merged.factors[d] = plan.factors[d];
                        merged.kinds[d] = plan.kinds[d];
                    }
                }
            }
            plans[memref] = std::move(merged);
        }
        return plans;
    }

    const std::vector<Value *> &
    aliasesOf(Value *root) const
    {
        static const std::vector<Value *> empty;
        auto it = aliases_.find(root);
        return it == aliases_.end() ? empty : it->second;
    }

  private:
    Operation *module_;
    std::map<Value *, std::vector<std::vector<MemAccess>>> scopeGroups_;
    std::map<Value *, std::vector<Value *>> aliases_;
    std::set<Operation *> on_path_;
};

} // namespace

bool
applyArrayPartition(Operation *func)
{
    assert(isa(func, ops::Func));
    Operation *module = func->parentOfName(ops::Module);
    PartitionAnalysis analysis(module);
    analysis.analyzeFunc(func, {});

    bool changed = false;
    for (const auto &[memref, plan] : analysis.mergedPlans()) {
        if (plan.isTrivial())
            continue;
        applyPartitionPlan(memref, plan);
        // Keep callee argument types consistent with the root layout.
        for (Value *alias : analysis.aliasesOf(memref))
            alias->setType(memref->type());
        changed = true;
    }
    return changed;
}

} // namespace scalehls
