/**
 * @file
 * -split-function (paper Section V-A2): outlines each group of min-gran
 * adjacent dataflow stages into a sub-function and replaces the group with
 * a call, exposing the throughput-area tradeoff of dataflow granularity
 * (paper Fig. 4d).
 */

#include <map>

#include "dialect/graph_ops.h"
#include "transform/pass.h"

namespace scalehls {

bool
applySplitFunction(Operation *module, Operation *func, int64_t min_gran)
{
    assert(isa(module, ops::Module) && isa(func, ops::Func));
    if (min_gran < 1)
        min_gran = 1;
    Block *body = funcBody(func);

    // Group staged ops by merged stage id (stage / min_gran).
    std::map<int64_t, std::vector<Operation *>> groups;
    for (auto &op : body->ops()) {
        Attribute stage = op->attr(kDataflowStage);
        if (stage.is<int64_t>())
            groups[stage.getInt() / min_gran].push_back(op.get());
    }
    if (groups.size() < 2)
        return false; // Nothing to split.

    Operation *ret = body->back();
    assert(ret->is(ops::Return));

    // Values replaced by call results so far.
    std::map<Value *, Value *> replacement;
    auto resolve = [&](Value *v) {
        auto it = replacement.find(v);
        return it == replacement.end() ? v : it->second;
    };

    int64_t index = 0;
    for (auto &[group_id, group_ops] : groups) {
        // Inputs: operands defined outside the group. Outputs: results
        // used outside the group.
        std::vector<Value *> inputs;
        std::vector<Value *> outputs;
        auto inGroup = [&](Operation *op) {
            for (Operation *member : group_ops)
                if (member == op)
                    return true;
            return false;
        };
        for (Operation *op : group_ops) {
            for (Value *operand : op->operands()) {
                Operation *def = operand->definingOp();
                if (def && inGroup(def))
                    continue;
                if (std::find(inputs.begin(), inputs.end(), operand) ==
                    inputs.end())
                    inputs.push_back(operand);
            }
            for (Value *result : op->results()) {
                bool external = false;
                for (Operation *user : result->users())
                    external |= !inGroup(user);
                if (external)
                    outputs.push_back(result);
            }
        }

        // Create the sub-function.
        std::string sub_name =
            funcName(func) + "_dataflow" + std::to_string(index++);
        std::vector<Type> arg_types;
        for (Value *input : inputs)
            arg_types.push_back(input->type());
        Operation *sub_func = createFunc(module, sub_name, arg_types);
        sub_func->setAttr(kDataflowStage, group_id);
        Block *sub_body = funcBody(sub_func);
        Operation *sub_ret = sub_body->back();

        // Move the group ops and retarget their external operands to the
        // new arguments.
        for (Operation *op : group_ops)
            sub_body->insertBefore(sub_ret, body->take(op));
        for (Operation *op : group_ops) {
            op->walk([&](Operation *nested) {
                for (unsigned i = 0; i < nested->numOperands(); ++i) {
                    Value *operand = nested->operand(i);
                    for (unsigned k = 0; k < inputs.size(); ++k)
                        if (operand == inputs[k])
                            nested->setOperand(i, sub_body->argument(k));
                }
            });
        }
        sub_ret->setOperands(outputs);

        // Build the call in the original function (before func.return,
        // in stage order) and redirect uses outside the sub-function.
        std::vector<Type> result_types;
        for (Value *output : outputs)
            result_types.push_back(output->type());
        std::vector<Value *> call_operands;
        for (Value *input : inputs)
            call_operands.push_back(resolve(input));
        OpBuilder b(body, ret);
        Operation *call =
            b.create(std::string(ops::Call), result_types, call_operands,
                     {{kCallee, Attribute(sub_name)}});
        auto insideSubFunc = [&](Operation *user) {
            for (Operation *p = user; p; p = p->parentOp())
                if (p == sub_func)
                    return true;
            return false;
        };
        for (unsigned k = 0; k < outputs.size(); ++k) {
            auto users = outputs[k]->users();
            for (Operation *user : users) {
                if (insideSubFunc(user))
                    continue;
                for (unsigned i = 0; i < user->numOperands(); ++i)
                    if (user->operand(i) == outputs[k])
                        user->setOperand(i, call->result(k));
            }
            replacement[outputs[k]] = call->result(k);
        }
    }

    FuncDirective d = getFuncDirective(func);
    d.dataflow = true;
    setFuncDirective(func, d);
    return true;
}

} // namespace scalehls
