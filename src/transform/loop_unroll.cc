/**
 * @file
 * -affine-loop-unroll: partial and full loop unrolling. Affine subscripts
 * and conditions are recomposed symbolically (the IR stays affine), and
 * only non-affine SSA uses of the induction variable materialize arith ops.
 */

#include "analysis/loop_analysis.h"
#include "support/utils.h"
#include "transform/pass.h"
#include "transform/utils.h"

namespace scalehls {

namespace {

/** Trip count that is static even for variable bounds of the form
 * lb = f(ivs), ub = f(ivs) + c over identical operands (tiling's point
 * loops). */
std::optional<int64_t>
getStaticTripCount(AffineForOp loop)
{
    if (auto trip = loop.constantTripCount())
        return trip;
    AffineMap lb = loop.lowerBoundMap();
    AffineMap ub = loop.upperBoundMap();
    if (lb.numResults() != 1 || ub.numResults() != 1)
        return std::nullopt;
    if (loop.lowerBoundOperands() != loop.upperBoundOperands())
        return std::nullopt;
    auto extent = constantDiff(ub.result(0), lb.result(0));
    if (!extent)
        return std::nullopt;
    if (*extent <= 0)
        return 0;
    return ceilDiv(*extent, loop.step());
}

/** Conservative op-count guard against pathological unroll requests. */
constexpr int64_t kMaxUnrolledOps = 1 << 13;

int64_t
countNestedOps(Operation *op)
{
    int64_t count = 0;
    op->walk([&](Operation *) { ++count; });
    return count;
}

bool
fullyUnroll(AffineForOp loop, int64_t trip)
{
    Operation *loop_op = loop.op();
    if (trip * countNestedOps(loop_op) > kMaxUnrolledOps)
        return false;

    AffineMap lb_map = loop.lowerBoundMap();
    if (lb_map.numResults() != 1)
        return false;
    auto lb_operands = loop.lowerBoundOperands();
    int64_t step = loop.step();
    Value *iv = loop.inductionVar();

    Block *parent = loop_op->parentBlock();
    for (int64_t k = 0; k < trip; ++k) {
        AffineExpr repl = lb_map.result(0) + k * step;
        // One mapping per iteration so intra-body def-use chains remap to
        // the freshly cloned defs.
        std::unordered_map<Value *, Value *> mapping;
        for (Operation *body_op : loop.body()->opsVector()) {
            Operation *cloned =
                parent->insertBefore(loop_op, body_op->clone(mapping));
            OpBuilder materialize(parent, cloned);
            substituteIV(cloned, iv, repl, lb_operands, materialize);
        }
    }
    // The original body ops die with the loop (the block destructor drops
    // all references first, so destruction order is safe).
    loop_op->erase();
    return true;
}

} // namespace

bool
applyLoopUnroll(Operation *loop_op, int64_t factor)
{
    assert(isa(loop_op, ops::AffineFor));
    AffineForOp loop(loop_op);
    if (factor <= 1)
        return factor == 1;
    auto trip_opt = getStaticTripCount(loop);
    if (!trip_opt)
        return false;
    int64_t trip = *trip_opt;
    if (trip == 0)
        return false;

    if (factor >= trip)
        return fullyUnroll(loop, trip);

    // Clamp to the largest divisor of the trip count not exceeding factor,
    // so the unrolled loop needs no epilogue.
    int64_t divisor = 1;
    for (int64_t d : divisorsOf(trip))
        if (d <= factor)
            divisor = d;
    factor = divisor;
    if (factor <= 1)
        return false;
    if (factor * countNestedOps(loop_op) > kMaxUnrolledOps)
        return false;

    int64_t step = loop.step();
    Value *iv = loop.inductionVar();
    Block *body = loop.body();
    auto body_ops = body->opsVector();
    loop.setStep(step * factor);

    for (int64_t k = 1; k < factor; ++k) {
        AffineExpr repl = getAffineDimExpr(0) + k * step;
        std::unordered_map<Value *, Value *> mapping;
        for (Operation *body_op : body_ops) {
            Operation *cloned = body->pushBack(body_op->clone(mapping));
            OpBuilder materialize(body, cloned);
            substituteIV(cloned, iv, repl, {iv}, materialize);
        }
    }
    return true;
}

} // namespace scalehls
