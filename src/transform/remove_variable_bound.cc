/**
 * @file
 * -remove-variable-bound (paper Section V-B3): substitutes variable loop
 * bounds with their constant extremes (computed from the ranges of the
 * outer induction variables) and guards the body with the original bound
 * condition as an affine.if, enabling rectangular loop analyses.
 */

#include "analysis/loop_analysis.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

bool
removeVariableBounds(AffineForOp for_op)
{
    if (for_op.hasConstantBounds())
        return false;

    AffineMap lb_map = for_op.lowerBoundMap();
    AffineMap ub_map = for_op.upperBoundMap();
    auto lb_operands = for_op.lowerBoundOperands();
    auto ub_operands = for_op.upperBoundOperands();

    auto lb_const = getBoundMin(lb_map, lb_operands, /*is_lower=*/true);
    auto ub_const = getBoundMax(ub_map, ub_operands, /*is_lower=*/false);
    if (!lb_const || !ub_const)
        return false; // Bound operands are not analyzable IVs.

    // Build the guard: conjunction of the original bound constraints over
    // dims [iv, lb_operands..., ub_operands...].
    std::vector<Value *> set_operands = {for_op.inductionVar()};
    std::vector<AffineExpr> constraints;
    std::vector<bool> eq_flags;

    auto operandDim = [&](Value *v) {
        for (unsigned i = 0; i < set_operands.size(); ++i)
            if (set_operands[i] == v)
                return getAffineDimExpr(i);
        set_operands.push_back(v);
        return getAffineDimExpr(set_operands.size() - 1);
    };

    AffineExpr iv_expr = getAffineDimExpr(0);
    if (!lb_map.isConstant()) {
        for (const auto &result : lb_map.results()) {
            std::vector<AffineExpr> dim_repls;
            for (Value *v : lb_operands)
                dim_repls.push_back(operandDim(v));
            // iv - lb_expr >= 0
            constraints.push_back(
                iv_expr - result.replaceDimsAndSymbols(dim_repls));
            eq_flags.push_back(false);
        }
    }
    if (!ub_map.isConstant()) {
        for (const auto &result : ub_map.results()) {
            std::vector<AffineExpr> dim_repls;
            for (Value *v : ub_operands)
                dim_repls.push_back(operandDim(v));
            // ub_expr - iv - 1 >= 0
            constraints.push_back(
                result.replaceDimsAndSymbols(dim_repls) - iv_expr - 1);
            eq_flags.push_back(false);
        }
    }

    // Rewrite the bounds to constants.
    for_op.setLowerBound(AffineMap::constant({*lb_const}), {});
    for_op.setUpperBound(AffineMap::constant({*ub_const}), {});

    // Generate the guard in the innermost loop (paper Fig. 5(iii)): this
    // keeps the band perfectly nested for subsequent permutation/tiling.
    Operation *deepest = for_op.op();
    while (true) {
        Block *candidate = AffineForOp(deepest).body();
        if (candidate->size() == 1 &&
            candidate->front()->is(ops::AffineFor))
            deepest = candidate->front();
        else
            break;
    }
    Block *body = AffineForOp(deepest).body();
    auto body_ops = body->opsVector();
    OpBuilder b;
    b.setInsertionPointToEnd(body);
    AffineIfOp guard = createAffineIf(
        b,
        IntegerSet(set_operands.size(), std::move(constraints),
                   std::move(eq_flags)),
        set_operands);
    for (Operation *op : body_ops)
        guard.thenBlock()->pushBack(body->take(op));
    return true;
}

} // namespace

bool
applyRemoveVariableBound(Operation *outermost)
{
    assert(isa(outermost, ops::AffineFor));
    bool changed = false;
    for (Operation *loop : getLoopNest(outermost))
        changed |= removeVariableBounds(AffineForOp(loop));
    return changed;
}

} // namespace scalehls
