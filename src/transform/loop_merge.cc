/**
 * @file
 * Loop merge (the `merge` directive of paper Table I): fuses adjacent loop
 * nests with identical iteration domains to improve data locality and
 * remove loop-control overhead. ScaleHLS applies the fusion directly in
 * the IR instead of representing the directive as an attribute
 * (paper Section IV-C2).
 */

#include "analysis/memory_analysis.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

/** Identical iteration domain: same bound maps, operands and step. */
bool
sameDomain(AffineForOp a, AffineForOp b)
{
    return a.lowerBoundMap().equals(b.lowerBoundMap()) &&
           a.upperBoundMap().equals(b.upperBoundMap()) &&
           a.lowerBoundOperands() == b.lowerBoundOperands() &&
           a.upperBoundOperands() == b.upperBoundOperands() &&
           a.step() == b.step();
}

/** Fusion is legal when, for every memref written by @p first and
 * accessed by @p second (or vice versa), the two loops address it with
 * identical subscripts: iteration i of the fused body then reads exactly
 * what iteration i produced, preserving the original semantics. */
bool
fusionLegal(AffineForOp first, AffineForOp second)
{
    auto first_accesses =
        collectAccesses(first.op(), {first.inductionVar()});
    auto second_accesses =
        collectAccesses(second.op(), {second.inductionVar()});

    for (const MemAccess &a : first_accesses) {
        for (const MemAccess &b : second_accesses) {
            if (a.memref != b.memref)
                continue;
            if (!a.isWrite && !b.isWrite)
                continue; // Read-read pairs never conflict.
            if (!a.normalized || !b.normalized)
                return false;
            if (subscriptKey(a) != subscriptKey(b))
                return false;
        }
    }
    return true;
}

} // namespace

bool
applyLoopMerge(Operation *first_op, Operation *second_op)
{
    if (!isa(first_op, ops::AffineFor) || !isa(second_op, ops::AffineFor))
        return false;
    if (first_op->parentBlock() != second_op->parentBlock())
        return false;
    AffineForOp first(first_op);
    AffineForOp second(second_op);
    if (!sameDomain(first, second))
        return false;
    // Only ops without side effects may sit between the two loops.
    for (Operation *op = first_op->nextOp(); op != second_op;
         op = op->nextOp()) {
        if (!op)
            return false;
        bool pure = (op->dialect() == "arith" || op->dialect() == "math");
        if (!pure)
            return false;
    }
    if (!fusionLegal(first, second))
        return false;

    // Splice the second body into the first and retarget the IV.
    Value *first_iv = first.inductionVar();
    Value *second_iv = second.inductionVar();
    Block *first_body = first.body();
    for (Operation *op : second.body()->opsVector()) {
        first_body->pushBack(second.body()->take(op));
        op->walk([&](Operation *nested) {
            for (unsigned i = 0; i < nested->numOperands(); ++i)
                if (nested->operand(i) == second_iv)
                    nested->setOperand(i, first_iv);
        });
    }
    second_op->erase();
    return true;
}

namespace {

/** Merge every legal adjacent loop pair directly inside @p block, then
 * recurse into the surviving loops' bodies.
 *
 * Iteration safety: a successful merge erases the second loop — and with
 * it every block nested inside it — so the sweep must never hold
 * pointers into erased structure. This routine re-snapshots only the
 * affected block after each merge (the erased op's nested blocks are
 * never on our stack because recursion happens AFTER this block is fully
 * merged). The previous implementation pre-collected every block of the
 * whole scope up front and stayed safe only by breaking out of both
 * loops and restarting the entire scope walk per merge, which made long
 * merge chains quadratic in the scope size.
 *
 * Recursing after the local merges also handles chains that only become
 * adjacent through a parent merge: fusing two i-loops that each wrap a
 * j-loop leaves two adjacent j-loops in the merged body, which the
 * recursion then fuses in turn. Child merges cannot re-enable parent
 * merges (domains and the access set of a loop are unchanged by fusing
 * inside it), so one top-down pass converges. */
bool
mergeInBlock(Block *block)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        // Adjacent loop pairs (pure ops in between allowed).
        Operation *prev_loop = nullptr;
        for (Operation *op : block->opsVector()) {
            if (op->is(ops::AffineFor)) {
                if (prev_loop && applyLoopMerge(prev_loop, op)) {
                    // op was erased; prev_loop absorbed its body. Leave
                    // the stale snapshot and rescan this block: the
                    // merged loop may fuse with the next one too.
                    changed = true;
                    progress = true;
                    break;
                }
                prev_loop = op;
            } else if (op->dialect() != "arith" &&
                       op->dialect() != "math") {
                prev_loop = nullptr;
            }
        }
    }
    for (Operation *op : block->opsVector())
        for (unsigned r = 0; r < op->numRegions(); ++r)
            for (auto &nested : op->region(r).blocks())
                changed |= mergeInBlock(nested.get());
    return changed;
}

} // namespace

bool
applyLoopMergeAll(Operation *scope)
{
    bool changed = false;
    for (unsigned r = 0; r < scope->numRegions(); ++r)
        for (auto &block : scope->region(r).blocks())
            changed |= mergeInBlock(block.get());
    return changed;
}

std::unique_ptr<Pass>
createLoopMergePass()
{
    return makePass("-affine-loop-merge",
                    [](Operation *op) { applyLoopMergeAll(op); });
}

} // namespace scalehls
