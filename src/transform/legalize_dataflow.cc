/**
 * @file
 * -legalize-dataflow (paper Section V-A1): assigns dataflow stage numbers
 * to graph ops such that every tensor edge spans exactly one stage, the
 * legality condition of downstream dataflow pipelining (no bypass paths,
 * single producer/consumer per channel). Two strategies (paper Fig. 4):
 * conservative stage merging, or aggressive copy-node insertion via the
 * insert-copy option.
 */

#include <map>

#include "dialect/graph_ops.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

/** A dataflow node: any graph op except weight constants. */
bool
isDataflowNode(const Operation *op)
{
    return isGraphOp(op) && !op->is(ops::GraphWeight);
}

/** Single-input elementwise ops fuse into their producer's stage
 * (conv+relu): they lower in place, saving a buffer and a stage. Adds do
 * not fuse — they are the residual-bypass consumers whose legalization
 * the paper studies (Fig. 4). */
bool
fusesWithProducer(const Operation *op)
{
    return op->is(ops::GraphRelu) || op->is(ops::GraphFlatten);
}

/** Longest-path stage assignment over the tensor def-use DAG. */
std::map<Operation *, int64_t>
assignStages(Block *body)
{
    std::map<Operation *, int64_t> stage;
    for (auto &op : body->ops()) {
        if (!isDataflowNode(op.get()))
            continue;
        int64_t edge = fusesWithProducer(op.get()) ? 0 : 1;
        int64_t s = 0;
        for (Value *operand : op->operands()) {
            Operation *def = operand->definingOp();
            if (def && isDataflowNode(def)) {
                assert(stage.count(def) && "operands precede uses");
                s = std::max(s, stage[def] + edge);
            }
        }
        stage[op.get()] = s;
    }
    return stage;
}

/** The maximum stage gap over all edges; 1 (or less) means legal. */
int64_t
maxGap(const std::map<Operation *, int64_t> &stage)
{
    int64_t gap = 0;
    for (const auto &[op, s] : stage) {
        for (Value *operand : op->operands()) {
            Operation *def = operand->definingOp();
            if (def && isDataflowNode(def))
                gap = std::max(gap, s - stage.at(def));
        }
    }
    return gap;
}

/** Conservative legalization: collapse the stages spanned by the worst
 * bypass edge into one (paper Fig. 4b). */
void
mergeStages(std::map<Operation *, int64_t> &stage)
{
    while (true) {
        // Find the worst bypass edge.
        Operation *bad_use = nullptr;
        int64_t lo = 0, hi = 0;
        for (const auto &[op, s] : stage) {
            for (Value *operand : op->operands()) {
                Operation *def = operand->definingOp();
                if (!def || !isDataflowNode(def))
                    continue;
                int64_t gap = s - stage.at(def);
                if (gap > 1 && (bad_use == nullptr || gap > hi - lo)) {
                    bad_use = op;
                    lo = stage.at(def);
                    hi = s;
                }
            }
        }
        if (!bad_use)
            return;
        // Stages (lo, hi] merge into lo + 1; later stages shift down.
        int64_t shift = hi - lo - 1;
        for (auto &[op, s] : stage) {
            if (s > lo && s <= hi)
                s = lo + 1;
            else if (s > hi)
                s -= shift;
        }
    }
}

/** Aggressive legalization: insert copy chains on short edges so all paths
 * have equal length (paper Fig. 4c). */
void
insertCopies(Block *body)
{
    while (true) {
        auto stage = assignStages(body);
        // Find one bypass edge and patch it with a single copy; iterate to
        // a fixed point (each copy lengthens the short path by one).
        Operation *use = nullptr;
        Value *edge = nullptr;
        for (auto &op : body->ops()) {
            if (!isDataflowNode(op.get()))
                continue;
            for (Value *operand : op->operands()) {
                Operation *d = operand->definingOp();
                if (d && isDataflowNode(d) &&
                    stage[op.get()] - stage[d] > 1) {
                    use = op.get();
                    edge = operand;
                    break;
                }
            }
            if (use)
                break;
        }
        if (!use)
            return;
        OpBuilder b;
        b.setInsertionPoint(use);
        Operation *copy = createGraphCopy(b, edge);
        for (unsigned i = 0; i < use->numOperands(); ++i)
            if (use->operand(i) == edge)
                use->setOperand(i, copy->result(0));
    }
}

} // namespace

bool
applyLegalizeDataflow(Operation *func, bool insert_copy)
{
    assert(isa(func, ops::Func));
    Block *body = funcBody(func);

    bool has_graph_ops = false;
    for (auto &op : body->ops())
        has_graph_ops |= isDataflowNode(op.get());
    if (!has_graph_ops)
        return false;

    if (insert_copy)
        insertCopies(body);

    auto stage = assignStages(body);
    if (!insert_copy)
        mergeStages(stage);

    for (const auto &[op, s] : stage)
        op->setAttr(kDataflowStage, s);

    FuncDirective d = getFuncDirective(func);
    d.dataflow = true;
    setFuncDirective(func, d);
    return true;
}

} // namespace scalehls
