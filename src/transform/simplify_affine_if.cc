/**
 * @file
 * -simplify-affine-if (paper Section V-D): uses affine analysis over the
 * ranges of the condition operands to prove constraints always/never hold,
 * eliminating dead branches or pruning redundant constraints.
 */

#include "analysis/loop_analysis.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

enum class ConstraintVerdict { AlwaysTrue, AlwaysFalse, Unknown };

/** Evaluate the min/max of @p expr over the (rectangular) ranges of the
 * condition operands, using corner enumeration (valid for linear
 * expressions, the common case after our simplifications). */
std::optional<std::pair<int64_t, int64_t>>
exprRange(const AffineExpr &expr, const std::vector<Value *> &operands)
{
    // Non-linear expressions (mod/div) are not corner-exact; skip them.
    auto coeffs = expr.linearCoefficients(operands.size());
    if (!coeffs)
        return std::nullopt;
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (Value *v : operands) {
        if (auto c = getConstantIntValue(v)) {
            ranges.push_back({*c, *c});
            continue;
        }
        auto r = getIVRange(v);
        if (!r)
            return std::nullopt;
        ranges.push_back(*r);
    }
    int64_t min = coeffs->back();
    int64_t max = coeffs->back();
    for (unsigned i = 0; i < operands.size(); ++i) {
        int64_t c = (*coeffs)[i];
        if (c >= 0) {
            min += c * ranges[i].first;
            max += c * ranges[i].second;
        } else {
            min += c * ranges[i].second;
            max += c * ranges[i].first;
        }
    }
    return std::make_pair(min, max);
}

ConstraintVerdict
judgeConstraint(const AffineExpr &expr, bool is_eq,
                const std::vector<Value *> &operands)
{
    auto range = exprRange(expr, operands);
    if (!range)
        return ConstraintVerdict::Unknown;
    auto [min, max] = *range;
    if (is_eq) {
        if (min == 0 && max == 0)
            return ConstraintVerdict::AlwaysTrue;
        if (min > 0 || max < 0)
            return ConstraintVerdict::AlwaysFalse;
        return ConstraintVerdict::Unknown;
    }
    if (min >= 0)
        return ConstraintVerdict::AlwaysTrue;
    if (max < 0)
        return ConstraintVerdict::AlwaysFalse;
    return ConstraintVerdict::Unknown;
}

/** Move all ops of @p from before @p anchor in anchor's block. */
void
inlineBlockBefore(Block *from, Operation *anchor)
{
    Block *dest = anchor->parentBlock();
    for (Operation *op : from->opsVector())
        dest->insertBefore(anchor, from->take(op));
}

bool
simplifyIf(Operation *op)
{
    AffineIfOp if_op(op);
    IntegerSet set = if_op.condition();
    auto operands = op->operands();

    std::vector<AffineExpr> kept;
    std::vector<bool> kept_eq;
    bool always_false = false;
    for (unsigned i = 0; i < set.numConstraints(); ++i) {
        switch (judgeConstraint(set.constraint(i), set.isEq(i), operands)) {
          case ConstraintVerdict::AlwaysTrue:
            break; // Redundant; drop it.
          case ConstraintVerdict::AlwaysFalse:
            always_false = true;
            break;
          case ConstraintVerdict::Unknown:
            kept.push_back(set.constraint(i));
            kept_eq.push_back(set.isEq(i));
            break;
        }
        if (always_false)
            break;
    }

    if (always_false) {
        if (if_op.hasElse())
            inlineBlockBefore(if_op.elseBlock(), op);
        op->erase();
        return true;
    }
    if (kept.empty()) {
        inlineBlockBefore(if_op.thenBlock(), op);
        op->erase();
        return true;
    }
    if (kept.size() != set.numConstraints()) {
        if_op.setCondition(
            IntegerSet(set.numDims(), std::move(kept), std::move(kept_eq)));
        return true;
    }
    return false;
}

} // namespace

bool
applySimplifyAffineIf(Operation *scope)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<Operation *> ifs = scope->collect(ops::AffineIf);
        for (Operation *op : ifs) {
            if (simplifyIf(op)) {
                progress = true;
                break; // IR changed; re-collect.
            }
        }
        changed |= progress;
    }
    return changed;
}

} // namespace scalehls
