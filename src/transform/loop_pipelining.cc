/**
 * @file
 * -loop-pipelining and -func-pipelining (paper Section V-C1): legalize the
 * target (fully unroll contained loops, pipeline contained sub-functions)
 * before attaching the pipeline directive with the requested II; perfectly
 * wrapping outer loops are annotated as flattened.
 */

#include <limits>

#include "analysis/loop_analysis.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

/** Fully unroll every loop properly nested in @p scope, innermost first.
 * Returns false (leaving partial changes) when some loop cannot be
 * statically unrolled. */
bool
unrollAllNested(Operation *scope)
{
    bool ok = true;
    // Repeat: each round unrolls the current innermost loops; unrolling
    // can expose new op lists but never adds loops.
    while (ok) {
        std::vector<Operation *> innermost;
        scope->walk([&](Operation *op) {
            if (op != scope && op->is(ops::AffineFor) && !containsLoops(op))
                innermost.push_back(op);
        });
        if (innermost.empty())
            break;
        for (Operation *loop : innermost) {
            if (!applyLoopUnroll(loop, std::numeric_limits<int64_t>::max()))
                return false;
        }
    }
    return ok;
}

/** Pipeline every function called inside @p scope. */
bool
pipelineCallees(Operation *scope, int64_t target_ii)
{
    Operation *module = scope->parentOfName(ops::Module);
    bool ok = true;
    scope->walk([&](Operation *op) {
        if (!op->is(ops::Call) || !module)
            return;
        Operation *callee =
            lookupFunc(module, op->attr(kCallee).getString());
        if (callee)
            ok &= applyFuncPipelining(callee, target_ii);
    });
    return ok;
}

} // namespace

bool
applyLoopPipelining(Operation *loop_op, int64_t target_ii)
{
    assert(isa(loop_op, ops::AffineFor));
    if (target_ii < 1)
        return false;

    // Legalization: no loop hierarchy below a pipelined loop.
    if (!unrollAllNested(loop_op))
        return false;
    if (!pipelineCallees(loop_op, 1))
        return false;

    LoopDirective d = getLoopDirective(loop_op);
    d.pipeline = true;
    d.targetII = target_ii;
    d.flatten = false;
    setLoopDirective(loop_op, d);

    // Flatten perfectly nesting ancestors (paper Section IV-C2).
    Operation *child = loop_op;
    for (Operation *parent = child->parentOp();
         isa(parent, ops::AffineFor); parent = parent->parentOp()) {
        Block *body = AffineForOp(parent).body();
        if (body->size() != 1 || body->front() != child)
            break;
        LoopDirective pd = getLoopDirective(parent);
        pd.flatten = true;
        pd.pipeline = false;
        setLoopDirective(parent, pd);
        child = parent;
    }
    return true;
}

bool
applyFuncPipelining(Operation *func, int64_t target_ii)
{
    assert(isa(func, ops::Func));
    if (target_ii < 1)
        return false;
    if (!unrollAllNested(func))
        return false;
    if (!pipelineCallees(func, 1))
        return false;
    FuncDirective d = getFuncDirective(func);
    d.pipeline = true;
    d.targetII = target_ii;
    setFuncDirective(func, d);
    return true;
}

} // namespace scalehls
