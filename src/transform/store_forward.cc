/**
 * @file
 * -affine-store-forward (paper Section V-D): store-to-load forwarding,
 * dead-store elimination and removal of write-only local buffers. Operates
 * block-locally (the structured IR keeps blocks short and this matches what
 * downstream HLS needs after unrolling).
 */

#include <algorithm>
#include <map>

#include "transform/pass.h"

namespace scalehls {

namespace {

/** A memory address key: memref + map + operand identities. */
struct AddressKey
{
    Value *memref;
    std::string map;
    std::vector<Value *> operands;

    bool
    operator<(const AddressKey &other) const
    {
        if (memref != other.memref)
            return memref < other.memref;
        if (map != other.map)
            return map < other.map;
        return operands < other.operands;
    }
};

std::optional<AddressKey>
addressOf(Operation *op)
{
    AddressKey key;
    key.memref = accessedMemRef(op);
    if (op->is(ops::AffineLoad)) {
        key.map = AffineLoadOp(op).map().toString();
        key.operands = AffineLoadOp(op).mapOperands();
    } else if (op->is(ops::AffineStore)) {
        key.map = AffineStoreOp(op).map().toString();
        key.operands = AffineStoreOp(op).mapOperands();
    } else {
        unsigned first = op->is(ops::MemLoad) ? 1 : 2;
        for (unsigned i = first; i < op->numOperands(); ++i)
            key.operands.push_back(op->operand(i));
    }
    return key;
}

/** Forward stores to loads within one block. Region-bearing ops (loops,
 * ifs, calls) conservatively invalidate memrefs they may touch. */
bool
forwardInBlock(Block *block)
{
    bool changed = false;
    // Last store per address, and whether a load of that address consumed
    // state since (to keep dead-store elimination correct).
    std::map<AddressKey, Operation *> last_store;
    std::map<AddressKey, bool> store_read;
    // Memrefs invalidated for forwarding (unknown writes).
    auto invalidateMemRef = [&](Value *memref) {
        for (auto it = last_store.begin(); it != last_store.end();) {
            if (it->first.memref == memref) {
                store_read.erase(it->first);
                it = last_store.erase(it);
            } else {
                ++it;
            }
        }
    };

    for (Operation *op : block->opsVector()) {
        if (op->numRegions() > 0 || op->is(ops::Call)) {
            // Unknown effects: invalidate memrefs accessed inside.
            std::vector<Value *> touched;
            op->walk([&](Operation *nested) {
                if (isMemoryAccess(nested))
                    touched.push_back(accessedMemRef(nested));
            });
            if (op->is(ops::Call) || op->is(ops::MemCopy)) {
                for (Value *operand : op->operands())
                    if (operand->type().isMemRef())
                        touched.push_back(operand);
            }
            for (Value *memref : touched)
                invalidateMemRef(memref);
            continue;
        }
        if (isMemoryWrite(op)) {
            auto key = addressOf(op);
            // Dead-store elimination: an unread store to the identical
            // address is overwritten by this one.
            auto prior = last_store.find(*key);
            if (prior != last_store.end() && !store_read[*key]) {
                prior->second->erase();
                changed = true;
            }
            // A store with a non-identical address may alias every tracked
            // address of the same memref.
            invalidateMemRef(key->memref);
            last_store[*key] = op;
            store_read[*key] = false;
            continue;
        }
        if (isMemoryAccess(op)) { // A load.
            auto key = addressOf(op);
            auto it = last_store.find(*key);
            if (it != last_store.end()) {
                Value *stored = it->second->operand(0);
                op->result(0)->replaceAllUsesWith(stored);
                op->erase();
                changed = true;
            } else {
                // Loads of the memref block dead-store elimination.
                for (auto &[tracked, read] : store_read)
                    if (tracked.memref == key->memref)
                        read = true;
            }
            continue;
        }
        if (op->is(ops::MemCopy)) {
            invalidateMemRef(op->operand(0));
            invalidateMemRef(op->operand(1));
        }
    }
    return changed;
}

/** Erase stores (and finally allocs) of locally-allocated buffers that are
 * never read. */
bool
removeWriteOnlyBuffers(Operation *scope)
{
    bool changed = false;
    std::vector<Operation *> allocs = scope->collect(ops::Alloc);
    for (Operation *alloc : allocs) {
        Value *memref = alloc->result(0);
        bool only_stores = true;
        for (Operation *user : memref->users()) {
            bool is_store = isMemoryWrite(user) &&
                            accessedMemRef(user) == memref &&
                            user->operand(0) != memref;
            if (!is_store) {
                only_stores = false;
                break;
            }
        }
        if (!only_stores)
            continue;
        for (Operation *user : std::vector<Operation *>(
                 memref->users().begin(), memref->users().end()))
            user->erase();
        alloc->erase();
        changed = true;
    }
    return changed;
}

} // namespace

bool
applyAffineStoreForward(Operation *scope)
{
    bool changed = false;
    std::vector<Block *> blocks;
    scope->walk([&](Operation *op) {
        for (unsigned i = 0; i < op->numRegions(); ++i)
            for (auto &block : op->region(i).blocks())
                blocks.push_back(block.get());
    });
    if (Block *own = scope->parentBlock(); own == nullptr && blocks.empty())
        return false;
    for (Block *block : blocks)
        changed |= forwardInBlock(block);
    changed |= removeWriteOnlyBuffers(scope);
    return changed;
}

} // namespace scalehls
