/**
 * @file
 * -canonicalize (constant folding, algebraic identities, dead code
 * elimination) and -cse (common subexpression elimination over pure ops),
 * following the methodology of classic compiler redundancy elimination
 * (paper Section V-D).
 */

#include <sstream>
#include <unordered_map>

#include "dialect/graph_ops.h"
#include "support/utils.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

/** Ops without observable side effects (safe to erase when unused and to
 * deduplicate when matching). Loads are pure for DCE (erasable when unused)
 * but not CSE-safe across stores; -simplify-memref-access handles them. */
bool
isPureScalarOp(const Operation *op)
{
    return (op->dialect() == "arith" || op->dialect() == "math") &&
           op->numRegions() == 0;
}

bool
isDCEErasable(const Operation *op)
{
    if (isPureScalarOp(op))
        return true;
    if (op->is(ops::AffineLoad) || op->is(ops::MemLoad))
        return true;
    if (op->is(ops::Alloc))
        return true;
    if (op->is(ops::GraphWeight))
        return true;
    return false;
}

/** Fold an arith op with constant operands; returns the folded attribute
 * (null if not foldable). */
Attribute
foldConstants(Operation *op)
{
    if (op->numOperands() != 2)
        return Attribute();
    auto lhs = getConstantIntValue(op->operand(0));
    auto rhs = getConstantIntValue(op->operand(1));
    if (lhs && rhs) {
        if (op->is(ops::AddI))
            return Attribute(*lhs + *rhs);
        if (op->is(ops::SubI))
            return Attribute(*lhs - *rhs);
        if (op->is(ops::MulI))
            return Attribute(*lhs * *rhs);
        if (op->is(ops::DivSI) && *rhs != 0)
            return Attribute(*lhs / *rhs);
        if (op->is(ops::RemSI) && *rhs != 0)
            return Attribute(*lhs % *rhs);
        if (op->is(ops::CmpI)) {
            auto pred = cmpPredicateFromName(
                op->attr(kPredicate).getString());
            bool result = false;
            switch (pred) {
              case CmpPredicate::EQ:
                result = *lhs == *rhs;
                break;
              case CmpPredicate::NE:
                result = *lhs != *rhs;
                break;
              case CmpPredicate::LT:
                result = *lhs < *rhs;
                break;
              case CmpPredicate::LE:
                result = *lhs <= *rhs;
                break;
              case CmpPredicate::GT:
                result = *lhs > *rhs;
                break;
              case CmpPredicate::GE:
                result = *lhs >= *rhs;
                break;
            }
            return Attribute(static_cast<int64_t>(result));
        }
    }

    auto constFloat = [&](unsigned i) -> std::optional<double> {
        Operation *def = op->operand(i)->definingOp();
        if (!isa(def, ops::Constant) || !def->attr(kValue).is<double>())
            return std::nullopt;
        return def->attr(kValue).getFloat();
    };
    auto flhs = constFloat(0);
    auto frhs = constFloat(1);
    if (flhs && frhs) {
        if (op->is(ops::AddF))
            return Attribute(*flhs + *frhs);
        if (op->is(ops::SubF))
            return Attribute(*flhs - *frhs);
        if (op->is(ops::MulF))
            return Attribute(*flhs * *frhs);
        if (op->is(ops::DivF) && *frhs != 0.0)
            return Attribute(*flhs / *frhs);
    }
    return Attribute();
}

/** Apply x+0, x*1, x*0, x-0, x/1 style identities; returns the replacement
 * value or nullptr. */
Value *
foldIdentity(Operation *op)
{
    if (op->numOperands() != 2)
        return nullptr;
    auto lhs = getConstantIntValue(op->operand(0));
    auto rhs = getConstantIntValue(op->operand(1));
    if (op->is(ops::AddI)) {
        if (rhs && *rhs == 0)
            return op->operand(0);
        if (lhs && *lhs == 0)
            return op->operand(1);
    }
    if (op->is(ops::SubI) && rhs && *rhs == 0)
        return op->operand(0);
    if (op->is(ops::MulI)) {
        if (rhs && *rhs == 1)
            return op->operand(0);
        if (lhs && *lhs == 1)
            return op->operand(1);
    }
    if (op->is(ops::DivSI) && rhs && *rhs == 1)
        return op->operand(0);
    // select %true/%false, a, b
    if (op->is(ops::Select))
        return nullptr;
    return nullptr;
}

/** Erase loops and ifs whose bodies became empty. */
bool
eraseEmptyRegions(Operation *scope)
{
    bool changed = false;
    std::vector<Operation *> victims;
    scope->walkPostOrder([&](Operation *op) {
        if (op == scope || !op->parentBlock())
            return;
        if (op->is(ops::AffineFor) || op->is(ops::ScfFor)) {
            if (op->region(0).front().empty())
                victims.push_back(op);
        } else if (op->is(ops::AffineIf) || op->is(ops::ScfIf)) {
            bool then_empty = op->region(0).empty() ||
                              op->region(0).front().empty();
            bool else_empty = op->region(1).empty() ||
                              op->region(1).front().empty();
            if (then_empty && else_empty)
                victims.push_back(op);
        }
    });
    for (Operation *op : victims) {
        op->erase();
        changed = true;
    }
    return changed;
}

} // namespace

bool
applyCanonicalize(Operation *scope)
{
    bool any_change = false;
    bool changed = true;
    // Iterate to a fixed point; each round folds, simplifies and DCEs.
    while (changed) {
        changed = false;

        // Constant folding and identities (post-order so operands fold
        // first).
        std::vector<Operation *> worklist;
        scope->walkPostOrder([&](Operation *op) {
            if (isPureScalarOp(op))
                worklist.push_back(op);
        });
        for (Operation *op : worklist) {
            if (Attribute folded = foldConstants(op)) {
                OpBuilder b;
                b.setInsertionPoint(op);
                Type t = op->result(0)->type();
                Operation *cst;
                if (folded.is<double>()) {
                    cst = createConstantFloat(b, folded.getFloat(), t);
                } else {
                    cst = createConstantInt(b, folded.getInt(), t);
                }
                op->replaceAllUsesWith(cst);
                op->erase();
                changed = true;
                continue;
            }
            if (Value *repl = foldIdentity(op)) {
                op->result(0)->replaceAllUsesWith(repl);
                op->erase();
                changed = true;
                continue;
            }
            // select with constant condition.
            if (op->is(ops::Select)) {
                if (auto c = getConstantIntValue(op->operand(0))) {
                    op->result(0)->replaceAllUsesWith(
                        op->operand(*c ? 1 : 2));
                    op->erase();
                    changed = true;
                }
            }
        }

        // DCE, innermost-first.
        std::vector<Operation *> dce;
        scope->walkPostOrder([&](Operation *op) {
            if (op != scope && op->parentBlock() && isDCEErasable(op) &&
                op->useEmpty())
                dce.push_back(op);
        });
        // Reverse order erases uses before their defs.
        for (auto it = dce.rbegin(); it != dce.rend(); ++it) {
            if ((*it)->useEmpty()) {
                (*it)->erase();
                changed = true;
            }
        }

        changed |= eraseEmptyRegions(scope);
        any_change |= changed;
    }
    return any_change;
}

bool
applyCSE(Operation *scope)
{
    bool changed = false;
    // Per-block value numbering over pure scalar ops. Keys include the
    // block so values from different blocks never merge (keeps dominance
    // trivially correct).
    std::unordered_map<std::string, Operation *> table;
    std::vector<Operation *> to_erase;

    scope->walk([&](Operation *op) {
        if (!isPureScalarOp(op) || op->numResults() != 1)
            return;
        std::ostringstream key;
        key << op->parentBlock() << "|" << op->name();
        if (isCommutativeOp(op) && op->operand(1) < op->operand(0)) {
            // Commutative ops key operands in a canonical order so
            // swapped-operand duplicates merge — the canonicalizing band
            // digest treats them as equal, and digest-equal bands must
            // clean up identically (see isCommutativeOp).
            key << "|" << op->operand(1) << "|" << op->operand(0);
        } else {
            for (Value *operand : op->operands())
                key << "|" << operand;
        }
        for (const auto &[name, attr] : op->attrs())
            key << "|" << name << "=" << attr.toString();
        auto [it, inserted] = table.emplace(key.str(), op);
        if (!inserted) {
            op->replaceAllUsesWith(it->second);
            to_erase.push_back(op);
            changed = true;
        }
    });
    for (Operation *op : to_erase)
        op->erase();
    return changed;
}

} // namespace scalehls
