#include "transform/pass.h"

#include <cstdlib>
#include <sstream>

#include "ir/verifier.h"
#include "support/utils.h"

namespace scalehls {

namespace {

/** Pass defined by a name and a callable. */
class LambdaPass : public Pass
{
  public:
    LambdaPass(std::string name, std::function<void(Operation *)> fn)
        : name_(std::move(name)), fn_(std::move(fn))
    {}

    std::string name() const override { return name_; }
    void runOnOperation(Operation *op) override { fn_(op); }

  private:
    std::string name_;
    std::function<void(Operation *)> fn_;
};

} // namespace

bool
PassManager::verifyEachDefault()
{
    if (const char *env = std::getenv("SCALEHLS_VERIFY_EACH"))
        return std::string_view(env) != "0";
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

void
PassManager::run(Operation *op)
{
    timings_.clear();
    for (auto &pass : passes_) {
        auto start = std::chrono::steady_clock::now();
        pass->runOnOperation(op);
        auto end = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(end - start).count();
        timings_.emplace_back(pass->name(), seconds);
        if (!verify_each_)
            continue;
        auto errors = verifyErrors(op);
        if (errors.empty())
            continue;
        std::ostringstream os;
        os << "IR verification failed after pass " << pass->name() << ":";
        size_t shown = 0;
        for (const VerifyError &e : errors) {
            os << "\n  " << e.str();
            if (++shown == 8) {
                os << "\n  ... (" << errors.size() - shown << " more)";
                break;
            }
        }
        fatal(os.str());
    }
}

double
PassManager::totalSeconds() const
{
    double total = 0;
    for (const auto &[name, seconds] : timings_)
        total += seconds;
    return total;
}

std::string
PassManager::timingReport() const
{
    std::ostringstream os;
    os << "===- Pass execution timing report -===\n";
    for (const auto &[name, seconds] : timings_)
        os << "  " << seconds << "s  " << name << "\n";
    os << "  total: " << totalSeconds() << "s\n";
    return os.str();
}

std::unique_ptr<Pass>
makePass(std::string name, std::function<void(Operation *)> fn)
{
    return std::make_unique<LambdaPass>(std::move(name), std::move(fn));
}

//
// Pass factories: each traverses the IR and applies the callable transform
// to every suitable target, matching the command-line behaviour of Table II.
//

std::unique_ptr<Pass>
createRaiseScfToAffinePass()
{
    return makePass("-raise-scf-to-affine",
                    [](Operation *op) { raiseScfToAffine(op); });
}

std::unique_ptr<Pass>
createLoopPerfectizationPass()
{
    return makePass("-affine-loop-perfectization", [](Operation *op) {
        for (auto &band : getLoopBands(op))
            applyLoopPerfectization(band.front());
    });
}

std::unique_ptr<Pass>
createRemoveVariableBoundPass()
{
    return makePass("-remove-variable-bound", [](Operation *op) {
        for (auto &band : getLoopBands(op))
            applyRemoveVariableBound(band.front());
    });
}

std::unique_ptr<Pass>
createLoopOrderOptPass()
{
    return makePass("-affine-loop-order-opt", [](Operation *op) {
        for (auto &band : getLoopBands(op))
            applyLoopOrderOpt(band);
    });
}

std::unique_ptr<Pass>
createLoopTilePass(std::vector<int64_t> tile_sizes)
{
    return makePass("-affine-loop-tile", [tile_sizes](Operation *op) {
        for (auto &band : getLoopBands(op)) {
            std::vector<int64_t> sizes = tile_sizes;
            sizes.resize(band.size(), 1);
            applyLoopTiling(band, sizes);
        }
    });
}

std::unique_ptr<Pass>
createLoopUnrollPass(int64_t factor)
{
    return makePass("-affine-loop-unroll", [factor](Operation *op) {
        for (auto &band : getLoopBands(op))
            applyLoopUnroll(band.back(), factor);
    });
}

std::unique_ptr<Pass>
createLoopPipeliningPass(int64_t target_ii)
{
    return makePass("-loop-pipelining", [target_ii](Operation *op) {
        for (auto &band : getLoopBands(op))
            applyLoopPipelining(band.back(), target_ii);
    });
}

std::unique_ptr<Pass>
createFuncPipeliningPass(int64_t target_ii)
{
    return makePass("-func-pipelining", [target_ii](Operation *op) {
        op->walk([&](Operation *nested) {
            if (nested->is(ops::Func))
                applyFuncPipelining(nested, target_ii);
        });
    });
}

std::unique_ptr<Pass>
createArrayPartitionPass()
{
    return makePass("-array-partition", [](Operation *op) {
        if (op->is(ops::Module)) {
            applyArrayPartition(getTopFunc(op));
        } else {
            applyArrayPartition(op);
        }
    });
}

std::unique_ptr<Pass>
createSimplifyAffineIfPass()
{
    return makePass("-simplify-affine-if",
                    [](Operation *op) { applySimplifyAffineIf(op); });
}

std::unique_ptr<Pass>
createAffineStoreForwardPass()
{
    return makePass("-affine-store-forward",
                    [](Operation *op) { applyAffineStoreForward(op); });
}

std::unique_ptr<Pass>
createSimplifyMemrefAccessPass()
{
    return makePass("-simplify-memref-access",
                    [](Operation *op) { applySimplifyMemrefAccess(op); });
}

std::unique_ptr<Pass>
createCanonicalizePass()
{
    return makePass("-canonicalize",
                    [](Operation *op) { applyCanonicalize(op); });
}

std::unique_ptr<Pass>
createCSEPass()
{
    return makePass("-cse", [](Operation *op) { applyCSE(op); });
}

std::unique_ptr<Pass>
createLegalizeDataflowPass(bool insert_copy)
{
    return makePass("-legalize-dataflow", [insert_copy](Operation *op) {
        op->walk([&](Operation *nested) {
            if (nested->is(ops::Func))
                applyLegalizeDataflow(nested, insert_copy);
        });
    });
}

std::unique_ptr<Pass>
createSplitFunctionPass(int64_t min_gran)
{
    return makePass("-split-function", [min_gran](Operation *op) {
        assert(op->is(ops::Module) &&
               "-split-function must run on a module");
        std::vector<Operation *> funcs;
        for (auto &func : op->region(0).front().ops())
            if (func->is(ops::Func))
                funcs.push_back(func.get());
        for (Operation *func : funcs)
            applySplitFunction(op, func, min_gran);
    });
}

} // namespace scalehls
