/**
 * @file
 * -affine-loop-perfectization (paper Section V-B1): relocates operations
 * sitting between loop statements into the innermost loop. Pure operations
 * are re-executed unguarded (safe and often folded later); state-modifying
 * operations (stores) are guarded by first-iteration / last-iteration
 * affine.if conditions, exactly as in the SYRK example of Fig. 5.
 */

#include <set>

#include "analysis/loop_analysis.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

/** Build the guard set `iv == bound` for a child loop with constant
 * bounds: first iteration (d0 - lb == 0) or last (d0 - last == 0). */
IntegerSet
iterationGuard(AffineForOp child, bool first)
{
    int64_t lb = *child.constantLowerBound();
    int64_t ub = *child.constantUpperBound();
    int64_t step = child.step();
    int64_t target = first ? lb : lb + ((ub - 1 - lb) / step) * step;
    AffineExpr expr = getAffineDimExpr(0) - target;
    return IntegerSet::get(1, expr, /*is_eq=*/true);
}

bool
needsGuard(Operation *op)
{
    bool has_write = false;
    op->walk([&](Operation *nested) {
        has_write |= isMemoryWrite(nested) || nested->is(ops::Call);
    });
    return has_write;
}

/** Sink the non-loop ops of @p parent's body into @p child's body.
 * @p before selects ops before (true) or after (false) the child loop. */
bool
sinkOps(AffineForOp parent, AffineForOp child, bool before)
{
    Block *parent_body = parent.body();
    Block *child_body = child.body();
    std::vector<Operation *> to_move;
    bool seen_child = false;
    for (Operation *op : parent_body->opsVector()) {
        if (op == child.op()) {
            seen_child = true;
            continue;
        }
        if (before != !seen_child)
            continue;
        to_move.push_back(op);
    }
    if (to_move.empty())
        return false;

    // Legality: a pure op re-executed every child iteration must not read
    // a memref written by an earlier guarded (once-only) op of this group.
    std::set<Value *> guarded_writes;
    bool any_guarded = false;
    for (Operation *op : to_move) {
        if (needsGuard(op)) {
            any_guarded = true;
            op->walk([&](Operation *nested) {
                if (isMemoryWrite(nested))
                    guarded_writes.insert(accessedMemRef(nested));
            });
        } else {
            bool stale = false;
            op->walk([&](Operation *nested) {
                if (isMemoryAccess(nested) && !isMemoryWrite(nested) &&
                    guarded_writes.count(accessedMemRef(nested)))
                    stale = true;
            });
            if (stale)
                return false;
        }
    }

    if (before) {
        Operation *guard = nullptr;
        if (any_guarded) {
            OpBuilder b;
            b.setInsertionPointToStart(child_body);
            guard = createAffineIf(b, iterationGuard(child, true),
                                   {child.inductionVar()})
                        .op();
        }
        Operation *pre_anchor = guard;
        if (!pre_anchor && !child_body->empty())
            pre_anchor = child_body->front();
        for (Operation *op : to_move) {
            auto owned = parent_body->take(op);
            if (guard && needsGuard(owned.get()))
                AffineIfOp(guard).thenBlock()->pushBack(std::move(owned));
            else
                child_body->insertBefore(pre_anchor, std::move(owned));
        }
    } else {
        // Pure post-ops go to the end of the body, then the last-iteration
        // guard, then the guarded ops inside it — preserving def-before-use.
        std::vector<Operation *> pure_ops;
        std::vector<Operation *> guarded_ops;
        for (Operation *op : to_move)
            (needsGuard(op) ? guarded_ops : pure_ops).push_back(op);
        for (Operation *op : pure_ops)
            child_body->pushBack(parent_body->take(op));
        if (!guarded_ops.empty()) {
            OpBuilder b;
            b.setInsertionPointToEnd(child_body);
            AffineIfOp guard = createAffineIf(
                b, iterationGuard(child, false), {child.inductionVar()});
            for (Operation *op : guarded_ops)
                guard.thenBlock()->pushBack(parent_body->take(op));
        }
    }
    return true;
}

} // namespace

bool
applyLoopPerfectization(Operation *outermost)
{
    assert(isa(outermost, ops::AffineFor));
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        auto band = getLoopNest(outermost);
        for (unsigned i = 0; i + 1 < band.size(); ++i) {
            AffineForOp parent(band[i]);
            AffineForOp child(band[i + 1]);
            // Guards require constant child bounds.
            if (!child.hasConstantBounds())
                continue;
            if (sinkOps(parent, child, /*before=*/true))
                progress = true;
            if (sinkOps(parent, child, /*before=*/false))
                progress = true;
        }
        changed |= progress;
    }
    return changed;
}

} // namespace scalehls
