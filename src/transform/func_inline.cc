/**
 * @file
 * Function inlining (the `inline` directive of paper Table I): ScaleHLS
 * does not represent the directive as an attribute but directly inlines
 * the target function in the IR to ease transformation and analysis
 * (paper Section IV-C1).
 */

#include "transform/pass.h"

namespace scalehls {

bool
applyFuncInline(Operation *module, Operation *call)
{
    assert(isa(module, ops::Module) && isa(call, ops::Call));
    Operation *callee = lookupFunc(module, call->attr(kCallee).getString());
    if (!callee)
        return false;
    Block *callee_body = funcBody(callee);
    if (callee_body->numArguments() != call->numOperands())
        return false;

    // Clone the callee body at the call site, mapping arguments to the
    // call operands; the trailing func.return supplies result values.
    std::unordered_map<Value *, Value *> mapping;
    for (unsigned i = 0; i < call->numOperands(); ++i)
        mapping[callee_body->argument(i)] = call->operand(i);

    Block *dest = call->parentBlock();
    std::vector<Value *> results;
    for (auto &op : callee_body->ops()) {
        if (op->is(ops::Return)) {
            for (Value *operand : op->operands()) {
                auto it = mapping.find(operand);
                results.push_back(it == mapping.end() ? operand
                                                      : it->second);
            }
            break; // The return is the terminator.
        }
        dest->insertBefore(call, op->clone(mapping));
    }

    for (unsigned i = 0; i < call->numResults() && i < results.size(); ++i)
        call->result(i)->replaceAllUsesWith(results[i]);
    call->erase();
    return true;
}

bool
applyFuncInlineAll(Operation *module, const std::string &callee_name)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<Operation *> calls;
        module->walk([&](Operation *op) {
            if (op->is(ops::Call) &&
                (callee_name.empty() ||
                 op->attr(kCallee).getString() == callee_name))
                calls.push_back(op);
        });
        for (Operation *call : calls) {
            if (applyFuncInline(module, call)) {
                progress = true;
                break; // IR changed; re-collect.
            }
        }
        changed |= progress;
    }
    // Remove functions that became unreachable (never the top function).
    std::vector<Operation *> dead;
    for (auto &op : module->region(0).front().ops()) {
        if (!op->is(ops::Func) || isTopFunc(op.get()))
            continue;
        bool used = false;
        module->walk([&](Operation *user) {
            if (user->is(ops::Call) &&
                user->attr(kCallee).getString() == funcName(op.get()))
                used = true;
        });
        if (!used)
            dead.push_back(op.get());
    }
    for (Operation *func : dead)
        func->erase();
    changed |= !dead.empty();
    return changed;
}

std::unique_ptr<Pass>
createFuncInlinePass()
{
    return makePass("-func-inline", [](Operation *op) {
        assert(op->is(ops::Module));
        applyFuncInlineAll(op, "");
    });
}

} // namespace scalehls
