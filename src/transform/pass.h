/**
 * @file
 * The pass framework and the HLS transform-and-analysis library interface.
 *
 * Every optimization exists in two forms (paper Section V):
 *  - a callable, parameterized function (`applyXxx`) operating on a precise
 *    target (a loop band, a function, an array), which the DSE engine tunes;
 *  - a Pass wrapper that traverses the whole IR and applies the transform to
 *    every suitable target (the command-line style interface of Table II).
 */

#ifndef SCALEHLS_TRANSFORM_PASS_H
#define SCALEHLS_TRANSFORM_PASS_H

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/memory_analysis.h"
#include "dialect/ops.h"

namespace scalehls {

/** A module-level transformation pass. */
class Pass
{
  public:
    virtual ~Pass() = default;
    /** The command-line style pass name, e.g. "-affine-loop-tile". */
    virtual std::string name() const = 0;
    /** Run on a module (or any enclosing op). */
    virtual void runOnOperation(Operation *op) = 0;
};

/** Runs a pipeline of passes and records per-pass wall-clock timing
 * (mirrors MLIR's -pass-timing used for the paper's runtime column).
 *
 * With verify-each enabled — the default in Debug builds, forced on/off
 * by setVerifyEach() or the SCALEHLS_VERIFY_EACH env var ("0" disables,
 * anything else enables) — the layered verifier (ir/verifier.h, level
 * Semantic) runs after every pass and a violation aborts with the pass
 * name and the first diagnostics, so the transform that broke an
 * invariant is named instead of a downstream consumer crashing on it. */
class PassManager
{
  public:
    void addPass(std::unique_ptr<Pass> pass)
    {
        passes_.push_back(std::move(pass));
    }

    /** Run all passes in order on @p op. */
    void run(Operation *op);

    /** Override the verify-each default for this manager. */
    void setVerifyEach(bool enable) { verify_each_ = enable; }
    bool verifyEach() const { return verify_each_; }

    /** The build/env default: on in Debug (!NDEBUG) builds, overridable
     * either way via SCALEHLS_VERIFY_EACH. */
    static bool verifyEachDefault();

    /** Per-pass timing in seconds, in execution order. */
    const std::vector<std::pair<std::string, double>> &timings() const
    {
        return timings_;
    }
    /** Total time of the last run() in seconds. */
    double totalSeconds() const;
    /** Formatted timing report. */
    std::string timingReport() const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    std::vector<std::pair<std::string, double>> timings_;
    bool verify_each_ = verifyEachDefault();
};

/** Wrap a callable into a Pass. */
std::unique_ptr<Pass> makePass(std::string name,
                               std::function<void(Operation *)> fn);

//
// Callable transform library (the tunable interfaces of Table II).
//

/** @name Conversion */
///@{
/** Raise scf.for / scf.if / memref accesses with affine-analyzable
 * operands into the affine dialect. Returns true if anything changed. */
bool raiseScfToAffine(Operation *scope);
///@}

/** @name Loop transforms */
///@{
/** -affine-loop-perfectization: sink in-between ops of an imperfect band
 * into the innermost loop, guarding state-modifying ops with first/last
 * iteration affine.if conditions. */
bool applyLoopPerfectization(Operation *outermost);

/** -remove-variable-bound: replace variable (outer-IV dependent) bounds by
 * their constant extremes and guard the body with the original constraint. */
bool applyRemoveVariableBound(Operation *outermost);

/** Permute a perfect band: perm_map[i] is the new position (0 = outermost)
 * of the i-th loop. Fails (returns false) on illegal permutations. */
bool applyLoopPermutation(const std::vector<Operation *> &band,
                          const std::vector<unsigned> &perm_map);

/** -affine-loop-order-opt: pick the legal permutation that maximizes the
 * flattened recurrence distance (pushes dependence-carrying loops outward).
 */
bool applyLoopOrderOpt(const std::vector<Operation *> &band);

/** -affine-loop-tile: tile a perfect band; intra-tile (point) loops are all
 * placed innermost (ready for full unrolling by pipelining). Tile sizes
 * must divide trip counts. Returns the band of tile loops (empty on
 * failure). */
std::vector<Operation *> applyLoopTiling(
    const std::vector<Operation *> &band,
    const std::vector<int64_t> &tile_sizes);

/** -affine-loop-unroll: unroll by @p factor (>= trip count means full
 * unroll and loop removal). The factor must divide the trip count. */
bool applyLoopUnroll(Operation *loop, int64_t factor);
///@}

/** @name Directive transforms */
///@{
/** -loop-pipelining: legalize (fully unroll contained loops), set the
 * pipeline directive with @p target_ii, and mark perfectly wrapping outer
 * loops as flattened. */
bool applyLoopPipelining(Operation *loop, int64_t target_ii);

/** -func-pipelining: fully unroll all loops and pipeline the function. */
bool applyFuncPipelining(Operation *func, int64_t target_ii);

/** -array-partition: detect access patterns (paper Eq. 1) and encode
 * cyclic/block partitions into memref layout maps, inter-procedurally. */
bool applyArrayPartition(Operation *func);

/** Guided variant: force an explicit plan onto one memref. */
void applyPartitionPlan(Value *memref, const PartitionPlan &plan);
///@}

/** @name Redundancy elimination */
///@{
bool applySimplifyAffineIf(Operation *scope);
bool applyAffineStoreForward(Operation *scope);
bool applySimplifyMemrefAccess(Operation *scope);
/** -canonicalize: constant folding, algebraic identities, DCE. */
bool applyCanonicalize(Operation *scope);
/** -cse: common subexpression elimination on pure ops. */
bool applyCSE(Operation *scope);
///@}

/** Fuse two adjacent affine loops with identical domains (the `merge`
 * directive of Table I). Returns false when illegal. */
bool applyLoopMerge(Operation *first, Operation *second);
/** Fuse all legal adjacent pairs under @p scope. */
bool applyLoopMergeAll(Operation *scope);

/** Inline one call site (the `inline` directive of Table I). */
bool applyFuncInline(Operation *module, Operation *call);
/** Inline every call of @p callee_name (empty = all), then remove
 * unreachable non-top functions. */
bool applyFuncInlineAll(Operation *module,
                        const std::string &callee_name = "");

/** @name Graph transforms */
///@{
/** -legalize-dataflow: stage-number graph ops so that every edge spans
 * exactly one stage (paper Fig. 4). With @p insert_copy, copy nodes break
 * bypass paths (aggressive); otherwise stages are merged (conservative).
 * Returns false with no changes if the function has no graph ops. */
bool applyLegalizeDataflow(Operation *func, bool insert_copy);

/** -split-function: outline each group of @p min_gran adjacent dataflow
 * stages into a sub-function, replacing them with calls. */
bool applySplitFunction(Operation *module, Operation *func,
                        int64_t min_gran);
///@}

/** @name Pass factories (Table II names) */
///@{
std::unique_ptr<Pass> createRaiseScfToAffinePass();
std::unique_ptr<Pass> createLoopPerfectizationPass();
std::unique_ptr<Pass> createRemoveVariableBoundPass();
std::unique_ptr<Pass> createLoopOrderOptPass();
std::unique_ptr<Pass> createLoopTilePass(std::vector<int64_t> tile_sizes);
std::unique_ptr<Pass> createLoopUnrollPass(int64_t factor);
std::unique_ptr<Pass> createLoopPipeliningPass(int64_t target_ii = 1);
std::unique_ptr<Pass> createFuncPipeliningPass(int64_t target_ii = 1);
std::unique_ptr<Pass> createArrayPartitionPass();
std::unique_ptr<Pass> createSimplifyAffineIfPass();
std::unique_ptr<Pass> createAffineStoreForwardPass();
std::unique_ptr<Pass> createSimplifyMemrefAccessPass();
std::unique_ptr<Pass> createCanonicalizePass();
std::unique_ptr<Pass> createCSEPass();
std::unique_ptr<Pass> createLoopMergePass();
std::unique_ptr<Pass> createFuncInlinePass();
std::unique_ptr<Pass> createLegalizeDataflowPass(bool insert_copy);
std::unique_ptr<Pass> createSplitFunctionPass(int64_t min_gran);
///@}

} // namespace scalehls

#endif // SCALEHLS_TRANSFORM_PASS_H
