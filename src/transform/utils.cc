#include "transform/utils.h"

#include <algorithm>

#include "support/utils.h"

namespace scalehls {

Value *
materializeExpr(OpBuilder &b, const AffineExpr &expr,
                const std::vector<Value *> &operands)
{
    switch (expr.kind()) {
      case AffineExprKind::Constant:
        return createConstantIndex(b, expr.constantValue())->result(0);
      case AffineExprKind::DimId:
        assert(expr.position() < operands.size());
        return operands[expr.position()];
      case AffineExprKind::SymbolId:
        fatal("cannot materialize symbolic affine expression");
      default: {
        Value *lhs = materializeExpr(b, expr.lhs(), operands);
        Value *rhs = materializeExpr(b, expr.rhs(), operands);
        std::string_view name;
        switch (expr.kind()) {
          case AffineExprKind::Add:
            name = ops::AddI;
            break;
          case AffineExprKind::Mul:
            name = ops::MulI;
            break;
          case AffineExprKind::Mod:
            name = ops::RemSI;
            break;
          case AffineExprKind::FloorDiv:
          case AffineExprKind::CeilDiv:
            name = ops::DivSI;
            break;
          default:
            fatal("unexpected affine expression kind");
        }
        return createBinary(b, name, lhs, rhs)->result(0);
      }
    }
}

AffineMap
rebuildMapWithoutIV(const AffineMap &map, std::vector<Value *> &operands,
                    Value *iv, const AffineExpr &repl,
                    const std::vector<Value *> &repl_operands)
{
    // New operand list: old operands minus iv, plus repl_operands (deduped).
    std::vector<Value *> new_operands;
    auto operandDim = [&](Value *v) -> unsigned {
        auto it = std::find(new_operands.begin(), new_operands.end(), v);
        if (it != new_operands.end())
            return it - new_operands.begin();
        new_operands.push_back(v);
        return new_operands.size() - 1;
    };

    std::vector<AffineExpr> dim_repls(operands.size());
    for (unsigned p = 0; p < operands.size(); ++p) {
        if (operands[p] == iv) {
            // Compose repl with its operands mapped into new positions.
            std::vector<AffineExpr> inner(repl_operands.size());
            for (unsigned i = 0; i < repl_operands.size(); ++i)
                inner[i] = getAffineDimExpr(operandDim(repl_operands[i]));
            dim_repls[p] = repl.replaceDimsAndSymbols(inner);
        } else {
            dim_repls[p] = getAffineDimExpr(operandDim(operands[p]));
        }
    }

    AffineMap new_map = map.replaceDims(dim_repls, new_operands.size());
    operands = new_operands;
    return new_map;
}

namespace {

/** Rewrite an IntegerSet the same way rebuildMapWithoutIV rewrites a map. */
IntegerSet
rebuildSetWithoutIV(const IntegerSet &set, std::vector<Value *> &operands,
                    Value *iv, const AffineExpr &repl,
                    const std::vector<Value *> &repl_operands)
{
    AffineMap map(set.numDims(), 0, set.constraints());
    AffineMap new_map =
        rebuildMapWithoutIV(map, operands, iv, repl, repl_operands);
    return IntegerSet(new_map.numDims(), new_map.results(), set.eqFlags());
}

} // namespace

void
substituteIV(Operation *root, Value *iv, const AffineExpr &repl,
             const std::vector<Value *> &repl_operands,
             OpBuilder &materialize_builder)
{
    Value *materialized = nullptr;
    auto getMaterialized = [&]() {
        if (!materialized)
            materialized =
                materializeExpr(materialize_builder, repl, repl_operands);
        return materialized;
    };

    root->walk([&](Operation *op) {
        bool uses_iv = false;
        for (Value *operand : op->operands())
            uses_iv |= (operand == iv);
        if (!uses_iv)
            return;

        if (op->is(ops::AffineLoad) || op->is(ops::AffineStore)) {
            bool is_load = op->is(ops::AffineLoad);
            unsigned first = is_load ? 1 : 2;
            std::vector<Value *> map_operands;
            for (unsigned i = first; i < op->numOperands(); ++i)
                map_operands.push_back(op->operand(i));
            AffineMap new_map = rebuildMapWithoutIV(
                op->attr(kMap).getAffineMap(), map_operands, iv, repl,
                repl_operands);
            std::vector<Value *> all;
            if (is_load) {
                all = {op->operand(0)};
            } else {
                all = {op->operand(0), op->operand(1)};
            }
            all.insert(all.end(), map_operands.begin(), map_operands.end());
            op->setOperands(all);
            op->setAttr(kMap, new_map);
            return;
        }
        if (op->is(ops::AffineIf)) {
            std::vector<Value *> operands = op->operands();
            IntegerSet new_set = rebuildSetWithoutIV(
                AffineIfOp(op).condition(), operands, iv, repl,
                repl_operands);
            op->setOperands(operands);
            op->setAttr(kCondition, new_set);
            return;
        }
        if (op->is(ops::AffineFor)) {
            AffineForOp for_op(op);
            std::vector<Value *> lb_operands = for_op.lowerBoundOperands();
            std::vector<Value *> ub_operands = for_op.upperBoundOperands();
            AffineMap lb = for_op.lowerBoundMap();
            AffineMap ub = for_op.upperBoundMap();
            bool lb_uses = std::count(lb_operands.begin(), lb_operands.end(),
                                      iv) > 0;
            bool ub_uses = std::count(ub_operands.begin(), ub_operands.end(),
                                      iv) > 0;
            if (lb_uses)
                lb = rebuildMapWithoutIV(lb, lb_operands, iv, repl,
                                         repl_operands);
            if (ub_uses)
                ub = rebuildMapWithoutIV(ub, ub_operands, iv, repl,
                                         repl_operands);
            if (lb_uses || ub_uses) {
                for_op.setLowerBound(lb, lb_operands);
                for_op.setUpperBound(ub, ub_operands);
            }
            return;
        }
        // Plain SSA use: materialize the expression once.
        for (unsigned i = 0; i < op->numOperands(); ++i)
            if (op->operand(i) == iv)
                op->setOperand(i, getMaterialized());
    });
}

} // namespace scalehls
