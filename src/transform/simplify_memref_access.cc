/**
 * @file
 * -simplify-memref-access (paper Section V-D): folds identical memory
 * access operations when no dependency conflict exists — duplicate loads of
 * the same address in a block with no intervening write to the memref
 * collapse into one.
 */

#include <map>

#include "transform/pass.h"

namespace scalehls {

namespace {

struct LoadKey
{
    Value *memref;
    std::string map;
    std::vector<Value *> operands;

    bool
    operator<(const LoadKey &other) const
    {
        if (memref != other.memref)
            return memref < other.memref;
        if (map != other.map)
            return map < other.map;
        return operands < other.operands;
    }
};

bool
simplifyBlock(Block *block)
{
    bool changed = false;
    std::map<LoadKey, Operation *> available;
    auto invalidate = [&](Value *memref) {
        for (auto it = available.begin(); it != available.end();) {
            if (it->first.memref == memref)
                it = available.erase(it);
            else
                ++it;
        }
    };

    for (Operation *op : block->opsVector()) {
        if (op->numRegions() > 0 || op->is(ops::Call) ||
            op->is(ops::MemCopy)) {
            std::vector<Value *> touched;
            op->walk([&](Operation *nested) {
                if (isMemoryAccess(nested) && isMemoryWrite(nested))
                    touched.push_back(accessedMemRef(nested));
            });
            for (Value *operand : op->operands())
                if (operand->type().isMemRef())
                    touched.push_back(operand);
            for (Value *memref : touched)
                invalidate(memref);
            continue;
        }
        if (isMemoryWrite(op)) {
            invalidate(accessedMemRef(op));
            continue;
        }
        if (!isMemoryAccess(op))
            continue;

        LoadKey key;
        key.memref = accessedMemRef(op);
        if (op->is(ops::AffineLoad)) {
            key.map = AffineLoadOp(op).map().toString();
            key.operands = AffineLoadOp(op).mapOperands();
        } else {
            for (unsigned i = 1; i < op->numOperands(); ++i)
                key.operands.push_back(op->operand(i));
        }
        auto [it, inserted] = available.emplace(key, op);
        if (!inserted) {
            op->replaceAllUsesWith(it->second);
            op->erase();
            changed = true;
        }
    }
    return changed;
}

} // namespace

bool
applySimplifyMemrefAccess(Operation *scope)
{
    bool changed = false;
    std::vector<Block *> blocks;
    scope->walk([&](Operation *op) {
        for (unsigned i = 0; i < op->numRegions(); ++i)
            for (auto &block : op->region(i).blocks())
                blocks.push_back(block.get());
    });
    for (Block *block : blocks)
        changed |= simplifyBlock(block);
    return changed;
}

} // namespace scalehls
