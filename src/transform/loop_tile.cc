/**
 * @file
 * -affine-loop-tile (paper Section V-B4): tiles a perfect band. Following
 * the paper's DSE usage, all generated intra-tile (point) loops are placed
 * in the innermost loop region, ready to be fully unrolled by the
 * pipelining pass to increase computation parallelism.
 */

#include "analysis/loop_analysis.h"
#include "support/utils.h"
#include "transform/pass.h"

namespace scalehls {

std::vector<Operation *>
applyLoopTiling(const std::vector<Operation *> &band,
                const std::vector<int64_t> &tile_sizes)
{
    if (band.empty() || tile_sizes.size() != band.size())
        return {};
    bool all_ones = true;
    for (int64_t t : tile_sizes)
        all_ones &= t <= 1;
    if (all_ones)
        return band; // Trivial request: valid on any nest.
    if (!isPerfectNest(band))
        return {};

    // Validate and clamp tile sizes.
    std::vector<int64_t> sizes(band.size(), 1);
    std::vector<int64_t> orig_steps(band.size());
    for (unsigned i = 0; i < band.size(); ++i) {
        AffineForOp loop(band[i]);
        orig_steps[i] = loop.step();
        int64_t t = std::max<int64_t>(1, tile_sizes[i]);
        if (t == 1) {
            sizes[i] = 1;
            continue;
        }
        auto trip = loop.constantTripCount();
        if (!trip || *trip == 0)
            return {}; // Tiling a variable-bound dim needs RVB first.
        t = std::min<int64_t>(t, *trip);
        // Clamp to a divisor so no epilogue loops are required.
        int64_t divisor = 1;
        for (int64_t d : divisorsOf(*trip))
            if (d <= t)
                divisor = d;
        sizes[i] = divisor;
    }

    bool any_tiled = false;
    for (int64_t t : sizes)
        any_tiled |= (t > 1);
    if (!any_tiled)
        return band; // Nothing to do; band unchanged is still valid.

    AffineForOp innermost(band.back());
    Block *inner_body = innermost.body();
    auto body_ops = inner_body->opsVector();

    // Scale the tile-loop steps.
    for (unsigned i = 0; i < band.size(); ++i)
        if (sizes[i] > 1)
            AffineForOp(band[i]).setStep(orig_steps[i] * sizes[i]);

    // Create point loops (in band order) inside the innermost body.
    OpBuilder b;
    b.setInsertionPointToEnd(inner_body);
    std::vector<Value *> point_ivs(band.size(), nullptr);
    for (unsigned i = 0; i < band.size(); ++i) {
        if (sizes[i] == 1)
            continue;
        Value *tile_iv = AffineForOp(band[i]).inductionVar();
        AffineExpr d0 = getAffineDimExpr(0);
        AffineForOp point = createAffineFor(
            b, AffineMap::get(1, d0), {tile_iv},
            AffineMap::get(1, d0 + sizes[i] * orig_steps[i]), {tile_iv},
            orig_steps[i]);
        // Mark intra-tile loops so directive passes pipeline the tile
        // loop and fully unroll these instead.
        point.op()->setAttr(kPointLoop, true);
        point_ivs[i] = point.inductionVar();
        b.setInsertionPointToEnd(point.body());
    }
    Block *deepest = b.insertionBlock();

    // Move the original body into the deepest point loop and retarget the
    // moved ops from tile IVs to point IVs.
    for (Operation *op : body_ops)
        deepest->pushBack(inner_body->take(op));
    for (Operation *op : body_ops) {
        op->walk([&](Operation *nested) {
            for (unsigned k = 0; k < nested->numOperands(); ++k) {
                for (unsigned i = 0; i < band.size(); ++i) {
                    if (point_ivs[i] &&
                        nested->operand(k) ==
                            AffineForOp(band[i]).inductionVar())
                        nested->setOperand(k, point_ivs[i]);
                }
            }
        });
    }
    return band;
}

} // namespace scalehls
