/**
 * @file
 * Shared rewriting utilities for loop transforms: materializing affine
 * expressions as arith ops and substituting induction variables by affine
 * expressions of other values (the workhorse of unrolling and tiling).
 */

#ifndef SCALEHLS_TRANSFORM_UTILS_H
#define SCALEHLS_TRANSFORM_UTILS_H

#include "dialect/ops.h"

namespace scalehls {

/** Emit arith ops computing @p expr over @p operands at the builder's
 * insertion point; returns the index-typed result value. */
Value *materializeExpr(OpBuilder &b, const AffineExpr &expr,
                       const std::vector<Value *> &operands);

/** Substitute every use of @p iv inside @p root (inclusive) by the affine
 * expression @p repl over @p repl_operands:
 *  - affine map / integer-set attributes are recomposed symbolically, so
 *    affine ops stay affine;
 *  - plain SSA uses receive a materialized arith value (inserted at
 *    @p materialize_point, which must dominate root). */
void substituteIV(Operation *root, Value *iv, const AffineExpr &repl,
                  const std::vector<Value *> &repl_operands,
                  OpBuilder &materialize_builder);

/** Rewrite (map, operands) replacing uses of @p iv by @p repl over
 * @p repl_operands. Returns the new map; @p operands is updated. */
AffineMap rebuildMapWithoutIV(const AffineMap &map,
                              std::vector<Value *> &operands, Value *iv,
                              const AffineExpr &repl,
                              const std::vector<Value *> &repl_operands);

} // namespace scalehls

#endif // SCALEHLS_TRANSFORM_UTILS_H
