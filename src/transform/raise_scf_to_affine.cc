/**
 * @file
 * -raise-scf-to-affine: identifies affine regions in the scf-level IR
 * produced by the C front-end and converts scf.for / scf.if / memref
 * accesses into their affine counterparts (paper Section VI-A).
 */

#include <algorithm>

#include "transform/pass.h"

namespace scalehls {

namespace {

/** Trace a value back to an affine expression over affine.for induction
 * variables. @p dims collects the IV operands (deduplicated). */
std::optional<AffineExpr>
traceAffineExpr(Value *v, std::vector<Value *> &dims)
{
    if (auto c = getConstantIntValue(v))
        return getAffineConstantExpr(*c);

    // affine.for induction variables are valid affine dims.
    if (Block *owner = v->ownerBlock()) {
        if (isa(owner->parentOp(), ops::AffineFor)) {
            auto it = std::find(dims.begin(), dims.end(), v);
            unsigned pos;
            if (it == dims.end()) {
                dims.push_back(v);
                pos = dims.size() - 1;
            } else {
                pos = it - dims.begin();
            }
            return getAffineDimExpr(pos);
        }
        return std::nullopt;
    }

    Operation *def = v->definingOp();
    if (!def)
        return std::nullopt;
    if (def->is(ops::IndexCast))
        return traceAffineExpr(def->operand(0), dims);
    if (def->numOperands() != 2)
        return std::nullopt;

    // Affine arithmetic: +, -, * by constant, floordiv/mod by constant.
    auto lhs = traceAffineExpr(def->operand(0), dims);
    if (!lhs)
        return std::nullopt;
    auto rhs = traceAffineExpr(def->operand(1), dims);
    if (!rhs)
        return std::nullopt;

    if (def->is(ops::AddI))
        return *lhs + *rhs;
    if (def->is(ops::SubI))
        return *lhs - *rhs;
    if (def->is(ops::MulI)) {
        if (rhs->isConstant() || lhs->isConstant())
            return *lhs * *rhs;
        return std::nullopt;
    }
    if (def->is(ops::DivSI) && rhs->isConstant() &&
        rhs->constantValue() > 0)
        return getAffineBinaryExpr(AffineExprKind::FloorDiv, *lhs, *rhs);
    if (def->is(ops::RemSI) && rhs->isConstant() &&
        rhs->constantValue() > 0)
        return getAffineBinaryExpr(AffineExprKind::Mod, *lhs, *rhs);
    return std::nullopt;
}

/** Move all ops of @p from to the end of @p to. */
void
spliceBlock(Block *from, Block *to)
{
    for (Operation *op : from->opsVector())
        to->pushBack(from->take(op));
}

bool
raiseScfForOp(Operation *op)
{
    ScfForOp for_op(op);
    std::vector<Value *> lb_dims;
    auto lb = traceAffineExpr(for_op.lowerBound(), lb_dims);
    if (!lb)
        return false;
    std::vector<Value *> ub_dims;
    auto ub = traceAffineExpr(for_op.upperBound(), ub_dims);
    if (!ub)
        return false;
    auto step = getConstantIntValue(for_op.step());
    if (!step || *step <= 0)
        return false;

    OpBuilder b;
    b.setInsertionPoint(op);
    AffineForOp affine_for = createAffineFor(
        b, AffineMap(lb_dims.size(), 0, {*lb}), lb_dims,
        AffineMap(ub_dims.size(), 0, {*ub}), ub_dims, *step);
    for_op.inductionVar()->replaceAllUsesWith(affine_for.inductionVar());
    spliceBlock(for_op.body(), affine_for.body());
    op->erase();
    return true;
}

bool
raiseScfIfOp(Operation *op)
{
    Operation *cmp = op->operand(0)->definingOp();
    if (!isa(cmp, ops::CmpI))
        return false;
    std::vector<Value *> dims;
    auto lhs = traceAffineExpr(cmp->operand(0), dims);
    if (!lhs)
        return false;
    auto rhs = traceAffineExpr(cmp->operand(1), dims);
    if (!rhs)
        return false;

    CmpPredicate pred =
        cmpPredicateFromName(cmp->attr(kPredicate).getString());
    AffineExpr constraint;
    bool is_eq = false;
    switch (pred) {
      case CmpPredicate::EQ:
        constraint = *lhs - *rhs;
        is_eq = true;
        break;
      case CmpPredicate::LT: // lhs < rhs  <=>  rhs - lhs - 1 >= 0
        constraint = *rhs - *lhs - 1;
        break;
      case CmpPredicate::LE:
        constraint = *rhs - *lhs;
        break;
      case CmpPredicate::GT:
        constraint = *lhs - *rhs - 1;
        break;
      case CmpPredicate::GE:
        constraint = *lhs - *rhs;
        break;
      case CmpPredicate::NE:
        // Not expressible as a conjunction of affine constraints.
        return false;
    }

    OpBuilder b;
    b.setInsertionPoint(op);
    bool has_else = !op->region(1).empty();
    AffineIfOp affine_if =
        createAffineIf(b, IntegerSet::get(dims.size(), constraint, is_eq),
                       dims, has_else);
    spliceBlock(&op->region(0).front(), affine_if.thenBlock());
    if (has_else)
        spliceBlock(&op->region(1).front(), affine_if.elseBlock());
    op->erase();
    return true;
}

bool
raiseMemAccess(Operation *op)
{
    bool is_load = op->is(ops::MemLoad);
    unsigned first = is_load ? 1 : 2;
    std::vector<Value *> dims;
    std::vector<AffineExpr> exprs;
    for (unsigned i = first; i < op->numOperands(); ++i) {
        auto expr = traceAffineExpr(op->operand(i), dims);
        if (!expr)
            return false;
        exprs.push_back(*expr);
    }
    OpBuilder b;
    b.setInsertionPoint(op);
    AffineMap map(dims.size(), 0, exprs);
    if (is_load) {
        Operation *load =
            createAffineLoad(b, op->operand(0), map, dims);
        op->replaceAllUsesWith(load);
    } else {
        createAffineStore(b, op->operand(0), op->operand(1), map, dims);
    }
    op->erase();
    return true;
}

} // namespace

bool
raiseScfToAffine(Operation *scope)
{
    bool any_change = false;
    // Outer loops must be raised before inner ones so that inner bounds
    // trace to affine IVs; iterate to a fixed point.
    bool changed = true;
    while (changed) {
        changed = false;
        // One raise per round keeps the walk snapshot valid.
        std::vector<Operation *> scf_ops;
        scope->walk([&](Operation *op) {
            if (op->is(ops::ScfFor) || op->is(ops::ScfIf))
                scf_ops.push_back(op);
        });
        for (Operation *op : scf_ops) {
            bool raised = op->is(ops::ScfFor) ? raiseScfForOp(op)
                                              : raiseScfIfOp(op);
            if (raised) {
                changed = true;
                break;
            }
        }
        any_change |= changed;
    }

    // Raise memory accesses once all loops are affine.
    std::vector<Operation *> accesses;
    scope->walk([&](Operation *op) {
        if (op->is(ops::MemLoad) || op->is(ops::MemStore))
            accesses.push_back(op);
    });
    for (Operation *op : accesses)
        any_change |= raiseMemAccess(op);

    // The arith index chains feeding the raised ops are now mostly dead.
    applyCanonicalize(scope);
    return any_change;
}

} // namespace scalehls
