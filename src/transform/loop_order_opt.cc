/**
 * @file
 * -affine-loop-order-opt (paper Section V-B2): loop permutation driven by
 * affine memory dependence analysis. Loops carrying recurrences are
 * permuted outward, maximizing the distance of loop-carried dependencies
 * in the flattened iteration space and thereby the achievable pipeline II.
 */

#include <algorithm>
#include <numeric>

#include "analysis/memory_analysis.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

/** A dependence pair with the set of band dims absent from its subscripts
 * (any absent dim carries the dependence). */
struct DepPair
{
    std::vector<bool> absent;
};

std::vector<DepPair>
collectDepPairs(const std::vector<Operation *> &band)
{
    std::vector<DepPair> pairs;
    auto ivs = bandIVs(band);
    auto accesses = collectAccesses(band.front(), ivs);
    for (const MemAccess &store : accesses) {
        if (!store.isWrite || !store.normalized)
            continue;
        for (const MemAccess &other : accesses) {
            if (other.op == store.op || other.memref != store.memref)
                continue;
            if (!other.normalized)
                continue;
            if (other.indices.size() != store.indices.size())
                continue;
            bool equal = true;
            for (unsigned i = 0; i < store.indices.size(); ++i)
                equal &= store.indices[i].equals(other.indices[i]);
            if (!equal)
                continue;
            DepPair pair;
            pair.absent.assign(band.size(), true);
            for (unsigned level = 0; level < band.size(); ++level)
                for (const auto &expr : store.indices)
                    if (expr.involvesDim(level))
                        pair.absent[level] = false;
            bool any_absent = false;
            for (bool a : pair.absent)
                any_absent |= a;
            if (any_absent)
                pairs.push_back(std::move(pair));
        }
    }
    return pairs;
}

/** The minimum flattened recurrence distance of the band under the
 * permutation perm (perm[i] = new position of old loop i). */
double
permutationScore(const std::vector<DepPair> &pairs,
                 const std::vector<int64_t> &trips,
                 const std::vector<unsigned> &perm)
{
    if (pairs.empty())
        return 0.0;
    unsigned n = perm.size();
    // trips by new position.
    std::vector<int64_t> new_trips(n, 1);
    for (unsigned old_pos = 0; old_pos < n; ++old_pos)
        new_trips[perm[old_pos]] = trips[old_pos];

    double min_distance = 1e300;
    for (const DepPair &pair : pairs) {
        // The carried loop is the innermost absent one (largest position).
        int carried = -1;
        for (unsigned old_pos = 0; old_pos < n; ++old_pos)
            if (pair.absent[old_pos])
                carried = std::max(carried,
                                   static_cast<int>(perm[old_pos]));
        double distance = 1;
        for (unsigned p = carried + 1; p < n; ++p)
            distance *= static_cast<double>(new_trips[p]);
        min_distance = std::min(min_distance, distance);
    }
    return min_distance;
}

} // namespace

bool
applyLoopPermutation(const std::vector<Operation *> &band,
                     const std::vector<unsigned> &perm_map)
{
    unsigned n = band.size();
    if (perm_map.size() != n || n < 2)
        return false;
    if (!isPerfectNest(band))
        return false;
    // perm_map must be a permutation.
    std::vector<bool> seen(n, false);
    for (unsigned p : perm_map) {
        if (p >= n || seen[p])
            return false;
        seen[p] = true;
    }
    bool identity = true;
    for (unsigned i = 0; i < n; ++i)
        identity &= (perm_map[i] == i);
    if (identity)
        return true;

    // Legality: a bound of old loop j referencing old IV i requires the new
    // position of i to stay outer: perm[i] < perm[j].
    for (unsigned j = 0; j < n; ++j) {
        AffineForOp loop(band[j]);
        for (Value *operand : loop.op()->operands()) {
            for (unsigned i = 0; i < n; ++i) {
                if (operand == AffineForOp(band[i]).inductionVar() &&
                    perm_map[i] >= perm_map[j])
                    return false;
            }
        }
    }

    // The loop ops stay in place; their bound/step/directive payloads are
    // permuted and IV uses are swapped accordingly.
    struct Payload
    {
        AffineMap lb, ub;
        std::vector<Value *> lb_ops, ub_ops;
        int64_t step;
        Attribute directive;
    };
    std::vector<Payload> payloads(n);
    for (unsigned i = 0; i < n; ++i) {
        AffineForOp loop(band[i]);
        payloads[i] = {loop.lowerBoundMap(), loop.upperBoundMap(),
                       loop.lowerBoundOperands(), loop.upperBoundOperands(),
                       loop.step(), loop.op()->attr(kLoopDirective)};
    }

    // Collect IV uses before rewriting (uses include bound operands, which
    // are handled by the payload move itself, so exclude the band ops).
    std::vector<std::vector<std::pair<Operation *, unsigned>>> iv_uses(n);
    for (unsigned i = 0; i < n; ++i) {
        Value *iv = AffineForOp(band[i]).inductionVar();
        for (Operation *user : iv->users()) {
            bool is_band_op = std::find(band.begin(), band.end(), user) !=
                              band.end();
            if (is_band_op)
                continue;
            for (unsigned k = 0; k < user->numOperands(); ++k)
                if (user->operand(k) == iv)
                    iv_uses[i].emplace_back(user, k);
        }
    }

    // Install payload of old loop i onto the physical loop at position
    // perm_map[i], remapping IV references inside bounds.
    auto remapBoundOperands = [&](std::vector<Value *> &operands) {
        for (Value *&operand : operands)
            for (unsigned i = 0; i < n; ++i)
                if (operand == AffineForOp(band[i]).inductionVar())
                    operand = AffineForOp(band[perm_map[i]]).inductionVar();
    };
    for (unsigned i = 0; i < n; ++i) {
        Payload payload = payloads[i];
        remapBoundOperands(payload.lb_ops);
        remapBoundOperands(payload.ub_ops);
        AffineForOp target(band[perm_map[i]]);
        target.setLowerBound(payload.lb, payload.lb_ops);
        target.setUpperBound(payload.ub, payload.ub_ops);
        target.setStep(payload.step);
        if (payload.directive)
            target.op()->setAttr(kLoopDirective, payload.directive);
        else
            target.op()->removeAttr(kLoopDirective);
    }

    // Swap body IV uses: a use of old IV i becomes the IV of the physical
    // loop at position perm_map[i].
    for (unsigned i = 0; i < n; ++i) {
        Value *new_iv = AffineForOp(band[perm_map[i]]).inductionVar();
        for (auto [user, operand_idx] : iv_uses[i])
            user->setOperand(operand_idx, new_iv);
    }
    return true;
}

bool
applyLoopOrderOpt(const std::vector<Operation *> &band)
{
    unsigned n = band.size();
    if (n < 2 || !isPerfectNest(band))
        return false;

    auto pairs = collectDepPairs(band);
    if (pairs.empty())
        return false;

    std::vector<int64_t> trips;
    for (Operation *loop : band)
        trips.push_back(getTripCount(AffineForOp(loop)).value_or(1));

    // Exhaustive search over permutations (bands are shallow); try
    // candidates best-first since some permutations may be illegal.
    std::vector<unsigned> order(n);
    std::iota(order.begin(), order.end(), 0);
    double identity_score = permutationScore(pairs, trips, order);

    std::vector<std::pair<double, std::vector<unsigned>>> candidates;
    std::vector<unsigned> perm = order;
    do {
        candidates.emplace_back(permutationScore(pairs, trips, perm),
                                perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });

    for (const auto &[score, candidate] : candidates) {
        if (score <= identity_score)
            return false; // Nothing beats the current order.
        if (applyLoopPermutation(band, candidate))
            return true;
    }
    return false;
}

} // namespace scalehls
