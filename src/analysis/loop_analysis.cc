#include "analysis/loop_analysis.h"

#include <algorithm>

#include "support/utils.h"

namespace scalehls {

std::vector<Operation *>
getLoopNest(Operation *outermost)
{
    std::vector<Operation *> band;
    Operation *current = outermost;
    while (true) {
        band.push_back(current);
        Block *body = AffineForOp(current).body();
        Operation *child = nullptr;
        int num_loops = 0;
        for (auto &op : body->ops()) {
            if (op->is(ops::AffineFor)) {
                ++num_loops;
                child = op.get();
            }
        }
        if (num_loops != 1)
            break;
        current = child;
    }
    return band;
}

std::vector<std::vector<Operation *>>
getLoopBands(Operation *scope)
{
    std::vector<std::vector<Operation *>> bands;
    scope->walk([&](Operation *op) {
        if (!op->is(ops::AffineFor))
            return;
        // Top level within scope: no enclosing affine.for below scope.
        for (Operation *p = op->parentOp(); p && p != scope;
             p = p->parentOp()) {
            if (p->is(ops::AffineFor))
                return;
        }
        bands.push_back(getLoopNest(op));
    });
    return bands;
}

bool
isPerfectNest(const std::vector<Operation *> &band)
{
    for (unsigned i = 0; i + 1 < band.size(); ++i) {
        Block *body = AffineForOp(band[i]).body();
        if (body->size() != 1 || body->front() != band[i + 1])
            return false;
    }
    return true;
}

int
loopDepth(const Operation *op)
{
    int depth = 0;
    for (Operation *p = op->parentOp(); p; p = p->parentOp())
        if (p->is(ops::AffineFor))
            ++depth;
    return depth;
}

bool
containsLoops(Operation *op)
{
    bool found = false;
    op->walk([&](Operation *nested) {
        if (nested != op && isLoop(nested))
            found = true;
    });
    return found;
}

namespace {

/** Evaluate all results of a bound map at the corner points of the operand
 * ranges and return {min over corners of (combine over results)}. For lower
 * bounds the effective bound is the max over results; for upper bounds the
 * min over results. */
std::optional<std::pair<int64_t, int64_t>>
boundRange(const AffineMap &map, const std::vector<Value *> &operands,
           bool is_lower)
{
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (Value *v : operands) {
        auto r = getIVRange(v);
        if (!r) {
            // Not an induction variable; constants are still fine.
            if (auto c = getConstantIntValue(v)) {
                r = std::make_pair(*c, *c);
            } else {
                return std::nullopt;
            }
        }
        ranges.push_back(*r);
    }

    int64_t global_min = 0;
    int64_t global_max = 0;
    bool first = true;
    unsigned k = ranges.size();
    assert(k < 20 && "too many bound operands");
    for (unsigned mask = 0; mask < (1u << k); ++mask) {
        std::vector<int64_t> dims;
        for (unsigned i = 0; i < k; ++i)
            dims.push_back((mask & (1u << i)) ? ranges[i].second
                                              : ranges[i].first);
        auto values = map.evaluate(dims);
        // Effective bound at this corner.
        int64_t v = is_lower
                        ? *std::max_element(values.begin(), values.end())
                        : *std::min_element(values.begin(), values.end());
        if (first || v < global_min)
            global_min = v;
        if (first || v > global_max)
            global_max = v;
        first = false;
    }
    return std::make_pair(global_min, global_max);
}

} // namespace

std::optional<int64_t>
getBoundMin(const AffineMap &map, const std::vector<Value *> &operands,
            bool is_lower)
{
    auto r = boundRange(map, operands, is_lower);
    if (!r)
        return std::nullopt;
    return r->first;
}

std::optional<int64_t>
getBoundMax(const AffineMap &map, const std::vector<Value *> &operands,
            bool is_lower)
{
    auto r = boundRange(map, operands, is_lower);
    if (!r)
        return std::nullopt;
    return r->second;
}

std::optional<std::pair<int64_t, int64_t>>
getIVRange(Value *iv)
{
    Block *owner = iv->ownerBlock();
    if (!owner)
        return std::nullopt;
    Operation *loop = owner->parentOp();
    if (!isa(loop, ops::AffineFor))
        return std::nullopt;
    AffineForOp for_op(loop);
    auto lb = getBoundMin(for_op.lowerBoundMap(),
                          for_op.lowerBoundOperands(), true);
    auto ub = getBoundMax(for_op.upperBoundMap(),
                          for_op.upperBoundOperands(), false);
    if (!lb || !ub)
        return std::nullopt;
    int64_t step = for_op.step();
    int64_t last = *ub - 1;
    // Align to the step grid.
    if (last >= *lb)
        last = *lb + ((last - *lb) / step) * step;
    else
        last = *lb;
    return std::make_pair(*lb, last);
}

std::optional<int64_t>
getTripCount(AffineForOp for_op)
{
    if (auto trip = for_op.constantTripCount())
        return trip;
    // Exact trip for bounds of the form lb = f(x), ub = f(x) + c over the
    // same operands (tiling's point loops).
    if (for_op.lowerBoundMap().numResults() == 1 &&
        for_op.upperBoundMap().numResults() == 1 &&
        for_op.lowerBoundOperands() == for_op.upperBoundOperands()) {
        auto extent = constantDiff(for_op.upperBoundMap().result(0),
                                   for_op.lowerBoundMap().result(0));
        if (extent) {
            if (*extent <= 0)
                return 0;
            return ceilDiv(*extent, for_op.step());
        }
    }
    auto lb = getBoundMin(for_op.lowerBoundMap(),
                          for_op.lowerBoundOperands(), true);
    auto ub = getBoundMax(for_op.upperBoundMap(),
                          for_op.upperBoundOperands(), false);
    if (!lb || !ub)
        return std::nullopt;
    if (*ub <= *lb)
        return 0;
    return ceilDiv(*ub - *lb, for_op.step());
}

std::optional<int64_t>
getBandTripCount(const std::vector<Operation *> &band)
{
    int64_t total = 1;
    for (Operation *loop : band) {
        auto trip = getTripCount(AffineForOp(loop));
        if (!trip)
            return std::nullopt;
        total *= *trip;
    }
    return total;
}

std::vector<Value *>
bandIVs(const std::vector<Operation *> &band)
{
    std::vector<Value *> ivs;
    ivs.reserve(band.size());
    for (Operation *loop : band)
        ivs.push_back(AffineForOp(loop).inductionVar());
    return ivs;
}

} // namespace scalehls
