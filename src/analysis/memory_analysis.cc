#include "analysis/memory_analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <cmath>

#include "support/utils.h"

namespace scalehls {

int64_t
PartitionPlan::totalBanks() const
{
    int64_t banks = 1;
    for (int64_t f : factors)
        banks *= f;
    return banks;
}

bool
PartitionPlan::isTrivial() const
{
    for (int64_t f : factors)
        if (f > 1)
            return false;
    return true;
}

namespace {

/** Express one subscript operand as an affine expression over band IVs. */
std::optional<AffineExpr>
operandExpr(Value *v, const std::vector<Value *> &band_ivs)
{
    for (unsigned i = 0; i < band_ivs.size(); ++i)
        if (band_ivs[i] == v)
            return getAffineDimExpr(i);
    if (auto c = getConstantIntValue(v))
        return getAffineConstantExpr(*c);
    return std::nullopt;
}

MemAccess
makeAccess(Operation *op, const std::vector<Value *> &band_ivs)
{
    MemAccess access;
    access.op = op;
    access.memref = accessedMemRef(op);
    access.isWrite = isMemoryWrite(op);
    access.normalized = true;

    AffineMap map;
    std::vector<Value *> operands;
    if (op->is(ops::AffineLoad)) {
        AffineLoadOp load(op);
        map = load.map();
        operands = load.mapOperands();
    } else if (op->is(ops::AffineStore)) {
        AffineStoreOp store(op);
        map = store.map();
        operands = store.mapOperands();
    } else {
        // memref.load/store: identity subscripts.
        unsigned first = op->is(ops::MemLoad) ? 1 : 2;
        for (unsigned i = first; i < op->numOperands(); ++i)
            operands.push_back(op->operand(i));
        map = AffineMap::identity(operands.size());
    }

    std::vector<AffineExpr> dim_repls(operands.size());
    for (unsigned i = 0; i < operands.size(); ++i) {
        auto expr = operandExpr(operands[i], band_ivs);
        if (!expr) {
            access.normalized = false;
            dim_repls[i] = getAffineDimExpr(i);
        } else {
            dim_repls[i] = *expr;
        }
    }
    for (const auto &result : map.results())
        access.indices.push_back(
            result.replaceDimsAndSymbols(dim_repls));
    return access;
}

} // namespace

std::vector<MemAccess>
collectAccesses(Operation *scope, const std::vector<Value *> &band_ivs)
{
    std::vector<MemAccess> accesses;
    scope->walk([&](Operation *op) {
        if (isMemoryAccess(op))
            accesses.push_back(makeAccess(op, band_ivs));
    });
    return accesses;
}

std::vector<std::pair<Value *, std::vector<MemAccess>>>
groupByMemRef(const std::vector<MemAccess> &accesses)
{
    std::vector<std::pair<Value *, std::vector<MemAccess>>> groups;
    for (const MemAccess &access : accesses) {
        auto it = std::find_if(groups.begin(), groups.end(), [&](auto &g) {
            return g.first == access.memref;
        });
        if (it == groups.end()) {
            groups.push_back({access.memref, {access}});
        } else {
            it->second.push_back(access);
        }
    }
    return groups;
}

namespace {

bool
indicesEqual(const std::vector<AffineExpr> &a,
             const std::vector<AffineExpr> &b)
{
    if (a.size() != b.size())
        return false;
    for (unsigned i = 0; i < a.size(); ++i)
        if (!a[i].equals(b[i]))
            return false;
    return true;
}

/** Deduplicate accesses by subscript vector; non-normalized accesses are
 * always considered unique. */
std::vector<const MemAccess *>
uniqueAccesses(const std::vector<MemAccess> &accesses)
{
    std::vector<const MemAccess *> unique;
    for (const MemAccess &access : accesses) {
        bool duplicate = false;
        if (access.normalized) {
            for (const MemAccess *seen : unique) {
                if (seen->normalized &&
                    indicesEqual(seen->indices, access.indices)) {
                    duplicate = true;
                    break;
                }
            }
        }
        if (!duplicate)
            unique.push_back(&access);
    }
    return unique;
}

} // namespace

PartitionPlan
computePartitionPlan(Value *memref, const std::vector<MemAccess> &accesses)
{
    const auto &shape = memref->type().shape();
    unsigned rank = shape.size();
    PartitionPlan plan;
    plan.kinds.assign(rank, PartitionKind::None);
    plan.factors.assign(rank, 1);

    auto unique = uniqueAccesses(accesses);
    if (unique.size() < 2)
        return plan;

    constexpr int64_t kUnknownDistance = -1;
    for (unsigned d = 0; d < rank; ++d) {
        // Unique subscript expressions along this dimension.
        std::vector<AffineExpr> dim_exprs;
        bool any_unknown = false;
        for (const MemAccess *access : unique) {
            if (!access->normalized || d >= access->indices.size()) {
                any_unknown = true;
                continue;
            }
            AffineExpr e = access->indices[d];
            bool seen = false;
            for (const auto &s : dim_exprs)
                seen |= s.equals(e);
            if (!seen)
                dim_exprs.push_back(e);
        }
        int64_t num_unique = static_cast<int64_t>(dim_exprs.size()) +
                             (any_unknown ? 1 : 0);
        if (num_unique < 2)
            continue;

        // Max pairwise constant distance (paper Eq. 1 denominator - 1);
        // non-constant differences make the distance unknown.
        int64_t max_dist = 0;
        for (unsigned m = 0; m < dim_exprs.size() && max_dist >= 0; ++m) {
            for (unsigned n = m + 1; n < dim_exprs.size(); ++n) {
                auto diff = constantDiff(dim_exprs[m], dim_exprs[n]);
                if (!diff) {
                    max_dist = kUnknownDistance;
                    break;
                }
                max_dist = std::max(max_dist, std::abs(*diff));
            }
        }
        if (any_unknown)
            max_dist = kUnknownDistance;

        int64_t factor = std::min<int64_t>(num_unique, shape[d]);
        if (factor <= 1)
            continue;
        if (max_dist != kUnknownDistance &&
            num_unique >= max_dist + 1) {
            // P = Accesses / (maxDist + 1) >= 1 -> cyclic.
            plan.kinds[d] = PartitionKind::Cyclic;
        } else {
            plan.kinds[d] = PartitionKind::Block;
        }
        plan.factors[d] = factor;
    }
    return plan;
}

AffineMap
buildPartitionMap(const PartitionPlan &plan,
                  const std::vector<int64_t> &shape)
{
    if (plan.isTrivial())
        return AffineMap();
    unsigned rank = shape.size();
    std::vector<AffineExpr> results(2 * rank);
    for (unsigned d = 0; d < rank; ++d) {
        AffineExpr dim = getAffineDimExpr(d);
        int64_t f = plan.factors[d];
        switch (plan.kinds[d]) {
          case PartitionKind::None:
            results[d] = getAffineConstantExpr(0);
            results[rank + d] = dim;
            break;
          case PartitionKind::Cyclic:
            results[d] = affineMod(dim, f);
            results[rank + d] = affineFloorDiv(dim, f);
            break;
          case PartitionKind::Block: {
            int64_t block = ceilDiv(shape[d], f);
            results[d] = affineFloorDiv(dim, block);
            results[rank + d] = affineMod(dim, block);
            break;
          }
        }
    }
    return AffineMap(rank, 0, std::move(results));
}

PartitionPlan
decodePartitionMap(const AffineMap &map, const std::vector<int64_t> &shape)
{
    unsigned rank = shape.size();
    PartitionPlan plan;
    plan.kinds.assign(rank, PartitionKind::None);
    plan.factors.assign(rank, 1);
    if (map.empty() || map.numResults() != 2 * rank)
        return plan;
    for (unsigned d = 0; d < rank; ++d) {
        AffineExpr part = map.result(d);
        if (part.isConstant())
            continue;
        if (part.kind() == AffineExprKind::Mod &&
            part.rhs().isConstant()) {
            plan.kinds[d] = PartitionKind::Cyclic;
            plan.factors[d] = part.rhs().constantValue();
        } else if (part.kind() == AffineExprKind::FloorDiv &&
                   part.rhs().isConstant()) {
            int64_t block = part.rhs().constantValue();
            plan.kinds[d] = PartitionKind::Block;
            plan.factors[d] = ceilDiv(shape[d], block);
        }
    }
    return plan;
}

std::vector<AffineExpr>
bankIndexExprs(const AffineMap &layout,
               const std::vector<AffineExpr> &indices)
{
    std::vector<AffineExpr> banks;
    if (layout.empty())
        return banks;
    unsigned rank = indices.size();
    assert(layout.numResults() == 2 * rank);
    for (unsigned d = 0; d < rank; ++d)
        banks.push_back(
            layout.result(d).replaceDimsAndSymbols(indices));
    return banks;
}

std::string
subscriptKey(const MemAccess &access)
{
    std::string key;
    for (const AffineExpr &e : access.indices) {
        std::vector<std::pair<unsigned, int64_t>> coeffs;
        int64_t constant = 0;
        if (e.linearForm(coeffs, constant)) {
            key += "L";
            for (const auto &[pos, coeff] : coeffs)
                key += std::to_string(pos) + "*" +
                       std::to_string(coeff) + "+";
            key += std::to_string(constant);
        } else {
            key += "E" + e.toString();
        }
        key += "|";
    }
    return key;
}

std::vector<Recurrence>
findRecurrences(const std::vector<Operation *> &band)
{
    std::vector<Recurrence> recurrences;
    if (band.empty())
        return recurrences;
    auto ivs = bandIVs(band);
    auto accesses = collectAccesses(band[0], ivs);

    // Trip counts for flattened-distance computation.
    std::vector<int64_t> trips;
    for (Operation *loop : band)
        trips.push_back(getTripCount(AffineForOp(loop)).value_or(1));

    auto flatDistance = [&](unsigned carried_level) {
        int64_t dist = 1;
        for (unsigned i = carried_level + 1; i < band.size(); ++i)
            dist *= trips[i];
        return dist;
    };

    // Bucket by (memref, canonical subscripts): a recurrence needs a
    // write and another access at the identical address, so one
    // representative pair per bucket suffices (all members share the
    // same carried level and path structure after unrolling).
    struct Bucket
    {
        Operation *write = nullptr;
        Operation *other = nullptr;
        const MemAccess *sample = nullptr;
    };
    std::map<std::pair<Value *, std::string>, Bucket> buckets;
    std::set<Value *> conservative; // Memrefs with unanalyzable writes.
    std::map<Value *, std::pair<Operation *, Operation *>> conservative_ops;

    for (const MemAccess &access : accesses) {
        if (!access.normalized) {
            auto &[w, o] = conservative_ops[access.memref];
            (access.isWrite ? w : o) = access.op;
            if (access.isWrite)
                conservative.insert(access.memref);
            continue;
        }
        Bucket &bucket =
            buckets[{access.memref, subscriptKey(access)}];
        bucket.sample = &access;
        if (access.isWrite && !bucket.write)
            bucket.write = access.op;
        else if (!access.isWrite && !bucket.other)
            bucket.other = access.op;
    }

    for (Value *memref : conservative) {
        auto [w, o] = conservative_ops[memref];
        recurrences.push_back(
            {w, o ? o : w, static_cast<unsigned>(band.size()) - 1, 1});
    }

    for (auto &[key, bucket] : buckets) {
        if (!bucket.write)
            continue;
        // The innermost loop absent from the subscripts carries the
        // dependence with distance 1 at its level.
        int carried = -1;
        for (int level = static_cast<int>(band.size()) - 1; level >= 0;
             --level) {
            bool involved = false;
            for (const auto &e : bucket.sample->indices)
                involved |= e.involvesDim(level);
            if (!involved) {
                carried = level;
                break;
            }
        }
        if (carried < 0)
            continue; // Every iteration touches a distinct address.
        Operation *reader = bucket.other ? bucket.other : bucket.write;
        recurrences.push_back({bucket.write, reader,
                               static_cast<unsigned>(carried),
                               flatDistance(carried)});
    }
    return recurrences;
}

std::map<Value *, std::vector<bool>>
partitionRelevantDims(Operation *band_root)
{
    std::map<Value *, std::vector<bool>> relevant;

    // One scope per plan query the estimator makes; mirrors
    // estimateBand (whole band over the nest IVs) and minLoopII (each
    // pipelined leaf over its flattened chain's IVs).
    auto scan = [&](Operation *scope, const std::vector<Value *> &ivs) {
        auto accesses = collectAccesses(scope, ivs);
        for (auto &[memref, group] : groupByMemRef(accesses)) {
            if (!memref->type().isMemRef())
                continue;
            unsigned rank = memref->type().rank();
            auto &mask =
                relevant.emplace(memref, std::vector<bool>(rank, false))
                    .first->second;
            if (mask.size() != rank)
                continue;
            for (size_t i = 0; i < group.size(); ++i) {
                const MemAccess &a = group[i];
                if (!a.normalized || a.indices.size() != rank)
                    continue; // possiblySameBank never reads the plan.
                for (size_t j = i + 1; j < group.size(); ++j) {
                    const MemAccess &b = group[j];
                    if (!b.normalized || b.indices.size() != rank)
                        continue;
                    for (unsigned d = 0; d < rank; ++d) {
                        if (mask[d])
                            continue;
                        auto diff =
                            constantDiff(a.indices[d], b.indices[d]);
                        if (diff && *diff != 0)
                            mask[d] = true;
                    }
                }
            }
        }
    };

    scan(band_root, bandIVs(getLoopNest(band_root)));
    band_root->walk([&](Operation *op) {
        if (!op->is(ops::AffineFor) || !getLoopDirective(op).pipeline)
            return;
        // The maximal flatten chain ending at this pipelined leaf —
        // exactly the chain minLoopII normalizes over.
        std::vector<Operation *> chain = {op};
        for (Operation *parent = op->parentOp();
             isa(parent, ops::AffineFor) &&
             getLoopDirective(parent).flatten;
             parent = parent->parentOp())
            chain.insert(chain.begin(), parent);
        scan(op, bandIVs(chain));
    });
    return relevant;
}

} // namespace scalehls
