#include "analysis/buffer_analysis.h"

#include <algorithm>
#include <map>

namespace scalehls {

const OwnedBuffer *
AllocOwnershipInfo::find(const Value *memref) const
{
    for (const OwnedBuffer &buffer : buffers)
        if (buffer.memref == memref)
            return &buffer;
    return nullptr;
}

bool
AllocOwnershipInfo::eligible(bool dataflow_top) const
{
    if (!allOwned)
        return false;
    if (!dataflow_top)
        return true;
    for (const OwnedBuffer &buffer : buffers)
        if (buffer.ownership == BufferOwnership::SharedChain)
            return false;
    return true;
}

std::string
AllocOwnershipInfo::digestNote(const Value *memref) const
{
    const OwnedBuffer *buffer = find(memref);
    if (!buffer)
        return {};
    return buffer->kept ? "kept" : "dead";
}

namespace {

/** The index of the band containing @p op (-1 when outside every
 * band). */
int
enclosingBand(const Operation *op,
              const std::vector<Operation *> &band_roots)
{
    for (size_t b = 0; b < band_roots.size(); ++b)
        if (band_roots[b] == op || band_roots[b]->isAncestorOf(op))
            return static_cast<int>(b);
    return -1;
}

OwnedBuffer
classify(Operation *alloc, const std::vector<Operation *> &band_roots)
{
    OwnedBuffer buffer;
    buffer.alloc = alloc;
    buffer.memref = alloc->result(0);

    // Per-band load/store presence. Any user that is not a plain
    // load/store of the buffer inside some band — a call or copy taking
    // the memref, the memref stored as a value, a flat-scope access —
    // escapes band-local reasoning.
    std::map<int, std::pair<bool, bool>> per_band; // band -> (load, store)
    bool any_load = false;
    for (Operation *user : buffer.memref->users()) {
        bool plain_access = isMemoryAccess(user) &&
                            accessedMemRef(user) == buffer.memref;
        if (plain_access && isMemoryWrite(user) &&
            user->operand(0) == buffer.memref)
            plain_access = false; // The memref itself is the stored value.
        int band = enclosingBand(user, band_roots);
        if (!plain_access || band < 0) {
            buffer.ownership = BufferOwnership::Escaping;
            return buffer;
        }
        auto &flags = per_band[band];
        if (isMemoryWrite(user))
            flags.second = true;
        else
            flags.first = any_load = true;
    }

    for (const auto &[band, flags] : per_band)
        buffer.bands.push_back(band);
    buffer.writeOnly = !any_load && !per_band.empty();
    buffer.kept = any_load;

    if (per_band.empty()) {
        buffer.ownership = BufferOwnership::Dead;
        return buffer;
    }
    if (per_band.size() == 1) {
        buffer.ownership = BufferOwnership::BandLocal;
        buffer.owner = buffer.bands.front();
        return buffer;
    }
    if (per_band.size() == 2) {
        const auto &producer = per_band.begin()->second;
        const auto &consumer = std::next(per_band.begin())->second;
        if (!producer.first && producer.second && consumer.first) {
            buffer.ownership = BufferOwnership::DataflowEdge;
            buffer.owner = buffer.bands[0];
            buffer.consumer = buffer.bands[1];
            return buffer;
        }
    }
    if (per_band.size() > 2) {
        // One store-only producer feeding load-only reader stages is a
        // broadcast channel (MultiConsumer); any later band that also
        // writes makes it a SharedChain instead.
        const auto &producer = per_band.begin()->second;
        bool broadcast = !producer.first && producer.second;
        for (auto it = std::next(per_band.begin());
             broadcast && it != per_band.end(); ++it)
            broadcast = it->second.first && !it->second.second;
        if (broadcast) {
            buffer.ownership = BufferOwnership::MultiConsumer;
            buffer.owner = buffer.bands[0];
            return buffer;
        }
    }
    buffer.ownership = BufferOwnership::SharedChain;
    return buffer;
}

} // namespace

AllocOwnershipInfo
bandLocalAllocs(Operation *func,
                const std::vector<Operation *> &band_roots)
{
    AllocOwnershipInfo info;
    for (Operation *alloc : func->collect(ops::Alloc)) {
        info.buffers.push_back(classify(alloc, band_roots));
        info.allOwned &=
            info.buffers.back().ownership != BufferOwnership::Escaping;
    }
    return info;
}

} // namespace scalehls
