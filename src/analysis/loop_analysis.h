/**
 * @file
 * Loop analyses: band extraction, perfect-nesting checks, trip counts and
 * induction-variable ranges. A "loop band" (paper Table II) is a continuous
 * chain of nested affine.for loops, outermost first.
 */

#ifndef SCALEHLS_ANALYSIS_LOOP_ANALYSIS_H
#define SCALEHLS_ANALYSIS_LOOP_ANALYSIS_H

#include <optional>
#include <vector>

#include "dialect/ops.h"

namespace scalehls {

/** The maximal loop nest starting at @p outermost: follows the chain while
 * the body contains exactly one nested affine.for (other non-loop ops are
 * allowed, making the band possibly imperfect). */
std::vector<Operation *> getLoopNest(Operation *outermost);

/** All maximal loop bands rooted at top-level loops inside @p scope
 * (loops not nested in another loop within the scope). */
std::vector<std::vector<Operation *>> getLoopBands(Operation *scope);

/** True if each non-innermost loop body contains only the next loop. */
bool isPerfectNest(const std::vector<Operation *> &band);

/** Depth of @p op: the number of enclosing affine.for loops. */
int loopDepth(const Operation *op);

/** True if @p op transitively contains any affine.for or scf.for. */
bool containsLoops(Operation *op);

/** Inclusive value range of an affine.for induction variable, derived from
 * its bound maps (recursively using the ranges of outer IV operands).
 * Returns nullopt for non-affine/unknown operands. */
std::optional<std::pair<int64_t, int64_t>> getIVRange(Value *iv);

/** Minimum / maximum value of an affine bound map given the ranges of its
 * operands. Lower bounds use the max over results; upper bounds the min. */
std::optional<int64_t> getBoundMin(const AffineMap &map,
                                   const std::vector<Value *> &operands,
                                   bool is_lower);
std::optional<int64_t> getBoundMax(const AffineMap &map,
                                   const std::vector<Value *> &operands,
                                   bool is_lower);

/** Trip count of a loop. Constant-bound loops are exact; variable-bound
 * loops use the worst case (max upper bound minus min lower bound);
 * nullopt if bounds cannot be analyzed. */
std::optional<int64_t> getTripCount(AffineForOp for_op);

/** Product of trip counts of all loops in a band (1 for empty bands,
 * worst-case bounds for variable loops, nullopt on failure). */
std::optional<int64_t> getBandTripCount(
    const std::vector<Operation *> &band);

/** The induction variables of a band, outermost first. */
std::vector<Value *> bandIVs(const std::vector<Operation *> &band);

} // namespace scalehls

#endif // SCALEHLS_ANALYSIS_LOOP_ANALYSIS_H
