/**
 * @file
 * Buffer-ownership analysis over a function's locally allocated memrefs:
 * which top-level loop band(s) a buffer's defs/uses are confined to. The
 * band-incremental DSE fast path uses it to decide whether the
 * function-wide cleanup pipeline is provably band-local on alloc-carrying
 * functions (DNN accelerator stages, dataflow channel buffers), and to
 * replay the memory-resource accounting of the skipped phase 2.
 */

#ifndef SCALEHLS_ANALYSIS_BUFFER_ANALYSIS_H
#define SCALEHLS_ANALYSIS_BUFFER_ANALYSIS_H

#include <string>
#include <vector>

#include "dialect/ops.h"

namespace scalehls {

/** How a locally allocated buffer's uses relate to the function's
 * top-level loop bands. */
enum class BufferOwnership
{
    /** No users at all: cleanup erases the alloc. */
    Dead,
    /** Every user is a plain load/store inside ONE top-level band. */
    BandLocal,
    /** Users span exactly two bands as one producer→consumer edge: the
     * earlier band only stores, the later band loads (a dataflow channel
     * buffer, or the equivalent RAW edge of a sequential function). */
    DataflowEdge,
    /** One producer band, SEVERAL reader stages: the first band only
     * stores, every later band only loads (a broadcast channel — e.g.
     * one feature map consumed by two downstream layers). Still a legal
     * dataflow channel: the later stages cannot write back, so no
     * WAR/WAW hazard crosses the stage overlap. */
    MultiConsumer,
    /** Users are plain loads/stores confined to bands, but span a longer
     * producer/consumer chain (the init → accumulate → consume pattern
     * of lowered DNN layers). */
    SharedChain,
    /** The buffer escapes band-local reasoning: a user outside every
     * band, a non-load/store user (call, copy, return), or the memref
     * stored as a VALUE into other memory. */
    Escaping,
};

/** One classified buffer. */
struct OwnedBuffer
{
    Operation *alloc = nullptr;
    Value *memref = nullptr;
    BufferOwnership ownership = BufferOwnership::Escaping;
    /** BandLocal: the owning band. DataflowEdge/MultiConsumer: the
     * producer band. */
    int owner = -1;
    /** DataflowEdge: the consumer band. */
    int consumer = -1;
    /** Band indices that access the buffer, ascending. */
    std::vector<int> bands;
    /** True when every user is a store: -affine-store-forward's
     * write-only-buffer cleanup erases the alloc and all its stores. */
    bool writeOnly = false;
    /** True when cleanup keeps the buffer (some user reads it); the
     * opposite of writeOnly for non-Dead buffers. A kept buffer's FINAL
     * (possibly partitioned) type is what the function-level memory
     * accounting reads. */
    bool kept = false;
};

/** Ownership of every memref.alloc in one function. */
struct AllocOwnershipInfo
{
    std::vector<OwnedBuffer> buffers;

    /** True when no buffer is Escaping — the write-only-buffer cleanup's
     * per-buffer decision is then fully determined by the per-band use
     * pattern the analysis saw. */
    bool allOwned = true;

    /** The record of @p memref, or nullptr. */
    const OwnedBuffer *find(const Value *memref) const;

    /** True when every buffer is eligible for band-local cleanup
     * reasoning under the given top-level composition: sequential
     * functions admit Dead/BandLocal/DataflowEdge/MultiConsumer/
     * SharedChain; a dataflow top additionally requires every inter-band
     * buffer to be a legal channel — one producer feeding one consumer
     * (DataflowEdge) or several read-only stages (MultiConsumer). */
    bool eligible(bool dataflow_top) const;

    /** The digest annotation of @p memref's ownership ("kept"/"dead"),
     * folded into phase-1 band digests: a band's post-cleanup content
     * depends on whether each referenced local buffer survives the
     * write-only cleanup, which the band's own subtree cannot see. Empty
     * for values the analysis does not track. */
    std::string digestNote(const Value *memref) const;
};

/** Classify every memref.alloc of @p func against @p band_roots (the
 * function's top-level band roots, body order). Allocs nested INSIDE a
 * band are classified like flat ones (their users are confined to the
 * enclosing band by dominance, so they come out BandLocal). */
AllocOwnershipInfo bandLocalAllocs(
    Operation *func, const std::vector<Operation *> &band_roots);

} // namespace scalehls

#endif // SCALEHLS_ANALYSIS_BUFFER_ANALYSIS_H
