/**
 * @file
 * Memory analyses: access collection and normalization against a loop band,
 * the array-partition metric of paper Eq. (1), partition layout-map
 * encoding/decoding, and loop-carried recurrence detection used to bound
 * the achievable pipeline II.
 */

#ifndef SCALEHLS_ANALYSIS_MEMORY_ANALYSIS_H
#define SCALEHLS_ANALYSIS_MEMORY_ANALYSIS_H

#include <map>
#include <optional>
#include <vector>

#include "analysis/loop_analysis.h"

namespace scalehls {

/** A memory access with its subscripts expressed over band IVs
 * (d0 = outermost band loop). `normalized` is false when some subscript
 * refers to a value outside the band (the access is then treated
 * conservatively). */
struct MemAccess
{
    Operation *op = nullptr;
    Value *memref = nullptr;
    bool isWrite = false;
    bool normalized = false;
    std::vector<AffineExpr> indices;
};

/** Collect all affine/memref accesses nested in @p scope and express their
 * subscripts over @p band_ivs. */
std::vector<MemAccess> collectAccesses(Operation *scope,
                                       const std::vector<Value *> &band_ivs);

/** Group accesses by accessed memref (deterministic order of first use). */
std::vector<std::pair<Value *, std::vector<MemAccess>>>
groupByMemRef(const std::vector<MemAccess> &accesses);

/** Array partition fashions supported by downstream HLS tools. */
enum class PartitionKind { None, Cyclic, Block };

/** A per-dimension partition plan for one array. */
struct PartitionPlan
{
    std::vector<PartitionKind> kinds;
    std::vector<int64_t> factors;

    /** Total number of physical banks. */
    int64_t totalBanks() const;
    bool isTrivial() const;
};

/** Compute the partition plan for a memref from its accesses using the
 * enhanced metric of paper Eq. (1): for dimension d,
 * P = Accesses / (max pairwise index distance + 1); cyclic when P >= 1,
 * block otherwise, with the factor set to the unique-access count
 * (clamped to the dimension size). */
PartitionPlan computePartitionPlan(Value *memref,
                                   const std::vector<MemAccess> &accesses);

/** Encode a plan as the 2N-result affine layout map of paper Fig. 3:
 * results 0..N-1 are partition (bank) indices, results N..2N-1 physical
 * indices. */
AffineMap buildPartitionMap(const PartitionPlan &plan,
                            const std::vector<int64_t> &shape);

/** Decode a 2N-result layout map back into a plan (identity/empty maps
 * decode to the trivial plan). */
PartitionPlan decodePartitionMap(const AffineMap &map,
                                 const std::vector<int64_t> &shape);

/** Bank index expressions of an access under a partition layout: composes
 * the first N layout results with the access subscripts. */
std::vector<AffineExpr> bankIndexExprs(const AffineMap &layout,
                                       const std::vector<AffineExpr>
                                           &indices);

/** A loop-carried memory recurrence between a store and a read of the same
 * address. `carriedLevel` is the band position (0 = outermost) of the
 * innermost loop absent from the shared subscripts; `flatDistance` is the
 * recurrence distance in the fully flattened iteration space (the product
 * of trip counts of loops inner to the carried level). */
struct Recurrence
{
    Operation *store = nullptr;
    Operation *read = nullptr;
    unsigned carriedLevel = 0;
    int64_t flatDistance = 1;
};

/** Canonical string key of an access's subscript vector (linear-form
 * based): equal keys imply identical addresses every iteration. */
std::string subscriptKey(const MemAccess &access);

/** Per-dimension partition RELEVANCE of every memref accessed inside the
 * band rooted at @p band_root: dimension d of memref M is relevant iff
 * the band-level QoR estimate can read M's partition plan along d. The
 * estimator consults a plan only through bank-conflict grouping
 * (possiblySameBank), which along dimension d compares pairs of
 * normalized, rank-matching accesses whose subscript difference is a
 * known constant — and every partition kind/factor yields the same
 * verdict when that constant is zero. So d is relevant only when some
 * pair, in some scope the estimator queries (the whole band normalized
 * over the nest IVs, plus each pipelined leaf normalized over its
 * flattened chain), has a known NONZERO difference. Repartitioning an
 * irrelevant dim provably cannot change the band's estimate, which is
 * what lets the band digest mask such dims (partition-aware band keys).
 * The analysis reads subscripts only — never layouts — so digest-equal
 * bands always agree on their masks. */
std::map<Value *, std::vector<bool>> partitionRelevantDims(
    Operation *band_root);

/** Find memory recurrences within @p band. Only equal-subscript pairs are
 * detected (the dominant recurrence pattern of reduction kernels);
 * non-normalizable accesses conservatively produce a distance-1
 * recurrence. */
std::vector<Recurrence> findRecurrences(
    const std::vector<Operation *> &band);

} // namespace scalehls

#endif // SCALEHLS_ANALYSIS_MEMORY_ANALYSIS_H
