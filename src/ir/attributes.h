/**
 * @file
 * Attributes: compile-time constant values attached to operations, plus the
 * hlscpp directive attributes (FuncDirective / LoopDirective) described in
 * Section IV-C of the paper.
 */

#ifndef SCALEHLS_IR_ATTRIBUTES_H
#define SCALEHLS_IR_ATTRIBUTES_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ir/affine_map.h"
#include "ir/integer_set.h"
#include "ir/types.h"

namespace scalehls {

/** The hlscpp FuncDirective struct attribute: dataflow / pipeline flags and
 * the targeted pipeline initiation interval (paper Section IV-C1). */
struct FuncDirective
{
    bool dataflow = false;
    bool pipeline = false;
    int64_t targetII = 1;

    bool
    operator==(const FuncDirective &o) const
    {
        return dataflow == o.dataflow && pipeline == o.pipeline &&
               targetII == o.targetII;
    }
};

/** The hlscpp LoopDirective struct attribute attached to affine.for / scf.for
 * operations (paper Section IV-C2). `flatten` marks perfectly nested outer
 * loops absorbed into an inner pipelined loop. */
struct LoopDirective
{
    bool pipeline = false;
    int64_t targetII = 1;
    bool dataflow = false;
    bool flatten = false;

    bool
    operator==(const LoopDirective &o) const
    {
        return pipeline == o.pipeline && targetII == o.targetII &&
               dataflow == o.dataflow && flatten == o.flatten;
    }
};

/** A value-semantic attribute. */
class Attribute
{
  public:
    using Storage =
        std::variant<std::monostate, bool, int64_t, double, std::string,
                     std::vector<int64_t>, AffineMap, IntegerSet, Type,
                     FuncDirective, LoopDirective>;

    Attribute() = default;
    Attribute(bool v) : storage_(v) {}
    Attribute(int64_t v) : storage_(v) {}
    Attribute(int v) : storage_(static_cast<int64_t>(v)) {}
    Attribute(double v) : storage_(v) {}
    Attribute(const char *v) : storage_(std::string(v)) {}
    Attribute(std::string v) : storage_(std::move(v)) {}
    Attribute(std::vector<int64_t> v) : storage_(std::move(v)) {}
    Attribute(AffineMap v) : storage_(std::move(v)) {}
    Attribute(IntegerSet v) : storage_(std::move(v)) {}
    Attribute(Type v) : storage_(std::move(v)) {}
    Attribute(FuncDirective v) : storage_(v) {}
    Attribute(LoopDirective v) : storage_(v) {}

    bool isNull() const
    {
        return std::holds_alternative<std::monostate>(storage_);
    }
    explicit operator bool() const { return !isNull(); }

    template <typename T>
    bool is() const
    {
        return std::holds_alternative<T>(storage_);
    }

    template <typename T>
    const T &as() const
    {
        return std::get<T>(storage_);
    }

    bool getBool() const { return as<bool>(); }
    int64_t getInt() const { return as<int64_t>(); }
    double getFloat() const { return as<double>(); }
    const std::string &getString() const { return as<std::string>(); }
    const std::vector<int64_t> &getIntArray() const
    {
        return as<std::vector<int64_t>>();
    }
    const AffineMap &getAffineMap() const { return as<AffineMap>(); }
    const IntegerSet &getIntegerSet() const { return as<IntegerSet>(); }
    Type getType() const { return as<Type>(); }
    const FuncDirective &getFuncDirective() const
    {
        return as<FuncDirective>();
    }
    const LoopDirective &getLoopDirective() const
    {
        return as<LoopDirective>();
    }

    std::string toString() const;

  private:
    Storage storage_;
};

} // namespace scalehls

#endif // SCALEHLS_IR_ATTRIBUTES_H
