/**
 * @file
 * IR structural verifier: SSA dominance, op-specific invariants (affine
 * bound maps, access map arities, terminators) and module-level checks.
 */

#ifndef SCALEHLS_IR_VERIFIER_H
#define SCALEHLS_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/ir.h"

namespace scalehls {

/** Verify @p root recursively; returns human-readable error strings
 * (empty when the IR is valid). */
std::vector<std::string> verify(Operation *root);

/** Convenience wrapper: true when verify() reports no errors. */
bool verifyOk(Operation *root);

} // namespace scalehls

#endif // SCALEHLS_IR_VERIFIER_H
