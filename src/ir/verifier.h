/**
 * @file
 * Layered IR verification.
 *
 * L1 (Structural): SSA dominance, null operands, region/terminator shape,
 *     operand typing — the invariants every transform must preserve.
 * L2 (Semantic): dialect-level legality — affine bound maps and steps,
 *     access-map arity vs memref rank, module/call-graph consistency and
 *     hlscpp directive-attribute well-formedness (directive placement,
 *     target II ranges, dataflow-top body shape).
 * L3 (Overlay audit): auditOverlayAliasing() walks an overlayClone result
 *     and proves no mutable path leads back into the shared pristine base
 *     (every operand is overlay-defined or null-substituted; no base value
 *     lists an overlay op as a user).
 * The L4 cache-coherence audit lives in estimate/coherence_audit.h since
 * it needs the digest machinery; it reports through the same VerifyError.
 *
 * Every error carries a machine-readable kind and a stable op path
 * (see opPath() in ir/printer.h), so tools and tests can match on
 * structure instead of message text.
 */

#ifndef SCALEHLS_IR_VERIFIER_H
#define SCALEHLS_IR_VERIFIER_H

#include <set>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace scalehls {

struct OverlayClone;

/** Machine-readable verifier diagnostic kinds, grouped by layer. */
enum class VerifyKind
{
    // L1 — structural
    NullOperand,
    DominanceViolation,
    RegionShape,
    TypeMismatch,
    // L2 — dialect semantics
    InvalidBoundMap,
    InvalidAccessMap,
    BadTerminator,
    InvalidDirective,
    InvalidDataflow,
    UnknownCallee,
    DuplicateSymbol,
    InvalidModule,
    // L3 — overlay aliasing audit
    OverlayIncomplete,
    OverlayBaseAlias,
    OverlayUseLeak,
    // L4 — cache coherence audit (estimate/coherence_audit)
    StaleScheduleEntry,
    MalformedScheduleEntry,
    DigestCoverageGap,
};

/** Stable identifier for a kind, e.g. "DominanceViolation". */
const char *verifyKindName(VerifyKind kind);

/** One structured diagnostic: kind + op path + human-readable detail. */
struct VerifyError
{
    VerifyKind kind;
    std::string path;    ///< stable op path (ir/printer.h opPath())
    std::string message; ///< free-form detail

    /** Render "[Kind] path: message" for logs and legacy callers. */
    std::string str() const;
};

/** How deep verifyErrors() checks. Semantic includes Structural. */
enum class VerifyLevel
{
    Structural, ///< L1 only
    Semantic,   ///< L1 + L2 (default)
};

/** Verify @p root recursively; returns structured diagnostics (empty
 * when the IR is valid at the requested level). */
std::vector<VerifyError> verifyErrors(Operation *root,
                                      VerifyLevel level
                                      = VerifyLevel::Semantic);

/** L3: audit an overlayClone result against its pristine @p base. Proves
 * the overlay is complete, every overlay operand resolves inside the
 * overlay (or was null-substituted), the value map lands in the overlay
 * tree, and no base value holds an overlay op on its use list — i.e. no
 * mutable path from the overlay into the shared base. */
std::vector<VerifyError> auditOverlayAliasing(const OverlayClone &overlay,
                                              Operation *base);

/** Legacy interface: rendered strings of verifyErrors(root, Semantic). */
std::vector<std::string> verify(Operation *root);

/** Convenience wrapper: true when verify() reports no errors. */
bool verifyOk(Operation *root);

} // namespace scalehls

#endif // SCALEHLS_IR_VERIFIER_H
