#include "ir/affine_map.h"

#include <cassert>
#include <sstream>

namespace scalehls {

AffineMap
AffineMap::identity(unsigned num_dims)
{
    std::vector<AffineExpr> results;
    results.reserve(num_dims);
    for (unsigned i = 0; i < num_dims; ++i)
        results.push_back(getAffineDimExpr(i));
    return AffineMap(num_dims, 0, std::move(results));
}

AffineMap
AffineMap::constant(const std::vector<int64_t> &values)
{
    std::vector<AffineExpr> results;
    results.reserve(values.size());
    for (int64_t v : values)
        results.push_back(getAffineConstantExpr(v));
    return AffineMap(0, 0, std::move(results));
}

AffineMap
AffineMap::get(unsigned num_dims, AffineExpr result)
{
    return AffineMap(num_dims, 0, {std::move(result)});
}

bool
AffineMap::isIdentity() const
{
    if (numResults() != numDims_)
        return false;
    for (unsigned i = 0; i < numResults(); ++i) {
        if (results_[i].kind() != AffineExprKind::DimId ||
            results_[i].position() != i)
            return false;
    }
    return true;
}

bool
AffineMap::isConstant() const
{
    for (const auto &e : results_)
        if (!e.isConstant())
            return false;
    return !results_.empty();
}

int64_t
AffineMap::singleConstantResult() const
{
    assert(numResults() == 1 && results_[0].isConstant());
    return results_[0].constantValue();
}

bool
AffineMap::equals(const AffineMap &other) const
{
    if (numDims_ != other.numDims_ || numSymbols_ != other.numSymbols_ ||
        numResults() != other.numResults())
        return false;
    for (unsigned i = 0; i < numResults(); ++i)
        if (!results_[i].equals(other.results_[i]))
            return false;
    return true;
}

std::vector<int64_t>
AffineMap::evaluate(const std::vector<int64_t> &dims,
                    const std::vector<int64_t> &symbols) const
{
    std::vector<int64_t> out;
    out.reserve(results_.size());
    for (const auto &e : results_)
        out.push_back(e.evaluate(dims, symbols));
    return out;
}

AffineMap
AffineMap::replaceDims(const std::vector<AffineExpr> &dim_repls,
                       unsigned new_num_dims) const
{
    std::vector<AffineExpr> results;
    results.reserve(results_.size());
    for (const auto &e : results_)
        results.push_back(e.replaceDimsAndSymbols(dim_repls));
    return AffineMap(new_num_dims, numSymbols_, std::move(results));
}

std::string
AffineMap::toString() const
{
    std::ostringstream os;
    os << "(";
    for (unsigned i = 0; i < numDims_; ++i)
        os << (i ? ", " : "") << "d" << i;
    os << ")";
    if (numSymbols_) {
        os << "[";
        for (unsigned i = 0; i < numSymbols_; ++i)
            os << (i ? ", " : "") << "s" << i;
        os << "]";
    }
    os << " -> (";
    for (unsigned i = 0; i < numResults(); ++i)
        os << (i ? ", " : "") << results_[i].toString();
    os << ")";
    return os.str();
}

} // namespace scalehls
