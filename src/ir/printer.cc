#include "ir/printer.h"

#include <sstream>
#include <unordered_map>

#include "dialect/ops.h"
#include "support/utils.h"

namespace scalehls {

std::string
renderAffineExpr(const AffineExpr &expr,
                 const std::vector<std::string> &dim_names)
{
    std::ostringstream os;
    switch (expr.kind()) {
      case AffineExprKind::Constant:
        os << expr.constantValue();
        break;
      case AffineExprKind::DimId:
        if (expr.position() < dim_names.size())
            os << dim_names[expr.position()];
        else
            os << "d" << expr.position();
        break;
      case AffineExprKind::SymbolId:
        os << "s" << expr.position();
        break;
      case AffineExprKind::Add: {
        // Render `a + (-c)` as `a - c` for readability.
        std::string lhs = renderAffineExpr(expr.lhs(), dim_names);
        if (expr.rhs().isConstant() && expr.rhs().constantValue() < 0) {
            os << lhs << " - " << -expr.rhs().constantValue();
        } else {
            os << lhs << " + " << renderAffineExpr(expr.rhs(), dim_names);
        }
        break;
      }
      case AffineExprKind::Mul:
        os << "(" << renderAffineExpr(expr.lhs(), dim_names) << ") * ("
           << renderAffineExpr(expr.rhs(), dim_names) << ")";
        break;
      case AffineExprKind::Mod:
        os << "(" << renderAffineExpr(expr.lhs(), dim_names) << ") mod "
           << renderAffineExpr(expr.rhs(), dim_names);
        break;
      case AffineExprKind::FloorDiv:
        os << "(" << renderAffineExpr(expr.lhs(), dim_names) << ") floordiv "
           << renderAffineExpr(expr.rhs(), dim_names);
        break;
      case AffineExprKind::CeilDiv:
        os << "(" << renderAffineExpr(expr.lhs(), dim_names) << ") ceildiv "
           << renderAffineExpr(expr.rhs(), dim_names);
        break;
    }
    return os.str();
}

namespace {

/** Stateful printer with SSA value naming. */
class Printer
{
  public:
    explicit Printer(std::ostream &os) : os_(os) {}

    void
    print(Operation *op, int indent)
    {
        if (op->is(ops::Module)) {
            line(indent) << "module {\n";
            for (auto &nested : op->region(0).front().ops())
                print(nested.get(), indent + 1);
            line(indent) << "}\n";
            return;
        }
        if (op->is(ops::Func)) {
            printFunc(op, indent);
            return;
        }
        if (op->is(ops::AffineFor)) {
            printAffineFor(op, indent);
            return;
        }
        if (op->is(ops::AffineIf)) {
            printAffineIf(op, indent);
            return;
        }
        if (op->is(ops::AffineLoad)) {
            AffineLoadOp load(op);
            line(indent) << name(op->result(0)) << " = affine.load "
                         << name(load.memref())
                         << renderSubscripts(load.map(), load.mapOperands())
                         << " : " << op->result(0)->type().toString() << "\n";
            return;
        }
        if (op->is(ops::AffineStore)) {
            AffineStoreOp store(op);
            line(indent) << "affine.store " << name(store.value()) << ", "
                         << name(store.memref())
                         << renderSubscripts(store.map(),
                                             store.mapOperands())
                         << "\n";
            return;
        }
        if (op->is(ops::ScfFor)) {
            ScfForOp forOp(op);
            std::string iv = defineName(forOp.inductionVar(), "i");
            line(indent) << "scf.for " << iv << " = "
                         << name(forOp.lowerBound()) << " to "
                         << name(forOp.upperBound()) << " step "
                         << name(forOp.step()) << " {\n";
            for (auto &nested : forOp.body()->ops())
                print(nested.get(), indent + 1);
            line(indent) << "}\n";
            return;
        }
        if (op->is(ops::ScfIf)) {
            line(indent) << "scf.if " << name(op->operand(0)) << " {\n";
            for (auto &nested : op->region(0).front().ops())
                print(nested.get(), indent + 1);
            if (!op->region(1).empty()) {
                line(indent) << "} else {\n";
                for (auto &nested : op->region(1).front().ops())
                    print(nested.get(), indent + 1);
            }
            line(indent) << "}\n";
            return;
        }
        printGeneric(op, indent);
    }

  private:
    std::ostream &
    line(int indent)
    {
        for (int i = 0; i < indent; ++i)
            os_ << "  ";
        return os_;
    }

    std::string
    defineName(Value *v, const std::string &prefix)
    {
        auto it = names_.find(v);
        if (it != names_.end())
            return it->second;
        std::string n = "%" + prefix + std::to_string(counters_[prefix]++);
        names_[v] = n;
        return n;
    }

    std::string
    name(Value *v)
    {
        if (!v)
            return "%<null>";
        auto it = names_.find(v);
        if (it != names_.end())
            return it->second;
        return defineName(v, "");
    }

    std::vector<std::string>
    names(const std::vector<Value *> &values)
    {
        std::vector<std::string> out;
        out.reserve(values.size());
        for (Value *v : values)
            out.push_back(name(v));
        return out;
    }

    std::string
    renderSubscripts(const AffineMap &map,
                     const std::vector<Value *> &operands)
    {
        auto dim_names = names(operands);
        std::ostringstream os;
        os << "[";
        for (unsigned i = 0; i < map.numResults(); ++i)
            os << (i ? ", " : "")
               << renderAffineExpr(map.result(i), dim_names);
        os << "]";
        return os.str();
    }

    std::string
    renderBound(const AffineMap &map, const std::vector<Value *> &operands,
                bool is_upper)
    {
        if (map.numResults() == 1 && map.isConstant())
            return std::to_string(map.singleConstantResult());
        auto dim_names = names(operands);
        std::ostringstream os;
        if (map.numResults() > 1)
            os << (is_upper ? "min" : "max");
        os << "(";
        for (unsigned i = 0; i < map.numResults(); ++i)
            os << (i ? ", " : "")
               << renderAffineExpr(map.result(i), dim_names);
        os << ")";
        return os.str();
    }

    void
    printFunc(Operation *op, int indent)
    {
        Block *body = funcBody(op);
        line(indent) << "func @" << op->attr(kSymName).getString() << "(";
        for (unsigned i = 0; i < body->numArguments(); ++i) {
            Value *arg = body->argument(i);
            os_ << (i ? ", " : "") << defineName(arg, "arg") << ": "
                << arg->type().toString();
        }
        os_ << ")";
        printExtraAttrs(op, {kSymName});
        os_ << " {\n";
        for (auto &nested : body->ops())
            print(nested.get(), indent + 1);
        line(indent) << "}\n";
    }

    void
    printAffineFor(Operation *op, int indent)
    {
        AffineForOp forOp(op);
        std::string iv = defineName(forOp.inductionVar(), "i");
        line(indent) << "affine.for " << iv << " = "
                     << renderBound(forOp.lowerBoundMap(),
                                    forOp.lowerBoundOperands(), false)
                     << " to "
                     << renderBound(forOp.upperBoundMap(),
                                    forOp.upperBoundOperands(), true);
        if (forOp.step() != 1)
            os_ << " step " << forOp.step();
        os_ << " {\n";
        for (auto &nested : forOp.body()->ops())
            print(nested.get(), indent + 1);
        line(indent) << "}";
        printExtraAttrs(op, {kLowerMap, kUpperMap, kLbCount, kStep});
        os_ << "\n";
    }

    void
    printAffineIf(Operation *op, int indent)
    {
        AffineIfOp ifOp(op);
        IntegerSet set = ifOp.condition();
        auto dim_names = names(ifOp.conditionOperands());
        line(indent) << "affine.if (";
        for (unsigned i = 0; i < set.numConstraints(); ++i) {
            os_ << (i ? " && " : "")
                << renderAffineExpr(set.constraint(i), dim_names)
                << (set.isEq(i) ? " == 0" : " >= 0");
        }
        os_ << ") {\n";
        for (auto &nested : ifOp.thenBlock()->ops())
            print(nested.get(), indent + 1);
        if (ifOp.hasElse()) {
            line(indent) << "} else {\n";
            for (auto &nested : ifOp.elseBlock()->ops())
                print(nested.get(), indent + 1);
        }
        line(indent) << "}\n";
    }

    void
    printGeneric(Operation *op, int indent)
    {
        line(indent);
        for (unsigned i = 0; i < op->numResults(); ++i)
            os_ << (i ? ", " : "") << defineName(op->result(i), "") ;
        if (op->numResults())
            os_ << " = ";
        os_ << op->name();
        for (unsigned i = 0; i < op->numOperands(); ++i)
            os_ << (i ? "," : "") << " " << name(op->operand(i));
        printExtraAttrs(op, {});
        if (op->numResults()) {
            os_ << " : ";
            for (unsigned i = 0; i < op->numResults(); ++i)
                os_ << (i ? ", " : "") << op->result(i)->type().toString();
        }
        // Generic regions (rare: scf.if handled above).
        if (op->numRegions()) {
            os_ << " {\n";
            for (unsigned r = 0; r < op->numRegions(); ++r)
                for (auto &block : op->region(r).blocks())
                    for (auto &nested : block->ops())
                        print(nested.get(), indent + 1);
            line(indent) << "}";
        }
        os_ << "\n";
    }

    void
    printExtraAttrs(Operation *op, const std::vector<std::string> &hidden)
    {
        std::vector<std::string> parts;
        for (const auto &[key, value] : op->attrs()) {
            bool skip = false;
            for (const auto &h : hidden)
                skip |= (key == h);
            if (skip)
                continue;
            parts.push_back(key + " = " + value.toString());
        }
        if (!parts.empty())
            os_ << " {" << join(parts, ", ") << "}";
    }

    std::ostream &os_;
    std::unordered_map<Value *, std::string> names_;
    std::unordered_map<std::string, int> counters_;
};

} // namespace

void
printOp(Operation *op, std::ostream &os)
{
    Printer(os).print(op, 0);
}

std::string
printOp(Operation *op)
{
    std::ostringstream os;
    printOp(op, os);
    return os.str();
}

namespace {

/** One path component for @p op: short name + index among same-named
 * siblings, with the module/band special cases of opPath(). */
std::string
pathComponent(Operation *op)
{
    if (op->is(ops::Module))
        return "module";
    std::string name = op->name();
    auto dot = name.rfind('.');
    std::string short_name =
        dot == std::string::npos ? name : name.substr(dot + 1);
    // A top-level loop directly under a func body is a BAND — the unit
    // the DSE/cache layers reason about — so its component counts bands,
    // not generic for-siblings, matching the cache diagnostics.
    Operation *parent = op->parentOp();
    bool is_band = op->is(ops::AffineFor) && isa(parent, ops::Func);
    if (is_band)
        short_name = "band";
    int index = 0;
    if (Block *block = op->parentBlock()) {
        for (const auto &sibling : block->ops()) {
            if (sibling.get() == op)
                break;
            if (is_band ? sibling->is(ops::AffineFor)
                        : sibling->is(op->name()))
                ++index;
        }
    }
    return short_name + "@" + std::to_string(index);
}

} // namespace

std::string
opPath(Operation *op)
{
    if (!op)
        return "<null>";
    std::vector<std::string> components;
    for (Operation *cur = op; cur; cur = cur->parentOp())
        components.push_back(pathComponent(cur));
    std::string path;
    for (auto it = components.rbegin(); it != components.rend(); ++it) {
        if (!path.empty())
            path += '/';
        path += *it;
    }
    return path;
}

} // namespace scalehls
