/**
 * @file
 * Affine expressions: the arithmetic language used for loop bounds, memory
 * subscripts, partition layout maps and if-conditions.
 *
 * An AffineExpr is an immutable tree over dimension identifiers
 * (d0, d1, ...), symbol identifiers (s0, s1, ...) and integer
 * constants, combined with
 * + , * , mod, floordiv and ceildiv. Construction performs local
 * simplification (constant folding, identity elimination, canonical
 * constant-on-the-right ordering) so that structurally equal expressions
 * compare equal in most practical cases.
 */

#ifndef SCALEHLS_IR_AFFINE_EXPR_H
#define SCALEHLS_IR_AFFINE_EXPR_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace scalehls {

/** The node kinds of the affine expression tree. */
enum class AffineExprKind
{
    Constant,
    DimId,
    SymbolId,
    Add,
    Mul,
    Mod,
    FloorDiv,
    CeilDiv,
};

class AffineExprNode;

/** Shared-immutable handle to an affine expression node. A default
 * constructed AffineExpr is null and may be tested with explicit bool. */
class AffineExpr
{
  public:
    AffineExpr() = default;
    explicit AffineExpr(std::shared_ptr<const AffineExprNode> node)
        : node_(std::move(node))
    {}

    explicit operator bool() const { return node_ != nullptr; }
    const AffineExprNode &node() const { return *node_; }
    const AffineExprNode *operator->() const { return node_.get(); }

    AffineExprKind kind() const;

    /** Constant value; asserts kind()==Constant. */
    int64_t constantValue() const;
    /** Dim/symbol position; asserts kind()==DimId or SymbolId. */
    unsigned position() const;
    /** Left/right children of a binary node. */
    AffineExpr lhs() const;
    AffineExpr rhs() const;

    bool isConstant() const { return kind() == AffineExprKind::Constant; }
    /** True if this is the constant @p v. */
    bool isConstantEqual(int64_t v) const;

    /** Structural equality. */
    bool equals(const AffineExpr &other) const;

    /** Evaluate with concrete dim/symbol values. */
    int64_t evaluate(const std::vector<int64_t> &dims,
                     const std::vector<int64_t> &symbols = {}) const;

    /** Substitute dims[i] for d_i and symbols[i] for s_i, re-simplifying.
     * Out-of-range identifiers are kept as-is. */
    AffineExpr replaceDimsAndSymbols(
        const std::vector<AffineExpr> &dims,
        const std::vector<AffineExpr> &symbols = {}) const;

    /** Shift every dim id by @p offset (d_i -> d_{i+offset}). */
    AffineExpr shiftDims(unsigned offset) const;

    /** True if the given dim id appears anywhere in the tree. */
    bool involvesDim(unsigned pos) const;

    /** Largest dim position used, or -1 if none. */
    int maxDimPosition() const;

    /** The memoized linear form: sparse (dim, coefficient) pairs plus the
     * constant term; nullptr-like (false) when the expression is not
     * linear (mod/div/symbols). */
    bool linearForm(std::vector<std::pair<unsigned, int64_t>> &coeffs,
                    int64_t &constant) const;

    /** If the expression is a pure linear form
     * c0 + sum_i coeff_i * d_i (no mod/div, no symbols), return the
     * coefficients: result[0..numDims-1] are dim coefficients, result
     * back() is the constant term. */
    std::optional<std::vector<int64_t>> linearCoefficients(
        unsigned num_dims) const;

    /** Render with dim names d0..dn / symbol names s0..sn. */
    std::string toString() const;

  private:
    std::shared_ptr<const AffineExprNode> node_;
};

/** Immutable affine expression tree node. Use the factory functions below.
 * The linear form (coefficient per dim + constant) is computed eagerly at
 * construction from the children's already-computed forms; the analyses
 * compare subscripts pairwise, so this cache turns O(n^2) tree walks into
 * O(n). Eager computation (rather than a lazy mutable memo) keeps nodes
 * truly immutable: expression handles are shared across concurrently
 * evaluated module clones by the parallel DSE. */
class AffineExprNode
{
  public:
    AffineExprKind kind;
    int64_t value = 0;    ///< Constant value or dim/symbol position.
    AffineExpr lhs, rhs;  ///< Children for binary kinds.

    bool linValid = false;
    std::vector<std::pair<unsigned, int64_t>> linCoeffs;
    int64_t linConst = 0;
};

/** @name Factories (with local simplification) */
///@{
AffineExpr getAffineConstantExpr(int64_t value);
AffineExpr getAffineDimExpr(unsigned position);
AffineExpr getAffineSymbolExpr(unsigned position);
AffineExpr getAffineBinaryExpr(AffineExprKind kind, AffineExpr lhs,
                               AffineExpr rhs);
///@}

/** Constant difference a - b when provable (equal expressions, or both
 * linear with identical dim coefficients); nullopt otherwise. */
std::optional<int64_t> constantDiff(const AffineExpr &a,
                                    const AffineExpr &b);

/** @name Operator sugar */
///@{
AffineExpr operator+(AffineExpr lhs, AffineExpr rhs);
AffineExpr operator+(AffineExpr lhs, int64_t rhs);
AffineExpr operator-(AffineExpr lhs, AffineExpr rhs);
AffineExpr operator-(AffineExpr lhs, int64_t rhs);
AffineExpr operator*(AffineExpr lhs, AffineExpr rhs);
AffineExpr operator*(AffineExpr lhs, int64_t rhs);
AffineExpr affineMod(AffineExpr lhs, int64_t rhs);
AffineExpr affineFloorDiv(AffineExpr lhs, int64_t rhs);
AffineExpr affineCeilDiv(AffineExpr lhs, int64_t rhs);
///@}

} // namespace scalehls

#endif // SCALEHLS_IR_AFFINE_EXPR_H
