/**
 * @file
 * AffineMap: a function (d0..dn; s0..sm) -> (expr0, ..., exprk) used for
 * loop bounds, memory subscripts and array-partition memory layouts.
 */

#ifndef SCALEHLS_IR_AFFINE_MAP_H
#define SCALEHLS_IR_AFFINE_MAP_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/affine_expr.h"

namespace scalehls {

/** A value-semantic affine map. An empty map (no results, no dims) is used
 * as "no layout" on memref types. */
class AffineMap
{
  public:
    AffineMap() = default;
    AffineMap(unsigned num_dims, unsigned num_symbols,
              std::vector<AffineExpr> results)
        : numDims_(num_dims), numSymbols_(num_symbols),
          results_(std::move(results))
    {}

    /** The identity map (d0..dn) -> (d0..dn). */
    static AffineMap identity(unsigned num_dims);
    /** A zero-dim map returning fixed constants. */
    static AffineMap constant(const std::vector<int64_t> &values);
    /** A single-result map. */
    static AffineMap get(unsigned num_dims, AffineExpr result);

    unsigned numDims() const { return numDims_; }
    unsigned numSymbols() const { return numSymbols_; }
    unsigned numResults() const { return results_.size(); }
    const std::vector<AffineExpr> &results() const { return results_; }
    AffineExpr result(unsigned i) const { return results_[i]; }

    bool empty() const { return results_.empty(); }
    /** True if the map is (d0..dn) -> (d0..dn). */
    bool isIdentity() const;
    /** True if every result is a constant. */
    bool isConstant() const;
    /** The single constant result; asserts numResults()==1 and constant. */
    int64_t singleConstantResult() const;

    bool equals(const AffineMap &other) const;

    /** Evaluate all results with concrete dim/symbol values. */
    std::vector<int64_t> evaluate(const std::vector<int64_t> &dims,
                                  const std::vector<int64_t> &symbols = {})
        const;

    /** Compose: substitute this map's dims with the given expressions.
     * The resulting expressions live in the dim space of @p dim_repls. */
    AffineMap replaceDims(const std::vector<AffineExpr> &dim_repls,
                          unsigned new_num_dims) const;

    std::string toString() const;

  private:
    unsigned numDims_ = 0;
    unsigned numSymbols_ = 0;
    std::vector<AffineExpr> results_;
};

} // namespace scalehls

#endif // SCALEHLS_IR_AFFINE_MAP_H
