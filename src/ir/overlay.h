/**
 * @file
 * Copy-on-write overlay clones. An overlay is a partial deep copy of a
 * region-bearing operation (in practice: a function): the shell — name,
 * attributes, block arguments — plus every top-level child op EXCEPT a
 * caller-selected skip set, whose subtrees are simply omitted. Skipped
 * subtrees stay reachable only through the untouched base, so an overlay
 * over an N-band function pays for exactly the bands it rematerializes.
 *
 * The base is never written: children are cloned with
 * Operation::cloneStrict, which substitutes NULL for any operand that
 * would otherwise alias a base value (aliasing would register the clone
 * on the base value's use list — a data race under concurrent overlays
 * over one shared pristine module). An overlay whose clone came back
 * incomplete must be discarded; completeness is reported per overlay.
 */

#ifndef SCALEHLS_IR_OVERLAY_H
#define SCALEHLS_IR_OVERLAY_H

#include <memory>
#include <set>
#include <unordered_map>

#include "ir/ir.h"

namespace scalehls {

/** The result of overlayClone(): the overlay op, the base-to-overlay
 * value map (block arguments and every value defined by a cloned child),
 * and the overlay copy of each kept top-level child. */
struct OverlayClone
{
    std::unique_ptr<Operation> op;
    /** False when some cloned child referenced a value that is neither a
     * mapped block argument nor defined by an earlier kept child — e.g.
     * a result of a skipped subtree. The overlay is unusable then. */
    bool complete = true;
    /** Base value -> overlay value. */
    std::unordered_map<Value *, Value *> map;
    /** Base top-level child -> its overlay clone (kept children only). */
    std::unordered_map<Operation *, Operation *> children;
};

/** Build a copy-on-write overlay of @p base (an operand-less region
 * op, e.g. a func): clone the shell and, in body order, every top-level
 * child not in @p skip. Children in @p skip are omitted entirely — their
 * subtrees are shared with (i.e. only exist in) the base. The base is
 * only read, never mutated, so concurrent overlayClone calls over one
 * base are safe. */
OverlayClone overlayClone(Operation *base,
                          const std::set<const Operation *> &skip);

} // namespace scalehls

#endif // SCALEHLS_IR_OVERLAY_H
