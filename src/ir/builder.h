/**
 * @file
 * OpBuilder: creates operations at a maintained insertion point.
 */

#ifndef SCALEHLS_IR_BUILDER_H
#define SCALEHLS_IR_BUILDER_H

#include "ir/ir.h"

namespace scalehls {

/** Builds operations at an insertion point (a block plus an optional
 * "insert before" anchor; no anchor means append at the end). */
class OpBuilder
{
  public:
    OpBuilder() = default;
    explicit OpBuilder(Block *block, Operation *before = nullptr)
        : block_(block), before_(before)
    {}

    /** Insert at the start of @p block. */
    void setInsertionPointToStart(Block *block)
    {
        block_ = block;
        before_ = block->empty() ? nullptr : block->front();
    }
    /** Insert at the end of @p block. */
    void setInsertionPointToEnd(Block *block)
    {
        block_ = block;
        before_ = nullptr;
    }
    /** Insert immediately before @p op. */
    void setInsertionPoint(Operation *op)
    {
        block_ = op->parentBlock();
        before_ = op;
    }
    /** Insert immediately after @p op. */
    void setInsertionPointAfter(Operation *op)
    {
        block_ = op->parentBlock();
        before_ = op->nextOp();
    }

    Block *insertionBlock() const { return block_; }

    /** Insert a detached op at the insertion point. */
    Operation *insert(std::unique_ptr<Operation> op)
    {
        assert(block_ && "no insertion point set");
        return block_->insertBefore(before_, std::move(op));
    }

    /** Create and insert an op. */
    Operation *create(std::string name, std::vector<Type> result_types,
                      std::vector<Value *> operands, AttrMap attrs = {},
                      unsigned num_regions = 0)
    {
        return insert(Operation::create(std::move(name),
                                        std::move(result_types),
                                        std::move(operands),
                                        std::move(attrs), num_regions));
    }

  private:
    Block *block_ = nullptr;
    Operation *before_ = nullptr;
};

} // namespace scalehls

#endif // SCALEHLS_IR_BUILDER_H
