/**
 * @file
 * The type system: index, integer, float, memref (with an affine layout map
 * encoding array partitioning and a memory space encoding the HLS resource
 * directive) and tensor (graph level).
 */

#ifndef SCALEHLS_IR_TYPES_H
#define SCALEHLS_IR_TYPES_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/affine_map.h"

namespace scalehls {

/** Kinds of types. */
enum class TypeKind
{
    None,
    Index,
    Integer,
    Float,
    MemRef,
    Tensor,
};

/** HLS memory resource kinds, encoded as the memref memory space. This
 * reproduces the paper's "array resource" directive: different kinds of
 * memories map to different memory spaces (Section IV-C4). */
enum class MemKind : int
{
    DRAM = 0,     ///< Off-chip memory, accessed through an AXI interface.
    BRAM_1P = 1,  ///< Single-port on-chip block RAM.
    BRAM_S2P = 2, ///< Simple dual-port BRAM (one read + one write port).
    BRAM_T2P = 3, ///< True dual-port BRAM (two read/write ports).
};

/** Number of simultaneous read ports of a memory kind. */
int memReadPorts(MemKind kind);
/** Number of simultaneous write ports of a memory kind. */
int memWritePorts(MemKind kind);
/** Vivado HLS resource core name (for pragma emission). */
std::string memCoreName(MemKind kind);

class TypeStorage;

/** Value-semantic immutable type handle. Structural equality. */
class Type
{
  public:
    Type() = default;

    /** @name Factories */
    ///@{
    static Type none();
    static Type index();
    static Type integer(unsigned width);
    static Type i1() { return integer(1); }
    static Type i32() { return integer(32); }
    static Type i64() { return integer(64); }
    static Type floating(unsigned width);
    static Type f32() { return floating(32); }
    static Type f64() { return floating(64); }
    static Type memref(std::vector<int64_t> shape, Type element,
                       AffineMap layout = AffineMap(),
                       MemKind space = MemKind::DRAM);
    static Type tensor(std::vector<int64_t> shape, Type element);
    ///@}

    explicit operator bool() const { return impl_ != nullptr; }

    TypeKind kind() const;
    bool isIndex() const { return kind() == TypeKind::Index; }
    bool isInteger() const { return kind() == TypeKind::Integer; }
    bool isFloat() const { return kind() == TypeKind::Float; }
    bool isMemRef() const { return kind() == TypeKind::MemRef; }
    bool isTensor() const { return kind() == TypeKind::Tensor; }
    bool isIntOrIndex() const { return isInteger() || isIndex(); }

    /** Bit width of integer/float types (index counts as 64). */
    unsigned bitWidth() const;

    /** @name Shaped type (memref/tensor) accessors */
    ///@{
    const std::vector<int64_t> &shape() const;
    unsigned rank() const { return shape().size(); }
    int64_t numElements() const;
    Type elementType() const;
    ///@}

    /** @name MemRef specific accessors */
    ///@{
    const AffineMap &layout() const;
    MemKind memorySpace() const;
    /** Rebuild this memref with a different layout map. */
    Type withLayout(AffineMap layout) const;
    /** Rebuild this memref with a different memory space. */
    Type withMemorySpace(MemKind space) const;
    ///@}

    bool equals(const Type &other) const;
    bool operator==(const Type &other) const { return equals(other); }
    bool operator!=(const Type &other) const { return !equals(other); }

    std::string toString() const;

  private:
    explicit Type(std::shared_ptr<const TypeStorage> impl)
        : impl_(std::move(impl))
    {}
    std::shared_ptr<const TypeStorage> impl_;
};

/** Internal storage for Type. */
class TypeStorage
{
  public:
    TypeKind kind = TypeKind::None;
    unsigned width = 0;
    std::vector<int64_t> shape;
    std::shared_ptr<const TypeStorage> element;
    AffineMap layout;
    MemKind space = MemKind::DRAM;

    friend class Type;
};

} // namespace scalehls

#endif // SCALEHLS_IR_TYPES_H
