#include "ir/verifier.h"

#include <set>
#include <unordered_set>

#include "dialect/graph_ops.h"
#include "dialect/ops.h"
#include "ir/overlay.h"
#include "ir/printer.h"

namespace scalehls {

const char *
verifyKindName(VerifyKind kind)
{
    switch (kind) {
      case VerifyKind::NullOperand: return "NullOperand";
      case VerifyKind::DominanceViolation: return "DominanceViolation";
      case VerifyKind::RegionShape: return "RegionShape";
      case VerifyKind::TypeMismatch: return "TypeMismatch";
      case VerifyKind::InvalidBoundMap: return "InvalidBoundMap";
      case VerifyKind::InvalidAccessMap: return "InvalidAccessMap";
      case VerifyKind::BadTerminator: return "BadTerminator";
      case VerifyKind::InvalidDirective: return "InvalidDirective";
      case VerifyKind::InvalidDataflow: return "InvalidDataflow";
      case VerifyKind::UnknownCallee: return "UnknownCallee";
      case VerifyKind::DuplicateSymbol: return "DuplicateSymbol";
      case VerifyKind::InvalidModule: return "InvalidModule";
      case VerifyKind::OverlayIncomplete: return "OverlayIncomplete";
      case VerifyKind::OverlayBaseAlias: return "OverlayBaseAlias";
      case VerifyKind::OverlayUseLeak: return "OverlayUseLeak";
      case VerifyKind::StaleScheduleEntry: return "StaleScheduleEntry";
      case VerifyKind::MalformedScheduleEntry:
        return "MalformedScheduleEntry";
      case VerifyKind::DigestCoverageGap: return "DigestCoverageGap";
    }
    return "Unknown";
}

std::string
VerifyError::str() const
{
    return "[" + std::string(verifyKindName(kind)) + "] " + path + ": " +
           message;
}

namespace {

class Verifier
{
  public:
    explicit Verifier(VerifyLevel level) : level_(level) {}

    std::vector<VerifyError> errors;

    bool
    semantic() const
    {
        return level_ == VerifyLevel::Semantic;
    }

    void
    error(VerifyKind kind, Operation *op, const std::string &msg)
    {
        errors.push_back({kind, opPath(op), "'" + op->name() + "': " + msg});
    }

    /** True if @p value is visible at @p user: defined as a block argument
     * of an enclosing block, or by an op earlier in an enclosing block. */
    bool
    dominates(Value *value, Operation *user)
    {
        if (Block *owner = value->ownerBlock()) {
            // Block argument: user must be nested in the owner block.
            for (Block *b = user->parentBlock(); b;) {
                if (b == owner)
                    return true;
                Operation *parent = b->parentOp();
                b = parent ? parent->parentBlock() : nullptr;
            }
            return false;
        }
        Operation *def = value->definingOp();
        // Walk up from user to find the ancestor sharing def's block.
        for (Operation *u = user; u; u = u->parentOp()) {
            if (u->parentBlock() == def->parentBlock())
                return def == u ? false : def->isBeforeInBlock(u);
        }
        return false;
    }

    void
    verifyOperation(Operation *op)
    {
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            Value *v = op->operand(i);
            if (!v) {
                error(VerifyKind::NullOperand, op,
                      "null operand #" + std::to_string(i));
                continue;
            }
            if (op->parentBlock() && !dominates(v, op))
                error(VerifyKind::DominanceViolation, op,
                      "operand #" + std::to_string(i) +
                          " does not dominate its use");
        }

        if (op->is(ops::AffineFor)) {
            verifyAffineFor(op);
        } else if (op->is(ops::AffineIf)) {
            verifyAffineIf(op);
        } else if (op->is(ops::AffineLoad) || op->is(ops::AffineStore)) {
            verifyAffineAccess(op);
        } else if (op->is(ops::Func)) {
            verifyFunc(op);
        } else if (op->is(ops::ScfFor)) {
            verifyScfFor(op);
        } else if (op->dialect() == "arith" && op->numOperands() == 2 &&
                   op->numResults() == 1 && !op->is(ops::CmpI) &&
                   !op->is(ops::CmpF)) {
            if (op->operand(0) && op->operand(1) &&
                op->operand(0)->type() != op->operand(1)->type())
                error(VerifyKind::TypeMismatch, op,
                      "binary op operand type mismatch");
        }

        if (semantic()) {
            verifyDirectiveAttrs(op);
            verifyReturnPlacement(op);
        }
    }

    void
    verifyAffineFor(Operation *op)
    {
        if (op->numRegions() != 1 || op->region(0).size() != 1) {
            error(VerifyKind::RegionShape, op,
                  "affine.for must have a single-block region");
            return;
        }
        AffineForOp forOp(op);
        Block *body = forOp.body();
        if (body->numArguments() != 1 ||
            !body->argument(0)->type().isIndex())
            error(VerifyKind::RegionShape, op,
                  "affine.for body must have one index argument");
        if (!op->attr(kLowerMap).is<AffineMap>() ||
            !op->attr(kUpperMap).is<AffineMap>())
            error(VerifyKind::InvalidBoundMap, op,
                  "affine.for requires bound maps");
        else {
            unsigned total = forOp.lowerBoundMap().numDims() +
                             forOp.upperBoundMap().numDims();
            if (total != op->numOperands())
                error(VerifyKind::InvalidBoundMap, op,
                      "affine.for bound operand count mismatch");
        }
        if (!op->attr(kStep).is<int64_t>() || forOp.step() <= 0)
            error(VerifyKind::InvalidBoundMap, op,
                  "affine.for requires a positive constant step");
        for (Value *v : op->operands())
            if (v && !v->type().isIntOrIndex())
                error(VerifyKind::TypeMismatch, op,
                      "affine.for bound operands must be index values");
    }

    void
    verifyAffineIf(Operation *op)
    {
        if (op->numRegions() != 2) {
            error(VerifyKind::RegionShape, op,
                  "affine.if must have then and else regions");
            return;
        }
        if (!op->attr(kCondition).is<IntegerSet>()) {
            error(VerifyKind::InvalidBoundMap, op,
                  "affine.if requires an IntegerSet condition");
            return;
        }
        AffineIfOp ifOp(op);
        if (ifOp.condition().numDims() != op->numOperands())
            error(VerifyKind::InvalidBoundMap, op,
                  "affine.if operand count must match set dims");
        if (op->region(0).empty())
            error(VerifyKind::RegionShape, op,
                  "affine.if requires a then block");
    }

    void
    verifyAffineAccess(Operation *op)
    {
        bool is_load = op->is(ops::AffineLoad);
        unsigned memref_idx = is_load ? 0 : 1;
        if (op->numOperands() <= memref_idx) {
            error(VerifyKind::InvalidAccessMap, op,
                  "missing memref operand");
            return;
        }
        Value *memref = op->operand(memref_idx);
        if (!memref || !memref->type().isMemRef()) {
            error(VerifyKind::InvalidAccessMap, op,
                  "expected memref operand");
            return;
        }
        if (!op->attr(kMap).is<AffineMap>()) {
            error(VerifyKind::InvalidAccessMap, op,
                  "affine access requires a map attribute");
            return;
        }
        AffineMap map = op->attr(kMap).getAffineMap();
        if (map.numResults() != memref->type().rank())
            error(VerifyKind::InvalidAccessMap, op,
                  "access map result count must equal memref rank");
        unsigned num_map_operands = op->numOperands() - memref_idx - 1;
        if (map.numDims() != num_map_operands)
            error(VerifyKind::InvalidAccessMap, op,
                  "access map dim count must equal map operand count");
        if (is_load &&
            op->result(0)->type() != memref->type().elementType())
            error(VerifyKind::TypeMismatch, op,
                  "load result type must match memref element type");
        if (!is_load &&
            op->operand(0)->type() != memref->type().elementType())
            error(VerifyKind::TypeMismatch, op,
                  "stored value type must match memref element type");
    }

    void
    verifyFunc(Operation *op)
    {
        if (op->numRegions() != 1 || op->region(0).size() != 1) {
            error(VerifyKind::RegionShape, op,
                  "func must have a single-block body");
            return;
        }
        Block *body = funcBody(op);
        if (body->empty() || !body->back()->is(ops::Return))
            error(VerifyKind::BadTerminator, op,
                  "func body must end with func.return");
        if (!op->attr(kSymName).is<std::string>())
            error(VerifyKind::InvalidModule, op, "func requires sym_name");
        if (semantic())
            verifyDataflowTop(op);
    }

    void
    verifyScfFor(Operation *op)
    {
        if (op->numOperands() != 3)
            error(VerifyKind::InvalidBoundMap, op,
                  "scf.for requires lb, ub, step operands");
        if (op->numRegions() != 1 || op->region(0).size() != 1)
            error(VerifyKind::RegionShape, op,
                  "scf.for must have a single-block region");
    }

    /** L2: hlscpp directive attributes must be well-typed, placed on the
     * op class they describe, and carry a sane target II. */
    void
    verifyDirectiveAttrs(Operation *op)
    {
        if (op->hasAttr(kLoopDirective)) {
            Attribute a = op->attr(kLoopDirective);
            if (!a.is<LoopDirective>()) {
                error(VerifyKind::InvalidDirective, op,
                      "loop directive attribute has wrong type");
            } else if (!isLoop(op)) {
                error(VerifyKind::InvalidDirective, op,
                      "loop directive on a non-loop operation");
            } else if (a.getLoopDirective().targetII < 1) {
                error(VerifyKind::InvalidDirective, op,
                      "loop directive target II must be >= 1");
            }
        }
        if (op->hasAttr(kFuncDirective)) {
            Attribute a = op->attr(kFuncDirective);
            if (!a.is<FuncDirective>()) {
                error(VerifyKind::InvalidDirective, op,
                      "func directive attribute has wrong type");
            } else if (!op->is(ops::Func)) {
                error(VerifyKind::InvalidDirective, op,
                      "func directive on a non-func operation");
            } else if (a.getFuncDirective().targetII < 1) {
                error(VerifyKind::InvalidDirective, op,
                      "func directive target II must be >= 1");
            }
        }
        if (op->hasAttr(kDataflowStage)) {
            Attribute a = op->attr(kDataflowStage);
            if (!a.is<int64_t>() || a.getInt() < 0)
                error(VerifyKind::InvalidDirective, op,
                      "dataflow stage must be a non-negative integer");
        }
        if (op->hasAttr(kPointLoop)) {
            if (!op->attr(kPointLoop).is<bool>())
                error(VerifyKind::InvalidDirective, op,
                      "point-loop marker must be a bool");
            else if (!isLoop(op))
                error(VerifyKind::InvalidDirective, op,
                      "point-loop marker on a non-loop operation");
        }
        if (op->hasAttr(kTopFunc)) {
            if (!op->attr(kTopFunc).is<bool>() || !op->is(ops::Func))
                error(VerifyKind::InvalidDirective, op,
                      "top-func marker must be a bool on a func");
        }
    }

    /** L2: func.return only terminates a function body. The stage-overlap
     * model and the band walkers both assume control never leaves a band
     * early. */
    void
    verifyReturnPlacement(Operation *op)
    {
        if (!op->is(ops::Return))
            return;
        Operation *parent = op->parentOp();
        Block *block = op->parentBlock();
        if (!parent || !block)
            return; // detached return: nothing to judge it against
        if (!parent->is(ops::Func) || block->back() != op)
            error(VerifyKind::BadTerminator, op,
                  "func.return must be the last op of a func body");
    }

    /** L2: the body of a dataflow-top function may only contain stage
     * carriers (ops with a dataflow stage, calls, loops, graph ops) and
     * structural ops (allocs, constants, copies, the terminator). A bare
     * compute op here has no stage to overlap with — the dataflow latency
     * composition would silently misestimate it. */
    void
    verifyDataflowTop(Operation *func)
    {
        if (!getFuncDirective(func).dataflow)
            return;
        for (auto &child : funcBody(func)->ops()) {
            Operation *op = child.get();
            if (op->hasAttr(kDataflowStage) || op->is(ops::Call) ||
                isLoop(op) || op->is(ops::Alloc) ||
                op->is(ops::Constant) || op->is(ops::MemCopy) ||
                op->is(ops::Return) || op->dialect() == "graph")
                continue;
            error(VerifyKind::InvalidDataflow, op,
                  "op directly under a dataflow function carries no "
                  "dataflow stage");
        }
    }

    void
    verifyModule(Operation *module)
    {
        std::set<std::string> names;
        for (auto &op : module->region(0).front().ops()) {
            if (!op->is(ops::Func)) {
                error(VerifyKind::InvalidModule, op.get(),
                      "modules may only contain functions");
                continue;
            }
            std::string name = funcName(op.get());
            if (!names.insert(name).second)
                error(VerifyKind::DuplicateSymbol, op.get(),
                      "duplicate function name: " + name);
        }
        // Call graph: callees must exist with matching arity.
        module->walk([&](Operation *op) {
            if (!op->is(ops::Call))
                return;
            std::string callee = op->attr(kCallee).getString();
            Operation *target = lookupFunc(module, callee);
            if (!target) {
                error(VerifyKind::UnknownCallee, op,
                      "unknown callee: " + callee);
                return;
            }
            if (funcBody(target)->numArguments() != op->numOperands())
                error(VerifyKind::TypeMismatch, op,
                      "call arity mismatch for " + callee);
        });
    }

  private:
    VerifyLevel level_;
};

} // namespace

std::vector<VerifyError>
verifyErrors(Operation *root, VerifyLevel level)
{
    Verifier v(level);
    if (root->is(ops::Module))
        v.verifyModule(root);
    root->walk([&](Operation *op) { v.verifyOperation(op); });
    return v.errors;
}

std::vector<VerifyError>
auditOverlayAliasing(const OverlayClone &overlay, Operation *base)
{
    std::vector<VerifyError> errors;
    if (!overlay.op) {
        errors.push_back({VerifyKind::OverlayIncomplete, "<overlay>",
                          "overlay has no operation"});
        return errors;
    }
    if (!overlay.complete)
        errors.push_back({VerifyKind::OverlayIncomplete,
                          opPath(overlay.op.get()),
                          "overlay clone is incomplete (a child referenced "
                          "a skipped subtree)"});

    // Values and ops owned by the overlay tree.
    std::unordered_set<const Value *> overlay_values;
    std::unordered_set<const Operation *> overlay_ops;
    overlay.op->walk([&](Operation *op) {
        overlay_ops.insert(op);
        for (unsigned i = 0; i < op->numResults(); ++i)
            overlay_values.insert(op->result(i));
        for (unsigned r = 0; r < op->numRegions(); ++r)
            for (auto &block : op->region(r).blocks())
                for (unsigned a = 0; a < block->numArguments(); ++a)
                    overlay_values.insert(block->argument(a));
    });

    // Every overlay operand must resolve inside the overlay or be the
    // null substitution cloneStrict leaves for read-only base references.
    overlay.op->walk([&](Operation *op) {
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            Value *v = op->operand(i);
            if (v && !overlay_values.count(v))
                errors.push_back(
                    {VerifyKind::OverlayBaseAlias, opPath(op),
                     "'" + op->name() + "': operand #" + std::to_string(i) +
                         " aliases a value outside the overlay"});
        }
    });

    // The published value map must land inside the overlay tree.
    for (const auto &[base_v, overlay_v] : overlay.map) {
        (void)base_v;
        if (overlay_v && !overlay_values.count(overlay_v)) {
            errors.push_back({VerifyKind::OverlayBaseAlias,
                              opPath(overlay.op.get()),
                              "value map target lies outside the overlay"});
            break;
        }
    }
    for (const auto &[base_child, overlay_child] : overlay.children) {
        (void)base_child;
        if (overlay_child && !overlay_ops.count(overlay_child)) {
            errors.push_back({VerifyKind::OverlayBaseAlias,
                              opPath(overlay.op.get()),
                              "child map target lies outside the overlay"});
            break;
        }
    }

    // No base value may list an overlay op as a user: that is a mutable
    // path from the overlay into the shared pristine base (and a data
    // race under concurrent overlays).
    if (base) {
        base->walk([&](Operation *op) {
            auto check = [&](Value *v) {
                for (Operation *user : v->users())
                    if (overlay_ops.count(user))
                        errors.push_back(
                            {VerifyKind::OverlayUseLeak, opPath(user),
                             "overlay op '" + user->name() +
                                 "' is registered on the use list of a "
                                 "base value defined at " + opPath(op)});
            };
            for (unsigned i = 0; i < op->numResults(); ++i)
                check(op->result(i));
            for (unsigned r = 0; r < op->numRegions(); ++r)
                for (auto &block : op->region(r).blocks())
                    for (unsigned a = 0; a < block->numArguments(); ++a)
                        check(block->argument(a));
        });
    }
    return errors;
}

std::vector<std::string>
verify(Operation *root)
{
    std::vector<std::string> out;
    for (const VerifyError &e : verifyErrors(root))
        out.push_back(e.str());
    return out;
}

bool
verifyOk(Operation *root)
{
    return verify(root).empty();
}

} // namespace scalehls
