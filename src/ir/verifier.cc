#include "ir/verifier.h"

#include <set>
#include <sstream>
#include <unordered_set>

#include "dialect/graph_ops.h"
#include "dialect/ops.h"

namespace scalehls {

namespace {

class Verifier
{
  public:
    std::vector<std::string> errors;

    void
    error(Operation *op, const std::string &msg)
    {
        errors.push_back("'" + op->name() + "': " + msg);
    }

    /** True if @p value is visible at @p user: defined as a block argument
     * of an enclosing block, or by an op earlier in an enclosing block. */
    bool
    dominates(Value *value, Operation *user)
    {
        if (Block *owner = value->ownerBlock()) {
            // Block argument: user must be nested in the owner block.
            for (Block *b = user->parentBlock(); b;) {
                if (b == owner)
                    return true;
                Operation *parent = b->parentOp();
                b = parent ? parent->parentBlock() : nullptr;
            }
            return false;
        }
        Operation *def = value->definingOp();
        // Walk up from user to find the ancestor sharing def's block.
        for (Operation *u = user; u; u = u->parentOp()) {
            if (u->parentBlock() == def->parentBlock())
                return def == u ? false : def->isBeforeInBlock(u);
        }
        return false;
    }

    void
    verifyOperation(Operation *op)
    {
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            Value *v = op->operand(i);
            if (!v) {
                error(op, "null operand #" + std::to_string(i));
                continue;
            }
            if (op->parentBlock() && !dominates(v, op))
                error(op, "operand #" + std::to_string(i) +
                              " does not dominate its use");
        }

        if (op->is(ops::AffineFor)) {
            verifyAffineFor(op);
        } else if (op->is(ops::AffineIf)) {
            verifyAffineIf(op);
        } else if (op->is(ops::AffineLoad) || op->is(ops::AffineStore)) {
            verifyAffineAccess(op);
        } else if (op->is(ops::Func)) {
            verifyFunc(op);
        } else if (op->is(ops::ScfFor)) {
            verifyScfFor(op);
        } else if (op->dialect() == "arith" && op->numOperands() == 2 &&
                   op->numResults() == 1 && !op->is(ops::CmpI) &&
                   !op->is(ops::CmpF)) {
            if (op->operand(0) && op->operand(1) &&
                op->operand(0)->type() != op->operand(1)->type())
                error(op, "binary op operand type mismatch");
        }
    }

    void
    verifyAffineFor(Operation *op)
    {
        if (op->numRegions() != 1 || op->region(0).size() != 1) {
            error(op, "affine.for must have a single-block region");
            return;
        }
        AffineForOp forOp(op);
        Block *body = forOp.body();
        if (body->numArguments() != 1 ||
            !body->argument(0)->type().isIndex())
            error(op, "affine.for body must have one index argument");
        if (!op->attr(kLowerMap).is<AffineMap>() ||
            !op->attr(kUpperMap).is<AffineMap>())
            error(op, "affine.for requires bound maps");
        else {
            unsigned total = forOp.lowerBoundMap().numDims() +
                             forOp.upperBoundMap().numDims();
            if (total != op->numOperands())
                error(op, "affine.for bound operand count mismatch");
        }
        if (!op->attr(kStep).is<int64_t>() || forOp.step() <= 0)
            error(op, "affine.for requires a positive constant step");
        for (Value *v : op->operands())
            if (v && !v->type().isIntOrIndex())
                error(op, "affine.for bound operands must be index values");
    }

    void
    verifyAffineIf(Operation *op)
    {
        if (op->numRegions() != 2) {
            error(op, "affine.if must have then and else regions");
            return;
        }
        if (!op->attr(kCondition).is<IntegerSet>()) {
            error(op, "affine.if requires an IntegerSet condition");
            return;
        }
        AffineIfOp ifOp(op);
        if (ifOp.condition().numDims() != op->numOperands())
            error(op, "affine.if operand count must match set dims");
        if (op->region(0).empty())
            error(op, "affine.if requires a then block");
    }

    void
    verifyAffineAccess(Operation *op)
    {
        bool is_load = op->is(ops::AffineLoad);
        unsigned memref_idx = is_load ? 0 : 1;
        if (op->numOperands() <= memref_idx) {
            error(op, "missing memref operand");
            return;
        }
        Value *memref = op->operand(memref_idx);
        if (!memref || !memref->type().isMemRef()) {
            error(op, "expected memref operand");
            return;
        }
        if (!op->attr(kMap).is<AffineMap>()) {
            error(op, "affine access requires a map attribute");
            return;
        }
        AffineMap map = op->attr(kMap).getAffineMap();
        if (map.numResults() != memref->type().rank())
            error(op, "access map result count must equal memref rank");
        unsigned num_map_operands = op->numOperands() - memref_idx - 1;
        if (map.numDims() != num_map_operands)
            error(op, "access map dim count must equal map operand count");
        if (is_load &&
            op->result(0)->type() != memref->type().elementType())
            error(op, "load result type must match memref element type");
        if (!is_load &&
            op->operand(0)->type() != memref->type().elementType())
            error(op, "stored value type must match memref element type");
    }

    void
    verifyFunc(Operation *op)
    {
        if (op->numRegions() != 1 || op->region(0).size() != 1) {
            error(op, "func must have a single-block body");
            return;
        }
        Block *body = funcBody(op);
        if (body->empty() || !body->back()->is(ops::Return))
            error(op, "func body must end with func.return");
        if (!op->attr(kSymName).is<std::string>())
            error(op, "func requires sym_name");
    }

    void
    verifyScfFor(Operation *op)
    {
        if (op->numOperands() != 3)
            error(op, "scf.for requires lb, ub, step operands");
        if (op->numRegions() != 1 || op->region(0).size() != 1)
            error(op, "scf.for must have a single-block region");
    }

    void
    verifyModule(Operation *module)
    {
        std::set<std::string> names;
        for (auto &op : module->region(0).front().ops()) {
            if (!op->is(ops::Func)) {
                error(op.get(), "modules may only contain functions");
                continue;
            }
            std::string name = funcName(op.get());
            if (!names.insert(name).second)
                error(op.get(), "duplicate function name: " + name);
        }
        // Call graph: callees must exist with matching arity.
        module->walk([&](Operation *op) {
            if (!op->is(ops::Call))
                return;
            std::string callee = op->attr(kCallee).getString();
            Operation *target = lookupFunc(module, callee);
            if (!target) {
                error(op, "unknown callee: " + callee);
                return;
            }
            if (funcBody(target)->numArguments() != op->numOperands())
                error(op, "call arity mismatch for " + callee);
        });
    }
};

} // namespace

std::vector<std::string>
verify(Operation *root)
{
    Verifier v;
    if (root->is(ops::Module))
        v.verifyModule(root);
    root->walk([&](Operation *op) { v.verifyOperation(op); });
    return v.errors;
}

bool
verifyOk(Operation *root)
{
    return verify(root).empty();
}

} // namespace scalehls
