#include "ir/integer_set.h"

#include <sstream>

namespace scalehls {

IntegerSet
IntegerSet::get(unsigned num_dims, AffineExpr constraint, bool is_eq)
{
    return IntegerSet(num_dims, {std::move(constraint)}, {is_eq});
}

bool
IntegerSet::evaluate(const std::vector<int64_t> &dims) const
{
    for (unsigned i = 0; i < numConstraints(); ++i) {
        int64_t v = constraints_[i].evaluate(dims);
        if (eqFlags_[i] ? (v != 0) : (v < 0))
            return false;
    }
    return true;
}

bool
IntegerSet::equals(const IntegerSet &other) const
{
    if (numDims_ != other.numDims_ ||
        numConstraints() != other.numConstraints())
        return false;
    for (unsigned i = 0; i < numConstraints(); ++i) {
        if (eqFlags_[i] != other.eqFlags_[i] ||
            !constraints_[i].equals(other.constraints_[i]))
            return false;
    }
    return true;
}

std::string
IntegerSet::toString() const
{
    std::ostringstream os;
    os << "(";
    for (unsigned i = 0; i < numDims_; ++i)
        os << (i ? ", " : "") << "d" << i;
    os << ") : (";
    for (unsigned i = 0; i < numConstraints(); ++i) {
        os << (i ? ", " : "") << constraints_[i].toString()
           << (eqFlags_[i] ? " == 0" : " >= 0");
    }
    os << ")";
    return os.str();
}

} // namespace scalehls
