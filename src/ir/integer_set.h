/**
 * @file
 * IntegerSet: a conjunction of affine constraints (expr >= 0 or expr == 0)
 * used as the condition of affine.if operations.
 */

#ifndef SCALEHLS_IR_INTEGER_SET_H
#define SCALEHLS_IR_INTEGER_SET_H

#include <string>
#include <vector>

#include "ir/affine_expr.h"

namespace scalehls {

/** A conjunction of affine constraints over dims (and optionally symbols).
 * Constraint i holds when constraints[i] == 0 (if eqFlags[i]) or
 * constraints[i] >= 0 (otherwise). */
class IntegerSet
{
  public:
    IntegerSet() = default;
    IntegerSet(unsigned num_dims, std::vector<AffineExpr> constraints,
               std::vector<bool> eq_flags)
        : numDims_(num_dims), constraints_(std::move(constraints)),
          eqFlags_(std::move(eq_flags))
    {}

    /** Single-constraint convenience factory. */
    static IntegerSet get(unsigned num_dims, AffineExpr constraint,
                          bool is_eq);

    unsigned numDims() const { return numDims_; }
    unsigned numConstraints() const { return constraints_.size(); }
    const std::vector<AffineExpr> &constraints() const
    {
        return constraints_;
    }
    AffineExpr constraint(unsigned i) const { return constraints_[i]; }
    bool isEq(unsigned i) const { return eqFlags_[i]; }
    const std::vector<bool> &eqFlags() const { return eqFlags_; }

    bool empty() const { return constraints_.empty(); }

    /** Evaluate the conjunction with concrete dim values. */
    bool evaluate(const std::vector<int64_t> &dims) const;

    bool equals(const IntegerSet &other) const;

    std::string toString() const;

  private:
    unsigned numDims_ = 0;
    std::vector<AffineExpr> constraints_;
    std::vector<bool> eqFlags_;
};

} // namespace scalehls

#endif // SCALEHLS_IR_INTEGER_SET_H
