#include "ir/affine_expr.h"

#include <cassert>
#include <map>
#include <sstream>

#include "support/utils.h"

namespace scalehls {

namespace {

/** Merge two sparse (dim, coeff) lists sorted by dim, dropping zero
 * coefficients. */
std::vector<std::pair<unsigned, int64_t>>
mergeCoeffs(const std::vector<std::pair<unsigned, int64_t>> &a,
            const std::vector<std::pair<unsigned, int64_t>> &b)
{
    std::vector<std::pair<unsigned, int64_t>> out;
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
            out.push_back(a[i++]);
        } else if (i == a.size() || b[j].first < a[i].first) {
            out.push_back(b[j++]);
        } else {
            int64_t sum = a[i].second + b[j].second;
            if (sum != 0)
                out.emplace_back(a[i].first, sum);
            ++i;
            ++j;
        }
    }
    return out;
}

/** Compute the node's linear form from its children's already-computed
 * forms. Runs once at construction so shared nodes never mutate. */
void
computeLinearForm(AffineExprNode &n)
{
    switch (n.kind) {
      case AffineExprKind::Constant:
        n.linValid = true;
        n.linConst = n.value;
        return;
      case AffineExprKind::DimId:
        n.linValid = true;
        n.linCoeffs.emplace_back(static_cast<unsigned>(n.value), 1);
        return;
      case AffineExprKind::SymbolId:
        return;
      case AffineExprKind::Add: {
        const AffineExprNode &l = n.lhs.node();
        const AffineExprNode &r = n.rhs.node();
        if (!l.linValid || !r.linValid)
            return;
        n.linValid = true;
        n.linCoeffs = mergeCoeffs(l.linCoeffs, r.linCoeffs);
        n.linConst = l.linConst + r.linConst;
        return;
      }
      case AffineExprKind::Mul: {
        const AffineExprNode &l = n.lhs.node();
        const AffineExprNode &r = n.rhs.node();
        if (!l.linValid || !r.linValid)
            return;
        // Linear only when one side is a constant form.
        const AffineExprNode *var = nullptr;
        int64_t scale = 0;
        if (r.linCoeffs.empty()) {
            var = &l;
            scale = r.linConst;
        } else if (l.linCoeffs.empty()) {
            var = &r;
            scale = l.linConst;
        } else {
            return;
        }
        n.linValid = true;
        n.linConst = var->linConst * scale;
        if (scale != 0)
            for (const auto &[pos, coeff] : var->linCoeffs)
                n.linCoeffs.emplace_back(pos, coeff * scale);
        return;
      }
      case AffineExprKind::Mod:
      case AffineExprKind::FloorDiv:
      case AffineExprKind::CeilDiv:
        return;
    }
}

AffineExpr
makeNode(AffineExprKind kind, int64_t value, AffineExpr lhs, AffineExpr rhs)
{
    auto node = std::make_shared<AffineExprNode>();
    node->kind = kind;
    node->value = value;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    computeLinearForm(*node);
    return AffineExpr(std::move(node));
}

} // namespace

AffineExprKind
AffineExpr::kind() const
{
    assert(node_ && "null affine expression");
    return node_->kind;
}

int64_t
AffineExpr::constantValue() const
{
    assert(kind() == AffineExprKind::Constant);
    return node_->value;
}

unsigned
AffineExpr::position() const
{
    assert(kind() == AffineExprKind::DimId ||
           kind() == AffineExprKind::SymbolId);
    return static_cast<unsigned>(node_->value);
}

AffineExpr
AffineExpr::lhs() const
{
    return node_->lhs;
}

AffineExpr
AffineExpr::rhs() const
{
    return node_->rhs;
}

bool
AffineExpr::isConstantEqual(int64_t v) const
{
    return isConstant() && constantValue() == v;
}

bool
AffineExpr::equals(const AffineExpr &other) const
{
    if (node_ == other.node_)
        return true;
    if (!node_ || !other.node_)
        return false;
    if (kind() != other.kind())
        return false;
    switch (kind()) {
      case AffineExprKind::Constant:
      case AffineExprKind::DimId:
      case AffineExprKind::SymbolId:
        return node_->value == other.node_->value;
      default:
        return lhs().equals(other.lhs()) && rhs().equals(other.rhs());
    }
}

int64_t
AffineExpr::evaluate(const std::vector<int64_t> &dims,
                     const std::vector<int64_t> &symbols) const
{
    switch (kind()) {
      case AffineExprKind::Constant:
        return node_->value;
      case AffineExprKind::DimId:
        assert(position() < dims.size() && "dim value missing");
        return dims[position()];
      case AffineExprKind::SymbolId:
        assert(position() < symbols.size() && "symbol value missing");
        return symbols[position()];
      case AffineExprKind::Add:
        return lhs().evaluate(dims, symbols) + rhs().evaluate(dims, symbols);
      case AffineExprKind::Mul:
        return lhs().evaluate(dims, symbols) * rhs().evaluate(dims, symbols);
      case AffineExprKind::Mod:
        return euclidMod(lhs().evaluate(dims, symbols),
                         rhs().evaluate(dims, symbols));
      case AffineExprKind::FloorDiv:
        return floorDiv(lhs().evaluate(dims, symbols),
                        rhs().evaluate(dims, symbols));
      case AffineExprKind::CeilDiv: {
        int64_t a = lhs().evaluate(dims, symbols);
        int64_t b = rhs().evaluate(dims, symbols);
        return -floorDiv(-a, b);
      }
    }
    assert(false && "unreachable");
    return 0;
}

AffineExpr
AffineExpr::replaceDimsAndSymbols(
    const std::vector<AffineExpr> &dims,
    const std::vector<AffineExpr> &symbols) const
{
    switch (kind()) {
      case AffineExprKind::Constant:
        return *this;
      case AffineExprKind::DimId:
        if (position() < dims.size() && dims[position()])
            return dims[position()];
        return *this;
      case AffineExprKind::SymbolId:
        if (position() < symbols.size() && symbols[position()])
            return symbols[position()];
        return *this;
      default:
        return getAffineBinaryExpr(
            kind(), lhs().replaceDimsAndSymbols(dims, symbols),
            rhs().replaceDimsAndSymbols(dims, symbols));
    }
}

AffineExpr
AffineExpr::shiftDims(unsigned offset) const
{
    switch (kind()) {
      case AffineExprKind::Constant:
      case AffineExprKind::SymbolId:
        return *this;
      case AffineExprKind::DimId:
        return getAffineDimExpr(position() + offset);
      default:
        return getAffineBinaryExpr(kind(), lhs().shiftDims(offset),
                                   rhs().shiftDims(offset));
    }
}

bool
AffineExpr::involvesDim(unsigned pos) const
{
    switch (kind()) {
      case AffineExprKind::Constant:
      case AffineExprKind::SymbolId:
        return false;
      case AffineExprKind::DimId:
        return position() == pos;
      default:
        return lhs().involvesDim(pos) || rhs().involvesDim(pos);
    }
}

int
AffineExpr::maxDimPosition() const
{
    switch (kind()) {
      case AffineExprKind::Constant:
      case AffineExprKind::SymbolId:
        return -1;
      case AffineExprKind::DimId:
        return static_cast<int>(position());
      default:
        return std::max(lhs().maxDimPosition(), rhs().maxDimPosition());
    }
}

bool
AffineExpr::linearForm(std::vector<std::pair<unsigned, int64_t>> &coeffs,
                       int64_t &constant) const
{
    const AffineExprNode &n = node();
    if (!n.linValid)
        return false;
    coeffs = n.linCoeffs;
    constant = n.linConst;
    return true;
}

std::optional<std::vector<int64_t>>
AffineExpr::linearCoefficients(unsigned num_dims) const
{
    std::vector<std::pair<unsigned, int64_t>> sparse;
    int64_t constant = 0;
    if (!linearForm(sparse, constant))
        return std::nullopt;
    std::vector<int64_t> coeffs(num_dims + 1, 0);
    for (const auto &[pos, coeff] : sparse) {
        if (pos >= num_dims)
            return std::nullopt;
        coeffs[pos] = coeff;
    }
    coeffs.back() = constant;
    return coeffs;
}

std::string
AffineExpr::toString() const
{
    std::ostringstream os;
    switch (kind()) {
      case AffineExprKind::Constant:
        os << constantValue();
        break;
      case AffineExprKind::DimId:
        os << "d" << position();
        break;
      case AffineExprKind::SymbolId:
        os << "s" << position();
        break;
      case AffineExprKind::Add:
        os << lhs().toString() << " + " << rhs().toString();
        break;
      case AffineExprKind::Mul:
        os << "(" << lhs().toString() << ") * (" << rhs().toString() << ")";
        break;
      case AffineExprKind::Mod:
        os << "(" << lhs().toString() << ") mod " << rhs().toString();
        break;
      case AffineExprKind::FloorDiv:
        os << "(" << lhs().toString() << ") floordiv " << rhs().toString();
        break;
      case AffineExprKind::CeilDiv:
        os << "(" << lhs().toString() << ") ceildiv " << rhs().toString();
        break;
    }
    return os.str();
}

std::optional<int64_t>
constantDiff(const AffineExpr &a, const AffineExpr &b)
{
    std::vector<std::pair<unsigned, int64_t>> ca, cb;
    int64_t const_a = 0, const_b = 0;
    if (a.linearForm(ca, const_a) && b.linearForm(cb, const_b)) {
        if (ca != cb)
            return std::nullopt;
        return const_a - const_b;
    }
    if (a.equals(b))
        return 0;
    return std::nullopt;
}

AffineExpr
getAffineConstantExpr(int64_t value)
{
    return makeNode(AffineExprKind::Constant, value, {}, {});
}

AffineExpr
getAffineDimExpr(unsigned position)
{
    return makeNode(AffineExprKind::DimId, position, {}, {});
}

AffineExpr
getAffineSymbolExpr(unsigned position)
{
    return makeNode(AffineExprKind::SymbolId, position, {}, {});
}

AffineExpr
getAffineBinaryExpr(AffineExprKind kind, AffineExpr lhs, AffineExpr rhs)
{
    assert(lhs && rhs && "null operand to affine binary expression");

    // Constant folding.
    if (lhs.isConstant() && rhs.isConstant()) {
        int64_t a = lhs.constantValue();
        int64_t b = rhs.constantValue();
        switch (kind) {
          case AffineExprKind::Add:
            return getAffineConstantExpr(a + b);
          case AffineExprKind::Mul:
            return getAffineConstantExpr(a * b);
          case AffineExprKind::Mod:
            assert(b != 0 && "mod by zero");
            return getAffineConstantExpr(euclidMod(a, b));
          case AffineExprKind::FloorDiv:
            assert(b != 0 && "div by zero");
            return getAffineConstantExpr(floorDiv(a, b));
          case AffineExprKind::CeilDiv:
            assert(b != 0 && "div by zero");
            return getAffineConstantExpr(-floorDiv(-a, b));
          default:
            break;
        }
    }

    switch (kind) {
      case AffineExprKind::Add:
        if (lhs.isConstantEqual(0))
            return rhs;
        if (rhs.isConstantEqual(0))
            return lhs;
        // Canonicalize constants to the right.
        if (lhs.isConstant() && !rhs.isConstant())
            std::swap(lhs, rhs);
        // Fold (x + c1) + c2 -> x + (c1 + c2).
        if (rhs.isConstant() && lhs.kind() == AffineExprKind::Add &&
            lhs.rhs().isConstant()) {
            return lhs.lhs() + (lhs.rhs().constantValue() +
                                rhs.constantValue());
        }
        break;
      case AffineExprKind::Mul:
        if (lhs.isConstantEqual(1))
            return rhs;
        if (rhs.isConstantEqual(1))
            return lhs;
        if (lhs.isConstantEqual(0) || rhs.isConstantEqual(0))
            return getAffineConstantExpr(0);
        if (lhs.isConstant() && !rhs.isConstant())
            std::swap(lhs, rhs);
        break;
      case AffineExprKind::Mod:
        if (rhs.isConstantEqual(1))
            return getAffineConstantExpr(0);
        break;
      case AffineExprKind::FloorDiv:
      case AffineExprKind::CeilDiv:
        if (rhs.isConstantEqual(1))
            return lhs;
        break;
      default:
        break;
    }
    return makeNode(kind, 0, std::move(lhs), std::move(rhs));
}

AffineExpr
operator+(AffineExpr lhs, AffineExpr rhs)
{
    return getAffineBinaryExpr(AffineExprKind::Add, std::move(lhs),
                               std::move(rhs));
}

AffineExpr
operator+(AffineExpr lhs, int64_t rhs)
{
    return std::move(lhs) + getAffineConstantExpr(rhs);
}

AffineExpr
operator-(AffineExpr lhs, AffineExpr rhs)
{
    return std::move(lhs) + std::move(rhs) * getAffineConstantExpr(-1);
}

AffineExpr
operator-(AffineExpr lhs, int64_t rhs)
{
    return std::move(lhs) + (-rhs);
}

AffineExpr
operator*(AffineExpr lhs, AffineExpr rhs)
{
    return getAffineBinaryExpr(AffineExprKind::Mul, std::move(lhs),
                               std::move(rhs));
}

AffineExpr
operator*(AffineExpr lhs, int64_t rhs)
{
    return std::move(lhs) * getAffineConstantExpr(rhs);
}

AffineExpr
affineMod(AffineExpr lhs, int64_t rhs)
{
    return getAffineBinaryExpr(AffineExprKind::Mod, std::move(lhs),
                               getAffineConstantExpr(rhs));
}

AffineExpr
affineFloorDiv(AffineExpr lhs, int64_t rhs)
{
    return getAffineBinaryExpr(AffineExprKind::FloorDiv, std::move(lhs),
                               getAffineConstantExpr(rhs));
}

AffineExpr
affineCeilDiv(AffineExpr lhs, int64_t rhs)
{
    return getAffineBinaryExpr(AffineExprKind::CeilDiv, std::move(lhs),
                               getAffineConstantExpr(rhs));
}

} // namespace scalehls
