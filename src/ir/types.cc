#include "ir/types.h"

#include <cassert>
#include <sstream>

#include "support/utils.h"

namespace scalehls {

int
memReadPorts(MemKind kind)
{
    switch (kind) {
      case MemKind::DRAM:
        return 1;
      case MemKind::BRAM_1P:
        return 1;
      case MemKind::BRAM_S2P:
        return 1;
      case MemKind::BRAM_T2P:
        return 2;
    }
    return 1;
}

int
memWritePorts(MemKind kind)
{
    switch (kind) {
      case MemKind::DRAM:
        return 1;
      case MemKind::BRAM_1P:
        return 1;
      case MemKind::BRAM_S2P:
        return 1;
      case MemKind::BRAM_T2P:
        return 2;
    }
    return 1;
}

std::string
memCoreName(MemKind kind)
{
    switch (kind) {
      case MemKind::DRAM:
        return "axi";
      case MemKind::BRAM_1P:
        return "ram_1p_bram";
      case MemKind::BRAM_S2P:
        return "ram_s2p_bram";
      case MemKind::BRAM_T2P:
        return "ram_t2p_bram";
    }
    return "ram_s2p_bram";
}

namespace {

std::shared_ptr<const TypeStorage>
makeStorage(TypeKind kind, unsigned width)
{
    auto s = std::make_shared<TypeStorage>();
    s->kind = kind;
    s->width = width;
    return s;
}

} // namespace

Type
Type::none()
{
    static auto storage = makeStorage(TypeKind::None, 0);
    return Type(storage);
}

Type
Type::index()
{
    static auto storage = makeStorage(TypeKind::Index, 64);
    return Type(storage);
}

Type
Type::integer(unsigned width)
{
    return Type(makeStorage(TypeKind::Integer, width));
}

Type
Type::floating(unsigned width)
{
    assert((width == 16 || width == 32 || width == 64) &&
           "unsupported float width");
    return Type(makeStorage(TypeKind::Float, width));
}

Type
Type::memref(std::vector<int64_t> shape, Type element, AffineMap layout,
             MemKind space)
{
    assert(element && !element.isMemRef() && !element.isTensor() &&
           "memref element must be scalar");
    auto s = std::make_shared<TypeStorage>();
    s->kind = TypeKind::MemRef;
    s->shape = std::move(shape);
    s->element = element.impl_;
    s->layout = std::move(layout);
    s->space = space;
    return Type(std::move(s));
}

Type
Type::tensor(std::vector<int64_t> shape, Type element)
{
    assert(element && "tensor element type required");
    auto s = std::make_shared<TypeStorage>();
    s->kind = TypeKind::Tensor;
    s->shape = std::move(shape);
    s->element = element.impl_;
    return Type(std::move(s));
}

TypeKind
Type::kind() const
{
    return impl_ ? impl_->kind : TypeKind::None;
}

unsigned
Type::bitWidth() const
{
    assert(impl_);
    if (isMemRef() || isTensor())
        return elementType().bitWidth();
    return impl_->width;
}

const std::vector<int64_t> &
Type::shape() const
{
    assert(isMemRef() || isTensor());
    return impl_->shape;
}

int64_t
Type::numElements() const
{
    int64_t n = 1;
    for (int64_t d : shape())
        n *= d;
    return n;
}

Type
Type::elementType() const
{
    assert(isMemRef() || isTensor());
    return Type(impl_->element);
}

const AffineMap &
Type::layout() const
{
    assert(isMemRef());
    return impl_->layout;
}

MemKind
Type::memorySpace() const
{
    assert(isMemRef());
    return impl_->space;
}

Type
Type::withLayout(AffineMap layout) const
{
    assert(isMemRef());
    return memref(impl_->shape, elementType(), std::move(layout),
                  impl_->space);
}

Type
Type::withMemorySpace(MemKind space) const
{
    assert(isMemRef());
    return memref(impl_->shape, elementType(), impl_->layout, space);
}

bool
Type::equals(const Type &other) const
{
    if (impl_ == other.impl_)
        return true;
    if (!impl_ || !other.impl_)
        return false;
    if (kind() != other.kind())
        return false;
    switch (kind()) {
      case TypeKind::None:
        return true;
      case TypeKind::Index:
        return true;
      case TypeKind::Integer:
      case TypeKind::Float:
        return impl_->width == other.impl_->width;
      case TypeKind::MemRef:
        return impl_->shape == other.impl_->shape &&
               elementType() == other.elementType() &&
               impl_->layout.equals(other.impl_->layout) &&
               impl_->space == other.impl_->space;
      case TypeKind::Tensor:
        return impl_->shape == other.impl_->shape &&
               elementType() == other.elementType();
    }
    return false;
}

std::string
Type::toString() const
{
    if (!impl_)
        return "<<null>>";
    std::ostringstream os;
    switch (kind()) {
      case TypeKind::None:
        os << "none";
        break;
      case TypeKind::Index:
        os << "index";
        break;
      case TypeKind::Integer:
        os << "i" << impl_->width;
        break;
      case TypeKind::Float:
        os << "f" << impl_->width;
        break;
      case TypeKind::MemRef: {
        os << "memref<";
        for (int64_t d : impl_->shape)
            os << d << "x";
        os << elementType().toString();
        if (!impl_->layout.empty())
            os << ", " << impl_->layout.toString();
        if (impl_->space != MemKind::DRAM)
            os << ", " << static_cast<int>(impl_->space);
        os << ">";
        break;
      }
      case TypeKind::Tensor: {
        os << "tensor<";
        for (int64_t d : impl_->shape)
            os << d << "x";
        os << elementType().toString() << ">";
        break;
      }
    }
    return os.str();
}

} // namespace scalehls
