#include "ir/attributes.h"

#include <sstream>

#include "support/utils.h"

namespace scalehls {

std::string
Attribute::toString() const
{
    std::ostringstream os;
    if (is<bool>()) {
        os << (getBool() ? "true" : "false");
    } else if (is<int64_t>()) {
        os << getInt();
    } else if (is<double>()) {
        os << getFloat();
    } else if (is<std::string>()) {
        os << '"' << getString() << '"';
    } else if (is<std::vector<int64_t>>()) {
        os << "[" << join(getIntArray(), ", ") << "]";
    } else if (is<AffineMap>()) {
        os << "affine_map<" << getAffineMap().toString() << ">";
    } else if (is<IntegerSet>()) {
        os << "affine_set<" << getIntegerSet().toString() << ">";
    } else if (is<Type>()) {
        os << getType().toString();
    } else if (is<FuncDirective>()) {
        const auto &d = getFuncDirective();
        os << "#hlscpp.func_directive<dataflow=" << d.dataflow
           << ", pipeline=" << d.pipeline << ", targetII=" << d.targetII
           << ">";
    } else if (is<LoopDirective>()) {
        const auto &d = getLoopDirective();
        os << "#hlscpp.loop_directive<pipeline=" << d.pipeline
           << ", targetII=" << d.targetII << ", dataflow=" << d.dataflow
           << ", flatten=" << d.flatten << ">";
    } else {
        os << "<<null>>";
    }
    return os.str();
}

} // namespace scalehls
