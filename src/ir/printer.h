/**
 * @file
 * Textual IR printing (MLIR-flavoured pretty forms for structured ops,
 * generic form for everything else). Used by tests, examples and debugging.
 */

#ifndef SCALEHLS_IR_PRINTER_H
#define SCALEHLS_IR_PRINTER_H

#include <ostream>
#include <string>

#include "ir/ir.h"

namespace scalehls {

/** Print @p op (recursively) to @p os. */
void printOp(Operation *op, std::ostream &os);

/** Print to a string. */
std::string printOp(Operation *op);

/** Render an affine expression with the given dim-operand names
 * (e.g. "%i + 1" instead of "d0 + 1"). */
std::string renderAffineExpr(const AffineExpr &expr,
                             const std::vector<std::string> &dim_names);

/** A stable, human-readable path from the enclosing module (or the
 * outermost detached ancestor) down to @p op, e.g.
 * "module/func@2/band@0/for@1". Components are the op's short name
 * (after the dialect dot) plus its index among same-named siblings in
 * its block; a top-level affine.for directly under a func body is
 * rendered "band@<k>" with k counting the function's bands in body
 * order. The path depends only on IR structure, so diagnostics carry it
 * as a location that survives re-parsing and cloning. */
std::string opPath(Operation *op);

} // namespace scalehls

#endif // SCALEHLS_IR_PRINTER_H
