/**
 * @file
 * Textual IR printing (MLIR-flavoured pretty forms for structured ops,
 * generic form for everything else). Used by tests, examples and debugging.
 */

#ifndef SCALEHLS_IR_PRINTER_H
#define SCALEHLS_IR_PRINTER_H

#include <ostream>
#include <string>

#include "ir/ir.h"

namespace scalehls {

/** Print @p op (recursively) to @p os. */
void printOp(Operation *op, std::ostream &os);

/** Print to a string. */
std::string printOp(Operation *op);

/** Render an affine expression with the given dim-operand names
 * (e.g. "%i + 1" instead of "d0 + 1"). */
std::string renderAffineExpr(const AffineExpr &expr,
                             const std::vector<std::string> &dim_names);

} // namespace scalehls

#endif // SCALEHLS_IR_PRINTER_H
