#include "ir/ir.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "support/utils.h"

namespace scalehls {

//
// Value
//

void
Value::replaceAllUsesWith(Value *other)
{
    assert(other != this && "self replacement");
    // Snapshot: setOperand mutates users_.
    auto users = users_;
    for (Operation *user : users) {
        for (unsigned i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) == this)
                user->setOperand(i, other);
        }
    }
}

//
// Operation
//

namespace {
/** Relaxed is enough: readers only ever diff two snapshots taken on the
 * same thread around the measured code path. */
std::atomic<size_t> created_count{0};
} // namespace

size_t
Operation::createdCount()
{
    return created_count.load(std::memory_order_relaxed);
}

std::unique_ptr<Operation>
Operation::create(std::string name, std::vector<Type> result_types,
                  std::vector<Value *> operands, AttrMap attrs,
                  unsigned num_regions)
{
    created_count.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<Operation> op(new Operation());
    op->name_ = std::move(name);
    op->attrs_ = std::move(attrs);
    for (unsigned i = 0; i < result_types.size(); ++i) {
        auto res = std::make_unique<Value>(Value::Kind::OpResult,
                                           result_types[i], i);
        res->owner_ = op.get();
        op->results_.push_back(std::move(res));
    }
    for (Value *v : operands)
        op->addOperand(v);
    for (unsigned i = 0; i < num_regions; ++i) {
        auto region = std::make_unique<Region>();
        region->parent_ = op.get();
        op->regions_.push_back(std::move(region));
    }
    return op;
}

Operation::~Operation()
{
    // Nested state is destroyed by Region/Block destructors; ensure our own
    // operand uses are dropped so use counts stay consistent.
    dropAllReferences();
    for (auto &res : results_) {
        assert(res->useEmpty() && "destroying op with live uses");
        (void)res;
    }
}

std::string
Operation::dialect() const
{
    auto pos = name_.find('.');
    return pos == std::string::npos ? name_ : name_.substr(0, pos);
}

void
Operation::setOperand(unsigned i, Value *value)
{
    assert(i < operands_.size());
    Value *old = operands_[i];
    if (old == value)
        return;
    if (old) {
        auto &users = old->users_;
        auto it = std::find(users.begin(), users.end(), this);
        assert(it != users.end() && "use-list out of sync");
        users.erase(it);
    }
    operands_[i] = value;
    if (value)
        value->users_.push_back(this);
}

void
Operation::setOperands(const std::vector<Value *> &values)
{
    while (numOperands() > values.size())
        eraseOperand(numOperands() - 1);
    for (unsigned i = 0; i < values.size(); ++i) {
        if (i < numOperands())
            setOperand(i, values[i]);
        else
            addOperand(values[i]);
    }
}

void
Operation::addOperand(Value *value)
{
    operands_.push_back(nullptr);
    setOperand(operands_.size() - 1, value);
}

void
Operation::eraseOperand(unsigned i)
{
    setOperand(i, nullptr);
    operands_.erase(operands_.begin() + i);
}

void
Operation::dropAllReferences()
{
    for (unsigned i = 0; i < operands_.size(); ++i)
        setOperand(i, nullptr);
    operands_.clear();
    for (auto &region : regions_)
        for (auto &block : region->blocks_)
            for (auto &op : block->ops_)
                op->dropAllReferences();
}

std::vector<Value *>
Operation::results() const
{
    std::vector<Value *> out;
    out.reserve(results_.size());
    for (auto &r : results_)
        out.push_back(r.get());
    return out;
}

bool
Operation::useEmpty() const
{
    for (auto &r : results_)
        if (!r->useEmpty())
            return false;
    return true;
}

void
Operation::replaceAllUsesWith(Operation *other)
{
    assert(other->numResults() >= numResults());
    for (unsigned i = 0; i < numResults(); ++i)
        result(i)->replaceAllUsesWith(other->result(i));
}

Attribute
Operation::attr(const std::string &name) const
{
    auto it = attrs_.find(name);
    return it == attrs_.end() ? Attribute() : it->second;
}

Operation *
Operation::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

Operation *
Operation::parentOfName(std::string_view name) const
{
    for (Operation *p = parentOp(); p; p = p->parentOp())
        if (p->is(name))
            return p;
    return nullptr;
}

bool
Operation::isAncestorOf(const Operation *other) const
{
    for (const Operation *p = other->parentOp(); p; p = p->parentOp())
        if (p == this)
            return true;
    return false;
}

Operation *
Operation::nextOp() const
{
    assert(parent_);
    auto it = std::find_if(parent_->ops_.begin(), parent_->ops_.end(),
                           [&](auto &p) { return p.get() == this; });
    assert(it != parent_->ops_.end());
    ++it;
    return it == parent_->ops_.end() ? nullptr : it->get();
}

Operation *
Operation::prevOp() const
{
    assert(parent_);
    auto it = std::find_if(parent_->ops_.begin(), parent_->ops_.end(),
                           [&](auto &p) { return p.get() == this; });
    assert(it != parent_->ops_.end());
    if (it == parent_->ops_.begin())
        return nullptr;
    --it;
    return it->get();
}

bool
Operation::isBeforeInBlock(const Operation *other) const
{
    assert(parent_ && parent_ == other->parent_ &&
           "ops must share a block");
    for (auto &op : parent_->ops_) {
        if (op.get() == this)
            return true;
        if (op.get() == other)
            return false;
    }
    return false;
}

void
Operation::moveBefore(Operation *anchor)
{
    assert(anchor->parentBlock());
    auto self = parent_->take(this);
    anchor->parentBlock()->insertBefore(anchor, std::move(self));
}

void
Operation::moveAfter(Operation *anchor)
{
    assert(anchor->parentBlock());
    auto self = parent_->take(this);
    anchor->parentBlock()->insertAfter(anchor, std::move(self));
}

void
Operation::erase()
{
    assert(parent_ && "erasing a detached op");
    parent_->erase(this);
}

namespace {

void
collectPreOrder(Operation *op, std::vector<Operation *> &out)
{
    out.push_back(op);
    for (unsigned i = 0; i < op->numRegions(); ++i)
        for (auto &block : op->region(i).blocks())
            for (auto &nested : block->ops())
                collectPreOrder(nested.get(), out);
}

void
collectPostOrder(Operation *op, std::vector<Operation *> &out)
{
    for (unsigned i = 0; i < op->numRegions(); ++i)
        for (auto &block : op->region(i).blocks())
            for (auto &nested : block->ops())
                collectPostOrder(nested.get(), out);
    out.push_back(op);
}

} // namespace

void
Operation::walk(const std::function<void(Operation *)> &fn)
{
    std::vector<Operation *> ops;
    collectPreOrder(this, ops);
    for (Operation *op : ops)
        fn(op);
}

void
Operation::walkPostOrder(const std::function<void(Operation *)> &fn)
{
    std::vector<Operation *> ops;
    collectPostOrder(this, ops);
    for (Operation *op : ops)
        fn(op);
}

std::vector<Operation *>
Operation::collect(std::string_view name)
{
    std::vector<Operation *> out;
    walk([&](Operation *op) {
        if (op->is(name))
            out.push_back(op);
    });
    return out;
}

/** The clone remap table: open-addressed, pointer-keyed, sized once to
 * the cloned tree's value count. A std::unordered_map rehashes several
 * times while a big module clone grows it and chases list nodes on every
 * operand lookup; this table allocates once and probes linearly, which is
 * what makes per-point module clones cheap on the DSE hot path. */
class ValueRemap
{
  public:
    explicit ValueRemap(size_t expected)
    {
        size_t cap = 16;
        while (cap < expected * 2)
            cap <<= 1;
        slots_.assign(cap, {nullptr, nullptr});
        mask_ = cap - 1;
    }

    void
    set(Value *from, Value *to)
    {
        if ((size_ + 1) * 2 > slots_.size())
            grow();
        insertSlot(from, to);
    }

    Value *
    get(Value *from) const
    {
        for (size_t i = hash(from) & mask_;; i = (i + 1) & mask_) {
            const auto &slot = slots_[i];
            if (!slot.first)
                return nullptr;
            if (slot.first == from)
                return slot.second;
        }
    }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &slot : slots_)
            if (slot.first)
                fn(slot.first, slot.second);
    }

  private:
    static size_t
    hash(const Value *v)
    {
        // Pointer bits are alignment-poor in the low bits; mix them.
        auto x = reinterpret_cast<uintptr_t>(v);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 29;
        return static_cast<size_t>(x);
    }

    void
    insertSlot(Value *from, Value *to)
    {
        for (size_t i = hash(from) & mask_;; i = (i + 1) & mask_) {
            if (!slots_[i].first) {
                slots_[i] = {from, to};
                ++size_;
                return;
            }
            if (slots_[i].first == from) {
                slots_[i].second = to;
                return;
            }
        }
    }

    void
    grow()
    {
        auto old = std::move(slots_);
        slots_.assign(old.size() * 2, {nullptr, nullptr});
        mask_ = slots_.size() - 1;
        size_ = 0;
        for (const auto &slot : old)
            if (slot.first)
                insertSlot(slot.first, slot.second);
    }

    std::vector<std::pair<Value *, Value *>> slots_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

size_t
Operation::countValues() const
{
    size_t count = results_.size();
    for (const auto &region : regions_)
        for (const auto &block : region->blocks_) {
            count += block->args_.size();
            for (const auto &op : block->ops_)
                count += op->countValues();
        }
    return count;
}

std::unique_ptr<Operation>
Operation::cloneImpl(ValueRemap &remap, bool *complete) const
{
    std::vector<Type> result_types;
    result_types.reserve(results_.size());
    for (auto &r : results_)
        result_types.push_back(r->type());

    std::vector<Value *> new_operands;
    new_operands.reserve(operands_.size());
    for (Value *v : operands_) {
        Value *mapped = v ? remap.get(v) : nullptr;
        if (!mapped && v && complete) {
            // Strict mode: never alias the original value (that would
            // mutate its use list — the shared base of an overlay).
            *complete = false;
            v = nullptr;
        }
        new_operands.push_back(mapped ? mapped : v);
    }

    auto cloned = create(name_, std::move(result_types),
                         std::move(new_operands), attrs_, 0);
    for (unsigned i = 0; i < numResults(); ++i)
        remap.set(results_[i].get(), cloned->results_[i].get());

    for (auto &region : regions_) {
        auto new_region = std::make_unique<Region>();
        new_region->parent_ = cloned.get();
        for (auto &block : region->blocks_) {
            Block *new_block = new_region->addBlock();
            for (auto &arg : block->args_) {
                Value *new_arg = new_block->addArgument(arg->type());
                remap.set(arg.get(), new_arg);
            }
            for (auto &op : block->ops_)
                new_block->pushBack(op->cloneImpl(remap, complete));
        }
        cloned->regions_.push_back(std::move(new_region));
    }
    return cloned;
}

std::unique_ptr<Operation>
Operation::clone(std::unordered_map<Value *, Value *> &mapping) const
{
    ValueRemap remap(mapping.size() + countValues());
    for (const auto &[from, to] : mapping)
        remap.set(from, to);
    auto cloned = cloneImpl(remap);
    remap.forEach([&](Value *from, Value *to) { mapping[from] = to; });
    return cloned;
}

std::unique_ptr<Operation>
Operation::clone() const
{
    ValueRemap remap(countValues());
    return cloneImpl(remap);
}

std::unique_ptr<Operation>
Operation::cloneStrict(std::unordered_map<Value *, Value *> &mapping,
                       bool &complete) const
{
    complete = true;
    ValueRemap remap(mapping.size() + countValues());
    for (const auto &[from, to] : mapping)
        remap.set(from, to);
    auto cloned = cloneImpl(remap, &complete);
    remap.forEach([&](Value *from, Value *to) { mapping[from] = to; });
    return cloned;
}

//
// Block
//

Block::~Block()
{
    // First drop all references so ops may be destroyed in any order.
    for (auto &op : ops_)
        op->dropAllReferences();
    ops_.clear();
}

std::vector<Value *>
Block::arguments() const
{
    std::vector<Value *> out;
    out.reserve(args_.size());
    for (auto &a : args_)
        out.push_back(a.get());
    return out;
}

Value *
Block::addArgument(Type type)
{
    auto arg = std::make_unique<Value>(Value::Kind::BlockArg,
                                       std::move(type), args_.size());
    arg->block_ = this;
    args_.push_back(std::move(arg));
    return args_.back().get();
}

std::vector<Operation *>
Block::opsVector() const
{
    std::vector<Operation *> out;
    out.reserve(ops_.size());
    for (auto &op : ops_)
        out.push_back(op.get());
    return out;
}

Operation *
Block::pushBack(std::unique_ptr<Operation> op)
{
    op->parent_ = this;
    ops_.push_back(std::move(op));
    return ops_.back().get();
}

Operation *
Block::pushFront(std::unique_ptr<Operation> op)
{
    op->parent_ = this;
    ops_.push_front(std::move(op));
    return ops_.front().get();
}

Operation *
Block::insertBefore(Operation *anchor, std::unique_ptr<Operation> op)
{
    if (!anchor)
        return pushBack(std::move(op));
    assert(anchor->parent_ == this);
    op->parent_ = this;
    auto it = std::find_if(ops_.begin(), ops_.end(),
                           [&](auto &p) { return p.get() == anchor; });
    assert(it != ops_.end());
    return ops_.insert(it, std::move(op))->get();
}

Operation *
Block::insertAfter(Operation *anchor, std::unique_ptr<Operation> op)
{
    assert(anchor && anchor->parent_ == this);
    op->parent_ = this;
    auto it = std::find_if(ops_.begin(), ops_.end(),
                           [&](auto &p) { return p.get() == anchor; });
    assert(it != ops_.end());
    ++it;
    return ops_.insert(it, std::move(op))->get();
}

std::unique_ptr<Operation>
Block::take(Operation *op)
{
    auto it = std::find_if(ops_.begin(), ops_.end(),
                           [&](auto &p) { return p.get() == op; });
    assert(it != ops_.end() && "op not in this block");
    auto owned = std::move(*it);
    ops_.erase(it);
    owned->parent_ = nullptr;
    return owned;
}

void
Block::erase(Operation *op)
{
    auto owned = take(op);
    owned->dropAllReferences();
    // owned destroyed here; results must be unused (asserted in ~Operation).
}

Operation *
Block::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

//
// Region
//

Block *
Region::addBlock()
{
    auto block = std::make_unique<Block>();
    block->parent_ = this;
    blocks_.push_back(std::move(block));
    return blocks_.back().get();
}

} // namespace scalehls
