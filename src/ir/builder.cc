// OpBuilder is header-only; this file anchors the translation unit.
#include "ir/builder.h"
