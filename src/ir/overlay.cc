#include "ir/overlay.h"

#include <cassert>

namespace scalehls {

OverlayClone
overlayClone(Operation *base, const std::set<const Operation *> &skip)
{
    assert(base->numOperands() == 0 &&
           "overlay base must be operand-less (a func-like op)");
    OverlayClone out;

    std::vector<Type> result_types;
    result_types.reserve(base->numResults());
    for (unsigned i = 0; i < base->numResults(); ++i)
        result_types.push_back(base->result(i)->type());
    out.op = Operation::create(base->name(), std::move(result_types), {},
                               base->attrs(), base->numRegions());

    for (unsigned r = 0; r < base->numRegions(); ++r) {
        for (const auto &block : base->region(r).blocks()) {
            Block *overlay_block = out.op->region(r).addBlock();
            for (unsigned a = 0; a < block->numArguments(); ++a) {
                Value *arg = block->argument(a);
                out.map[arg] = overlay_block->addArgument(arg->type());
            }
            for (const auto &child : block->ops()) {
                if (skip.count(child.get()))
                    continue;
                bool child_complete = true;
                Operation *cloned = overlay_block->pushBack(
                    child->cloneStrict(out.map, child_complete));
                out.complete &= child_complete;
                out.children[child.get()] = cloned;
            }
        }
    }
    return out;
}

} // namespace scalehls
