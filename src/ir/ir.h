/**
 * @file
 * The SSA IR core: Value, Operation, Block, Region and IRMapping.
 *
 * The design mirrors MLIR's structure at the scale this project needs:
 * an Operation is the minimal unit of code; it accepts typed operands,
 * produces typed results, carries named attributes and may contain Regions;
 * a Region holds Blocks; a Block holds a sequence of Operations plus typed
 * block arguments (used for loop induction variables and function
 * parameters). Def-use chains are maintained eagerly so transforms can query
 * users and rewrite uses.
 */

#ifndef SCALEHLS_IR_IR_H
#define SCALEHLS_IR_IR_H

#include <cassert>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/attributes.h"
#include "ir/types.h"

namespace scalehls {

class Operation;
class Block;
class Region;
class ValueRemap;

/** An SSA value: either the result of an Operation or a Block argument. */
class Value
{
  public:
    /** Where this value comes from. */
    enum class Kind { OpResult, BlockArg };

    Value(Kind kind, Type type, unsigned index)
        : kind_(kind), type_(std::move(type)), index_(index)
    {}

    Kind kind() const { return kind_; }
    bool isOpResult() const { return kind_ == Kind::OpResult; }
    bool isBlockArg() const { return kind_ == Kind::BlockArg; }

    Type type() const { return type_; }
    /** Mutate the type in place (used when re-typing memrefs, e.g. by the
     * array-partition pass). All uses observe the new type. */
    void setType(Type type) { type_ = std::move(type); }

    /** Result / argument position. */
    unsigned index() const { return index_; }

    /** The defining operation, or nullptr for block arguments. */
    Operation *definingOp() const
    {
        return isOpResult() ? owner_ : nullptr;
    }
    /** The owning block for block arguments, or nullptr. */
    Block *ownerBlock() const { return isBlockArg() ? block_ : nullptr; }

    /** Operations using this value; one entry per use (duplicates possible
     * when an op uses the value in several operand slots). */
    const std::vector<Operation *> &users() const { return users_; }
    bool useEmpty() const { return users_.empty(); }
    size_t numUses() const { return users_.size(); }

    /** Rewrite every use of this value to use @p other instead. */
    void replaceAllUsesWith(Value *other);

  private:
    friend class Operation;
    friend class Block;

    Kind kind_;
    Type type_;
    unsigned index_;
    Operation *owner_ = nullptr;
    Block *block_ = nullptr;
    std::vector<Operation *> users_;
};

/** Ordered attribute dictionary (ordered for deterministic printing). */
using AttrMap = std::map<std::string, Attribute>;

/** An operation: name + operands + results + attributes + regions. */
class Operation
{
  public:
    ~Operation();
    Operation(const Operation &) = delete;
    Operation &operator=(const Operation &) = delete;

    /** Create a detached operation. Insert it into a Block to give it a
     * position; top-level module ops stay detached. */
    static std::unique_ptr<Operation> create(std::string name,
                                             std::vector<Type> result_types,
                                             std::vector<Value *> operands,
                                             AttrMap attrs = {},
                                             unsigned num_regions = 0);

    /** Process-wide count of operations ever created (relaxed counter).
     * Deltas around a code path measure its IR construction cost: a
     * zero delta proves the path built no IR at all (module clones are
     * create() storms, so "zero creations" implies "zero clones"). */
    static size_t createdCount();

    const std::string &name() const { return name_; }
    bool is(std::string_view n) const { return name_ == n; }
    /** Dialect prefix, e.g. "affine" for "affine.for". */
    std::string dialect() const;

    /** @name Operands */
    ///@{
    unsigned numOperands() const { return operands_.size(); }
    Value *operand(unsigned i) const { return operands_[i]; }
    const std::vector<Value *> &operands() const { return operands_; }
    void setOperand(unsigned i, Value *value);
    void setOperands(const std::vector<Value *> &values);
    void addOperand(Value *value);
    void eraseOperand(unsigned i);
    /** Drop all operand uses (sets them to null). Recurses into regions. */
    void dropAllReferences();
    ///@}

    /** @name Results */
    ///@{
    unsigned numResults() const { return results_.size(); }
    Value *result(unsigned i = 0) const { return results_[i].get(); }
    std::vector<Value *> results() const;
    /** True if no result has any use. */
    bool useEmpty() const;
    /** Replace all uses of each result with the corresponding result of
     * @p other (must have at least as many results). */
    void replaceAllUsesWith(Operation *other);
    ///@}

    /** @name Attributes */
    ///@{
    const AttrMap &attrs() const { return attrs_; }
    bool hasAttr(const std::string &name) const
    {
        return attrs_.count(name) != 0;
    }
    /** The attribute or a null Attribute if absent. */
    Attribute attr(const std::string &name) const;
    void setAttr(const std::string &name, Attribute value)
    {
        attrs_[name] = std::move(value);
    }
    void removeAttr(const std::string &name) { attrs_.erase(name); }
    ///@}

    /** @name Regions */
    ///@{
    unsigned numRegions() const { return regions_.size(); }
    Region &region(unsigned i = 0) { return *regions_[i]; }
    const Region &region(unsigned i = 0) const { return *regions_[i]; }
    ///@}

    /** @name Position */
    ///@{
    Block *parentBlock() const { return parent_; }
    /** The op owning the region this op's block belongs to. */
    Operation *parentOp() const;
    /** Nearest ancestor (not self) with the given name, or nullptr. */
    Operation *parentOfName(std::string_view name) const;
    /** True if this op is an ancestor of (properly contains) @p other. */
    bool isAncestorOf(const Operation *other) const;
    /** Next / previous op in the parent block (nullptr at the ends). */
    Operation *nextOp() const;
    Operation *prevOp() const;
    /** True if this op appears before @p other in the same block. */
    bool isBeforeInBlock(const Operation *other) const;
    /** Unlink from the current block and insert before/after @p anchor. */
    void moveBefore(Operation *anchor);
    void moveAfter(Operation *anchor);
    /** Unlink from the parent block and delete. Results must be unused. */
    void erase();
    ///@}

    /** @name Traversal */
    ///@{
    /** Pre-order walk over this op and all nested ops. The walk snapshots
     * the op list first, so the callback may erase the op it is given (but
     * must not erase other not-yet-visited ops). */
    void walk(const std::function<void(Operation *)> &fn);
    /** Post-order variant (nested ops first). */
    void walkPostOrder(const std::function<void(Operation *)> &fn);
    /** Collect all ops with the given name, in pre-order. */
    std::vector<Operation *> collect(std::string_view name);
    ///@}

    /** Deep-clone this operation. Operand uses are remapped through
     * @p mapping (falling back to the original value for values defined
     * outside the cloned tree); cloned results/block-args are recorded
     * into @p mapping. */
    std::unique_ptr<Operation> clone(
        std::unordered_map<Value *, Value *> &mapping) const;
    /** Clone with a fresh empty mapping. Hot path of the DSE stack (one
     * clone per materialized design point): the remap table is sized to
     * the tree's value count up front, so cloning never rehashes. */
    std::unique_ptr<Operation> clone() const;

    /** Strict deep-clone for copy-on-write overlays: like clone(), but a
     * use of a value that is neither in @p mapping nor defined inside the
     * cloned tree becomes a NULL operand and clears @p complete, instead
     * of falling back to the original value. The fallback would register
     * the clone on the original value's use list — a write to the shared
     * base that races concurrent overlay builds over one pristine module.
     * An incomplete strict clone must be discarded by the caller. */
    std::unique_ptr<Operation> cloneStrict(
        std::unordered_map<Value *, Value *> &mapping, bool &complete) const;

    /** Number of values (op results + block arguments) defined inside
     * this op's tree, i.e. the number of remap entries a clone records. */
    size_t countValues() const;

  private:
    Operation() = default;
    friend class Block;

    /** Shared clone core over the pre-sized remap table. With @p complete
     * non-null, unmapped external uses become null operands and clear it
     * (the strict mode of cloneStrict); with it null, they fall back to
     * the original value (the classic clone semantics). */
    std::unique_ptr<Operation> cloneImpl(ValueRemap &remap,
                                         bool *complete = nullptr) const;

    std::string name_;
    std::vector<Value *> operands_;
    std::vector<std::unique_ptr<Value>> results_;
    AttrMap attrs_;
    std::vector<std::unique_ptr<Region>> regions_;
    Block *parent_ = nullptr;
};

/** A straight-line sequence of operations with typed block arguments. */
class Block
{
  public:
    Block() = default;
    ~Block();
    Block(const Block &) = delete;
    Block &operator=(const Block &) = delete;

    /** @name Arguments */
    ///@{
    unsigned numArguments() const { return args_.size(); }
    Value *argument(unsigned i) const { return args_[i].get(); }
    std::vector<Value *> arguments() const;
    Value *addArgument(Type type);
    ///@}

    /** @name Operations */
    ///@{
    bool empty() const { return ops_.empty(); }
    size_t size() const { return ops_.size(); }
    Operation *front() const { return ops_.front().get(); }
    Operation *back() const { return ops_.back().get(); }
    /** Snapshot of the op list (safe to mutate the block afterwards). */
    std::vector<Operation *> opsVector() const;
    const std::list<std::unique_ptr<Operation>> &ops() const { return ops_; }

    Operation *pushBack(std::unique_ptr<Operation> op);
    Operation *pushFront(std::unique_ptr<Operation> op);
    /** Insert before @p anchor (anchor==nullptr appends). */
    Operation *insertBefore(Operation *anchor,
                            std::unique_ptr<Operation> op);
    Operation *insertAfter(Operation *anchor, std::unique_ptr<Operation> op);
    /** Unlink @p op without destroying it. */
    std::unique_ptr<Operation> take(Operation *op);
    /** Unlink and destroy @p op. */
    void erase(Operation *op);
    ///@}

    Region *parentRegion() const { return parent_; }
    Operation *parentOp() const;

  private:
    friend class Region;
    friend class Operation;

    std::vector<std::unique_ptr<Value>> args_;
    std::list<std::unique_ptr<Operation>> ops_;
    Region *parent_ = nullptr;
};

/** A list of blocks owned by an operation. Structured-control-flow regions
 * in this project always hold exactly one block. */
class Region
{
  public:
    Region() = default;
    Region(const Region &) = delete;
    Region &operator=(const Region &) = delete;

    bool empty() const { return blocks_.empty(); }
    size_t size() const { return blocks_.size(); }
    Block &front() { return *blocks_.front(); }
    const Block &front() const { return *blocks_.front(); }
    const std::list<std::unique_ptr<Block>> &blocks() const
    {
        return blocks_;
    }

    Block *addBlock();
    Operation *parentOp() const { return parent_; }

  private:
    friend class Operation;

    std::list<std::unique_ptr<Block>> blocks_;
    Operation *parent_ = nullptr;
};

/** Convenience: op != nullptr and has the given name. */
inline bool
isa(const Operation *op, std::string_view name)
{
    return op && op->is(name);
}

} // namespace scalehls

#endif // SCALEHLS_IR_IR_H
