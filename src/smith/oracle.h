/**
 * @file
 * scalehls-smith's differential oracle: every generated sample's design
 * points are evaluated through all four evaluation paths — plan-first,
 * schedule-composed, band-cached, and the uncached sequential reference
 * — at one and N threads, and the oracle fails on ANY divergence: a QoR
 * that differs from the reference in any field, an evaluator counter
 * combination that breaks the fast-path accounting invariants, or an
 * L3/L4 audit finding. A failing sample is dumped as a JSON reproducer
 * that `scalehls-smith --replay <file>` re-executes exactly (generation
 * is a pure function of config + seed).
 */

#ifndef SCALEHLS_SMITH_ORACLE_H
#define SCALEHLS_SMITH_ORACLE_H

#include <string>
#include <vector>

#include "dse/design_space.h"
#include "smith/generator.h"

namespace scalehls {

/** Oracle knobs. Serialized into reproducer files alongside the
 * generator config. */
struct SmithOracleConfig
{
    /** Design points probed per sample (canonical seeds first, then an
     * II-dial variant, then seeded random points). */
    int pointsPerSample = 6;
    /** The N of the N-thread runs (1 skips them). */
    unsigned threads = 4;
    /** Run the L3/L4 auditors inside every cached evaluation. */
    bool audit = true;
    /** Self-test hook: poison one PLAN-tier entry before the plan-first
     * run and demand the corruption is CAUGHT (mismatch counter or audit
     * finding) while the QoR still matches the reference. */
    bool corruptPlan = false;
    /** The design-space bounds every run shares. */
    DesignSpaceOptions space;
};

/** One oracle failure: which evaluation path diverged, on what. */
struct SmithDivergence
{
    std::string path;   ///< e.g. "plan-first@4t" or "counters@sched@1t".
    std::string detail; ///< Human-readable what-differed.
    DesignSpace::Point point; ///< Offending point (empty for counters).
};

/** The oracle's verdict on one sample. */
struct SmithOracleResult
{
    size_t points = 0;        ///< Points probed.
    size_t evaluations = 0;   ///< Point evaluations across all runs.
    std::vector<SmithDivergence> divergences;
    /** corruptPlan only: the poisoned entry was applicable (the sample
     * is plan-eligible) — self-tests must retry other seeds when
     * false. */
    bool corruptionApplicable = false;
    /** corruptPlan only: the poisoned entry was detected (plan-mismatch
     * fallback or audit finding). An applicable-but-uncaught corruption
     * is also recorded as a divergence. */
    bool corruptionCaught = false;
};

/** Run the four-path differential oracle over @p sample. */
SmithOracleResult runSmithOracle(const SmithSample &sample,
                                 const SmithOracleConfig &config);

/** Serialize a failing sample + its first divergence as a one-line JSON
 * reproducer record. */
std::string reproducerJson(const SmithSample &sample,
                           const SmithOracleConfig &config,
                           const SmithDivergence &divergence);

/** Re-execute a reproducer record exactly: regenerate the sample from
 * the recorded (config, seed), check the regenerated module prints
 * bit-identically to the recorded one (generator drift is itself a
 * failure), and re-run the oracle. @p report receives a human-readable
 * transcript. Returns true when the replay ran faithfully (module
 * matched and the oracle executed) — the caller inspects @p result for
 * whether the divergence reproduced. */
bool replayReproducer(const std::string &json_text, std::string *report,
                      SmithOracleResult *result);

} // namespace scalehls

#endif // SCALEHLS_SMITH_ORACLE_H
