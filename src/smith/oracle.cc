#include "smith/oracle.h"

#include <memory>
#include <random>
#include <set>
#include <sstream>

#include "dse/band_plan.h"
#include "dse/evaluator.h"
#include "support/json.h"
#include "support/thread_pool.h"

namespace scalehls {

namespace {

bool
qorEqual(const QoRResult &a, const QoRResult &b)
{
    return a.latency == b.latency && a.interval == b.interval &&
           a.feasible == b.feasible && a.resources.dsp == b.resources.dsp &&
           a.resources.lut == b.resources.lut &&
           a.resources.bram18k == b.resources.bram18k &&
           a.resources.memoryBits == b.resources.memoryBits;
}

std::string
qorStr(const QoRResult &q)
{
    std::ostringstream os;
    os << "{lat=" << q.latency << " ii=" << q.interval
       << " dsp=" << q.resources.dsp << " lut=" << q.resources.lut
       << " bram=" << q.resources.bram18k
       << " bits=" << q.resources.memoryBits
       << " feasible=" << (q.feasible ? 1 : 0) << "}";
    return os.str();
}

std::string
pointStr(const DesignSpace::Point &point)
{
    std::string out = "[";
    for (size_t i = 0; i < point.size(); ++i)
        out += (i ? "," : "") + std::to_string(point[i]);
    return out + "]";
}

/** The probed point set: canonical seeds, an II-dial variant of the
 * first seed, then seeded random points — deduplicated, order kept. */
std::vector<DesignSpace::Point>
buildPoints(const DesignSpace &space, uint64_t seed, int target)
{
    std::vector<DesignSpace::Point> points = space.canonicalSeedPoints();
    if (!points.empty() && space.numBands() > 0) {
        DesignSpace::Point dial = points.front();
        size_t ii_dim = space.dimTargetII(0);
        dial[ii_dim] = space.dimSizes()[ii_dim] - 1;
        points.push_back(dial);
    }
    std::mt19937 rng(static_cast<uint32_t>(seed ^ (seed >> 32) ^
                                           0x5eedu));
    for (int draws = 0;
         static_cast<int>(points.size()) < target && draws < 8 * target;
         ++draws)
        points.push_back(space.randomPoint(rng));

    std::vector<DesignSpace::Point> unique;
    std::set<DesignSpace::Point> seen;
    for (auto &p : points)
        if (seen.insert(p).second)
            unique.push_back(std::move(p));
    return unique;
}

/** One cached run of the differential matrix. */
struct RunSpec
{
    std::string label;
    EvaluatorOptions options;
    unsigned threads = 1;
    bool corrupt = false;
};

} // namespace

SmithOracleResult
runSmithOracle(const SmithSample &sample, const SmithOracleConfig &config)
{
    SmithOracleResult result;
    DesignSpace space(sample.module.get(), config.space);
    std::vector<DesignSpace::Point> points =
        buildPoints(space, sample.seed, config.pointsPerSample);
    result.points = points.size();
    if (points.empty())
        return result;

    auto diverge = [&](const std::string &path, const std::string &detail,
                       DesignSpace::Point point = {}) {
        result.divergences.push_back({path, detail, std::move(point)});
    };

    // Path 1 — the uncached sequential reference: no pool, no estimate
    // cache, so every point runs the full materialize-and-estimate
    // pipeline. This is the ground truth the three cached paths must
    // reproduce bit-for-bit.
    std::vector<QoRResult> baseline;
    {
        CachingEvaluator reference(space);
        baseline.reserve(points.size());
        for (const auto &point : points)
            baseline.push_back(reference.evaluate(point));
        result.evaluations += points.size();
    }

    // Paths 2-4 at 1 and N threads, each against a FRESH estimate cache
    // (cross-run reuse would mask per-path bugs behind warm tiers).
    std::vector<RunSpec> runs;
    auto pathOptions = [&](bool incremental, bool plan_first) {
        EvaluatorOptions options;
        options.bandCache = true;
        options.incremental = incremental;
        options.planFirst = plan_first;
        options.audit = config.audit;
        return options;
    };
    std::vector<unsigned> thread_counts = {1};
    if (config.threads > 1)
        thread_counts.push_back(config.threads);
    for (unsigned threads : thread_counts) {
        std::string at = "@" + std::to_string(threads) + "t";
        runs.push_back({"band-cache" + at, pathOptions(false, false),
                        threads, false});
        runs.push_back({"sched-composed" + at, pathOptions(true, false),
                        threads, false});
        runs.push_back({"plan-first" + at, pathOptions(true, true),
                        threads,
                        config.corruptPlan && threads == 1});
    }

    for (const RunSpec &run : runs) {
        EstimateCache cache;
        std::unique_ptr<ThreadPool> pool;
        if (run.threads > 1)
            pool = std::make_unique<ThreadPool>(run.threads);
        CachingEvaluator evaluator(space, pool.get(), &cache,
                                   run.options);

        bool corrupted = false;
        if (run.corrupt) {
            // Poison the PLAN tier for exactly the key the planner will
            // consult on points[0]: a confidently-composable outcome
            // whose digest matches no real band content. The system
            // must CATCH this (digest-mismatch fallback or audit
            // finding) and still answer with the reference QoR.
            BandPlanner planner(space, &cache,
                                run.options.partitionAwareKeys,
                                run.options.audit);
            if (planner.enabled()) {
                std::string key = planner.debugPlanKey(points[0], 0);
                if (!key.empty()) {
                    BandPlanOutcome bogus;
                    bogus.materializable = true;
                    bogus.composable = true;
                    bogus.digest = "smith-corrupted-digest";
                    cache.insertPlan(key, bogus);
                    corrupted = true;
                    result.corruptionApplicable = true;
                }
            }
        }

        std::vector<QoRResult> qors = evaluator.evaluateBatch(points);
        result.evaluations += points.size();
        for (size_t i = 0; i < points.size(); ++i)
            if (!qorEqual(qors[i], baseline[i]))
                diverge(run.label,
                        "QoR mismatch at point " + pointStr(points[i]) +
                            ": got " + qorStr(qors[i]) + ", reference " +
                            qorStr(baseline[i]),
                        points[i]);

        // Counter invariants (exact, derived from the evaluator's memo
        // accounting): every memo miss is decided by exactly one of the
        // four materialization classes or the planner's zero-IR
        // infeasibility proof, and every batch slot is a miss, a memo
        // hit, or an in-batch dedup.
        size_t mat = evaluator.numMaterializations();
        size_t classes = evaluator.numFullMaterializations() +
                         evaluator.numFastPathHits() +
                         evaluator.numOverlayMaterializations() +
                         evaluator.numPlanInfeasible();
        if (mat != classes)
            diverge("counters@" + run.label,
                    "materializations (" + std::to_string(mat) +
                        ") != full+fastpath+overlay+planInfeasible (" +
                        std::to_string(classes) + ")");
        size_t accounted = mat + evaluator.numCacheHits() +
                           evaluator.numBatchDedups();
        if (accounted != points.size())
            diverge("counters@" + run.label,
                    "batch of " + std::to_string(points.size()) +
                        " accounted as " + std::to_string(accounted) +
                        " (mat+hits+dedups)");

        if (corrupted) {
            bool caught = evaluator.numPlanMismatches() >= 1 ||
                          evaluator.numAuditViolations() >= 1;
            result.corruptionCaught |= caught;
            if (!caught)
                diverge(run.label,
                        "corrupted PLAN entry went undetected "
                        "(no mismatch fallback, no audit finding)",
                        points[0]);
        } else if (evaluator.numAuditViolations() != 0) {
            diverge("audit@" + run.label,
                    std::to_string(evaluator.numAuditViolations()) +
                        " audit finding(s) in " +
                        std::to_string(evaluator.numAuditChecks()) +
                        " checks");
        }

        // Memo coherence: re-probing an already-evaluated point must be
        // a cache hit and must return the identical QoR.
        size_t hits_before = evaluator.numCacheHits();
        QoRResult again = evaluator.evaluate(points[0]);
        result.evaluations += 1;
        if (evaluator.numCacheHits() <= hits_before)
            diverge(run.label, "re-evaluation missed the memo cache",
                    points[0]);
        if (!qorEqual(again, baseline[0]))
            diverge(run.label,
                    "memo re-probe returned " + qorStr(again) +
                        ", reference " + qorStr(baseline[0]),
                    points[0]);
    }
    return result;
}

namespace {

std::string
jsonBool(bool value)
{
    return value ? "true" : "false";
}

bool
boolField(const JsonValue &obj, const char *key, bool fallback)
{
    const JsonValue *value = obj.get(key);
    if (!value)
        return fallback;
    if (value->kind == JsonValue::Kind::Bool)
        return value->boolean;
    return value->isNumber() ? value->asInt() != 0 : fallback;
}

int64_t
intField(const JsonValue &obj, const char *key, int64_t fallback)
{
    const JsonValue *value = obj.get(key);
    return value && value->isNumber() ? value->asInt() : fallback;
}

} // namespace

std::string
reproducerJson(const SmithSample &sample, const SmithOracleConfig &config,
               const SmithDivergence &divergence)
{
    std::ostringstream os;
    os << "{\"version\":1,\"seed\":" << sample.seed;
    os << ",\"gen\":{\"max_bands\":" << sample.config.maxBands
       << ",\"max_depth\":" << sample.config.maxDepth
       << ",\"directives\":" << jsonBool(sample.config.allowDirectives)
       << ",\"dataflow_top\":" << jsonBool(sample.config.allowDataflowTop)
       << ",\"calls\":" << jsonBool(sample.config.allowCalls)
       << ",\"dead_allocs\":" << jsonBool(sample.config.allowDeadAllocs)
       << "}";
    os << ",\"oracle\":{\"points\":" << config.pointsPerSample
       << ",\"threads\":" << config.threads
       << ",\"audit\":" << jsonBool(config.audit)
       << ",\"corrupt_plan\":" << jsonBool(config.corruptPlan)
       << ",\"space\":{\"max_tile_size\":" << config.space.maxTileSize
       << ",\"max_total_unroll\":" << config.space.maxTotalUnroll
       << ",\"max_ii\":" << config.space.maxII
       << ",\"dataflow_fastpath\":"
       << jsonBool(config.space.dataflowFastPath) << "}}";
    os << ",\"shape\":\"" << jsonEscape(sample.shape) << "\"";
    os << ",\"path\":\"" << jsonEscape(divergence.path) << "\"";
    os << ",\"detail\":\"" << jsonEscape(divergence.detail) << "\"";
    os << ",\"point\":[";
    for (size_t i = 0; i < divergence.point.size(); ++i)
        os << (i ? "," : "") << divergence.point[i];
    os << "]";
    os << ",\"source\":\"" << jsonEscape(sample.source) << "\"";
    os << ",\"printed\":\"" << jsonEscape(sample.printed) << "\"";
    os << "}";
    return os.str();
}

bool
replayReproducer(const std::string &json_text, std::string *report,
                 SmithOracleResult *result)
{
    std::ostringstream log;
    auto fail = [&](const std::string &why) {
        log << "replay error: " << why << "\n";
        if (report)
            *report = log.str();
        return false;
    };

    auto parsed = parseJson(json_text);
    if (!parsed || parsed->kind != JsonValue::Kind::Object)
        return fail("reproducer is not a JSON object");
    const JsonValue &root = *parsed;
    if (intField(root, "version", 0) != 1)
        return fail("unsupported reproducer version");
    const JsonValue *seed_value = root.get("seed");
    if (!seed_value || !seed_value->isNumber())
        return fail("missing seed");
    uint64_t seed = static_cast<uint64_t>(seed_value->asInt());

    SmithGenConfig gen;
    if (const JsonValue *g = root.get("gen")) {
        gen.maxBands = static_cast<int>(
            intField(*g, "max_bands", gen.maxBands));
        gen.maxDepth = static_cast<int>(
            intField(*g, "max_depth", gen.maxDepth));
        gen.allowDirectives =
            boolField(*g, "directives", gen.allowDirectives);
        gen.allowDataflowTop =
            boolField(*g, "dataflow_top", gen.allowDataflowTop);
        gen.allowCalls = boolField(*g, "calls", gen.allowCalls);
        gen.allowDeadAllocs =
            boolField(*g, "dead_allocs", gen.allowDeadAllocs);
    }
    SmithOracleConfig oracle;
    if (const JsonValue *o = root.get("oracle")) {
        oracle.pointsPerSample = static_cast<int>(
            intField(*o, "points", oracle.pointsPerSample));
        oracle.threads = static_cast<unsigned>(
            intField(*o, "threads", oracle.threads));
        oracle.audit = boolField(*o, "audit", oracle.audit);
        oracle.corruptPlan =
            boolField(*o, "corrupt_plan", oracle.corruptPlan);
        if (const JsonValue *s = o->get("space")) {
            oracle.space.maxTileSize =
                intField(*s, "max_tile_size", oracle.space.maxTileSize);
            oracle.space.maxTotalUnroll = intField(
                *s, "max_total_unroll", oracle.space.maxTotalUnroll);
            oracle.space.maxII = intField(*s, "max_ii", oracle.space.maxII);
            oracle.space.dataflowFastPath = boolField(
                *s, "dataflow_fastpath", oracle.space.dataflowFastPath);
        }
    }

    SmithSample sample = generateSmithSample(gen, seed);
    log << "replaying seed " << seed << " shape " << sample.shape << "\n";

    // Exactness gate: the regenerated module must print bit-identically
    // to the recorded one — otherwise the generator drifted and this
    // record no longer reproduces the original sample.
    if (const JsonValue *printed = root.get("printed")) {
        if (printed->isString() && printed->string != sample.printed)
            return fail("regenerated module differs from the recorded "
                        "one (generator drift; reproducer is stale)");
        log << "regenerated module matches the recorded print\n";
    }

    SmithOracleResult run = runSmithOracle(sample, oracle);
    log << run.points << " points, " << run.evaluations
        << " evaluations, " << run.divergences.size()
        << " divergence(s)\n";
    for (const auto &d : run.divergences)
        log << "  [" << d.path << "] " << d.detail << "\n";
    if (oracle.corruptPlan)
        log << "corruption applicable="
            << (run.corruptionApplicable ? "yes" : "no") << " caught="
            << (run.corruptionCaught ? "yes" : "no") << "\n";
    if (result)
        *result = std::move(run);
    if (report)
        *report = log.str();
    return true;
}

} // namespace scalehls
