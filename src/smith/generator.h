/**
 * @file
 * scalehls-smith's seeded kernel generator: random affine kernels and
 * dataflow-graph modules in the style of mlir-dace-smith — nested bands
 * with varied depths/bounds, local buffers covering every
 * buffer-ownership class the fast-path analysis distinguishes
 * (BandLocal / DataflowEdge / MultiConsumer / SharedChain / Dead /
 * Escaping), calls, mixed-precision ops, and directive-bearing as well
 * as pristine variants. Generation is a pure function of
 * (config, sample seed): the same pair always reproduces the same
 * module bit-for-bit, which is what makes oracle reproducer files
 * replayable. Every sample is passed through the L1/L2 verifier at
 * birth.
 */

#ifndef SCALEHLS_SMITH_GENERATOR_H
#define SCALEHLS_SMITH_GENERATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace scalehls {

/** Knobs bounding the generated kernels. All fields are serialized into
 * reproducer files — a generated sample is a pure function of
 * (config, seed). */
struct SmithGenConfig
{
    int maxBands = 3;    ///< Top-level bands per kernel (>= 1).
    int maxDepth = 3;    ///< Deepest generated loop nest (1..3).
    /** Emit pre-set loop/function directives on some samples (the
     * "directive-bearing" variants; pristine otherwise). */
    bool allowDirectives = true;
    /** Mark eligible multi-band kernels as dataflow tops. */
    bool allowDataflowTop = true;
    /** Generate Escaping buffers (a call consuming a local buffer). */
    bool allowCalls = true;
    /** Insert never-accessed allocs (the Dead ownership class). */
    bool allowDeadAllocs = true;
};

/** One generated sample: the affine-level module plus everything needed
 * to reproduce and report it. */
struct SmithSample
{
    uint64_t seed = 0;      ///< The per-sample seed.
    SmithGenConfig config;  ///< The config it was generated under.
    std::string source;     ///< The generated HLS C.
    /** Shape label for reporting: the ownership scenario and the
     * applied decorations (e.g. "DataflowEdge+dataflow-top"). */
    std::string shape;
    /** The affine-level, decorated module (L1/L2-verified at birth). */
    std::unique_ptr<Operation> module;
    std::string printed;    ///< printOp(module) at birth.
};

/** Generate the sample of @p sample_seed under @p config. The result is
 * deterministic and verifier-clean; a sample failing the L1/L2 verifier
 * at birth is a generator bug and raises FatalError (with the seed in
 * the message so it can be pinned as a regression). */
SmithSample generateSmithSample(const SmithGenConfig &config,
                                uint64_t sample_seed);

} // namespace scalehls

#endif // SCALEHLS_SMITH_GENERATOR_H
