#include "smith/generator.h"

#include <algorithm>
#include <random>
#include <sstream>

#include "analysis/loop_analysis.h"
#include "dialect/ops.h"
#include "frontend/irgen.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/utils.h"
#include "transform/pass.h"

namespace scalehls {

namespace {

/** The ownership class a sample's local buffer is built to exercise
 * (Pristine = no local buffer at all). */
enum class Scenario
{
    Pristine,
    BandLocal,
    DeadLocal,
    DataflowEdge,
    MultiConsumer,
    SharedChain,
    Escaping,
};

const char *
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::Pristine:      return "Pristine";
      case Scenario::BandLocal:     return "BandLocal";
      case Scenario::DeadLocal:     return "DeadLocal";
      case Scenario::DataflowEdge:  return "DataflowEdge";
      case Scenario::MultiConsumer: return "MultiConsumer";
      case Scenario::SharedChain:   return "SharedChain";
      case Scenario::Escaping:      return "Escaping";
    }
    return "?";
}

/** How many top-level bands the scenario's buffer protocol needs. */
int
scenarioMinBands(Scenario s)
{
    switch (s) {
      case Scenario::DataflowEdge:
      case Scenario::Escaping:
        return 2;
      case Scenario::MultiConsumer:
      case Scenario::SharedChain:
        return 3;
      default:
        return 1;
    }
}

/** Whether the sample may legally carry the dataflow directive (mirrors
 * AllocOwnershipInfo::eligible(dataflow_top): SharedChain and Escaping
 * buffers must stay sequential — generating them WITH the directive
 * would make the kernel fall back everywhere, which is a valid fuzzing
 * shape too, but we only mark tops the analysis can accept so the fast
 * and slow paths genuinely disagree about work, not eligibility). */
bool
scenarioAllowsDataflow(Scenario s)
{
    return s != Scenario::SharedChain && s != Scenario::Escaping;
}

/** Deterministic inclusive-range draw. */
int
draw(std::mt19937_64 &rng, int lo, int hi)
{
    return lo + static_cast<int>(rng() % static_cast<uint64_t>(hi - lo + 1));
}

bool
chance(std::mt19937_64 &rng, int percent)
{
    return draw(rng, 1, 100) <= percent;
}

/** The generated kernel's immutable source-level plan. */
struct SourcePlan
{
    Scenario scenario = Scenario::Pristine;
    int n = 16;              ///< Array extent (every dim).
    int bands = 1;
    int scenarioBand = 0;    ///< First band of the ownership protocol.
    std::string floatType;   ///< "float" or "double".
    bool hasIntArray = false;
    bool hasMatrix = false;  ///< 2-D param for deep filler bands.
};

/** One filler band: depth, bounds and a body statement that only
 * touches parameter arrays (never the scenario's local buffer). */
std::string
fillerBand(std::mt19937_64 &rng, const SourcePlan &plan, int max_depth,
           int indent_cols)
{
    std::string pad(indent_cols, ' ');
    int depth = draw(rng, 1, max_depth);
    if (!plan.hasMatrix)
        depth = 1;
    std::ostringstream os;
    if (depth == 1) {
        int bound = chance(rng, 30) ? plan.n / 2 : plan.n;
        int step = chance(rng, 20) ? 2 : 1;
        std::string inc = step == 1 ? "i++" : "i += 2";
        os << pad << "for (int i = 0; i < " << bound << "; " << inc
           << ")\n";
        switch (draw(rng, 0, plan.hasIntArray ? 3 : 2)) {
          case 0:
            os << pad << "  B[i] = A[i] * 1.5;\n";
            break;
          case 1:
            os << pad << "  B[i] = B[i] + A[i];\n";
            break;
          case 2:
            if (chance(rng, 50)) {
                os << pad << "  if (i < 4)\n"
                   << pad << "    B[i] = A[i] + 2.0;\n"
                   << pad << "  else\n"
                   << pad << "    B[i] = A[i] * 3.0;\n";
            } else {
                os << pad << "  A[i] = A[i] + 0.5;\n";
            }
            break;
          default:
            os << pad << "  K[i] = K[i] + 1;\n";
            break;
        }
        return os.str();
    }
    if (depth >= 3) {
        // A gemm-shaped accumulation: the deepest generated nest.
        os << pad << "for (int i = 0; i < " << plan.n << "; i++)\n"
           << pad << "  for (int j = 0; j < " << plan.n << "; j++)\n"
           << pad << "    for (int k = 0; k < " << plan.n << "; k++)\n"
           << pad << "      M[i][j] = M[i][j] + A[k] * B[k];\n";
        return os.str();
    }
    os << pad << "for (int i = 0; i < " << plan.n << "; i++)\n"
       << pad << "  for (int j = 0; j < " << plan.n << "; j++)\n";
    if (chance(rng, 50))
        os << pad << "    M[i][j] = M[i][j] * 0.5;\n";
    else
        os << pad << "    M[i][j] = M[i][j] + A[j];\n";
    return os.str();
}

/** The scenario's buffer-protocol bands (writes then reads of tmp),
 * appended in band order. @p band is the protocol-relative index. */
std::string
scenarioBand(const SourcePlan &plan, int band)
{
    std::ostringstream os;
    auto loop = [&](const std::string &body) {
        os << "  for (int i = 0; i < " << plan.n << "; i++)\n"
           << "    " << body << "\n";
    };
    switch (plan.scenario) {
      case Scenario::Pristine:
        break;
      case Scenario::BandLocal:
        os << "  for (int i = 0; i < " << plan.n << "; i++) {\n"
           << "    tmp[i] = A[i] * 2.0;\n"
           << "    B[i] = tmp[i] + 1.0;\n"
           << "  }\n";
        break;
      case Scenario::DeadLocal:
        loop("tmp[i] = A[i];");
        break;
      case Scenario::DataflowEdge:
      case Scenario::Escaping: // Same source; the call is a decoration.
        if (band == 0)
            loop("tmp[i] = A[i] * 2.0;");
        else
            loop("B[i] = tmp[i] + 1.0;");
        break;
      case Scenario::MultiConsumer:
        if (band == 0)
            loop("tmp[i] = A[i] * 2.0;");
        else if (band == 1)
            loop("B[i] = tmp[i] + 1.0;");
        else
            loop("C[i] = tmp[i] * 3.0;");
        break;
      case Scenario::SharedChain:
        if (band == 0)
            loop("tmp[i] = 0.0;");
        else if (band == 1)
            loop("tmp[i] = tmp[i] + A[i];");
        else
            loop("B[i] = tmp[i];");
        break;
    }
    return os.str();
}

std::string
emitSource(std::mt19937_64 &rng, const SourcePlan &plan,
           const SmithGenConfig &config)
{
    const std::string &ft = plan.floatType;
    std::ostringstream os;
    os << "void smith_kernel(" << ft << " A[" << plan.n << "], " << ft
       << " B[" << plan.n << "], " << ft << " C[" << plan.n << "]";
    if (plan.hasIntArray)
        os << ", int K[" << plan.n << "]";
    if (plan.hasMatrix)
        os << ", " << ft << " M[" << plan.n << "][" << plan.n << "]";
    os << ") {\n";
    if (plan.scenario != Scenario::Pristine)
        os << "  " << ft << " tmp[" << plan.n << "];\n";

    int protocol_bands = scenarioMinBands(plan.scenario);
    if (plan.scenario == Scenario::Pristine)
        protocol_bands = 0;
    int protocol_emitted = 0;
    for (int b = 0; b < plan.bands; ++b) {
        bool in_protocol = b >= plan.scenarioBand &&
                           protocol_emitted < protocol_bands;
        if (in_protocol)
            os << scenarioBand(plan, protocol_emitted++);
        else
            os << fillerBand(rng, plan, config.maxDepth, 2);
    }
    os << "}\n";
    return os.str();
}

} // namespace

SmithSample
generateSmithSample(const SmithGenConfig &config, uint64_t sample_seed)
{
    std::mt19937_64 rng(sample_seed);

    SourcePlan plan;
    {
        std::vector<Scenario> pool = {
            Scenario::Pristine,     Scenario::BandLocal,
            Scenario::DeadLocal,    Scenario::DataflowEdge,
            Scenario::MultiConsumer, Scenario::SharedChain,
        };
        if (config.allowCalls)
            pool.push_back(Scenario::Escaping);
        plan.scenario = pool[static_cast<size_t>(
            draw(rng, 0, static_cast<int>(pool.size()) - 1))];
    }
    plan.n = chance(rng, 50) ? 8 : 16;
    plan.floatType = chance(rng, 30) ? "double" : "float";
    plan.hasIntArray = chance(rng, 30);
    plan.hasMatrix = config.maxDepth >= 2 && chance(rng, 50);
    int min_bands = scenarioMinBands(plan.scenario);
    plan.bands = draw(rng, min_bands, std::max(config.maxBands, min_bands));
    plan.scenarioBand = draw(rng, 0, plan.bands - min_bands);

    SmithSample sample;
    sample.seed = sample_seed;
    sample.config = config;
    sample.source = emitSource(rng, plan, config);
    sample.shape = scenarioName(plan.scenario);

    sample.module = parseCToModule(sample.source);
    raiseScfToAffine(sample.module.get());
    Operation *func = getTopFunc(sample.module.get());

    // --- Decorations: the shapes the C subset cannot spell. ---

    // Escaping: a call consuming the local buffer from inside the reader
    // band (the callee exists so call-site verification holds).
    if (plan.scenario == Scenario::Escaping) {
        auto allocs = func->collect(ops::Alloc);
        auto bands = getLoopBands(func);
        if (!allocs.empty() && bands.size() >= 2) {
            Value *tmp = allocs[0]->result(0);
            createFunc(sample.module.get(), "smith_sink",
                       {tmp->type()});
            size_t reader = static_cast<size_t>(plan.scenarioBand) + 1;
            if (reader >= bands.size())
                reader = bands.size() - 1;
            Block *leaf =
                AffineForOp(getLoopNest(bands[reader][0]).back()).body();
            OpBuilder builder(leaf, leaf->front());
            builder.create(std::string(ops::Call), {}, {tmp},
                           {{kCallee,
                             Attribute(std::string("smith_sink"))}});
            sample.shape += "+call";
        }
    }

    // Dead alloc: a never-accessed local buffer.
    if (config.allowDeadAllocs && chance(rng, 30)) {
        Block *body = funcBody(func);
        OpBuilder builder(body, body->back());
        createAlloc(builder, Type::memref({8}, Type::f32()));
        sample.shape += "+dead-alloc";
    }

    // Dataflow top: only on kernels whose ownership protocol a dataflow
    // top accepts, and only with >= 2 bands (a 1-band dataflow top is a
    // degenerate pipeline).
    if (config.allowDataflowTop && plan.bands >= 2 &&
        scenarioAllowsDataflow(plan.scenario) && chance(rng, 50)) {
        FuncDirective fd = getFuncDirective(func);
        fd.dataflow = true;
        setFuncDirective(func, fd);
        sample.shape += "+dataflow-top";
    } else if (config.allowDirectives && chance(rng, 15)) {
        // A pipelined top: ineligible for every fast path by design —
        // the differential value is that ALL paths must agree on the
        // fallback result.
        FuncDirective fd = getFuncDirective(func);
        fd.pipeline = true;
        fd.targetII = static_cast<int64_t>(draw(rng, 1, 2));
        setFuncDirective(func, fd);
        sample.shape += "+pipelined-top";
    }

    // Directive-bearing variant: a pre-set loop directive on one
    // innermost loop (the pristine module most kernels present is
    // directive-free; DSE must behave identically when the input
    // already carries one).
    if (config.allowDirectives && chance(rng, 30)) {
        auto bands = getLoopBands(func);
        if (!bands.empty()) {
            size_t which = static_cast<size_t>(
                draw(rng, 0, static_cast<int>(bands.size()) - 1));
            Operation *inner = getLoopNest(bands[which][0]).back();
            LoopDirective ld = getLoopDirective(inner);
            ld.pipeline = true;
            ld.targetII = static_cast<int64_t>(draw(rng, 1, 4));
            setLoopDirective(inner, ld);
            sample.shape += "+loop-directive";
        }
    }

    // Birth check: every sample must be L1/L2 clean — a verifier finding
    // here is a generator bug, not a system-under-test bug.
    auto errors = verifyErrors(sample.module.get());
    if (!errors.empty())
        fatal("smith generator produced invalid IR (seed " +
              std::to_string(sample_seed) + "): " + errors[0].str());

    sample.printed = printOp(sample.module.get());
    return sample;
}

} // namespace scalehls
