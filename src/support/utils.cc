#include "support/utils.h"

#include <algorithm>

namespace scalehls {

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

std::vector<int64_t>
divisorsOf(int64_t n)
{
    std::vector<int64_t> divs;
    if (n <= 0)
        return divs;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            divs.push_back(d);
            if (d != n / d)
                divs.push_back(n / d);
        }
    }
    std::sort(divs.begin(), divs.end());
    return divs;
}

int64_t
nextPow2(int64_t n)
{
    int64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace scalehls
