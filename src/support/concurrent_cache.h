/**
 * @file
 * A sharded concurrent memo cache: a fixed array of mutex-protected
 * hash-map shards indexed by key hash. Lookups and inserts from different
 * shards never contend; the value type is returned by copy so no
 * reference ever escapes a shard lock (a `const V&` into a concurrently
 * growing map is a use-after-rehash bug waiting to happen).
 */

#ifndef SCALEHLS_SUPPORT_CONCURRENT_CACHE_H
#define SCALEHLS_SUPPORT_CONCURRENT_CACHE_H

#include <array>
#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace scalehls {

/** A point-in-time statistics snapshot of one cache tier. Multi-tier
 * caches (e.g. the function/band EstimateCache) expose one snapshot per
 * tier so callers can report them side by side. */
struct CacheStats
{
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;

    size_t lookups() const { return hits + misses; }
    double
    hitRate() const
    {
        size_t total = lookups();
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Hash for ordinal vectors (e.g. DesignSpace::Point): FNV-1a over the
 * elements. */
struct OrdinalVectorHash
{
    template <typename Vec>
    size_t
    operator()(const Vec &v) const
    {
        size_t h = 1469598103934665603ull;
        for (const auto &e : v) {
            h ^= static_cast<size_t>(e);
            h *= 1099511628211ull;
        }
        return h;
    }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          unsigned NumShards = 16>
class ConcurrentCache
{
    static_assert(NumShards > 0, "at least one shard");

  public:
    /** The cached value for @p key, by copy; nullopt on a miss. Every
     * call is counted toward the hit/miss statistics. */
    std::optional<Value>
    lookup(const Key &key) const
    {
        const Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    /** Insert unless present. Returns true when this call inserted; the
     * first writer wins, so concurrent duplicate computations converge on
     * one canonical value. */
    bool
    insert(const Key &key, Value value)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        return shard.map.emplace(key, std::move(value)).second;
    }

    size_t
    size() const
    {
        size_t total = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total += shard.map.size();
        }
        return total;
    }

    void
    clear()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.map.clear();
        }
        hits_.store(0, std::memory_order_relaxed);
        misses_.store(0, std::memory_order_relaxed);
    }

    /** @name Statistics
     * Lookups resolved from / missing in the cache since construction (or
     * the last clear()). Relaxed counters: exact totals once the cache is
     * quiescent, approximate while threads are still inserting. */
    ///@{
    size_t hits() const { return hits_.load(std::memory_order_relaxed); }
    size_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    size_t lookups() const { return hits() + misses(); }
    double
    hitRate() const
    {
        size_t total = lookups();
        return total == 0 ? 0.0
                          : static_cast<double>(hits()) /
                                static_cast<double>(total);
    }
    /** Everything above in one snapshot (entry count takes the shard
     * locks; hit/miss counters are the same relaxed reads). */
    CacheStats stats() const { return {hits(), misses(), size()}; }
    ///@}

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<Key, Value, Hash> map;
    };

    const Shard &
    shardFor(const Key &key) const
    {
        return shards_[Hash()(key) % NumShards];
    }
    Shard &
    shardFor(const Key &key)
    {
        return shards_[Hash()(key) % NumShards];
    }

    std::array<Shard, NumShards> shards_;
    mutable std::atomic<size_t> hits_{0};
    mutable std::atomic<size_t> misses_{0};
};

} // namespace scalehls

#endif // SCALEHLS_SUPPORT_CONCURRENT_CACHE_H
