/**
 * @file
 * A sharded concurrent memo cache: a fixed array of mutex-protected
 * hash-map shards indexed by key hash. Lookups and inserts from different
 * shards never contend; the value type is returned by copy so no
 * reference ever escapes a shard lock (a `const V&` into a concurrently
 * growing map is a use-after-rehash bug waiting to happen).
 */

#ifndef SCALEHLS_SUPPORT_CONCURRENT_CACHE_H
#define SCALEHLS_SUPPORT_CONCURRENT_CACHE_H

#include <algorithm>
#include <array>
#include <atomic>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace scalehls {

/** A point-in-time statistics snapshot of one cache tier. Multi-tier
 * caches (e.g. the function/band EstimateCache) expose one snapshot per
 * tier so callers can report them side by side. */
struct CacheStats
{
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    /** Entries dropped by the max-entry bound (0 when unbounded). */
    size_t evictions = 0;
    /** Hits whose key masked away partition-layout dims the consumer
     * never reads (band tier of the EstimateCache; 0 elsewhere). */
    size_t maskedHits = 0;

    size_t lookups() const { return hits + misses; }
    double
    hitRate() const
    {
        size_t total = lookups();
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Hash for ordinal vectors (e.g. DesignSpace::Point): FNV-1a over the
 * elements. */
struct OrdinalVectorHash
{
    template <typename Vec>
    size_t
    operator()(const Vec &v) const
    {
        size_t h = 1469598103934665603ull;
        for (const auto &e : v) {
            h ^= static_cast<size_t>(e);
            h *= 1099511628211ull;
        }
        return h;
    }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          unsigned NumShards = 16>
class ConcurrentCache
{
    static_assert(NumShards > 0, "at least one shard");

  public:
    /** The cached value for @p key, by copy; nullopt on a miss. Every
     * call is counted toward the hit/miss statistics, refreshes the
     * entry's recency (it becomes the last eviction candidate of its
     * shard) and bumps its per-entry hit count. */
    std::optional<Value>
    lookup(const Key &key) const
    {
        const Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        Entry &entry = it->second;
        entry.hits += 1;
        if (entry.tracked)
            shard.order.splice(shard.order.end(), shard.order,
                               entry.pos);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry.value;
    }

    /** Insert unless present. Returns true when this call inserted; the
     * first writer wins, so concurrent duplicate computations converge on
     * one canonical value. When a max-entry bound is set, inserting past
     * a shard's share evicts in least-recently-used order, informed by
     * the per-entry hit counts: the LRU candidate is evicted only if it
     * was never hit since its insertion (or its last reprieve) —
     * otherwise its hit count is spent and it is re-queued as most
     * recent, so a proven-useful entry outlives a never-probed newer
     * one. Content-keyed consumers just recompute an evicted value, so
     * eviction bounds memory without ever changing results. */
    bool
    insert(const Key &key, Value value)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto emplaced = shard.map.emplace(key, Entry{std::move(value)});
        bool inserted = emplaced.second;
        if (inserted && per_shard_cap_ != 0) {
            // The cap governs TRACKED (post-bound) entries: entries
            // inserted while the cache was unbounded carry no recency
            // position and are never evicted, and must not make every
            // new insert evict itself trying to get the map under cap.
            Entry &entry = emplaced.first->second;
            entry.tracked = true;
            entry.pos = shard.order.insert(shard.order.end(), key);
            // Bounded scan: every entry earns at most one reprieve, so
            // the loop terminates even when every candidate was hit.
            size_t reprieves = shard.order.size();
            while (shard.order.size() > per_shard_cap_) {
                auto victim = shard.map.find(shard.order.front());
                bool is_new = victim == emplaced.first;
                if ((victim->second.hits != 0 || is_new) &&
                    reprieves-- > 0) {
                    // Reprieve: the hit count is spent, not carried —
                    // an entry must keep earning hits to keep
                    // outliving eviction scans. The entry this call
                    // inserted is always reprieved (an insert must
                    // never evict itself).
                    victim->second.hits = 0;
                    shard.order.splice(shard.order.end(), shard.order,
                                       victim->second.pos);
                    continue;
                }
                shard.order.pop_front();
                shard.map.erase(victim);
                evictions_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        return inserted;
    }

    /** Bound the total entry count (approximately: the bound is split
     * evenly across shards, each evicting LRU past its share). 0 (the
     * default) keeps the cache unbounded — recency bookkeeping is then
     * skipped entirely. Set before the cache is populated; entries
     * inserted while unbounded are never evicted. */
    void
    setMaxEntries(size_t max_entries)
    {
        per_shard_cap_ =
            max_entries == 0
                ? 0
                : std::max<size_t>(1, (max_entries + NumShards - 1) /
                                          NumShards);
    }

    size_t
    size() const
    {
        size_t total = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total += shard.map.size();
        }
        return total;
    }

    /** Visit every (key, value) pair — the bulk-export side of snapshot
     * persistence (cache_io). @p fn runs under the owning shard's lock:
     * it must not call back into this cache, and concurrent inserts on
     * other shards may or may not be visited (each shard is a
     * point-in-time snapshot). Shard order is fixed but the order within
     * a shard follows the unordered map — callers wanting a
     * deterministic byte stream sort the exported pairs themselves. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (const auto &entry : shard.map)
                fn(entry.first, entry.second.value);
        }
    }

    void
    clear()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.map.clear();
            shard.order.clear();
        }
        hits_.store(0, std::memory_order_relaxed);
        misses_.store(0, std::memory_order_relaxed);
        evictions_.store(0, std::memory_order_relaxed);
    }

    /** @name Statistics
     * Lookups resolved from / missing in the cache since construction (or
     * the last clear()). Relaxed counters: exact totals once the cache is
     * quiescent, approximate while threads are still inserting. */
    ///@{
    size_t hits() const { return hits_.load(std::memory_order_relaxed); }
    size_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    size_t lookups() const { return hits() + misses(); }
    size_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    double
    hitRate() const
    {
        size_t total = lookups();
        return total == 0 ? 0.0
                          : static_cast<double>(hits()) /
                                static_cast<double>(total);
    }
    /** Everything above in one snapshot (entry count takes the shard
     * locks; hit/miss counters are the same relaxed reads). */
    CacheStats
    stats() const
    {
        CacheStats s;
        s.hits = hits();
        s.misses = misses();
        s.entries = size();
        s.evictions = evictions();
        return s;
    }
    ///@}

  private:
    /** One cached value plus its eviction bookkeeping. */
    struct Entry
    {
        Value value;
        /** Lookups served since insertion or the last eviction
         * reprieve (spent, not carried, when the entry dodges an
         * eviction). */
        size_t hits = 0;
        /** In the recency list (inserted while a bound was active). */
        bool tracked = false;
        typename std::list<Key>::iterator pos{};
    };

    struct Shard
    {
        mutable std::mutex mutex;
        /** Mutable: lookup() refreshes recency/hit counts under the
         * shard lock. */
        mutable std::unordered_map<Key, Entry, Hash> map;
        /** Recency order, least-recently-used first; maintained only
         * when a max-entry bound is active. */
        mutable std::list<Key> order;
    };

    const Shard &
    shardFor(const Key &key) const
    {
        return shards_[Hash()(key) % NumShards];
    }
    Shard &
    shardFor(const Key &key)
    {
        return shards_[Hash()(key) % NumShards];
    }

    std::array<Shard, NumShards> shards_;
    size_t per_shard_cap_ = 0; ///< 0 = unbounded.
    mutable std::atomic<size_t> hits_{0};
    mutable std::atomic<size_t> misses_{0};
    mutable std::atomic<size_t> evictions_{0};
};

} // namespace scalehls

#endif // SCALEHLS_SUPPORT_CONCURRENT_CACHE_H
