/**
 * @file
 * A minimal JSON reader/writer for the scalehls-serve wire protocol
 * (newline-delimited JSON requests and responses) and for tests that
 * parse responses back. Supports objects, arrays, strings, numbers,
 * booleans and null — no comments, no trailing commas. Numbers are kept
 * as doubles (the protocol's integers are well within 2^53).
 */

#ifndef SCALEHLS_SUPPORT_JSON_H
#define SCALEHLS_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace scalehls {

/** One parsed JSON value. Object members keep the map's sorted order
 * (the protocol never depends on member order). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::map<std::string, JsonValue> object;
    std::vector<JsonValue> array;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    int64_t asInt() const { return static_cast<int64_t>(number); }

    /** The member of an object, or nullptr. */
    const JsonValue *
    get(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

/** Parse one JSON document; nullopt on any syntax error (including
 * trailing non-whitespace). */
std::optional<JsonValue> parseJson(const std::string &text);

/** Escape @p text for embedding inside a JSON string literal (adds no
 * surrounding quotes). */
std::string jsonEscape(const std::string &text);

} // namespace scalehls

#endif // SCALEHLS_SUPPORT_JSON_H
