/**
 * @file
 * A small fixed-size thread pool (no work stealing): a mutex-protected
 * task queue drained by worker threads, plus a blocking parallelFor that
 * the caller participates in. Built for the parallel DSE evaluation
 * pipeline, where each task is a coarse-grained materialize+estimate job
 * and queue contention is negligible next to task cost.
 */

#ifndef SCALEHLS_SUPPORT_THREAD_POOL_H
#define SCALEHLS_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scalehls {

class ThreadPool
{
  public:
    /** @p num_threads worker threads; 0 means hardware_concurrency().
     * A pool of size 1 runs everything inline on the calling thread (no
     * worker is spawned), so single-threaded runs stay deterministic and
     * debuggable. */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute work (>= 1, counting the caller for
     * inline pools). */
    unsigned size() const { return size_; }

    /** Run fn(0..n-1), blocking until all iterations finish. Iterations
     * are handed out through an atomic counter; the calling thread works
     * alongside the pool. The first exception thrown by any iteration is
     * rethrown on the caller after all iterations drain. */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** Enqueue one task for asynchronous execution (inline pools run it
     * immediately, so a throwing task throws here). Use waitIdle() to
     * join. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. The first
     * exception thrown by a submitted task since the last waitIdle() is
     * rethrown here (inline pools throw from submit() instead). */
    void waitIdle();

  private:
    void workerLoop();

    unsigned size_ = 1;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable idle_;
    size_t in_flight_ = 0;
    bool shutdown_ = false;
    std::exception_ptr pending_error_;
};

/** The default DSE worker count: hardware_concurrency, at least 1. */
unsigned defaultThreadCount();

} // namespace scalehls

#endif // SCALEHLS_SUPPORT_THREAD_POOL_H
