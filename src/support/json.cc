#include "support/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace scalehls {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue>
    parse()
    {
        JsonValue value;
        if (!parseValue(value))
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size())
            return std::nullopt; // Trailing garbage.
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"' ||
                !parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object[key] = std::move(value);
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            char esc = text_[pos_++];
            switch (esc) {
            case '"':
            case '\\':
            case '/':
                out.push_back(esc);
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                // \uXXXX: decoded to UTF-8 for the BMP; the protocol's
                // identifiers are ASCII so this path is exercised only
                // by hostile input, which must still not crash.
                if (pos_ + 4 > text_.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default:
                return false;
            }
        }
        return false; // Unterminated.
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return false;
        out.kind = JsonValue::Kind::Number;
        out.number = value;
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

} // namespace scalehls
