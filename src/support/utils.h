/**
 * @file
 * Small shared utilities: integer math helpers, diagnostics, and string
 * formatting used across the ScaleHLS reproduction.
 */

#ifndef SCALEHLS_SUPPORT_UTILS_H
#define SCALEHLS_SUPPORT_UTILS_H

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalehls {

/** Error thrown for user-facing failures (bad input program, illegal pass
 * parameters). Mirrors the fatal()/panic() split of simulator codebases:
 * FatalError is the user's fault, assert is ours. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raise a FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Ceiling division for non-negative integers. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Floor division that is correct for negative numerators. */
constexpr int64_t
floorDiv(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** Euclidean-style modulo with a non-negative result for positive modulus. */
constexpr int64_t
euclidMod(int64_t a, int64_t b)
{
    int64_t r = a % b;
    if (r < 0)
        r += (b < 0) ? -b : b;
    return r;
}

/** All positive divisors of n in ascending order. */
std::vector<int64_t> divisorsOf(int64_t n);

/** Round n up to the next power of two (n >= 1). */
int64_t nextPow2(int64_t n);

/** True if n is a power of two. */
constexpr bool
isPow2(int64_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

/** Join the elements of a container with a separator using operator<<. */
template <typename Container>
std::string
join(const Container &c, const std::string &sep)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &v : c) {
        if (!first)
            os << sep;
        os << v;
        first = false;
    }
    return os.str();
}

} // namespace scalehls

#endif // SCALEHLS_SUPPORT_UTILS_H
