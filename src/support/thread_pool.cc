#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <system_error>

namespace scalehls {

unsigned
defaultThreadCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    size_ = num_threads == 0 ? defaultThreadCount() : num_threads;
    // Workers beyond a few hundred never help this workload; clamping
    // also keeps absurd requests from exhausting OS thread limits.
    constexpr unsigned kMaxThreads = 256;
    size_ = std::min(size_, kMaxThreads);
    // size_ == 1: inline execution, no workers.
    for (unsigned i = 1; i < size_; ++i) {
        try {
            workers_.emplace_back([this] { workerLoop(); });
        } catch (const std::system_error &) {
            // Thread limit hit: run with what we managed to spawn.
            break;
        }
    }
    size_ = static_cast<unsigned>(workers_.size()) + 1;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    task_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock,
                             [this] { return shutdown_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // Shutdown with a drained queue.
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        std::exception_ptr caught;
        try {
            task();
        } catch (...) {
            caught = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (caught && !pending_error_)
                pending_error_ = caught;
            if (--in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void
ThreadPool::waitIdle()
{
    if (workers_.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
    if (pending_error_) {
        std::exception_ptr error = pending_error_;
        pending_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Shared iteration counter; caller + workers race to grab indices. A
    // per-call latch (not pool idleness) gates completion, so a nested
    // parallelFor from inside a pool task cannot deadlock: the caller's
    // own drain() completes every iteration even if no helper ever runs.
    struct State
    {
        std::atomic<size_t> next{0};
        std::mutex mutex;
        std::condition_variable done;
        size_t remaining;
        std::exception_ptr error;
    };
    auto state = std::make_shared<State>();
    state->remaining = n;

    auto drain = [state, n, &fn] {
        for (;;) {
            size_t i = state->next.fetch_add(1);
            if (i >= n)
                return;
            std::exception_ptr caught;
            try {
                fn(i);
            } catch (...) {
                caught = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(state->mutex);
            if (caught && !state->error)
                state->error = caught;
            if (--state->remaining == 0)
                state->done.notify_all();
        }
    };

    // One helper task per worker is enough: each drains the counter.
    // Helpers capture `state` by value but `fn` by reference; the latch
    // wait below keeps both alive until every iteration has finished.
    size_t helpers = std::min<size_t>(workers_.size(), n - 1);
    for (size_t i = 0; i < helpers; ++i)
        submit(drain);
    drain();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->remaining == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace scalehls
