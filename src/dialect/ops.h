/**
 * @file
 * Dialect definitions: op names, creation helpers and typed accessor
 * wrappers for the builtin, func, arith, memref, affine, scf and hlscpp
 * dialects. The graph dialect lives in dialect/graph_ops.h.
 */

#ifndef SCALEHLS_DIALECT_OPS_H
#define SCALEHLS_DIALECT_OPS_H

#include <optional>

#include "ir/builder.h"
#include "ir/ir.h"

namespace scalehls {
namespace ops {

// builtin / func
inline constexpr std::string_view Module = "builtin.module";
inline constexpr std::string_view Func = "func.func";
inline constexpr std::string_view Return = "func.return";
inline constexpr std::string_view Call = "func.call";

// arith
inline constexpr std::string_view Constant = "arith.constant";
inline constexpr std::string_view AddF = "arith.addf";
inline constexpr std::string_view SubF = "arith.subf";
inline constexpr std::string_view MulF = "arith.mulf";
inline constexpr std::string_view DivF = "arith.divf";
inline constexpr std::string_view MaxF = "arith.maxf";
inline constexpr std::string_view MinF = "arith.minf";
inline constexpr std::string_view NegF = "arith.negf";
inline constexpr std::string_view AddI = "arith.addi";
inline constexpr std::string_view SubI = "arith.subi";
inline constexpr std::string_view MulI = "arith.muli";
inline constexpr std::string_view DivSI = "arith.divsi";
inline constexpr std::string_view RemSI = "arith.remsi";
inline constexpr std::string_view CmpI = "arith.cmpi";
inline constexpr std::string_view CmpF = "arith.cmpf";
inline constexpr std::string_view Select = "arith.select";
inline constexpr std::string_view SIToFP = "arith.sitofp";
inline constexpr std::string_view FPToSI = "arith.fptosi";
inline constexpr std::string_view IndexCast = "arith.index_cast";
inline constexpr std::string_view Exp = "math.exp";

// memref
inline constexpr std::string_view Alloc = "memref.alloc";
inline constexpr std::string_view MemLoad = "memref.load";
inline constexpr std::string_view MemStore = "memref.store";
inline constexpr std::string_view MemCopy = "memref.copy";

// affine
inline constexpr std::string_view AffineFor = "affine.for";
inline constexpr std::string_view AffineIf = "affine.if";
inline constexpr std::string_view AffineLoad = "affine.load";
inline constexpr std::string_view AffineStore = "affine.store";

// scf
inline constexpr std::string_view ScfFor = "scf.for";
inline constexpr std::string_view ScfIf = "scf.if";

} // namespace ops

/** @name Attribute keys */
///@{
inline constexpr const char *kSymName = "sym_name";
inline constexpr const char *kCallee = "callee";
inline constexpr const char *kValue = "value";
inline constexpr const char *kPredicate = "predicate";
inline constexpr const char *kLowerMap = "lower_map";
inline constexpr const char *kUpperMap = "upper_map";
inline constexpr const char *kLbCount = "lb_count";
inline constexpr const char *kStep = "step";
inline constexpr const char *kMap = "map";
inline constexpr const char *kCondition = "condition";
inline constexpr const char *kTopFunc = "hlscpp.top_func";
inline constexpr const char *kFuncDirective = "hlscpp.func_directive";
inline constexpr const char *kLoopDirective = "hlscpp.loop_directive";
inline constexpr const char *kDataflowStage = "hlscpp.dataflow_stage";
inline constexpr const char *kPointLoop = "hlscpp.point_loop";
///@}

/** Two-operand region-free ops whose operand order is irrelevant to
 * estimation: latency, dependence edges and resource kind are symmetric
 * in the operands. The canonicalizing band digest (operand refs fed in
 * sorted order) and commutative-aware CSE must agree on this exact set —
 * the digest treats swapped-operand ops as equal, so CSE must merge them
 * too, or two digest-equal bands could clean up differently. */
inline bool
isCommutativeOp(const Operation *op)
{
    return op->numOperands() == 2 && op->numRegions() == 0 &&
           (op->is(ops::AddF) || op->is(ops::MulF) ||
            op->is(ops::MaxF) || op->is(ops::MinF) ||
            op->is(ops::AddI) || op->is(ops::MulI));
}

/** Integer/float comparison predicates (subset of MLIR's). */
enum class CmpPredicate { EQ, NE, LT, LE, GT, GE };

/** Attribute encoding for a predicate. */
std::string cmpPredicateName(CmpPredicate pred);
CmpPredicate cmpPredicateFromName(const std::string &name);

//
// builtin / func helpers
//

/** Create an empty module (one region, one block), detached. */
std::unique_ptr<Operation> createModule();

/** Create a function inside @p module with block arguments of the given
 * types. The body gets a trailing func.return automatically. */
Operation *createFunc(Operation *module, const std::string &name,
                      const std::vector<Type> &arg_types);

/** The function's entry (and only) block. */
Block *funcBody(Operation *func);

/** Look up a function by symbol name in a module; nullptr if absent. */
Operation *lookupFunc(Operation *module, const std::string &name);

/** The name of a function. */
std::string funcName(Operation *func);

/** The single top function of a module (attr hlscpp.top_func), or the
 * first function if none is marked. */
Operation *getTopFunc(Operation *module);

//
// arith helpers
//

Operation *createConstantIndex(OpBuilder &b, int64_t value);
Operation *createConstantInt(OpBuilder &b, int64_t value, Type type);
Operation *createConstantFloat(OpBuilder &b, double value, Type type);
/** Generic same-type binary arithmetic op. */
Operation *createBinary(OpBuilder &b, std::string_view name, Value *lhs,
                        Value *rhs);
Operation *createCmpI(OpBuilder &b, CmpPredicate pred, Value *lhs,
                      Value *rhs);
Operation *createCmpF(OpBuilder &b, CmpPredicate pred, Value *lhs,
                      Value *rhs);
Operation *createSelect(OpBuilder &b, Value *cond, Value *true_value,
                        Value *false_value);

/** If the op is an arith.constant with integer/index type, its value. */
std::optional<int64_t> getConstantIntValue(Value *v);

//
// memref helpers
//

Operation *createAlloc(OpBuilder &b, Type memref_type);
Operation *createMemLoad(OpBuilder &b, Value *memref,
                         const std::vector<Value *> &indices);
Operation *createMemStore(OpBuilder &b, Value *value, Value *memref,
                          const std::vector<Value *> &indices);
Operation *createMemCopy(OpBuilder &b, Value *src, Value *dst);

//
// affine.for
//

/** Typed wrapper around an affine.for operation.
 *
 * Bounds are affine maps applied to operand values: the loop iterates
 * from max(lower_map(lb_operands)) to min(upper_map(ub_operands))
 * (exclusive) with a constant positive step. Operands are stored with the
 * lower-bound operands first; kLbCount splits the list. */
class AffineForOp
{
  public:
    explicit AffineForOp(Operation *op) : op_(op)
    {
        assert(isa(op, ops::AffineFor));
    }
    static bool classof(const Operation *op)
    {
        return isa(op, ops::AffineFor);
    }

    Operation *op() const { return op_; }

    AffineMap lowerBoundMap() const
    {
        return op_->attr(kLowerMap).getAffineMap();
    }
    AffineMap upperBoundMap() const
    {
        return op_->attr(kUpperMap).getAffineMap();
    }
    unsigned numLbOperands() const
    {
        return static_cast<unsigned>(op_->attr(kLbCount).getInt());
    }
    std::vector<Value *> lowerBoundOperands() const;
    std::vector<Value *> upperBoundOperands() const;
    int64_t step() const { return op_->attr(kStep).getInt(); }

    void setLowerBound(AffineMap map, const std::vector<Value *> &operands);
    void setUpperBound(AffineMap map, const std::vector<Value *> &operands);
    void setStep(int64_t step) { op_->setAttr(kStep, step); }

    Block *body() const { return &op_->region(0).front(); }
    Value *inductionVar() const { return body()->argument(0); }

    /** Constant bound values when the bound map is a single constant. */
    std::optional<int64_t> constantLowerBound() const;
    std::optional<int64_t> constantUpperBound() const;
    bool hasConstantBounds() const
    {
        return constantLowerBound() && constantUpperBound();
    }
    /** Trip count for constant bounds. */
    std::optional<int64_t> constantTripCount() const;

    LoopDirective directive() const;
    void setDirective(const LoopDirective &d)
    {
        op_->setAttr(kLoopDirective, d);
    }

  private:
    Operation *op_;
};

/** Create an affine.for with affine-map bounds. */
AffineForOp createAffineFor(OpBuilder &b, AffineMap lower_map,
                            std::vector<Value *> lb_operands,
                            AffineMap upper_map,
                            std::vector<Value *> ub_operands,
                            int64_t step = 1);
/** Create an affine.for with constant bounds [lb, ub). */
AffineForOp createAffineFor(OpBuilder &b, int64_t lb, int64_t ub,
                            int64_t step = 1);

//
// affine.if
//

/** Typed wrapper around an affine.if operation (condition is an IntegerSet
 * applied to the op's operands; region 0 = then, region 1 = else, which may
 * be empty). affine.if has no results in this project. */
class AffineIfOp
{
  public:
    explicit AffineIfOp(Operation *op) : op_(op)
    {
        assert(isa(op, ops::AffineIf));
    }
    static bool classof(const Operation *op)
    {
        return isa(op, ops::AffineIf);
    }

    Operation *op() const { return op_; }

    IntegerSet condition() const
    {
        return op_->attr(kCondition).getIntegerSet();
    }
    void setCondition(const IntegerSet &set)
    {
        op_->setAttr(kCondition, set);
    }
    std::vector<Value *> conditionOperands() const { return op_->operands(); }

    Block *thenBlock() const { return &op_->region(0).front(); }
    bool hasElse() const { return !op_->region(1).empty(); }
    Block *elseBlock() const
    {
        return hasElse() ? &op_->region(1).front() : nullptr;
    }
    Block *addElseBlock() { return op_->region(1).addBlock(); }

  private:
    Operation *op_;
};

AffineIfOp createAffineIf(OpBuilder &b, IntegerSet condition,
                          std::vector<Value *> operands,
                          bool with_else = false);

//
// affine.load / affine.store
//

/** affine.load: operand 0 = memref, remaining operands feed the access map.
 * affine.store: operand 0 = stored value, operand 1 = memref. */
class AffineLoadOp
{
  public:
    explicit AffineLoadOp(Operation *op) : op_(op)
    {
        assert(isa(op, ops::AffineLoad));
    }
    Operation *op() const { return op_; }
    Value *memref() const { return op_->operand(0); }
    AffineMap map() const { return op_->attr(kMap).getAffineMap(); }
    std::vector<Value *> mapOperands() const;
    Value *result() const { return op_->result(0); }

  private:
    Operation *op_;
};

class AffineStoreOp
{
  public:
    explicit AffineStoreOp(Operation *op) : op_(op)
    {
        assert(isa(op, ops::AffineStore));
    }
    Operation *op() const { return op_; }
    Value *value() const { return op_->operand(0); }
    Value *memref() const { return op_->operand(1); }
    AffineMap map() const { return op_->attr(kMap).getAffineMap(); }
    std::vector<Value *> mapOperands() const;

  private:
    Operation *op_;
};

Operation *createAffineLoad(OpBuilder &b, Value *memref, AffineMap map,
                            std::vector<Value *> map_operands);
Operation *createAffineStore(OpBuilder &b, Value *value, Value *memref,
                             AffineMap map,
                             std::vector<Value *> map_operands);

/** True for affine.load/store and memref.load/store. */
bool isMemoryAccess(const Operation *op);
/** True for affine.store / memref.store. */
bool isMemoryWrite(const Operation *op);
/** The accessed memref of any memory access op. */
Value *accessedMemRef(const Operation *op);

//
// scf
//

class ScfForOp
{
  public:
    explicit ScfForOp(Operation *op) : op_(op)
    {
        assert(isa(op, ops::ScfFor));
    }
    static bool classof(const Operation *op) { return isa(op, ops::ScfFor); }

    Operation *op() const { return op_; }
    Value *lowerBound() const { return op_->operand(0); }
    Value *upperBound() const { return op_->operand(1); }
    Value *step() const { return op_->operand(2); }
    Block *body() const { return &op_->region(0).front(); }
    Value *inductionVar() const { return body()->argument(0); }

  private:
    Operation *op_;
};

ScfForOp createScfFor(OpBuilder &b, Value *lb, Value *ub, Value *step);
/** scf.if: operand 0 = i1 condition; region 0 then, region 1 else. */
Operation *createScfIf(OpBuilder &b, Value *cond, bool with_else = false);

//
// hlscpp directive helpers
//

/** The loop directive of a for op (default-constructed if absent). */
LoopDirective getLoopDirective(const Operation *op);
void setLoopDirective(Operation *op, const LoopDirective &d);
/** The function directive (default-constructed if absent). */
FuncDirective getFuncDirective(const Operation *op);
void setFuncDirective(Operation *op, const FuncDirective &d);
/** Mark / query the top function. */
void setTopFunc(Operation *func, bool is_top = true);
bool isTopFunc(const Operation *func);

/** True for any loop op (affine.for or scf.for). */
inline bool
isLoop(const Operation *op)
{
    return isa(op, ops::AffineFor) || isa(op, ops::ScfFor);
}

} // namespace scalehls

#endif // SCALEHLS_DIALECT_OPS_H
