#include "dialect/ops.h"

#include "support/utils.h"

namespace scalehls {

std::string
cmpPredicateName(CmpPredicate pred)
{
    switch (pred) {
      case CmpPredicate::EQ:
        return "eq";
      case CmpPredicate::NE:
        return "ne";
      case CmpPredicate::LT:
        return "lt";
      case CmpPredicate::LE:
        return "le";
      case CmpPredicate::GT:
        return "gt";
      case CmpPredicate::GE:
        return "ge";
    }
    return "eq";
}

CmpPredicate
cmpPredicateFromName(const std::string &name)
{
    if (name == "eq")
        return CmpPredicate::EQ;
    if (name == "ne")
        return CmpPredicate::NE;
    if (name == "lt")
        return CmpPredicate::LT;
    if (name == "le")
        return CmpPredicate::LE;
    if (name == "gt")
        return CmpPredicate::GT;
    if (name == "ge")
        return CmpPredicate::GE;
    fatal("unknown cmp predicate: " + name);
}

//
// builtin / func
//

std::unique_ptr<Operation>
createModule()
{
    auto module = Operation::create(std::string(ops::Module), {}, {}, {}, 1);
    module->region(0).addBlock();
    return module;
}

Operation *
createFunc(Operation *module, const std::string &name,
           const std::vector<Type> &arg_types)
{
    assert(isa(module, ops::Module));
    auto func = Operation::create(std::string(ops::Func), {}, {},
                                  {{kSymName, Attribute(name)}}, 1);
    Block *body = func->region(0).addBlock();
    for (const Type &t : arg_types)
        body->addArgument(t);
    body->pushBack(
        Operation::create(std::string(ops::Return), {}, {}, {}, 0));
    return module->region(0).front().pushBack(std::move(func));
}

Block *
funcBody(Operation *func)
{
    assert(isa(func, ops::Func));
    return &func->region(0).front();
}

Operation *
lookupFunc(Operation *module, const std::string &name)
{
    for (auto &op : module->region(0).front().ops())
        if (op->is(ops::Func) && op->attr(kSymName).getString() == name)
            return op.get();
    return nullptr;
}

std::string
funcName(Operation *func)
{
    return func->attr(kSymName).getString();
}

Operation *
getTopFunc(Operation *module)
{
    Operation *first = nullptr;
    for (auto &op : module->region(0).front().ops()) {
        if (!op->is(ops::Func))
            continue;
        if (!first)
            first = op.get();
        if (isTopFunc(op.get()))
            return op.get();
    }
    return first;
}

//
// arith
//

Operation *
createConstantIndex(OpBuilder &b, int64_t value)
{
    return createConstantInt(b, value, Type::index());
}

Operation *
createConstantInt(OpBuilder &b, int64_t value, Type type)
{
    return b.create(std::string(ops::Constant), {type}, {},
                    {{kValue, Attribute(value)}});
}

Operation *
createConstantFloat(OpBuilder &b, double value, Type type)
{
    return b.create(std::string(ops::Constant), {type}, {},
                    {{kValue, Attribute(value)}});
}

Operation *
createBinary(OpBuilder &b, std::string_view name, Value *lhs, Value *rhs)
{
    assert(lhs->type() == rhs->type() && "binary op operand type mismatch");
    return b.create(std::string(name), {lhs->type()}, {lhs, rhs});
}

Operation *
createCmpI(OpBuilder &b, CmpPredicate pred, Value *lhs, Value *rhs)
{
    return b.create(std::string(ops::CmpI), {Type::i1()}, {lhs, rhs},
                    {{kPredicate, Attribute(cmpPredicateName(pred))}});
}

Operation *
createCmpF(OpBuilder &b, CmpPredicate pred, Value *lhs, Value *rhs)
{
    return b.create(std::string(ops::CmpF), {Type::i1()}, {lhs, rhs},
                    {{kPredicate, Attribute(cmpPredicateName(pred))}});
}

Operation *
createSelect(OpBuilder &b, Value *cond, Value *true_value,
             Value *false_value)
{
    return b.create(std::string(ops::Select), {true_value->type()},
                    {cond, true_value, false_value});
}

std::optional<int64_t>
getConstantIntValue(Value *v)
{
    Operation *def = v->definingOp();
    if (!isa(def, ops::Constant))
        return std::nullopt;
    Attribute attr = def->attr(kValue);
    if (!attr.is<int64_t>())
        return std::nullopt;
    return attr.getInt();
}

//
// memref
//

Operation *
createAlloc(OpBuilder &b, Type memref_type)
{
    assert(memref_type.isMemRef());
    return b.create(std::string(ops::Alloc), {memref_type}, {});
}

Operation *
createMemLoad(OpBuilder &b, Value *memref,
              const std::vector<Value *> &indices)
{
    std::vector<Value *> operands = {memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(std::string(ops::MemLoad),
                    {memref->type().elementType()}, std::move(operands));
}

Operation *
createMemStore(OpBuilder &b, Value *value, Value *memref,
               const std::vector<Value *> &indices)
{
    std::vector<Value *> operands = {value, memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(std::string(ops::MemStore), {}, std::move(operands));
}

Operation *
createMemCopy(OpBuilder &b, Value *src, Value *dst)
{
    return b.create(std::string(ops::MemCopy), {}, {src, dst});
}

//
// affine.for
//

std::vector<Value *>
AffineForOp::lowerBoundOperands() const
{
    unsigned n = numLbOperands();
    std::vector<Value *> out;
    for (unsigned i = 0; i < n; ++i)
        out.push_back(op_->operand(i));
    return out;
}

std::vector<Value *>
AffineForOp::upperBoundOperands() const
{
    std::vector<Value *> out;
    for (unsigned i = numLbOperands(); i < op_->numOperands(); ++i)
        out.push_back(op_->operand(i));
    return out;
}

void
AffineForOp::setLowerBound(AffineMap map,
                           const std::vector<Value *> &operands)
{
    auto ub_operands = upperBoundOperands();
    std::vector<Value *> all = operands;
    all.insert(all.end(), ub_operands.begin(), ub_operands.end());
    op_->setOperands(all);
    op_->setAttr(kLowerMap, map);
    op_->setAttr(kLbCount, static_cast<int64_t>(operands.size()));
}

void
AffineForOp::setUpperBound(AffineMap map,
                           const std::vector<Value *> &operands)
{
    auto lb_operands = lowerBoundOperands();
    std::vector<Value *> all = lb_operands;
    all.insert(all.end(), operands.begin(), operands.end());
    op_->setOperands(all);
    op_->setAttr(kUpperMap, map);
}

std::optional<int64_t>
AffineForOp::constantLowerBound() const
{
    AffineMap map = lowerBoundMap();
    if (map.numResults() == 1 && map.isConstant())
        return map.singleConstantResult();
    return std::nullopt;
}

std::optional<int64_t>
AffineForOp::constantUpperBound() const
{
    AffineMap map = upperBoundMap();
    if (map.numResults() == 1 && map.isConstant())
        return map.singleConstantResult();
    return std::nullopt;
}

std::optional<int64_t>
AffineForOp::constantTripCount() const
{
    auto lb = constantLowerBound();
    auto ub = constantUpperBound();
    if (!lb || !ub)
        return std::nullopt;
    if (*ub <= *lb)
        return 0;
    return ceilDiv(*ub - *lb, step());
}

LoopDirective
AffineForOp::directive() const
{
    return getLoopDirective(op_);
}

AffineForOp
createAffineFor(OpBuilder &b, AffineMap lower_map,
                std::vector<Value *> lb_operands, AffineMap upper_map,
                std::vector<Value *> ub_operands, int64_t step)
{
    assert(step > 0 && "loop step must be positive");
    std::vector<Value *> operands = lb_operands;
    operands.insert(operands.end(), ub_operands.begin(), ub_operands.end());
    AttrMap attrs;
    attrs[kLowerMap] = Attribute(std::move(lower_map));
    attrs[kUpperMap] = Attribute(std::move(upper_map));
    attrs[kLbCount] = Attribute(static_cast<int64_t>(lb_operands.size()));
    attrs[kStep] = Attribute(step);
    Operation *op = b.create(std::string(ops::AffineFor), {},
                             std::move(operands), std::move(attrs), 1);
    Block *body = op->region(0).addBlock();
    body->addArgument(Type::index());
    return AffineForOp(op);
}

AffineForOp
createAffineFor(OpBuilder &b, int64_t lb, int64_t ub, int64_t step)
{
    return createAffineFor(b, AffineMap::constant({lb}), {},
                           AffineMap::constant({ub}), {}, step);
}

//
// affine.if
//

AffineIfOp
createAffineIf(OpBuilder &b, IntegerSet condition,
               std::vector<Value *> operands, bool with_else)
{
    Operation *op = b.create(
        std::string(ops::AffineIf), {}, std::move(operands),
        {{kCondition, Attribute(std::move(condition))}}, 2);
    op->region(0).addBlock();
    if (with_else)
        op->region(1).addBlock();
    return AffineIfOp(op);
}

//
// affine.load / affine.store
//

std::vector<Value *>
AffineLoadOp::mapOperands() const
{
    std::vector<Value *> out;
    for (unsigned i = 1; i < op_->numOperands(); ++i)
        out.push_back(op_->operand(i));
    return out;
}

std::vector<Value *>
AffineStoreOp::mapOperands() const
{
    std::vector<Value *> out;
    for (unsigned i = 2; i < op_->numOperands(); ++i)
        out.push_back(op_->operand(i));
    return out;
}

Operation *
createAffineLoad(OpBuilder &b, Value *memref, AffineMap map,
                 std::vector<Value *> map_operands)
{
    assert(memref->type().isMemRef());
    assert(map.numResults() == memref->type().rank() &&
           "access map arity must match memref rank");
    std::vector<Value *> operands = {memref};
    operands.insert(operands.end(), map_operands.begin(), map_operands.end());
    return b.create(std::string(ops::AffineLoad),
                    {memref->type().elementType()}, std::move(operands),
                    {{kMap, Attribute(std::move(map))}});
}

Operation *
createAffineStore(OpBuilder &b, Value *value, Value *memref, AffineMap map,
                  std::vector<Value *> map_operands)
{
    assert(memref->type().isMemRef());
    assert(map.numResults() == memref->type().rank());
    std::vector<Value *> operands = {value, memref};
    operands.insert(operands.end(), map_operands.begin(), map_operands.end());
    return b.create(std::string(ops::AffineStore), {}, std::move(operands),
                    {{kMap, Attribute(std::move(map))}});
}

bool
isMemoryAccess(const Operation *op)
{
    return isa(op, ops::AffineLoad) || isa(op, ops::AffineStore) ||
           isa(op, ops::MemLoad) || isa(op, ops::MemStore);
}

bool
isMemoryWrite(const Operation *op)
{
    return isa(op, ops::AffineStore) || isa(op, ops::MemStore);
}

Value *
accessedMemRef(const Operation *op)
{
    assert(isMemoryAccess(op));
    if (isa(op, ops::AffineLoad) || isa(op, ops::MemLoad))
        return op->operand(0);
    return op->operand(1);
}

//
// scf
//

ScfForOp
createScfFor(OpBuilder &b, Value *lb, Value *ub, Value *step)
{
    Operation *op = b.create(std::string(ops::ScfFor), {}, {lb, ub, step},
                             {}, 1);
    Block *body = op->region(0).addBlock();
    body->addArgument(Type::index());
    return ScfForOp(op);
}

Operation *
createScfIf(OpBuilder &b, Value *cond, bool with_else)
{
    Operation *op = b.create(std::string(ops::ScfIf), {}, {cond}, {}, 2);
    op->region(0).addBlock();
    if (with_else)
        op->region(1).addBlock();
    return op;
}

//
// hlscpp
//

LoopDirective
getLoopDirective(const Operation *op)
{
    Attribute attr = op->attr(kLoopDirective);
    return attr.is<LoopDirective>() ? attr.getLoopDirective()
                                    : LoopDirective{};
}

void
setLoopDirective(Operation *op, const LoopDirective &d)
{
    op->setAttr(kLoopDirective, d);
}

FuncDirective
getFuncDirective(const Operation *op)
{
    Attribute attr = op->attr(kFuncDirective);
    return attr.is<FuncDirective>() ? attr.getFuncDirective()
                                    : FuncDirective{};
}

void
setFuncDirective(Operation *op, const FuncDirective &d)
{
    op->setAttr(kFuncDirective, d);
}

void
setTopFunc(Operation *func, bool is_top)
{
    func->setAttr(kTopFunc, is_top);
}

bool
isTopFunc(const Operation *func)
{
    Attribute attr = func->attr(kTopFunc);
    return attr.is<bool>() && attr.getBool();
}

} // namespace scalehls
