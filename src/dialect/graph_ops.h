/**
 * @file
 * The graph dialect: tensor-level operations standing in for the third-party
 * onnx dialect of the paper. Operations consume and produce tensor-typed
 * values, so graph-level passes can use simple define-use analysis
 * (paper Section IV-A).
 */

#ifndef SCALEHLS_DIALECT_GRAPH_OPS_H
#define SCALEHLS_DIALECT_GRAPH_OPS_H

#include "dialect/ops.h"

namespace scalehls {
namespace ops {

inline constexpr std::string_view GraphWeight = "graph.weight";
inline constexpr std::string_view GraphConv2D = "graph.conv2d";
inline constexpr std::string_view GraphDWConv2D = "graph.dwconv2d";
inline constexpr std::string_view GraphDense = "graph.dense";
inline constexpr std::string_view GraphRelu = "graph.relu";
inline constexpr std::string_view GraphAdd = "graph.add";
inline constexpr std::string_view GraphMaxPool = "graph.maxpool";
inline constexpr std::string_view GraphAvgPool = "graph.avgpool";
inline constexpr std::string_view GraphFlatten = "graph.flatten";
inline constexpr std::string_view GraphCopy = "graph.copy";

} // namespace ops

/** @name Graph op attribute keys */
///@{
inline constexpr const char *kStrides = "strides";
inline constexpr const char *kPads = "pads";
inline constexpr const char *kKernel = "kernel";
///@}

/** True for any graph-dialect op. */
bool isGraphOp(const Operation *op);

/** Approximate arithmetic operation count (multiply+add counted separately,
 * as in the DSP-efficiency metric) of a graph op; 0 for non-compute ops. */
int64_t graphOpCount(const Operation *op);

/** Weight placeholder: a constant tensor of the given shape. */
Operation *createWeight(OpBuilder &b, std::vector<int64_t> shape,
                        Type element = Type::f32());

/** 2-D convolution in NCHW layout. Weight is [outC, inC, kH, kW]. The
 * result shape is inferred from strides/pads. */
Operation *createConv2D(OpBuilder &b, Value *input, Value *weight,
                        int64_t stride = 1, int64_t pad = 0);

/** Depthwise 2-D convolution; weight is [C, 1, kH, kW]. */
Operation *createDWConv2D(OpBuilder &b, Value *input, Value *weight,
                          int64_t stride = 1, int64_t pad = 0);

/** Fully connected layer: input [N, I], weight [O, I] -> [N, O]. */
Operation *createDense(OpBuilder &b, Value *input, Value *weight);

Operation *createRelu(OpBuilder &b, Value *input);
Operation *createGraphAdd(OpBuilder &b, Value *lhs, Value *rhs);
Operation *createMaxPool(OpBuilder &b, Value *input, int64_t kernel,
                         int64_t stride);
Operation *createAvgPool(OpBuilder &b, Value *input, int64_t kernel,
                         int64_t stride);
Operation *createFlatten(OpBuilder &b, Value *input);
/** Copy node inserted by dataflow legalization (paper Fig. 4c). */
Operation *createGraphCopy(OpBuilder &b, Value *input);

} // namespace scalehls

#endif // SCALEHLS_DIALECT_GRAPH_OPS_H
