#include "dialect/graph_ops.h"

#include "support/utils.h"

namespace scalehls {

bool
isGraphOp(const Operation *op)
{
    return op && op->dialect() == "graph";
}

namespace {

/** Output spatial size for a conv/pool dimension. */
int64_t
convOutSize(int64_t in, int64_t kernel, int64_t stride, int64_t pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace

int64_t
graphOpCount(const Operation *op)
{
    if (!isGraphOp(op))
        return 0;
    if (op->is(ops::GraphConv2D)) {
        const auto &out = op->result(0)->type().shape();
        const auto &w = op->operand(1)->type().shape();
        // 2 ops (mul + add) per MAC.
        return 2 * out[0] * out[1] * out[2] * out[3] * w[1] * w[2] * w[3];
    }
    if (op->is(ops::GraphDWConv2D)) {
        const auto &out = op->result(0)->type().shape();
        const auto &w = op->operand(1)->type().shape();
        return 2 * out[0] * out[1] * out[2] * out[3] * w[2] * w[3];
    }
    if (op->is(ops::GraphDense)) {
        const auto &out = op->result(0)->type().shape();
        const auto &w = op->operand(1)->type().shape();
        return 2 * out[0] * out[1] * w[1];
    }
    if (op->is(ops::GraphRelu) || op->is(ops::GraphAdd)) {
        return op->result(0)->type().numElements();
    }
    if (op->is(ops::GraphMaxPool) || op->is(ops::GraphAvgPool)) {
        int64_t k = op->attr(kKernel).getInt();
        return op->result(0)->type().numElements() * k * k;
    }
    return 0;
}

Operation *
createWeight(OpBuilder &b, std::vector<int64_t> shape, Type element)
{
    Type t = Type::tensor(std::move(shape), element);
    return b.create(std::string(ops::GraphWeight), {t}, {});
}

Operation *
createConv2D(OpBuilder &b, Value *input, Value *weight, int64_t stride,
             int64_t pad)
{
    const auto &in = input->type().shape();
    const auto &w = weight->type().shape();
    assert(in.size() == 4 && w.size() == 4 && "conv2d expects NCHW tensors");
    assert(in[1] == w[1] && "conv2d channel mismatch");
    std::vector<int64_t> out = {in[0], w[0],
                                convOutSize(in[2], w[2], stride, pad),
                                convOutSize(in[3], w[3], stride, pad)};
    Type out_t = Type::tensor(out, input->type().elementType());
    return b.create(std::string(ops::GraphConv2D), {out_t}, {input, weight},
                    {{kStrides, Attribute(stride)},
                     {kPads, Attribute(pad)}});
}

Operation *
createDWConv2D(OpBuilder &b, Value *input, Value *weight, int64_t stride,
               int64_t pad)
{
    const auto &in = input->type().shape();
    const auto &w = weight->type().shape();
    assert(in.size() == 4 && w.size() == 4);
    assert(in[1] == w[0] && w[1] == 1 &&
           "depthwise weight must be [C,1,k,k]");
    std::vector<int64_t> out = {in[0], in[1],
                                convOutSize(in[2], w[2], stride, pad),
                                convOutSize(in[3], w[3], stride, pad)};
    Type out_t = Type::tensor(out, input->type().elementType());
    return b.create(std::string(ops::GraphDWConv2D), {out_t},
                    {input, weight},
                    {{kStrides, Attribute(stride)},
                     {kPads, Attribute(pad)}});
}

Operation *
createDense(OpBuilder &b, Value *input, Value *weight)
{
    const auto &in = input->type().shape();
    const auto &w = weight->type().shape();
    assert(in.size() == 2 && w.size() == 2 && in[1] == w[1] &&
           "dense expects [N,I] x [O,I]");
    Type out_t = Type::tensor({in[0], w[0]}, input->type().elementType());
    return b.create(std::string(ops::GraphDense), {out_t}, {input, weight});
}

Operation *
createRelu(OpBuilder &b, Value *input)
{
    return b.create(std::string(ops::GraphRelu), {input->type()}, {input});
}

Operation *
createGraphAdd(OpBuilder &b, Value *lhs, Value *rhs)
{
    assert(lhs->type() == rhs->type() && "graph.add shape mismatch");
    return b.create(std::string(ops::GraphAdd), {lhs->type()}, {lhs, rhs});
}

Operation *
createMaxPool(OpBuilder &b, Value *input, int64_t kernel, int64_t stride)
{
    const auto &in = input->type().shape();
    assert(in.size() == 4);
    std::vector<int64_t> out = {in[0], in[1],
                                convOutSize(in[2], kernel, stride, 0),
                                convOutSize(in[3], kernel, stride, 0)};
    Type out_t = Type::tensor(out, input->type().elementType());
    return b.create(std::string(ops::GraphMaxPool), {out_t}, {input},
                    {{kKernel, Attribute(kernel)},
                     {kStrides, Attribute(stride)}});
}

Operation *
createAvgPool(OpBuilder &b, Value *input, int64_t kernel, int64_t stride)
{
    const auto &in = input->type().shape();
    assert(in.size() == 4);
    std::vector<int64_t> out = {in[0], in[1],
                                convOutSize(in[2], kernel, stride, 0),
                                convOutSize(in[3], kernel, stride, 0)};
    Type out_t = Type::tensor(out, input->type().elementType());
    return b.create(std::string(ops::GraphAvgPool), {out_t}, {input},
                    {{kKernel, Attribute(kernel)},
                     {kStrides, Attribute(stride)}});
}

Operation *
createFlatten(OpBuilder &b, Value *input)
{
    const auto &in = input->type().shape();
    int64_t n = in.empty() ? 1 : in[0];
    int64_t rest = 1;
    for (unsigned i = 1; i < in.size(); ++i)
        rest *= in[i];
    Type out_t = Type::tensor({n, rest}, input->type().elementType());
    return b.create(std::string(ops::GraphFlatten), {out_t}, {input});
}

Operation *
createGraphCopy(OpBuilder &b, Value *input)
{
    return b.create(std::string(ops::GraphCopy), {input->type()}, {input});
}

} // namespace scalehls
