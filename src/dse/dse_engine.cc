#include "dse/dse_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>

#include "dse/pareto.h"

namespace scalehls {

std::vector<EvaluatedPoint>
DSEEngine::explore()
{
    evaluated_.clear();
    std::mt19937 rng(options_.seed);

    pool_ = std::make_unique<ThreadPool>(options_.numThreads);
    // Cross-point estimate cache: external if supplied, per-exploration
    // otherwise (unless disabled). Content-keyed, so it never changes
    // results — only how often the estimator re-walks identical IR.
    local_estimates_ = std::make_unique<EstimateCache>();
    options_.applyCacheBounds(*local_estimates_);
    EstimateCache *estimates = options_.sharedEstimates;
    if (!estimates && options_.crossPointCache)
        estimates = local_estimates_.get();
    // Cross-process warm start: the owner of the cache loads/saves the
    // snapshot. The engine owns only its per-exploration cache; an
    // injected sharedEstimates cache is persisted by whoever created it
    // (Compiler / tools), never here — loading it once per engine would
    // double-count and saving it concurrently would race.
    if (estimates == local_estimates_.get() &&
        !options_.cacheLoadPath.empty())
        loadEstimateCacheLogged(*estimates, options_.cacheLoadPath);
    estimates_in_use_ = estimates;
    size_t hits_before = estimates ? estimates->hits() : 0;
    size_t lookups_before = estimates ? estimates->lookups() : 0;
    size_t band_hits_before = estimates ? estimates->bandHits() : 0;
    size_t band_lookups_before =
        estimates ? estimates->bandLookups() : 0;
    size_t masked_before = estimates ? estimates->bandMaskedHits() : 0;
    size_t schedule_hits_before =
        estimates ? estimates->scheduleHits() : 0;
    size_t schedule_lookups_before =
        estimates ? estimates->scheduleLookups() : 0;
    size_t cross_band_before = estimates ? estimates->crossBandHits() : 0;

    EvaluatorOptions evaluator_options;
    evaluator_options.bandCache = options_.bandLevelCache;
    evaluator_options.partitionAwareKeys =
        options_.partitionAwareBandKeys;
    evaluator_options.incremental = options_.incrementalMaterialize;
    evaluator_options.planFirst = options_.planFirstEvaluation;
    evaluator_options.audit = options_.auditMode;
    evaluator_ = std::make_unique<CachingEvaluator>(
        space_, pool_.get(), estimates, evaluator_options);
    // Keep the winning module so finalization does not re-materialize
    // the point it just evaluated.
    evaluator_->retainBestModule(finalize_budget_);
    CachingEvaluator &evaluator = *evaluator_;
    SearchContext ctx(space_, evaluator, evaluated_, options_.batchSize);

    // Step 1: initial sampling, evaluated as one parallel batch. The
    // canonical seeds (the baseline schedule under each legalization
    // switch) guarantee a feasible frontier for the neighbor traversal
    // even when random tiles are mostly illegal.
    for (const DesignSpace::Point &seed : space_.canonicalSeedPoints())
        ctx.propose(seed);
    for (unsigned i = 0; i < options_.numInitialSamples; ++i)
        ctx.propose(space_.randomPoint(rng));
    ctx.flush();

    SearchStrategy::create(options_.strategy)
        ->run(ctx, rng, options_.maxIterations);

    materializations_ = evaluator.numMaterializations();
    full_materializations_ = evaluator.numFullMaterializations();
    fast_path_hits_ = evaluator.numFastPathHits();
    plan_composed_ = evaluator.numPlanComposed();
    overlay_materializations_ = evaluator.numOverlayMaterializations();
    plan_infeasible_ = evaluator.numPlanInfeasible();
    plan_mismatches_ = evaluator.numPlanMismatches();
    audit_checks_ = evaluator.numAuditChecks();
    audit_violations_ = evaluator.numAuditViolations();
    cross_band_hits_ =
        estimates ? estimates->crossBandHits() - cross_band_before : 0;
    cache_hits_ = evaluator.numCacheHits();
    estimate_hits_ = estimates ? estimates->hits() - hits_before : 0;
    estimate_lookups_ =
        estimates ? estimates->lookups() - lookups_before : 0;
    band_hits_ =
        estimates ? estimates->bandHits() - band_hits_before : 0;
    band_lookups_ =
        estimates ? estimates->bandLookups() - band_lookups_before : 0;
    band_masked_hits_ =
        estimates ? estimates->bandMaskedHits() - masked_before : 0;
    schedule_hits_ =
        estimates ? estimates->scheduleHits() - schedule_hits_before : 0;
    schedule_lookups_ =
        estimates ? estimates->scheduleLookups() - schedule_lookups_before
                  : 0;

    // Return the frontier sorted by latency. frontierIndices is already
    // ascending (latency, area, index); stable_sort keeps tie groups in
    // that deterministic order on every stdlib (an unstable sort could
    // scramble equal-latency members and change which one finalize()
    // picks first).
    std::vector<EvaluatedPoint> result;
    for (size_t idx : ctx.frontierIndices())
        result.push_back(evaluated_[idx]);
    std::stable_sort(result.begin(), result.end(),
                     [](const EvaluatedPoint &a, const EvaluatedPoint &b) {
                         return a.qor.latency < b.qor.latency;
                     });

    // Save-on-exit for the engine-owned cache (the exploration is where
    // the entries are born; materializeEvaluated afterwards adds little
    // and the snapshot stays valid either way — entries only accrete).
    if (estimates == local_estimates_.get() &&
        !options_.cacheSavePath.empty())
        saveEstimateCacheLogged(*estimates, options_.cacheSavePath);
    return result;
}

void
DSEOptions::applyCacheBounds(EstimateCache &cache) const
{
    if (estimateCacheTierCaps.any())
        cache.setTierMaxEntries(estimateCacheTierCaps);
    else if (estimateCacheCap != 0)
        cache.setMaxEntries(estimateCacheCap);
}

std::vector<FrontierPoint>
retainFrontier(const DesignSpace &space,
               const std::vector<EvaluatedPoint> &frontier)
{
    std::vector<FrontierPoint> retained;
    retained.reserve(frontier.size());
    for (const EvaluatedPoint &e : frontier) {
        FrontierPoint fp;
        fp.point = e.point;
        fp.bands = space.decode(e.point).bands;
        fp.qor = e.qor;
        retained.push_back(std::move(fp));
    }
    return retained;
}

std::optional<EvaluatedPoint>
DSEEngine::finalize(const std::vector<EvaluatedPoint> &frontier,
                    const ResourceBudget &budget)
{
    // Step 5: ascending latency, first point meeting the constraints.
    for (const EvaluatedPoint &e : frontier)
        if (e.qor.feasible && e.qor.fits(budget))
            return e;
    return std::nullopt;
}

std::unique_ptr<Operation>
DSEEngine::materializeEvaluated(const EvaluatedPoint &chosen)
{
    module_reused_ = false;
    qor_verified_ = false;
    std::unique_ptr<Operation> module;
    if (evaluator_)
        module = evaluator_->takeRetainedModule(chosen.point);
    if (module)
        module_reused_ = true;
    else
        module = space_.materialize(chosen.point);
    if (!module)
        return nullptr;

    // Re-estimate against the still-warm content-keyed caches (a
    // function-tier hit makes this a digest + lookup, not a walk) and
    // check the module really carries the QoR the frontier promised —
    // this also end-to-end-verifies any fast-path composition that fed
    // the chosen point's cached result.
    QoREstimator estimator(module.get(), pool_.get(), estimates_in_use_,
                           options_.bandLevelCache,
                           options_.partitionAwareBandKeys);
    QoRResult check = estimator.estimateModule();
    if (!check.feasible) {
        check.latency = kInfeasibleQoR;
        check.interval = kInfeasibleQoR;
    }
    qor_verified_ = check.latency == chosen.qor.latency &&
                    check.interval == chosen.qor.interval &&
                    check.feasible == chosen.qor.feasible &&
                    check.resources.dsp == chosen.qor.resources.dsp &&
                    check.resources.lut == chosen.qor.resources.lut &&
                    check.resources.bram18k ==
                        chosen.qor.resources.bram18k &&
                    check.resources.memoryBits ==
                        chosen.qor.resources.memoryBits;
    // On divergence the re-estimated QoR is the one consistent with the
    // module being returned; callers (runDSE) adopt it over the cached
    // value so result.module and result.qor can never disagree.
    verified_qor_ = check;
    assert(qor_verified_ &&
           "materialized module diverged from the cached QoR");
    return module;
}

std::optional<DSEResult>
runDSE(Operation *module, const ResourceBudget &budget,
       DesignSpaceOptions space_options, DSEOptions options)
{
    auto start = std::chrono::steady_clock::now();
    DesignSpace space(module, space_options);
    DSEEngine engine(space, options);
    engine.setFinalizeBudget(budget);
    auto frontier = engine.explore();
    auto chosen = DSEEngine::finalize(frontier, budget);
    if (!chosen)
        return std::nullopt;

    DSEResult result;
    result.point = chosen->point;
    result.qor = chosen->qor;
    result.frontier = retainFrontier(space, frontier);
    result.module = engine.materializeEvaluated(*chosen);
    if (result.module && !engine.qorVerified()) {
        // Should not happen (asserted in debug builds); in release,
        // keep the QoR consistent with the module we actually return.
        result.qor = engine.verifiedQoR();
    }
    result.evaluations = engine.numEvaluations();
    result.estimateHits = engine.numEstimateHits();
    result.estimateLookups = engine.numEstimateLookups();
    result.bandEstimateHits = engine.numBandEstimateHits();
    result.bandEstimateLookups = engine.numBandEstimateLookups();
    result.scheduleHits = engine.numScheduleHits();
    result.scheduleLookups = engine.numScheduleLookups();
    result.fullMaterializations = engine.numFullMaterializations();
    result.fastPathHits = engine.numFastPathHits();
    result.bandMaskedHits = engine.numBandMaskedHits();
    result.planComposed = engine.numPlanComposed();
    result.overlayMaterializations = engine.numOverlayMaterializations();
    result.planInfeasible = engine.numPlanInfeasible();
    result.planMismatches = engine.numPlanMismatches();
    result.crossBandHits = engine.numCrossBandHits();
    result.auditChecks = engine.numAuditChecks();
    result.auditViolations = engine.numAuditViolations();
    result.moduleReused = engine.moduleReused();
    result.qorVerified = engine.qorVerified();
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

} // namespace scalehls
