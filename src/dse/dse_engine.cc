#include "dse/dse_engine.h"

#include <algorithm>
#include <chrono>

namespace scalehls {

std::vector<EvaluatedPoint>
DSEEngine::explore()
{
    evaluated_.clear();
    std::mt19937 rng(options_.seed);

    ThreadPool pool(options_.numThreads);
    // Cross-point estimate cache: external if supplied, per-exploration
    // otherwise (unless disabled). Content-keyed, so it never changes
    // results — only how often the estimator re-walks identical IR.
    EstimateCache local_estimates;
    EstimateCache *estimates = options_.sharedEstimates;
    if (!estimates && options_.crossPointCache)
        estimates = &local_estimates;
    size_t hits_before = estimates ? estimates->hits() : 0;
    size_t lookups_before = estimates ? estimates->lookups() : 0;
    size_t band_hits_before = estimates ? estimates->bandHits() : 0;
    size_t band_lookups_before =
        estimates ? estimates->bandLookups() : 0;

    CachingEvaluator evaluator(space_, &pool, estimates,
                               options_.bandLevelCache);
    SearchContext ctx(space_, evaluator, evaluated_, options_.batchSize);

    // Step 1: initial sampling, evaluated as one parallel batch. The
    // canonical seeds (the baseline schedule under each legalization
    // switch) guarantee a feasible frontier for the neighbor traversal
    // even when random tiles are mostly illegal.
    for (const DesignSpace::Point &seed : space_.canonicalSeedPoints())
        ctx.propose(seed);
    for (unsigned i = 0; i < options_.numInitialSamples; ++i)
        ctx.propose(space_.randomPoint(rng));
    ctx.flush();

    SearchStrategy::create(options_.strategy)
        ->run(ctx, rng, options_.maxIterations);

    materializations_ = evaluator.numMaterializations();
    cache_hits_ = evaluator.numCacheHits();
    estimate_hits_ = estimates ? estimates->hits() - hits_before : 0;
    estimate_lookups_ =
        estimates ? estimates->lookups() - lookups_before : 0;
    band_hits_ =
        estimates ? estimates->bandHits() - band_hits_before : 0;
    band_lookups_ =
        estimates ? estimates->bandLookups() - band_lookups_before : 0;

    // Return the frontier sorted by latency. frontierIndices is already
    // ascending (latency, area, index); stable_sort keeps tie groups in
    // that deterministic order on every stdlib (an unstable sort could
    // scramble equal-latency members and change which one finalize()
    // picks first).
    std::vector<EvaluatedPoint> result;
    for (size_t idx : ctx.frontierIndices())
        result.push_back(evaluated_[idx]);
    std::stable_sort(result.begin(), result.end(),
                     [](const EvaluatedPoint &a, const EvaluatedPoint &b) {
                         return a.qor.latency < b.qor.latency;
                     });
    return result;
}

std::optional<EvaluatedPoint>
DSEEngine::finalize(const std::vector<EvaluatedPoint> &frontier,
                    const ResourceBudget &budget)
{
    // Step 5: ascending latency, first point meeting the constraints.
    for (const EvaluatedPoint &e : frontier)
        if (e.qor.feasible && e.qor.fits(budget))
            return e;
    return std::nullopt;
}

std::optional<DSEResult>
runDSE(Operation *module, const ResourceBudget &budget,
       DesignSpaceOptions space_options, DSEOptions options)
{
    auto start = std::chrono::steady_clock::now();
    DesignSpace space(module, space_options);
    DSEEngine engine(space, options);
    auto frontier = engine.explore();
    auto chosen = DSEEngine::finalize(frontier, budget);
    if (!chosen)
        return std::nullopt;

    DSEResult result;
    result.point = chosen->point;
    result.qor = chosen->qor;
    result.module = space.materialize(chosen->point);
    result.evaluations = engine.numEvaluations();
    result.estimateHits = engine.numEstimateHits();
    result.estimateLookups = engine.numEstimateLookups();
    result.bandEstimateHits = engine.numBandEstimateHits();
    result.bandEstimateLookups = engine.numBandEstimateLookups();
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

} // namespace scalehls
