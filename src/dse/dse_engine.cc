#include "dse/dse_engine.h"

#include <chrono>
#include <cmath>

namespace scalehls {

void
DSEEngine::probe(const DesignSpace::Point &point)
{
    if (!seen_.insert(point).second)
        return;
    const QoRResult &qor = space_.evaluate(point);
    evaluated_.push_back({point, qor});
}

std::vector<size_t>
DSEEngine::frontierIndices() const
{
    std::vector<QoRPoint> points;
    points.reserve(evaluated_.size());
    for (const EvaluatedPoint &e : evaluated_) {
        QoRPoint p;
        if (e.qor.feasible) {
            p.latency = e.qor.latency;
            p.area = areaOf(e.qor.resources);
        } else {
            p.latency = std::numeric_limits<int64_t>::max() / 4;
            p.area = std::numeric_limits<int64_t>::max() / 4;
        }
        points.push_back(p);
    }
    return paretoIndices(points);
}

std::vector<EvaluatedPoint>
DSEEngine::explore()
{
    std::mt19937 rng(options_.seed);

    // Step 1: initial sampling. Canonical seeds (the baseline schedule
    // with each legalization switch) guarantee a feasible frontier for
    // the neighbor traversal even when random tiles are mostly illegal.
    for (int lp = 0; lp <= 1; ++lp) {
        for (int rvb = 0; rvb <= 1; ++rvb) {
            DesignSpace::Point seed(space_.numDims(), 0);
            seed[0] = lp;
            seed[1] = rvb;
            probe(seed);
        }
    }
    for (unsigned i = 0; i < options_.numInitialSamples; ++i)
        probe(space_.randomPoint(rng));

    switch (options_.strategy) {
      case DSEStrategy::NeighborTraversal:
        exploreNeighborTraversal(rng);
        break;
      case DSEStrategy::RandomSampling:
        exploreRandom(rng);
        break;
      case DSEStrategy::SimulatedAnnealing:
        exploreAnnealing(rng);
        break;
    }

    // Return the frontier sorted by latency.
    std::vector<EvaluatedPoint> result;
    for (size_t idx : frontierIndices())
        result.push_back(evaluated_[idx]);
    std::sort(result.begin(), result.end(),
              [](const EvaluatedPoint &a, const EvaluatedPoint &b) {
                  return a.qor.latency < b.qor.latency;
              });
    return result;
}

void
DSEEngine::exploreNeighborTraversal(std::mt19937 &rng)
{
    // Steps 2-4: frontier evolution by nearest-neighbor proposal.
    unsigned stall = 0;
    for (unsigned iter = 0; iter < options_.maxIterations; ++iter) {
        auto frontier = frontierIndices();
        if (frontier.empty())
            break;
        size_t pick = frontier[std::uniform_int_distribution<size_t>(
            0, frontier.size() - 1)(rng)];
        const DesignSpace::Point &center = evaluated_[pick].point;

        // Step 2: propose the closest unevaluated neighbor.
        bool proposed = false;
        for (const auto &neighbor : space_.neighbors(center)) {
            if (seen_.count(neighbor))
                continue;
            probe(neighbor); // Step 3: evaluation (frontier auto-updates).
            proposed = true;
            break;
        }
        if (!proposed) {
            // This frontier point's neighborhood is exhausted; if the
            // whole frontier is exhausted, terminate early.
            if (++stall > 2 * frontier.size())
                break;
        } else {
            stall = 0;
        }
    }
}

void
DSEEngine::exploreRandom(std::mt19937 &rng)
{
    for (unsigned iter = 0; iter < options_.maxIterations; ++iter)
        probe(space_.randomPoint(rng));
}

void
DSEEngine::exploreAnnealing(std::mt19937 &rng)
{
    // Scalarized objective (latency; infeasible points already carry the
    // sentinel), classic exponential cooling.
    auto cost = [&](const EvaluatedPoint &e) {
        return static_cast<double>(e.qor.latency);
    };
    // Start from the best evaluated point so far.
    size_t best = 0;
    for (size_t i = 1; i < evaluated_.size(); ++i)
        if (cost(evaluated_[i]) < cost(evaluated_[best]))
            best = i;
    DesignSpace::Point current = evaluated_[best].point;
    double current_cost = cost(evaluated_[best]);
    double t0 = current_cost > 0 ? current_cost : 1.0;

    for (unsigned iter = 0; iter < options_.maxIterations; ++iter) {
        double temperature =
            t0 * std::pow(0.01, static_cast<double>(iter + 1) /
                                    options_.maxIterations);
        auto neighbors = space_.neighbors(current);
        if (neighbors.empty())
            break;
        const auto &candidate =
            neighbors[std::uniform_int_distribution<size_t>(
                0, neighbors.size() - 1)(rng)];
        probe(candidate);
        double candidate_cost =
            static_cast<double>(space_.evaluate(candidate).latency);
        double delta = candidate_cost - current_cost;
        bool accept = delta <= 0;
        if (!accept && temperature > 0) {
            double p = std::exp(-delta / temperature);
            accept = std::uniform_real_distribution<double>(0, 1)(rng) < p;
        }
        if (accept) {
            current = candidate;
            current_cost = candidate_cost;
        }
    }
}

std::optional<EvaluatedPoint>
DSEEngine::finalize(const std::vector<EvaluatedPoint> &frontier,
                    const ResourceBudget &budget)
{
    // Step 5: ascending latency, first point meeting the constraints.
    for (const EvaluatedPoint &e : frontier)
        if (e.qor.feasible && e.qor.fits(budget))
            return e;
    return std::nullopt;
}

std::optional<DSEResult>
runDSE(Operation *module, const ResourceBudget &budget,
       DesignSpaceOptions space_options, DSEOptions options)
{
    auto start = std::chrono::steady_clock::now();
    DesignSpace space(module, space_options);
    DSEEngine engine(space, options);
    auto frontier = engine.explore();
    auto chosen = DSEEngine::finalize(frontier, budget);
    if (!chosen)
        return std::nullopt;

    DSEResult result;
    result.point = chosen->point;
    result.qor = chosen->qor;
    result.module = space.materialize(chosen->point);
    result.evaluations = engine.numEvaluations();
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

} // namespace scalehls
