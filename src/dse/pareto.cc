#include "dse/pareto.h"

#include <algorithm>
#include <limits>

namespace scalehls {

int64_t
areaOf(const ResourceUsage &usage)
{
    // DSPs dominate the area tradeoff for compute kernels; LUTs break
    // ties so distinct designs rarely collapse onto one point.
    return usage.dsp * 100000 + usage.lut / 10;
}

int64_t
addQoRSaturating(int64_t a, int64_t b)
{
    if (a >= kInfeasibleQoR || b >= kInfeasibleQoR)
        return kInfeasibleQoR;
    // Both operands are below max/4, so the sum cannot overflow; it can
    // only cross the sentinel, where it saturates.
    int64_t sum = a + b;
    return sum >= kInfeasibleQoR ? kInfeasibleQoR : sum;
}

bool
dominates(const QoRPoint &a, const QoRPoint &b)
{
    if (a.latency > b.latency || a.area > b.area)
        return false;
    return a.latency < b.latency || a.area < b.area;
}

std::vector<size_t>
paretoIndices(const std::vector<QoRPoint> &points)
{
    // The frontier is exactly the set of points no other point
    // dominates() — including EVERY member of a group of identical
    // (equal-latency, equal-area) points, since equal points do not
    // dominate each other. Membership is a property of a point's value
    // against the set, so the selected points are invariant under input
    // permutation (the returned indices permute with the input).
    std::vector<size_t> order(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (points[a].latency != points[b].latency)
            return points[a].latency < points[b].latency;
        if (points[a].area != points[b].area)
            return points[a].area < points[b].area;
        return a < b; // Deterministic output order within a tie group.
    });

    // Sweep latency groups in ascending order. Within a group only the
    // minimum-area points can survive (anything else is dominated inside
    // the group); they survive iff strictly below every lower-latency
    // point's area (equal area there means the lower-latency point
    // dominates).
    std::vector<size_t> frontier;
    int64_t best_area = std::numeric_limits<int64_t>::max();
    size_t i = 0;
    while (i < order.size()) {
        size_t group_end = i;
        while (group_end < order.size() &&
               points[order[group_end]].latency ==
                   points[order[i]].latency)
            ++group_end;
        int64_t group_area = points[order[i]].area; // Sorted: group min.
        if (group_area < best_area) {
            for (size_t j = i; j < group_end &&
                               points[order[j]].area == group_area;
                 ++j)
                frontier.push_back(order[j]);
            best_area = group_area;
        }
        i = group_end;
    }
    return frontier;
}

} // namespace scalehls
