#include "dse/pareto.h"

#include <algorithm>
#include <limits>

namespace scalehls {

int64_t
areaOf(const ResourceUsage &usage)
{
    // DSPs dominate the area tradeoff for compute kernels; LUTs break
    // ties so distinct designs rarely collapse onto one point.
    return usage.dsp * 100000 + usage.lut / 10;
}

bool
dominates(const QoRPoint &a, const QoRPoint &b)
{
    if (a.latency > b.latency || a.area > b.area)
        return false;
    return a.latency < b.latency || a.area < b.area;
}

std::vector<size_t>
paretoIndices(const std::vector<QoRPoint> &points)
{
    std::vector<size_t> order(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (points[a].latency != points[b].latency)
            return points[a].latency < points[b].latency;
        return points[a].area < points[b].area;
    });

    std::vector<size_t> frontier;
    int64_t best_area = std::numeric_limits<int64_t>::max();
    int64_t last_latency = -1;
    for (size_t idx : order) {
        if (points[idx].latency == last_latency)
            continue; // Same latency, larger-or-equal area.
        if (points[idx].area < best_area) {
            frontier.push_back(idx);
            best_area = points[idx].area;
        }
        last_latency = points[idx].latency;
    }
    return frontier;
}

} // namespace scalehls
