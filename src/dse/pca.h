/**
 * @file
 * Principal component analysis by power iteration with deflation, used for
 * the design-space profiling of paper Fig. 6(b).
 */

#ifndef SCALEHLS_DSE_PCA_H
#define SCALEHLS_DSE_PCA_H

#include <vector>

namespace scalehls {

/** Project row-major samples (n x d) onto their top two principal
 * components. Returns n (pc0, pc1) pairs. Columns are standardized
 * (zero mean, unit variance) first. */
std::vector<std::pair<double, double>>
pcaProject2D(const std::vector<std::vector<double>> &samples);

} // namespace scalehls

#endif // SCALEHLS_DSE_PCA_H
