#include "dse/band_plan.h"

#include <unordered_map>

#include "analysis/loop_analysis.h"
#include "analysis/memory_analysis.h"
#include "estimate/coherence_audit.h"
#include "ir/overlay.h"
#include "ir/printer.h"
#include "transform/pass.h"

namespace scalehls {

BandPlanner::BandPlanner(const DesignSpace &space,
                         EstimateCache *estimates, bool masked_band_keys,
                         bool audit)
    : space_(space), estimates_(estimates),
      masked_band_keys_(masked_band_keys), audit_(audit)
{
    if (!estimates_)
        return;
    Operation *module = space_.pristineModule();
    func_ = getTopFunc(module);
    if (!func_)
        return;
    func_name_ = funcName(func_);

    // Mirror DesignSpace::fastPathEligible on the PRISTINE function: the
    // structural transforms never add calls, flat-scope accesses or
    // directives, so pristine eligibility implies phase-1 eligibility
    // for every materializable point.
    FuncDirective fd = getFuncDirective(func_);
    if (fd.pipeline)
        return;
    dataflow_top_ = fd.dataflow;
    if (dataflow_top_ && !space_.spaceOptions().dataflowFastPath)
        return;
    for (auto &op : funcBody(func_)->ops()) {
        if (op->is(ops::AffineFor) || op->is(ops::Constant) ||
            op->is(ops::Alloc) || op->is(ops::Return))
            continue;
        return;
    }

    auto bands = getLoopBands(func_);
    if (bands.empty() || bands.size() != space_.numBands())
        return;
    for (const auto &band : bands)
        roots_.push_back(band.front());

    ownership_ = bandLocalAllocs(func_, roots_);
    if (!ownership_.eligible(dataflow_top_))
        return;
    // In-band allocs are duplicated by pipelining's full unroll, which
    // would grow the transformed ownership list past the pristine one
    // the plan keys bake in. Flat-scope allocs are never duplicated.
    for (const OwnedBuffer &buffer : ownership_.buffers)
        if (buffer.alloc->parentBlock() != funcBody(func_))
            return;

    for (size_t b = 0; b < roots_.size(); ++b) {
        auto seed = bandPlanSeed(roots_[b], &ownership_);
        if (!seed)
            return; // Unplannable band (call, unrecognized external).
        seed_index_.emplace_back();
        for (unsigned i = 0; i < seed->externals.size(); ++i)
            seed_index_.back().emplace(seed->externals[i], i);
        seeds_.push_back(std::move(*seed));
    }
    enabled_ = true;
}

std::string
BandPlanner::originOf(size_t band) const
{
    return func_name_ + "#" + std::to_string(band);
}

bool
BandPlanner::seedIndexOf(size_t b, Value *base, unsigned &index) const
{
    auto it = seed_index_[b].find(base);
    if (it == seed_index_[b].end())
        return false;
    index = it->second;
    return true;
}

std::string
BandPlanner::debugPlanKey(const DesignSpace::Point &point,
                          size_t band) const
{
    if (!enabled_ || band >= seeds_.size())
        return {};
    DesignSpace::Decoded d = space_.decode(point);
    const DesignSpace::BandChoice &choice = d.bands[band];
    return bandPlanKey(seeds_[band], d.loopPerfectization,
                       d.removeVariableBound, choice.permMap,
                       choice.tileSizes, choice.targetII);
}

std::optional<QoRResult>
BandPlanner::composeAll(
    const std::vector<BandScheduleEntry> &entries,
    const std::vector<const std::vector<unsigned> *> &ext_maps,
    Outcome *audit_out) const
{
    // Resolve every entry's externals onto the PRISTINE value table:
    // phase-1 external i of band b is pristine external extMap[i]. The
    // composition (memory-dependence scheduling, kept-buffer account)
    // only compares these values by identity, so any consistent universe
    // works — pristine is the one the planner owns.
    std::vector<std::vector<Value *>> resolved(entries.size());
    for (size_t b = 0; b < entries.size(); ++b) {
        resolved[b].reserve(ext_maps[b]->size());
        for (unsigned index : *ext_maps[b]) {
            if (index >= seeds_[b].externals.size())
                return std::nullopt;
            resolved[b].push_back(seeds_[b].externals[index]);
        }
    }
    if (audit_ && audit_out) {
        // L4 shape audit of every consumed entry against the resolved
        // value table — covers the zero-IR path, where no other code
        // would ever look at the entries' internals before trusting them.
        bool bad = false;
        for (size_t b = 0; b < entries.size(); ++b) {
            ++audit_out->auditChecks;
            auto findings =
                auditScheduleEntry(entries[b], resolved[b], originOf(b));
            bad |= !findings.empty();
            for (auto &f : findings)
                audit_out->auditFindings.push_back(std::move(f));
        }
        if (bad)
            return std::nullopt;
    }
    ScheduledFunction function;
    function.dataflow = dataflow_top_;
    function.bands.reserve(entries.size());
    for (size_t b = 0; b < entries.size(); ++b)
        function.bands.push_back({&entries[b], &resolved[b]});
    for (const OwnedBuffer &buffer : ownership_.buffers)
        function.allocs.push_back({buffer.memref, buffer.kept});
    return composeScheduledQoR(function);
}

/** The per-point planning state handed from evaluate() to the overlay
 * path: plan keys, cached plan outcomes and schedule-tier hits, all
 * aligned with the band index. */
struct BandPlanner::OverlayInputs
{
    std::vector<std::string> keys;
    std::vector<std::optional<BandPlanOutcome>> plans;
    std::vector<std::optional<BandScheduleEntry>> entries;
};

BandPlanner::Outcome
BandPlanner::evaluate(const DesignSpace::Point &point) const
{
    Outcome out;
    if (!enabled_)
        return out;
    DesignSpace::Decoded d = space_.decode(point);
    if (d.bands.size() != seeds_.size())
        return out;
    // Mirror beginMaterialize's early unroll-product rejection: such
    // points are infeasible before any IR exists on the legacy path too.
    for (const DesignSpace::BandChoice &choice : d.bands) {
        int64_t product = 1;
        for (int64_t t : choice.tileSizes)
            product *= t;
        if (product > space_.spaceOptions().maxTotalUnroll) {
            out.kind = Outcome::Kind::Infeasible;
            return out;
        }
    }

    size_t n = seeds_.size();
    OverlayInputs inputs;
    inputs.keys.resize(n);
    inputs.plans.resize(n);
    inputs.entries.resize(n);
    for (size_t b = 0; b < n; ++b) {
        const DesignSpace::BandChoice &choice = d.bands[b];
        inputs.keys[b] = bandPlanKey(seeds_[b], d.loopPerfectization,
                                     d.removeVariableBound, choice.permMap,
                                     choice.tileSizes, choice.targetII);
        inputs.plans[b] = estimates_->lookupPlan(inputs.keys[b]);
        if (!inputs.plans[b])
            continue;
        if (!inputs.plans[b]->materializable) {
            // A recorded transform failure: the whole point is
            // infeasible, decided with zero IR.
            out.kind = Outcome::Kind::Infeasible;
            return out;
        }
        if (!inputs.plans[b]->composable)
            return out; // This band can never compose: legacy path.
    }

    bool all_hit = true;
    for (size_t b = 0; b < n; ++b) {
        if (inputs.plans[b])
            inputs.entries[b] = estimates_->lookupSchedule(
                inputs.plans[b]->digest, originOf(b));
        all_hit &= inputs.entries[b].has_value();
    }

    if (all_hit) {
        // Zero-IR composition: every band's phase-1 digest was predicted
        // by the PLAN tier and resolved in the SCHEDULE tier.
        std::vector<BandScheduleEntry> entries;
        std::vector<const std::vector<unsigned> *> ext_maps;
        entries.reserve(n);
        ext_maps.reserve(n);
        for (size_t b = 0; b < n; ++b) {
            entries.push_back(std::move(*inputs.entries[b]));
            ext_maps.push_back(&inputs.plans[b]->extMap);
        }
        if (auto composed = composeAll(entries, ext_maps, &out)) {
            out.kind = Outcome::Kind::Composed;
            out.qor = *composed;
            return out;
        }
        return out;
    }
    return overlayEvaluate(d, inputs);
}

BandPlanner::Outcome
BandPlanner::overlayEvaluate(const DesignSpace::Decoded &d,
                             OverlayInputs &inputs) const
{
    Outcome out;
    size_t n = seeds_.size();

    // Copy-on-write clone of the pristine function: hit bands are
    // omitted (their estimates come from the schedule tier), everything
    // else — flat constants, allocs, the return, missed bands — is
    // cloned. The base is only read, so concurrent workers may overlay
    // the same pristine module.
    std::set<const Operation *> skip;
    for (size_t b = 0; b < n; ++b)
        if (inputs.entries[b])
            skip.insert(roots_[b]);
    OverlayClone ov = overlayClone(func_, skip);
    if (!ov.op || !ov.complete)
        return out; // Benign: the band shapes defeated the overlay.
    if (audit_) {
        // L3: prove the overlay shares nothing mutable with the pristine
        // base before any transform runs on it. A finding here means a
        // transform COULD have scribbled on IR other workers are reading.
        ++out.auditChecks;
        auto findings = auditOverlayAliasing(ov, func_);
        if (!findings.empty()) {
            out.auditFindings = std::move(findings);
            return out;
        }
    }

    // The pristine ownership verdicts, translated onto overlay values
    // (transforms preserve them; see the class comment).
    AllocOwnershipInfo overlay_own = ownership_;
    for (OwnedBuffer &buffer : overlay_own.buffers) {
        auto vi = ov.map.find(buffer.memref);
        auto oi = ov.children.find(buffer.alloc);
        if (vi == ov.map.end() || oi == ov.children.end())
            return out;
        buffer.memref = vi->second;
        buffer.alloc = oi->second;
    }
    std::unordered_map<Value *, Value *> reverse;
    reverse.reserve(ov.map.size());
    for (const auto &[base, overlay] : ov.map)
        reverse[overlay] = base;

    // Phase 1 on each missed band: replay beginMaterialize's per-band
    // transform sequence verbatim, then verify (or record) the plan.
    std::vector<Operation *> current(n, nullptr);
    std::vector<std::optional<BandDigestInfo>> infos(n);
    std::vector<BandPlanOutcome> outcomes(n);
    for (size_t b = 0; b < n; ++b) {
        if (inputs.entries[b]) {
            outcomes[b] = *inputs.plans[b];
            continue;
        }
        auto ci = ov.children.find(roots_[b]);
        if (ci == ov.children.end())
            return out;
        std::vector<Operation *> band{ci->second};
        if (d.loopPerfectization)
            applyLoopPerfectization(band.front());
        if (d.removeVariableBound)
            applyRemoveVariableBound(band.front());
        if (d.loopPerfectization && d.removeVariableBound)
            applyLoopPerfectization(band.front());
        band = getLoopNest(band.front());
        const DesignSpace::BandChoice &choice = d.bands[b];
        if (band.size() == choice.permMap.size())
            applyLoopPermutation(band, choice.permMap);
        if (band.size() == choice.tileSizes.size())
            band = applyLoopTiling(band, choice.tileSizes);
        if (band.empty() ||
            !applyLoopPipelining(band.back(), choice.targetII)) {
            // The transforms fail for every point selecting this choice;
            // record that so future points skip the overlay entirely.
            estimates_->insertPlan(inputs.keys[b], BandPlanOutcome{});
            out.kind = Outcome::Kind::Infeasible;
            out.usedOverlay = true;
            return out;
        }
        current[b] = band.front();

        infos[b] = bandEstimateDigestInfo(
            current[b], /*mask_partitions=*/false, &overlay_own);
        BandPlanOutcome outcome;
        outcome.materializable = true;
        if (infos[b]) {
            outcome.digest = infos[b]->digest;
            outcome.composable = true;
            outcome.extMap.reserve(infos[b]->externals.size());
            for (Value *ext : infos[b]->externals) {
                auto ri = reverse.find(ext);
                unsigned index = 0;
                if (ri == reverse.end() ||
                    !seedIndexOf(b, ri->second, index)) {
                    // A transform-created (or otherwise unmapped) flat
                    // external: the entry could never be resolved onto
                    // the pristine table.
                    outcome.composable = false;
                    outcome.extMap.clear();
                    break;
                }
                outcome.extMap.push_back(index);
            }
        }
        if (inputs.plans[b]) {
            // The PLAN tier predicted this band's digest; the overlay
            // materialization is ground truth. A contradiction means the
            // plan-key reasoning is wrong somewhere — never answer from
            // it, fall back to the validated full pipeline.
            if (!outcome.composable ||
                inputs.plans[b]->digest != outcome.digest) {
                if (audit_) {
                    // L4: the cache's claimed digest does not match the
                    // materialized band — the same divergence the
                    // seeded-corruption tests plant deliberately.
                    ++out.auditChecks;
                    out.auditFindings.push_back(
                        {VerifyKind::StaleScheduleEntry,
                         opPath(current[b]),
                         "PLAN tier predicted phase-1 digest '" +
                             inputs.plans[b]->digest +
                             "' but the overlay materialization "
                             "produced '" + outcome.digest + "'"});
                }
                out.mismatched = true;
                return out;
            }
            outcomes[b] = *inputs.plans[b];
        } else {
            // First materialization of this (band, choice): the outcome
            // is exact by construction, publish it immediately
            // (first-writer-wins keeps concurrent recorders benign).
            estimates_->insertPlan(inputs.keys[b], outcome);
            if (!outcome.composable)
                return out;
            outcomes[b] = std::move(outcome);
        }
        // Late schedule probe: the digest is only now known for plan
        // misses, and a sibling band or worker may have published the
        // entry since the early probe. A hit drops the band from the
        // overlay — its estimate replays from the entry.
        auto late = estimates_->lookupSchedule(outcomes[b].digest,
                                               originOf(b));
        if (late) {
            inputs.entries[b] = std::move(late);
            current[b]->erase();
            current[b] = nullptr;
            infos[b].reset();
        }
    }

    // Phase 2, band-locally: the function-wide cleanup pipeline is
    // provably band-local on eligible functions (that is the fast path's
    // core invariant), so replaying it per missed band — with the one
    // cross-band pass, removeWriteOnlyBuffers, reduced to erasing the
    // predicted-dead buffers' stores — produces the bands the full
    // pipeline would.
    for (size_t b = 0; b < n; ++b) {
        if (!current[b])
            continue;
        Operation *root = current[b];
        applyCanonicalize(root);
        applySimplifyAffineIf(root);
        applyAffineStoreForward(root);
        for (const OwnedBuffer &buffer : overlay_own.buffers) {
            if (buffer.kept)
                continue;
            std::vector<Operation *> victims;
            for (Operation *user : buffer.memref->users())
                if (root->isAncestorOf(user))
                    victims.push_back(user);
            for (Operation *victim : victims)
                victim->erase();
        }
        applySimplifyMemrefAccess(root);
        applyCSE(root);
        applyCanonicalize(root);
        if (!root->parentBlock() || root->region(0).front().empty())
            return out; // Cleanup dissolved the band: not replayable.
    }

    // Array partition: merge every band's contribution — cached entries
    // for hit bands, freshly computed plans for overlay bands — with
    // applyArrayPartition's strictly-greater-factor-wins rule, keyed on
    // pristine values, then apply the merged plans to the overlay.
    std::map<Value *, PartitionPlan> merged;
    auto merge_plan = [&](Value *pristine, const PartitionPlan &plan) {
        auto [it, inserted] = merged.try_emplace(pristine);
        PartitionPlan &m = it->second;
        if (inserted) {
            m.kinds.assign(plan.kinds.size(), PartitionKind::None);
            m.factors.assign(plan.factors.size(), 1);
        }
        if (m.factors.size() != plan.factors.size())
            return false;
        for (size_t dim = 0; dim < m.factors.size(); ++dim) {
            if (plan.factors[dim] > m.factors[dim]) {
                m.factors[dim] = plan.factors[dim];
                m.kinds[dim] = plan.kinds[dim];
            }
        }
        return true;
    };
    for (size_t b = 0; b < n; ++b) {
        if (inputs.entries[b]) {
            for (const auto &info : inputs.entries[b]->memrefs) {
                if (info.extId >= outcomes[b].extMap.size())
                    return out;
                unsigned index = outcomes[b].extMap[info.extId];
                if (index >= seeds_[b].externals.size())
                    return out;
                if (!merge_plan(seeds_[b].externals[index],
                                info.contribution))
                    return out;
            }
        } else {
            auto nest = getLoopNest(current[b]);
            auto accesses = collectAccesses(current[b], bandIVs(nest));
            for (auto &[memref, group] : groupByMemRef(accesses)) {
                auto ri = reverse.find(memref);
                if (ri == reverse.end())
                    return out;
                if (!merge_plan(ri->second,
                                computePartitionPlan(memref, group)))
                    return out;
            }
        }
    }
    for (const auto &[pristine, plan] : merged) {
        if (plan.isTrivial())
            continue;
        auto vi = ov.map.find(pristine);
        if (vi == ov.map.end())
            return out;
        applyPartitionPlan(vi->second, plan);
    }

    // Estimate the overlay. The function is renamed so the estimator's
    // function tier never keys this partial body under the kernel's
    // name; the band tier still shares freely — overlay band content is
    // identical to full-pipeline band content, which is the point.
    Operation *overlay_func = ov.op.get();
    overlay_func->setAttr(kSymName,
                          Attribute(func_name_ + "!overlay"));
    auto overlay_module = createModule();
    overlay_module->region(0).front().pushBack(std::move(ov.op));
    if (audit_) {
        // L1+L2 over the transformed overlay: the phase-2 replay and the
        // partition application must leave valid IR behind — entries
        // built from invalid IR must never reach the cache.
        ++out.auditChecks;
        for (VerifyError &e : verifyErrors(overlay_module.get()))
            out.auditFindings.push_back(std::move(e));
        if (!out.auditFindings.empty())
            return out;
    }
    QoREstimator estimator(overlay_module.get(), nullptr, estimates_,
                           /*band_cache=*/true, masked_band_keys_);
    estimator.estimateFunc(overlay_func);
    const auto &band_estimates = estimator.lastBandEstimates();

    std::vector<BandScheduleEntry> entries(n);
    std::vector<const std::vector<unsigned> *> ext_maps(n);
    std::vector<bool> fresh(n, false);
    for (size_t b = 0; b < n; ++b) {
        ext_maps[b] = &outcomes[b].extMap;
        if (inputs.entries[b]) {
            entries[b] = std::move(*inputs.entries[b]);
            continue;
        }
        auto it = band_estimates.find(current[b]);
        if (it == band_estimates.end())
            return out; // Function-tier hit skipped the band walk.
        auto entry = buildBandScheduleEntry(current[b], it->second,
                                            infos[b]->externals);
        if (!entry)
            return out;
        entry->origin = originOf(b);
        entries[b] = std::move(*entry);
        fresh[b] = true;
    }

    auto composed = composeAll(entries, ext_maps, &out);
    if (!composed)
        return out;
    // Publication is gated on composition success: the compose-time
    // validations (kept buffer with no reader, assumed-vs-merged
    // partition plans) are exactly the checks that catch a cleanup
    // outcome diverging from the phase-1 ownership prediction, standing
    // in for the full path's finalOwnershipMatches.
    for (size_t b = 0; b < n; ++b)
        if (fresh[b])
            estimates_->insertSchedule(outcomes[b].digest, entries[b]);
    out.kind = Outcome::Kind::Composed;
    out.qor = *composed;
    out.usedOverlay = true;
    return out;
}

} // namespace scalehls
