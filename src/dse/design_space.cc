#include "dse/design_space.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "analysis/buffer_analysis.h"
#include "analysis/memory_analysis.h"
#include "support/utils.h"

namespace scalehls {

namespace {

std::vector<std::vector<unsigned>>
allPermutations(unsigned n)
{
    std::vector<unsigned> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::vector<std::vector<unsigned>> result;
    do {
        result.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return result;
}

} // namespace

DesignSpace::DesignSpace(Operation *module, DesignSpaceOptions options)
    : pristine_(module->clone()), options_(options)
{
    // Probe the post-LP/RVB structure of every top-level band for trip
    // counts. Bands are disjoint subtrees, so per-band legalization in
    // the probe clone cannot interfere across bands.
    auto probe = pristine_->clone();
    Operation *func = getTopFunc(probe.get());
    assert(func && "design space requires a top function");
    auto probe_bands = getLoopBands(func);
    assert(!probe_bands.empty() && "design space requires a loop band");

    for (int64_t ii : {1,  2,  3,  4,  5,  6,  7,  8,  10, 12,
                       14, 16, 20, 24, 28, 32, 40, 48, 56, 64})
        if (ii <= options_.maxII)
            ii_candidates_.push_back(ii);

    dim_sizes_ = {2, 2};
    for (auto &band_loops : probe_bands) {
        applyLoopPerfectization(band_loops.front());
        applyRemoveVariableBound(band_loops.front());
        applyLoopPerfectization(band_loops.front());
        auto band = getLoopNest(band_loops.front());

        BandSpace space;
        space.firstDim = dim_sizes_.size();
        for (Operation *loop : band)
            space.tripCounts.push_back(
                getTripCount(AffineForOp(loop)).value_or(1));
        space.permutations = allPermutations(band.size());
        for (int64_t trip : space.tripCounts) {
            std::vector<int64_t> tiles;
            for (int64_t d : divisorsOf(trip))
                if (d <= options_.maxTileSize)
                    tiles.push_back(d);
            if (tiles.empty())
                tiles.push_back(1);
            space.tileCandidates.push_back(std::move(tiles));
        }

        dim_sizes_.push_back(static_cast<int>(space.permutations.size()));
        for (const auto &tiles : space.tileCandidates)
            dim_sizes_.push_back(static_cast<int>(tiles.size()));
        dim_sizes_.push_back(static_cast<int>(ii_candidates_.size()));
        bands_.push_back(std::move(space));
    }
}

size_t
DesignSpace::primaryBandIndex() const
{
    size_t best = 0;
    for (size_t b = 1; b < bands_.size(); ++b)
        if (bands_[b].tripCounts.size() >
            bands_[best].tripCounts.size())
            best = b;
    return best;
}

double
DesignSpace::spaceSize() const
{
    double size = 1;
    for (int d : dim_sizes_)
        size *= d;
    return size;
}

DesignSpace::Point
DesignSpace::randomPoint(std::mt19937 &rng) const
{
    Point point(numDims());
    for (size_t i = 0; i < numDims(); ++i)
        point[i] = std::uniform_int_distribution<int>(
            0, dim_sizes_[i] - 1)(rng);
    return point;
}

std::vector<DesignSpace::Point>
DesignSpace::neighbors(const Point &point) const
{
    std::vector<Point> result;
    for (size_t i = 0; i < numDims(); ++i) {
        for (int delta : {-1, 1}) {
            int v = point[i] + delta;
            if (v < 0 || v >= dim_sizes_[i])
                continue;
            Point n = point;
            n[i] = v;
            result.push_back(std::move(n));
        }
    }
    return result;
}

DesignSpace::Decoded
DesignSpace::decode(const Point &point) const
{
    assert(point.size() == numDims());
    Decoded d;
    d.loopPerfectization = point[0] != 0;
    d.removeVariableBound = point[1] != 0;
    for (const BandSpace &space : bands_) {
        BandChoice choice;
        choice.permMap = space.permutations[point[space.firstDim]];
        for (size_t i = 0; i < space.tileCandidates.size(); ++i)
            choice.tileSizes.push_back(
                space.tileCandidates[i][point[space.firstDim + 1 + i]]);
        choice.targetII = ii_candidates_[point[space.firstDim + 1 +
                                               space.tileCandidates
                                                   .size()]];
        d.bands.push_back(std::move(choice));
    }
    const BandChoice &primary = d.bands[primaryBandIndex()];
    d.permMap = primary.permMap;
    d.tileSizes = primary.tileSizes;
    d.targetII = primary.targetII;
    return d;
}

DesignSpace::Partial
DesignSpace::beginMaterialize(const Point &point) const
{
    Partial partial;
    Decoded d = decode(point);

    // Reject per-band unroll products beyond the configured cap early.
    for (const BandChoice &choice : d.bands) {
        int64_t product = 1;
        for (int64_t t : choice.tileSizes)
            product *= t;
        if (product > options_.maxTotalUnroll)
            return partial;
    }

    auto module = pristine_->clone();
    Operation *func = getTopFunc(module.get());
    auto band_roots = getLoopBands(func);
    if (band_roots.size() != d.bands.size())
        return partial;

    for (size_t b = 0; b < band_roots.size(); ++b) {
        const BandChoice &choice = d.bands[b];
        std::vector<Operation *> band = band_roots[b];
        if (d.loopPerfectization)
            applyLoopPerfectization(band.front());
        if (d.removeVariableBound)
            applyRemoveVariableBound(band.front());
        if (d.loopPerfectization && d.removeVariableBound) {
            // Ops below a variable-bound loop only sink once RVB has
            // made the bounds constant (e.g. TRMM's final scaling).
            applyLoopPerfectization(band.front());
        }
        band = getLoopNest(band.front());
        if (band.size() == choice.permMap.size())
            applyLoopPermutation(band, choice.permMap);
        if (band.size() == choice.tileSizes.size())
            band = applyLoopTiling(band, choice.tileSizes);
        if (band.empty())
            return partial;
        if (!applyLoopPipelining(band.back(), choice.targetII))
            return partial;
        partial.bandRoots.push_back(band.front());
    }

    partial.module = std::move(module);
    partial.func = func;
    partial.dataflowTop = getFuncDirective(func).dataflow;
    partial.funcEligible = fastPathEligible(partial);
    if (partial.funcEligible) {
        partial.eligible = true;
        for (Operation *root : partial.bandRoots) {
            // Partition-sensitive keys: phase-1 layouts are the pristine
            // module's (trivial on DSE inputs), so masking could not
            // hide anything — but it would pay a per-point relevance
            // analysis. Sensitive keys are strictly more discriminating,
            // which only ever costs hits, never soundness. Ownership
            // notes make the key distinguish bands whose local buffers
            // survive cleanup from bands whose buffers are erased.
            auto digest = bandEstimateDigestInfo(
                root, /*mask_partitions=*/false, &partial.ownership);
            // A nullopt digest (call-containing band, unrecognized
            // external) masks only THIS band out of the schedule tier;
            // its siblings still populate it. The whole-point fast path
            // needs every band digested.
            partial.eligible &= digest.has_value();
            partial.bandDigests.push_back(std::move(digest));
        }
    }
    return partial;
}

bool
DesignSpace::fastPathEligible(Partial &partial) const
{
    // The fast path replays estimateFuncImpl's function-level
    // composition (sequential dependence scheduling, or the dataflow
    // stage overlap) and the memory account of OWNED local buffers, and
    // its soundness argument needs every cleanup pass to be band-local.
    // That holds exactly when: the top function carries no pipeline
    // directive (a dataflow top is allowed — its composition is
    // replayed — unless disabled for A/B comparison); the function body
    // is bands + constants + allocs + return only (no flat-scope
    // accesses, calls or control flow — constants are latency-free and
    // excluded from the compute account, so flat-scope cleanup cannot
    // move the QoR); and every alloc is OWNED (bandLocalAllocs): its
    // users are plain loads/stores confined to bands, so the one
    // cross-band cleanup — removeWriteOnlyBuffers — reduces to the
    // per-buffer kept/dead verdict the ownership notes fold into each
    // phase-1 band digest, and the function-level memory accounting can
    // be replayed from the kept survivors. Calls anywhere would add
    // callee latency/resource instances the composition does not model;
    // flat-scope calls fail the body whitelist and in-band calls make
    // their band undigestable (per-band mask).
    FuncDirective fd = getFuncDirective(partial.func);
    if (fd.pipeline)
        return false;
    if (fd.dataflow && !options_.dataflowFastPath)
        return false;
    for (auto &op : funcBody(partial.func)->ops()) {
        if (op->is(ops::AffineFor) || op->is(ops::Constant) ||
            op->is(ops::Alloc) || op->is(ops::Return))
            continue;
        return false;
    }
    partial.ownership =
        bandLocalAllocs(partial.func, partial.bandRoots);
    return partial.ownership.eligible(partial.dataflowTop);
}

bool
DesignSpace::finalOwnershipMatches(const Partial &partial)
{
    // Cleanup never creates allocs, so every surviving alloc is one of
    // the phase-1 ops (pointer identity holds for live ops). The
    // prediction held iff the survivors are exactly the kept set: a
    // kept buffer whose reads cleanup dissolved (erasing the alloc and
    // its stores with it), or a dead buffer that somehow survived,
    // falsifies the ownership notes baked into the phase-1 digests.
    std::set<const Operation *> predicted;
    for (const OwnedBuffer &buffer : partial.ownership.buffers)
        if (buffer.kept)
            predicted.insert(buffer.alloc);
    std::vector<Operation *> final_allocs =
        partial.func->collect(ops::Alloc);
    if (final_allocs.size() != predicted.size())
        return false;
    for (const Operation *alloc : final_allocs)
        if (!predicted.count(alloc))
            return false;
    return true;
}

std::unique_ptr<Operation>
DesignSpace::finishMaterialize(Partial &partial) const
{
    if (!partial.module)
        return nullptr;
    Operation *func = partial.func;
    applyCanonicalize(func);
    applySimplifyAffineIf(func);
    applyAffineStoreForward(func);
    applySimplifyMemrefAccess(func);
    applyCSE(func);
    applyCanonicalize(func);
    applyArrayPartition(func);
    return std::move(partial.module);
}

std::unique_ptr<Operation>
DesignSpace::materialize(const Point &point) const
{
    Partial partial = beginMaterialize(point);
    return finishMaterialize(partial);
}

std::vector<DesignSpace::Point>
DesignSpace::canonicalSeedPoints() const
{
    std::vector<Point> seeds;
    size_t lp = dimLoopPerfectization();
    size_t rvb = dimRemoveVariableBound();
    for (int lp_on = 0; lp_on <= 1; ++lp_on) {
        for (int rvb_on = 0; rvb_on <= 1; ++rvb_on) {
            Point seed(numDims(), 0);
            seed[lp] = lp_on;
            seed[rvb] = rvb_on;
            if (std::find(seeds.begin(), seeds.end(), seed) == seeds.end())
                seeds.push_back(std::move(seed));
        }
    }
    return seeds;
}

std::string
DesignSpace::partitionSummary(Operation *module)
{
    Operation *func = getTopFunc(module);
    Block *body = funcBody(func);
    std::vector<std::string> arg_names;
    if (Attribute names = func->attr("arg_names");
        names.is<std::string>()) {
        std::istringstream is(names.getString());
        std::string token;
        while (std::getline(is, token, ','))
            arg_names.push_back(token);
    }

    std::ostringstream os;
    bool first = true;
    auto describe = [&](const std::string &name, Type t) {
        if (!t.isMemRef())
            return;
        PartitionPlan plan = decodePartitionMap(t.layout(), t.shape());
        if (plan.isTrivial())
            return;
        os << (first ? "" : ", ") << name << ":["
           << join(plan.factors, ", ") << "]";
        first = false;
    };
    for (unsigned i = 0; i < body->numArguments(); ++i) {
        std::string name =
            i < arg_names.size() ? arg_names[i] : "arg" + std::to_string(i);
        describe(name, body->argument(i)->type());
    }
    int local = 0;
    func->walk([&](Operation *op) {
        if (op->is(ops::Alloc))
            describe("buf" + std::to_string(local++),
                     op->result(0)->type());
    });
    return first ? "-" : os.str();
}

} // namespace scalehls
