/**
 * @file
 * Pareto frontier utilities over the latency-area tradeoff space
 * (paper Section V-E2). Area follows Fig. 6 and uses the DSP count as the
 * primary component with LUTs as a tiebreaker.
 */

#ifndef SCALEHLS_DSE_PARETO_H
#define SCALEHLS_DSE_PARETO_H

#include <limits>
#include <vector>

#include "estimate/qor_estimator.h"

namespace scalehls {

/** The latency/area sentinel carried by infeasible (non-materializable or
 * non-analyzable) design points. Large enough to lose every dominance
 * comparison, small enough that sums of a few sentinels cannot overflow
 * int64_t. Shared by every strategy and the evaluator — do not re-derive
 * it locally. */
inline constexpr int64_t kInfeasibleQoR =
    std::numeric_limits<int64_t>::max() / 4;

/** A point in the latency-area space. */
struct QoRPoint
{
    int64_t latency = 0;
    int64_t area = 0;
};

/** Scalar area of a resource usage (DSP-dominated, as in paper Fig. 6). */
int64_t areaOf(const ResourceUsage &usage);

/** Sentinel-guarded addition for cross-kernel QoR composition. Any
 * operand at or above kInfeasibleQoR poisons the sum to exactly
 * kInfeasibleQoR (one infeasible stage makes the composed design
 * infeasible — it must never overflow-add into a "valid" number), and a
 * sum of feasible operands saturates at the sentinel instead of
 * exceeding it. Operands must be non-negative. */
int64_t addQoRSaturating(int64_t a, int64_t b);

/** a dominates b: no worse in both objectives, strictly better in one.
 * Equal points (same latency AND same area) do not dominate each other —
 * paretoIndices mirrors exactly this definition, keeping every member of
 * an identical-QoR tie group on the frontier. */
bool dominates(const QoRPoint &a, const QoRPoint &b);

/** Indices of all points not dominated by any other point, in ascending
 * (latency, area) order; index order breaks exact ties. Identical points
 * all appear (none dominates its duplicates), so the selected set is
 * invariant under permutation of the input. */
std::vector<size_t> paretoIndices(const std::vector<QoRPoint> &points);

} // namespace scalehls

#endif // SCALEHLS_DSE_PARETO_H
