#include "dse/global_alloc.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace scalehls {

namespace {

/** Per-stage feasible candidate indices, ascending (latency, index) —
 * the working frontier the allocators walk. Candidates carrying the
 * sentinel never enter the list. */
std::vector<std::vector<size_t>>
feasibleByLatency(const std::vector<StageFrontier> &stages)
{
    std::vector<std::vector<size_t>> feasible(stages.size());
    for (size_t i = 0; i < stages.size(); ++i) {
        for (size_t j = 0; j < stages[i].candidates.size(); ++j) {
            const StageCandidate &c = stages[i].candidates[j];
            if (c.feasible && c.latency < kInfeasibleQoR)
                feasible[i].push_back(j);
        }
        std::stable_sort(feasible[i].begin(), feasible[i].end(),
                         [&](size_t a, size_t b) {
                             return stages[i].candidates[a].latency <
                                    stages[i].candidates[b].latency;
                         });
    }
    return feasible;
}

} // namespace

GlobalAllocation
allocateGlobalBudget(const std::vector<StageFrontier> &stages,
                     const ResourceBudget &budget,
                     const ResourceUsage &fixed)
{
    GlobalAllocation out;
    size_t n = stages.size();
    out.choice.assign(n, 0);
    if (n == 0) {
        out.resources = fixed;
        out.feasible = budget.fits(fixed);
        out.bottleneck = out.feasible ? 1 : kInfeasibleQoR;
        return out;
    }

    auto feasible = feasibleByLatency(stages);
    for (const auto &f : feasible)
        if (f.empty())
            return out; // A stage with no feasible design poisons all.

    // pos[i] indexes INTO feasible[i]; candidate/latency accessors.
    auto cand = [&](size_t i, size_t p) -> const StageCandidate & {
        return stages[i].candidates[feasible[i][p]];
    };
    std::vector<size_t> pos(n);
    for (size_t i = 0; i < n; ++i)
        pos[i] = feasible[i].size() - 1;
    auto totalResources = [&] {
        ResourceUsage usage = fixed;
        for (size_t i = 0; i < n; ++i)
            usage += cand(i, pos[i]).resources;
        return usage;
    };
    auto bottleneck = [&] {
        int64_t worst = 1;
        for (size_t i = 0; i < n; ++i)
            worst = std::max(worst, cand(i, pos[i]).latency);
        return worst;
    };

    // Start at the cheap end of every frontier (ascending latency on a
    // Pareto frontier means descending area, so the slowest candidate is
    // the area-minimal one). If even that overruns the budget, no
    // balanced selection will fit.
    if (!budget.fits(totalResources()))
        return out;

    int64_t current = bottleneck();
    while (true) {
        // Promote EVERY stage sitting at the bottleneck to its slowest
        // candidate that is strictly faster — the minimal promotion, so
        // the resource bill of the iteration stays as small as possible.
        std::vector<size_t> saved = pos;
        bool promotable = true;
        for (size_t i = 0; i < n && promotable; ++i) {
            if (cand(i, pos[i]).latency != current)
                continue;
            size_t p = pos[i];
            while (p > 0 && cand(i, p).latency >= current)
                --p;
            if (cand(i, p).latency >= current)
                promotable = false;
            else
                pos[i] = p;
        }
        if (!promotable) {
            pos = saved;
            break;
        }

        // Exchange refinement: while over budget, demote the slack stage
        // whose next-slower candidates free the largest fraction of the
        // overrun — but only to latencies strictly below the OLD
        // bottleneck, so an accepted iteration always improves it.
        bool fits = budget.fits(totalResources());
        while (!fits) {
            ResourceUsage used = totalResources();
            int64_t over_dsp = used.dsp - budget.dsp;
            int64_t over_lut = used.lut - budget.lut;
            int64_t over_mem = used.memoryBits - budget.memoryBits;
            double best_score = 0;
            size_t best_stage = n, best_pos = 0;
            for (size_t i = 0; i < n; ++i) {
                const ResourceUsage &have = cand(i, pos[i]).resources;
                for (size_t q = pos[i] + 1; q < feasible[i].size(); ++q) {
                    if (cand(i, q).latency >= current)
                        break; // Ascending: the rest are no faster.
                    const ResourceUsage &get = cand(i, q).resources;
                    // Fractional relief of each overrun resource,
                    // capped at 1 per resource so freeing far more than
                    // needed of one cannot mask worsening another.
                    auto relief = [](int64_t over, int64_t freed) {
                        if (over <= 0)
                            return 0.0;
                        return std::min(1.0, double(freed) / double(over));
                    };
                    double score =
                        relief(over_dsp, have.dsp - get.dsp) +
                        relief(over_lut, have.lut - get.lut) +
                        relief(over_mem,
                               have.memoryBits - get.memoryBits);
                    if (score > best_score) {
                        best_score = score;
                        best_stage = i;
                        best_pos = q;
                    }
                }
            }
            if (best_stage == n)
                break; // No slack left to trade.
            pos[best_stage] = best_pos;
            ++out.exchanges;
            fits = budget.fits(totalResources());
        }
        if (!fits) {
            pos = saved; // Undo the whole iteration.
            break;
        }
        ++out.refinementSteps;
        int64_t next = bottleneck();
        assert(next < current &&
               "accepted iteration must lower the bottleneck");
        current = next;
    }

    for (size_t i = 0; i < n; ++i)
        out.choice[i] = feasible[i][pos[i]];
    out.bottleneck = bottleneck();
    out.resources = totalResources();
    out.feasible = budget.fits(out.resources);
    assert(out.feasible && "loop invariant: selections stay in budget");
    return out;
}

GlobalAllocation
allocateUniformSplit(const std::vector<StageFrontier> &stages,
                     const ResourceBudget &budget,
                     const ResourceUsage &fixed)
{
    GlobalAllocation out;
    size_t n = stages.size();
    out.choice.assign(n, 0);
    if (n == 0) {
        out.resources = fixed;
        out.feasible = budget.fits(fixed);
        out.bottleneck = out.feasible ? 1 : kInfeasibleQoR;
        return out;
    }

    // Each stage shops alone in 1/n of the post-fixed budget.
    ResourceBudget share = budget;
    share.dsp = std::max<int64_t>(0, budget.dsp - fixed.dsp) / n;
    share.lut = std::max<int64_t>(0, budget.lut - fixed.lut) / n;
    share.memoryBits =
        std::max<int64_t>(0, budget.memoryBits - fixed.memoryBits) / n;

    auto feasible = feasibleByLatency(stages);
    int64_t worst = 1;
    ResourceUsage used = fixed;
    for (size_t i = 0; i < n; ++i) {
        size_t found = stages[i].candidates.size();
        for (size_t j : feasible[i]) {
            if (share.fits(stages[i].candidates[j].resources)) {
                found = j;
                break; // Ascending latency: first fit is fastest.
            }
        }
        if (found == stages[i].candidates.size())
            return out; // This stage's share fits nothing.
        out.choice[i] = found;
        worst = std::max(worst, stages[i].candidates[found].latency);
        used += stages[i].candidates[found].resources;
    }
    out.bottleneck = worst;
    out.resources = used;
    out.feasible = budget.fits(used);
    return out;
}

QoRResult
composeDataflowQoR(const std::vector<StageFrontier> &stages,
                   const std::vector<size_t> &choice, int64_t glue_latency,
                   const ResourceUsage &fixed)
{
    assert(choice.size() == stages.size());
    QoRResult result;
    result.latency = glue_latency;
    result.interval = 1;
    result.resources = fixed;
    for (size_t i = 0; i < stages.size(); ++i) {
        const StageCandidate &c = stages[i].candidates[choice[i]];
        int64_t latency = c.feasible ? c.latency : kInfeasibleQoR;
        result.latency = addQoRSaturating(result.latency, latency);
        result.interval = std::max(result.interval, latency);
        result.resources += c.resources;
        result.feasible &= c.feasible;
    }
    if (!result.feasible || result.latency >= kInfeasibleQoR) {
        result.feasible = false;
        result.latency = kInfeasibleQoR;
        result.interval = kInfeasibleQoR;
    }
    return result;
}

} // namespace scalehls
