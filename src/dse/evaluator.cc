#include "dse/evaluator.h"

#include "dse/pareto.h"

namespace scalehls {

QoRResult
CachingEvaluator::evaluateFresh(const DesignSpace::Point &point)
{
    materializations_.fetch_add(1, std::memory_order_relaxed);
    QoRResult result;
    auto module = space_.materialize(point);
    if (!module) {
        result.latency = kInfeasibleQoR;
        result.interval = kInfeasibleQoR;
        result.feasible = false;
    } else {
        QoREstimator estimator(module.get(), pool_, estimates_,
                               band_cache_);
        result = estimator.estimateModule();
        if (!result.feasible) {
            // An infeasible estimate (unknown trip counts, recursive
            // call cycles) carries internal placeholder latencies — e.g.
            // the recursion guard's latency-1 stub — that must not leak
            // into frontier ranking or annealing costs as if they were
            // excellent designs. Force the sentinel.
            result.latency = kInfeasibleQoR;
            result.interval = kInfeasibleQoR;
        }
    }
    return result;
}

QoRResult
CachingEvaluator::evaluate(const DesignSpace::Point &point)
{
    if (auto cached = cache_.lookup(point)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return *cached;
    }
    QoRResult result = evaluateFresh(point);
    cache_.insert(point, result);
    return result;
}

std::vector<QoRResult>
CachingEvaluator::evaluateBatch(const std::vector<DesignSpace::Point> &points)
{
    std::vector<QoRResult> results(points.size());

    // Resolve cache hits up front; only misses go to the pool. Duplicate
    // points within one batch each materialize at most once: the first
    // occurrence computes, later ones are either distinct batch slots
    // (evaluated independently — callers dedup batches; see
    // SearchContext::propose) or already-cached lookups.
    std::vector<size_t> misses;
    for (size_t i = 0; i < points.size(); ++i) {
        if (auto cached = cache_.lookup(points[i])) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            results[i] = *cached;
        } else {
            misses.push_back(i);
        }
    }

    auto evaluate_miss = [&](size_t mi) {
        size_t i = misses[mi];
        results[i] = evaluateFresh(points[i]);
    };
    if (pool_ && pool_->size() > 1 && misses.size() > 1)
        pool_->parallelFor(misses.size(), evaluate_miss);
    else
        for (size_t mi = 0; mi < misses.size(); ++mi)
            evaluate_miss(mi);

    for (size_t i : misses)
        cache_.insert(points[i], results[i]);
    return results;
}

} // namespace scalehls
