#include "dse/evaluator.h"

#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "dse/pareto.h"
#include "estimate/coherence_audit.h"

namespace scalehls {

bool
EvaluatorOptions::dseAuditEnvDefault()
{
    if (const char *env = std::getenv("SCALEHLS_DSE_AUDIT"))
        return std::string_view(env) != "0";
    return false;
}

bool
CachingEvaluator::recordAuditFindings(
    const std::vector<VerifyError> &findings)
{
    if (findings.empty())
        return false;
    audit_violations_.fetch_add(findings.size(),
                                std::memory_order_relaxed);
    for (const VerifyError &e : findings)
        std::cerr << "dse-audit: " << e.str() << "\n";
    return true;
}

std::optional<QoRResult>
CachingEvaluator::evaluateScheduled(const DesignSpace::Partial &partial)
{
    if (!partial.eligible ||
        partial.bandDigests.size() != partial.bandRoots.size())
        return std::nullopt;

    // Hold the looked-up entries by value (the sharded cache returns
    // copies) and compose only when EVERY band hit.
    std::string func_name = funcName(partial.func);
    std::vector<BandScheduleEntry> entries;
    entries.reserve(partial.bandDigests.size());
    for (size_t i = 0; i < partial.bandDigests.size(); ++i) {
        auto entry = estimates_->lookupSchedule(
            partial.bandDigests[i]->digest,
            func_name + "#" + std::to_string(i));
        if (!entry)
            return std::nullopt;
        entries.push_back(std::move(*entry));
    }

    if (options_.audit) {
        // L4: re-derive each band's digest from the phase-1 IR and
        // shape-check each entry against the external table that will
        // resolve it. Any finding drops the point to the full pipeline.
        std::vector<VerifyError> findings;
        for (size_t i = 0; i < entries.size(); ++i) {
            audit_checks_.fetch_add(1, std::memory_order_relaxed);
            auto coherent = auditBandCoherence(
                partial.bandRoots[i], partial.bandDigests[i]->digest,
                &partial.ownership);
            findings.insert(findings.end(), coherent.begin(),
                            coherent.end());
            auto shaped = auditScheduleEntry(
                entries[i], partial.bandDigests[i]->externals,
                func_name + "#" + std::to_string(i));
            findings.insert(findings.end(), shaped.begin(),
                            shaped.end());
        }
        if (recordAuditFindings(findings))
            return std::nullopt;
    }

    ScheduledFunction function;
    function.dataflow = partial.dataflowTop;
    function.bands.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i)
        function.bands.push_back(
            {&entries[i], &partial.bandDigests[i]->externals});
    for (const OwnedBuffer &buffer : partial.ownership.buffers)
        function.allocs.push_back({buffer.memref, buffer.kept});
    return composeScheduledQoR(function);
}

void
CachingEvaluator::insertScheduleEntries(
    const DesignSpace::Partial &partial, const QoREstimator &estimator)
{
    // The cleanup pipeline may have erased bands (e.g. emptied bodies);
    // entries are only replayable when the phase-1 bands map 1:1 onto
    // the final ones (cleanup never reorders or splits top-level loops).
    // Likewise, a cleanup outcome that falsified the phase-1 ownership
    // prediction (a kept buffer dissolved, a dead one survived) would
    // publish band content the phase-1 digests do not determine.
    auto final_bands = getLoopBands(partial.func);
    if (final_bands.size() != partial.bandDigests.size())
        return;
    if (!DesignSpace::finalOwnershipMatches(partial))
        return;
    const auto &band_estimates = estimator.lastBandEstimates();
    for (size_t i = 0; i < final_bands.size(); ++i) {
        if (!partial.bandDigests[i])
            continue; // Masked band (e.g. contains a call).
        auto it = band_estimates.find(final_bands[i].front());
        if (it == band_estimates.end())
            continue; // Function-tier hit skipped the band walk.
        auto entry = buildBandScheduleEntry(
            final_bands[i].front(), it->second,
            partial.bandDigests[i]->externals);
        if (entry) {
            entry->origin =
                funcName(partial.func) + "#" + std::to_string(i);
            estimates_->insertSchedule(partial.bandDigests[i]->digest,
                                       *entry);
        }
    }
}

QoRResult
CachingEvaluator::evaluateFresh(const DesignSpace::Point &point,
                                std::unique_ptr<Operation> *module_out)
{
    materializations_.fetch_add(1, std::memory_order_relaxed);
    const bool incremental =
        options_.incremental && estimates_ && options_.bandCache;

    QoRResult result;
    auto finalize = [&](QoRResult qor) {
        if (!qor.feasible) {
            // An infeasible estimate (unknown trip counts, recursive
            // call cycles) carries internal placeholder latencies — e.g.
            // the recursion guard's latency-1 stub — that must not leak
            // into frontier ranking or annealing costs as if they were
            // excellent designs. Force the sentinel.
            qor.latency = kInfeasibleQoR;
            qor.interval = kInfeasibleQoR;
        }
        return qor;
    };

    if (planner_) {
        BandPlanner::Outcome planned = planner_->evaluate(point);
        if (planned.auditChecks)
            audit_checks_.fetch_add(planned.auditChecks,
                                    std::memory_order_relaxed);
        recordAuditFindings(planned.auditFindings);
        switch (planned.kind) {
          case BandPlanner::Outcome::Kind::Composed:
            if (planned.usedOverlay) {
                overlay_materializations_.fetch_add(
                    1, std::memory_order_relaxed);
            } else {
                // Zero IR built: count it as a fast-path hit too — it is
                // the same validated band-incremental composition, minus
                // even the phase-1 transforms.
                fast_path_hits_.fetch_add(1, std::memory_order_relaxed);
                plan_composed_.fetch_add(1, std::memory_order_relaxed);
            }
            return finalize(planned.qor);
          case BandPlanner::Outcome::Kind::Infeasible:
            // Exactly what the legacy path returns for a point whose
            // materialization fails — minus the clone and transforms.
            plan_infeasible_.fetch_add(1, std::memory_order_relaxed);
            result.latency = kInfeasibleQoR;
            result.interval = kInfeasibleQoR;
            result.feasible = false;
            return result;
          case BandPlanner::Outcome::Kind::Fallback:
            if (planned.mismatched)
                plan_mismatches_.fetch_add(1,
                                           std::memory_order_relaxed);
            break; // Run the validated legacy pipeline below.
        }
    }

    DesignSpace::Partial partial;
    if (incremental) {
        partial = space_.beginMaterialize(point);
        if (partial.module) {
            if (auto composed = evaluateScheduled(partial)) {
                // Every band hit the schedule tier and validated: the
                // composed QoR is bit-identical to what the skipped
                // cleanup + partition + estimator walk would produce.
                fast_path_hits_.fetch_add(1, std::memory_order_relaxed);
                return finalize(*composed);
            }
        }
    }

    full_materializations_.fetch_add(1, std::memory_order_relaxed);
    auto module = incremental ? space_.finishMaterialize(partial)
                              : space_.materialize(point);
    if (!module) {
        result.latency = kInfeasibleQoR;
        result.interval = kInfeasibleQoR;
        result.feasible = false;
        return result;
    }

    QoREstimator estimator(module.get(), pool_, estimates_,
                           options_.bandCache,
                           options_.partitionAwareKeys);
    result = finalize(estimator.estimateModule());
    // funcEligible (not the all-band `eligible`): a mixed function whose
    // call-carrying bands are masked out still publishes entries for its
    // digestable bands.
    if (incremental && partial.funcEligible)
        insertScheduleEntries(partial, estimator);
    if (module_out)
        *module_out = std::move(module);
    return result;
}

void
CachingEvaluator::maybeRetain(const DesignSpace::Point &point,
                              const QoRResult &qor,
                              std::unique_ptr<Operation> module)
{
    if (!retention_enabled_ || !module || !qor.feasible)
        return;
    if (retention_budget_ && !qor.fits(*retention_budget_))
        return;
    // Strictly-better latency wins; ties keep the earlier (batch input
    // order) point, so the retained point is thread-count independent.
    if (retained_module_ && retained_qor_.latency <= qor.latency)
        return;
    retained_module_ = std::move(module);
    retained_point_ = point;
    retained_qor_ = qor;
}

std::unique_ptr<Operation>
CachingEvaluator::takeRetainedModule(const DesignSpace::Point &point)
{
    if (!retained_module_ || retained_point_ != point)
        return nullptr;
    return std::move(retained_module_);
}

QoRResult
CachingEvaluator::evaluate(const DesignSpace::Point &point)
{
    if (auto cached = cache_.lookup(point)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return *cached;
    }
    std::unique_ptr<Operation> module;
    QoRResult result =
        evaluateFresh(point, retention_enabled_ ? &module : nullptr);
    maybeRetain(point, result, std::move(module));
    cache_.insert(point, result);
    return result;
}

std::vector<QoRResult>
CachingEvaluator::evaluateBatch(const std::vector<DesignSpace::Point> &points)
{
    std::vector<QoRResult> results(points.size());

    // Resolve cache hits up front and dedup duplicate misses: identical
    // points in one batch materialize ONCE (the first slot computes,
    // later slots copy its result), so callers that cannot pre-dedup —
    // e.g. annealing chains re-proposing a neighbor — do not pay a
    // redundant materialization per duplicate slot.
    std::vector<size_t> misses;
    std::unordered_map<DesignSpace::Point, size_t, OrdinalVectorHash>
        first_miss;
    std::vector<std::pair<size_t, size_t>> duplicates; // (slot, miss idx)
    for (size_t i = 0; i < points.size(); ++i) {
        if (auto cached = cache_.lookup(points[i])) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            results[i] = *cached;
            continue;
        }
        auto [it, inserted] =
            first_miss.try_emplace(points[i], misses.size());
        if (inserted) {
            misses.push_back(i);
        } else {
            duplicates.push_back({i, it->second});
            batch_dedups_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    std::vector<std::unique_ptr<Operation>> modules(misses.size());
    auto evaluate_miss = [&](size_t mi) {
        size_t i = misses[mi];
        results[i] = evaluateFresh(
            points[i], retention_enabled_ ? &modules[mi] : nullptr);
    };
    if (pool_ && pool_->size() > 1 && misses.size() > 1)
        pool_->parallelFor(misses.size(), evaluate_miss);
    else
        for (size_t mi = 0; mi < misses.size(); ++mi)
            evaluate_miss(mi);

    // Sequential merge in input order: retention decisions and cache
    // publication stay deterministic at any thread count.
    for (size_t mi = 0; mi < misses.size(); ++mi) {
        size_t i = misses[mi];
        maybeRetain(points[i], results[i], std::move(modules[mi]));
        cache_.insert(points[i], results[i]);
    }
    for (auto [slot, mi] : duplicates)
        results[slot] = results[misses[mi]];
    return results;
}

} // namespace scalehls
