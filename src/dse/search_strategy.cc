#include "dse/search_strategy.h"

#include <cmath>

namespace scalehls {

//
// SearchContext
//

bool
SearchContext::propose(const DesignSpace::Point &point)
{
    if (!seen_.insert(point).second)
        return false;
    pending_.push_back(point);
    return true;
}

size_t
SearchContext::flush()
{
    if (pending_.empty())
        return 0;
    std::vector<QoRResult> results = evaluator_.evaluateBatch(pending_);
    for (size_t i = 0; i < pending_.size(); ++i)
        evaluated_.push_back({std::move(pending_[i]), results[i]});
    size_t count = pending_.size();
    pending_.clear();
    return count;
}

std::vector<size_t>
SearchContext::frontierIndices() const
{
    // Only feasible points compete for the frontier. paretoIndices keeps
    // every member of an identical-QoR tie group, and ALL infeasible
    // points share the one sentinel QoR — ranking them would turn an
    // all-infeasible evaluated set into an O(n) "frontier". Instead,
    // when nothing is feasible yet, a single representative keeps the
    // neighbor traversal seeded (deterministically: the earliest point).
    std::vector<QoRPoint> points;
    std::vector<size_t> feasible;
    points.reserve(evaluated_.size());
    for (size_t i = 0; i < evaluated_.size(); ++i) {
        const EvaluatedPoint &e = evaluated_[i];
        if (!e.qor.feasible)
            continue;
        points.push_back({e.qor.latency, areaOf(e.qor.resources)});
        feasible.push_back(i);
    }
    if (feasible.empty())
        return evaluated_.empty() ? std::vector<size_t>{}
                                  : std::vector<size_t>{0};
    std::vector<size_t> frontier;
    for (size_t idx : paretoIndices(points))
        frontier.push_back(feasible[idx]);
    return frontier;
}

//
// Strategies
//

std::unique_ptr<SearchStrategy>
SearchStrategy::create(DSEStrategy kind)
{
    switch (kind) {
      case DSEStrategy::NeighborTraversal:
        return std::make_unique<NeighborTraversalStrategy>();
      case DSEStrategy::RandomSampling:
        return std::make_unique<RandomSamplingStrategy>();
      case DSEStrategy::SimulatedAnnealing:
        return std::make_unique<SimulatedAnnealingStrategy>();
    }
    return std::make_unique<NeighborTraversalStrategy>();
}

void
NeighborTraversalStrategy::run(SearchContext &ctx, std::mt19937 &rng,
                               unsigned budget)
{
    // Per round: draw up to batchSize random frontier points, propose the
    // closest unevaluated neighbor of each, then evaluate the whole batch
    // at once. propose() marks points seen at proposal time, so drawing
    // the same frontier point twice in one round advances to its next
    // unevaluated neighbor instead of duplicating work.
    unsigned stalled_picks = 0;
    unsigned spent = 0;
    while (spent < budget) {
        auto frontier = ctx.frontierIndices();
        if (frontier.empty())
            break;
        unsigned round = std::min(ctx.batchSize(), budget - spent);
        size_t proposed = 0;
        for (unsigned k = 0; k < round; ++k) {
            size_t pick = frontier[std::uniform_int_distribution<size_t>(
                0, frontier.size() - 1)(rng)];
            const DesignSpace::Point &center =
                ctx.evaluated()[pick].point;
            for (const auto &neighbor : ctx.space().neighbors(center)) {
                if (ctx.propose(neighbor)) {
                    ++proposed;
                    break;
                }
            }
        }
        spent += round;
        if (proposed == 0) {
            // Every drawn frontier point had an exhausted neighborhood;
            // after ~2 full frontier sweeps of failed picks, the whole
            // frontier is almost surely exhausted.
            stalled_picks += round;
            if (stalled_picks > 2 * frontier.size())
                break;
        } else {
            stalled_picks = 0;
            ctx.flush(); // Step 3: evaluation (frontier auto-updates).
        }
    }
}

void
RandomSamplingStrategy::run(SearchContext &ctx, std::mt19937 &rng,
                            unsigned budget)
{
    for (unsigned spent = 0; spent < budget;) {
        unsigned round = std::min(ctx.batchSize(), budget - spent);
        for (unsigned k = 0; k < round; ++k)
            ctx.propose(ctx.space().randomPoint(rng));
        spent += round;
        ctx.flush();
    }
}

void
SimulatedAnnealingStrategy::run(SearchContext &ctx, std::mt19937 &rng,
                                unsigned budget)
{
    // Scalarized objective (latency; infeasible points already carry the
    // sentinel), classic exponential cooling.
    if (ctx.evaluated().empty())
        return;
    auto cost = [](const QoRResult &qor) {
        return static_cast<double>(qor.latency);
    };
    size_t best = 0;
    for (size_t i = 1; i < ctx.evaluated().size(); ++i)
        if (cost(ctx.evaluated()[i].qor) < cost(ctx.evaluated()[best].qor))
            best = i;
    DesignSpace::Point current = ctx.evaluated()[best].point;
    double current_cost = cost(ctx.evaluated()[best].qor);
    double t0 = current_cost > 0 ? current_cost : 1.0;

    unsigned iter = 0;
    while (iter < budget) {
        // Draw a round of candidate neighbors of the round-start point
        // and evaluate them together; the acceptance chain then walks the
        // draws in order, so the trajectory is thread-count independent.
        auto neighbors = ctx.space().neighbors(current);
        if (neighbors.empty())
            break;
        unsigned round = std::min(ctx.batchSize(), budget - iter);
        std::vector<DesignSpace::Point> draws;
        for (unsigned k = 0; k < round; ++k) {
            draws.push_back(neighbors[std::uniform_int_distribution<size_t>(
                0, neighbors.size() - 1)(rng)]);
            ctx.propose(draws.back());
        }
        ctx.flush();

        for (const DesignSpace::Point &candidate : draws) {
            double temperature =
                t0 * std::pow(0.01, static_cast<double>(iter + 1) / budget);
            ++iter;
            double candidate_cost = cost(ctx.qorOf(candidate));
            double delta = candidate_cost - current_cost;
            bool accept = delta <= 0;
            if (!accept && temperature > 0) {
                double p = std::exp(-delta / temperature);
                accept =
                    std::uniform_real_distribution<double>(0, 1)(rng) < p;
            }
            if (accept) {
                current = candidate;
                current_cost = candidate_cost;
            }
        }
    }
}

} // namespace scalehls
