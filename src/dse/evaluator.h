/**
 * @file
 * The QoR evaluation layer of the DSE stack: an Evaluator interface with
 * single-point and batched entry points, plus the default caching
 * implementation that materializes each point on its own clone of the
 * pristine module (so evaluations of distinct points are independent) and
 * fans a batch out over a ThreadPool.
 *
 * Results are returned BY VALUE: the memo cache is sharded and grows
 * concurrently, so a `const QoRResult&` into it could not survive a
 * neighboring insert. Batch results come back in input order regardless
 * of completion order, which is what keeps N-thread runs bit-identical
 * to 1-thread runs.
 */

#ifndef SCALEHLS_DSE_EVALUATOR_H
#define SCALEHLS_DSE_EVALUATOR_H

#include <atomic>
#include <memory>

#include "dse/band_plan.h"
#include "dse/design_space.h"
#include "estimate/estimate_cache.h"
#include "support/concurrent_cache.h"
#include "support/thread_pool.h"

namespace scalehls {

/** An evaluated design point. */
struct EvaluatedPoint
{
    DesignSpace::Point point;
    QoRResult qor;
};

/** QoR evaluation of design points. Implementations must be safe to call
 * from one thread while evaluateBatch internally uses many. */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Evaluate one point. */
    virtual QoRResult evaluate(const DesignSpace::Point &point) = 0;

    /** Evaluate a batch; result[i] corresponds to points[i]. */
    virtual std::vector<QoRResult>
    evaluateBatch(const std::vector<DesignSpace::Point> &points) = 0;
};

/** Tuning knobs of the default evaluator. */
struct EvaluatorOptions
{
    /** Band-level tier of the estimate cache. */
    bool bandCache = true;
    /** Partition-aware band keys: digest external memref layouts only
     * along dims the band's estimate reads (see
     * bandEstimateDigestInfo). */
    bool partitionAwareKeys = true;
    /** Band-incremental materialization: when every band of a point hits
     * the schedule tier (and the cross-band partition validation
     * passes), skip cleanup + array partition + the estimator walk and
     * compose the QoR from the cached per-band entries. Requires an
     * estimate cache with the band tier on; results are always
     * bit-identical to the full path. */
    bool incremental = true;
    /** Plan-first evaluation (requires `incremental` + the band tier +
     * an estimate cache): predict each band's phase-1 digest from the
     * pristine kernel and the decoded choice (the PLAN cache tier, no
     * IR built), compose fully predicted points with zero clones, and
     * materialize partial misses through a copy-on-write overlay that
     * rebuilds only the missed bands. Predictions are validated against
     * every overlay materialization (mismatches fall back to the full
     * pipeline and are counted), so results stay bit-identical. */
    bool planFirst = true;
    /** Audit mode (`-dse-audit` / SCALEHLS_DSE_AUDIT): run the L3/L4
     * auditors (overlay aliasing, cache coherence, schedule-entry shape,
     * overlay IR verification) at every fast-path decision. A finding is
     * counted, reported, and forces the slow path — audited runs trade
     * time for proof, never correctness. */
    bool audit = dseAuditEnvDefault();

    /** The env default for `audit`: set SCALEHLS_DSE_AUDIT (any value
     * but "0") to audit every evaluator in the process — how the
     * sanitizer CI legs switch whole test suites into audit mode. */
    static bool dseAuditEnvDefault();
};

/** The default evaluator: materialize + estimate behind a sharded memo
 * cache, batches spread over @p pool (nullptr or a 1-wide pool runs
 * inline). The cache is keyed on the full point vector, so re-probing an
 * already-evaluated point is a lookup, not a re-materialization; a miss
 * first tries the band-incremental fast path (phase-1 transforms + the
 * schedule tier of the estimate cache) before paying for a full
 * materialization.
 *
 * An infeasible estimate (unknown trips, call cycles, failed analysis)
 * is returned carrying the kInfeasibleQoR latency/interval sentinel —
 * the estimator's internal placeholder numbers never escape here, so
 * every consumer (Pareto ranking, annealing cost, reporting) sees an
 * infeasible point as maximally bad instead of accidentally optimal.
 *
 * @p estimates (optional, not owned) is the cross-point estimate cache:
 * per-function results keyed by content digest, shared across every
 * worker (and potentially across evaluators). The pool is also handed to
 * each QoREstimator so multi-function points estimate their callees
 * concurrently (intra-point parallelism). */
class CachingEvaluator : public Evaluator
{
  public:
    explicit CachingEvaluator(const DesignSpace &space,
                              ThreadPool *pool = nullptr,
                              EstimateCache *estimates = nullptr,
                              EvaluatorOptions options = {})
        : space_(space), pool_(pool), estimates_(estimates),
          options_(options)
    {
        if (options_.planFirst && estimates_ && options_.incremental &&
            options_.bandCache) {
            planner_ = std::make_unique<BandPlanner>(
                space_, estimates_, options_.partitionAwareKeys,
                options_.audit);
            if (!planner_->enabled())
                planner_.reset();
        }
    }

    QoRResult evaluate(const DesignSpace::Point &point) override;
    std::vector<QoRResult>
    evaluateBatch(const std::vector<DesignSpace::Point> &points) override;

    /** Keep the module of the best slow-path evaluation seen so far
     * (lowest-latency feasible point, optionally restricted to designs
     * fitting @p budget — the finalize criterion), so the engine can
     * hand the winning module back without re-materializing it.
     * Retention decisions happen on the sequential result-merge path in
     * batch input order, so the retained point is identical at any
     * thread count. */
    void
    retainBestModule(std::optional<ResourceBudget> budget)
    {
        retention_enabled_ = true;
        retention_budget_ = std::move(budget);
    }
    /** The retained module if it belongs to exactly @p point (ownership
     * transfers); nullptr otherwise. */
    std::unique_ptr<Operation> takeRetainedModule(
        const DesignSpace::Point &point);

    /** Number of uncached (memo-miss) evaluations. */
    size_t numMaterializations() const { return materializations_.load(); }
    /** Uncached evaluations that ran the FULL pipeline (phase-2 cleanup
     * + partition + estimator walk). */
    size_t numFullMaterializations() const
    {
        return full_materializations_.load();
    }
    /** Uncached evaluations served by the band-incremental fast path
     * (every band hit the schedule tier and validated) — including the
     * plan-composed ones, which additionally built zero IR. */
    size_t numFastPathHits() const { return fast_path_hits_.load(); }
    /** Fast-path hits decided entirely from the PLAN + SCHEDULE tiers:
     * no clone, no transform, no IR of any kind. */
    size_t numPlanComposed() const { return plan_composed_.load(); }
    /** Uncached evaluations that materialized through a copy-on-write
     * overlay (only the schedule-tier misses among the point's bands
     * were built; the rest composed from cache). */
    size_t numOverlayMaterializations() const
    {
        return overlay_materializations_.load();
    }
    /** Points the planner proved infeasible with zero IR (unroll cap, or
     * a cached per-band transform failure). */
    size_t numPlanInfeasible() const { return plan_infeasible_.load(); }
    /** Overlay materializations whose actual phase-1 digest contradicted
     * the PLAN tier's prediction; such points fell back to the full
     * pipeline, so a nonzero count costs time, never correctness. */
    size_t numPlanMismatches() const { return plan_mismatches_.load(); }
    /** Number of evaluations served from the cache. */
    size_t numCacheHits() const { return cache_hits_.load(); }
    /** Duplicate in-batch slots served from their sibling's result. */
    size_t numBatchDedups() const { return batch_dedups_.load(); }
    /** Audit-mode auditor invocations (0 when auditing is off). */
    size_t numAuditChecks() const { return audit_checks_.load(); }
    /** Audit findings. Every finding also forced the affected point onto
     * the validated slow path, so a nonzero count flags a broken
     * invariant without ever having produced a wrong QoR. */
    size_t numAuditViolations() const { return audit_violations_.load(); }

  private:
    /** Uncached materialize + estimate of one point. @p module_out
     * (optional) receives the materialized module when the full pipeline
     * ran (the fast path composes the QoR without one). */
    QoRResult evaluateFresh(const DesignSpace::Point &point,
                            std::unique_ptr<Operation> *module_out =
                                nullptr);
    /** The band-incremental fast path; nullopt -> run the full
     * pipeline. */
    std::optional<QoRResult> evaluateScheduled(
        const DesignSpace::Partial &partial);
    /** Publish the schedule-tier entries of a fully materialized,
     * eligible point. */
    void insertScheduleEntries(const DesignSpace::Partial &partial,
                               const QoREstimator &estimator);
    /** Count + report audit findings (audit mode only). Returns true
     * when there was at least one finding. */
    bool recordAuditFindings(const std::vector<VerifyError> &findings);
    /** Retention hook; called only from sequential merge paths. */
    void maybeRetain(const DesignSpace::Point &point,
                     const QoRResult &qor,
                     std::unique_ptr<Operation> module);

    const DesignSpace &space_;
    ThreadPool *pool_;
    EstimateCache *estimates_ = nullptr;
    EvaluatorOptions options_;
    /** Plan-first evaluation over the PLAN cache tier (null when
     * disabled by options or by the kernel's shape). */
    std::unique_ptr<BandPlanner> planner_;
    ConcurrentCache<DesignSpace::Point, QoRResult, OrdinalVectorHash>
        cache_;
    std::atomic<size_t> materializations_{0};
    std::atomic<size_t> full_materializations_{0};
    std::atomic<size_t> fast_path_hits_{0};
    std::atomic<size_t> plan_composed_{0};
    std::atomic<size_t> overlay_materializations_{0};
    std::atomic<size_t> plan_infeasible_{0};
    std::atomic<size_t> plan_mismatches_{0};
    std::atomic<size_t> cache_hits_{0};
    std::atomic<size_t> batch_dedups_{0};
    std::atomic<size_t> audit_checks_{0};
    std::atomic<size_t> audit_violations_{0};

    bool retention_enabled_ = false;
    std::optional<ResourceBudget> retention_budget_;
    std::unique_ptr<Operation> retained_module_;
    DesignSpace::Point retained_point_;
    QoRResult retained_qor_;
};

} // namespace scalehls

#endif // SCALEHLS_DSE_EVALUATOR_H
