/**
 * @file
 * The QoR evaluation layer of the DSE stack: an Evaluator interface with
 * single-point and batched entry points, plus the default caching
 * implementation that materializes each point on its own clone of the
 * pristine module (so evaluations of distinct points are independent) and
 * fans a batch out over a ThreadPool.
 *
 * Results are returned BY VALUE: the memo cache is sharded and grows
 * concurrently, so a `const QoRResult&` into it could not survive a
 * neighboring insert. Batch results come back in input order regardless
 * of completion order, which is what keeps N-thread runs bit-identical
 * to 1-thread runs.
 */

#ifndef SCALEHLS_DSE_EVALUATOR_H
#define SCALEHLS_DSE_EVALUATOR_H

#include <atomic>

#include "dse/design_space.h"
#include "estimate/estimate_cache.h"
#include "support/concurrent_cache.h"
#include "support/thread_pool.h"

namespace scalehls {

/** An evaluated design point. */
struct EvaluatedPoint
{
    DesignSpace::Point point;
    QoRResult qor;
};

/** QoR evaluation of design points. Implementations must be safe to call
 * from one thread while evaluateBatch internally uses many. */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Evaluate one point. */
    virtual QoRResult evaluate(const DesignSpace::Point &point) = 0;

    /** Evaluate a batch; result[i] corresponds to points[i]. */
    virtual std::vector<QoRResult>
    evaluateBatch(const std::vector<DesignSpace::Point> &points) = 0;
};

/** The default evaluator: materialize + estimate behind a sharded memo
 * cache, batches spread over @p pool (nullptr or a 1-wide pool runs
 * inline). The cache is keyed on the full point vector, so re-probing an
 * already-evaluated point is a lookup, not a re-materialization.
 *
 * An infeasible estimate (unknown trips, call cycles, failed analysis)
 * is returned carrying the kInfeasibleQoR latency/interval sentinel —
 * the estimator's internal placeholder numbers never escape here, so
 * every consumer (Pareto ranking, annealing cost, reporting) sees an
 * infeasible point as maximally bad instead of accidentally optimal.
 *
 * @p estimates (optional, not owned) is the cross-point estimate cache:
 * per-function results keyed by content digest, shared across every
 * worker (and potentially across evaluators). @p band_cache additionally
 * enables its band-level tier, so points differing only inside one band
 * of a function reuse the other bands' estimates. The pool is also
 * handed to each QoREstimator so multi-function points estimate their
 * callees concurrently (intra-point parallelism). */
class CachingEvaluator : public Evaluator
{
  public:
    explicit CachingEvaluator(const DesignSpace &space,
                              ThreadPool *pool = nullptr,
                              EstimateCache *estimates = nullptr,
                              bool band_cache = true)
        : space_(space), pool_(pool), estimates_(estimates),
          band_cache_(band_cache)
    {}

    QoRResult evaluate(const DesignSpace::Point &point) override;
    std::vector<QoRResult>
    evaluateBatch(const std::vector<DesignSpace::Point> &points) override;

    /** Number of materialize+estimate runs (cache misses). */
    size_t numMaterializations() const { return materializations_.load(); }
    /** Number of evaluations served from the cache. */
    size_t numCacheHits() const { return cache_hits_.load(); }

  private:
    /** Uncached materialize + estimate of one point. */
    QoRResult evaluateFresh(const DesignSpace::Point &point);

    const DesignSpace &space_;
    ThreadPool *pool_;
    EstimateCache *estimates_ = nullptr;
    bool band_cache_ = true;
    ConcurrentCache<DesignSpace::Point, QoRResult, OrdinalVectorHash>
        cache_;
    std::atomic<size_t> materializations_{0};
    std::atomic<size_t> cache_hits_{0};
};

} // namespace scalehls

#endif // SCALEHLS_DSE_EVALUATOR_H
