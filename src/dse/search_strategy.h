/**
 * @file
 * Search strategies of the DSE engine, split behind a common interface:
 * the paper's neighbor-traversing Pareto search (Section V-E2), random
 * sampling, and simulated annealing. Strategies propose BATCHES of
 * unevaluated points per round through a SearchContext; the context
 * evaluates each batch (possibly in parallel) and merges results back in
 * proposal order, so the search trajectory depends only on the RNG seed
 * and the batch size — never on the thread count.
 */

#ifndef SCALEHLS_DSE_SEARCH_STRATEGY_H
#define SCALEHLS_DSE_SEARCH_STRATEGY_H

#include <memory>
#include <random>
#include <set>

#include "dse/evaluator.h"
#include "dse/pareto.h"

namespace scalehls {

/** Search strategy selector. The paper's engine is the neighbor-traversing
 * Pareto search; the alternatives exist for the extensibility the paper
 * calls out (Section VIII) and for the ablation benches. */
enum class DSEStrategy
{
    NeighborTraversal, ///< Paper Section V-E2 (default).
    RandomSampling,    ///< Pure random search at the same budget.
    SimulatedAnnealing ///< Classic annealer over the same space.
};

/** The shared exploration state strategies operate on: the evaluated-point
 * record, the seen-set, and the pending proposal batch. Single-threaded by
 * contract — only flush() fans out, through the evaluator. */
class SearchContext
{
  public:
    SearchContext(const DesignSpace &space, Evaluator &evaluator,
                  std::vector<EvaluatedPoint> &evaluated,
                  unsigned batch_size)
        : space_(space), evaluator_(evaluator), evaluated_(evaluated),
          batch_size_(batch_size == 0 ? 1 : batch_size)
    {}

    const DesignSpace &space() const { return space_; }
    /** Target number of proposals per round. */
    unsigned batchSize() const { return batch_size_; }

    /** Queue @p point for the next flush unless it was ever proposed
     * before; marks it seen immediately so one round never queues the
     * same point twice. Returns true when queued. */
    bool propose(const DesignSpace::Point &point);
    /** True when the point was proposed (evaluated or pending). */
    bool isSeen(const DesignSpace::Point &point) const
    {
        return seen_.count(point) != 0;
    }
    /** Evaluate the pending batch (input order preserved) and append the
     * results to evaluated(). Returns the number of points evaluated. */
    size_t flush();

    const std::vector<EvaluatedPoint> &evaluated() const
    {
        return evaluated_;
    }
    /** QoR of an already-proposed point (served from the evaluator's
     * cache; a fresh evaluation otherwise). */
    QoRResult qorOf(const DesignSpace::Point &point)
    {
        return evaluator_.evaluate(point);
    }

    /** Pareto-optimal indices over evaluated() (infeasible points carry
     * the kInfeasibleQoR sentinel and never win). */
    std::vector<size_t> frontierIndices() const;

  private:
    const DesignSpace &space_;
    Evaluator &evaluator_;
    std::vector<EvaluatedPoint> &evaluated_;
    std::set<DesignSpace::Point> seen_;
    std::vector<DesignSpace::Point> pending_;
    unsigned batch_size_;
};

/** A search strategy: evolves the context within a proposal budget. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Run the search. @p budget bounds the number of proposal attempts
     * (the seed engine's maxIterations). @p rng is the engine's seeded
     * generator — draw from it only on the proposal path so runs stay
     * deterministic. */
    virtual void run(SearchContext &ctx, std::mt19937 &rng,
                     unsigned budget) = 0;

    static std::unique_ptr<SearchStrategy> create(DSEStrategy kind);
};

/** Steps 2-4 of the paper's engine: per round, propose the closest
 * unevaluated neighbor of up to batchSize random Pareto points, evaluate
 * the batch, repeat until the budget or the frontier is exhausted. */
class NeighborTraversalStrategy : public SearchStrategy
{
  public:
    void run(SearchContext &ctx, std::mt19937 &rng,
             unsigned budget) override;
};

/** Random search at the same budget (ablation baseline). */
class RandomSamplingStrategy : public SearchStrategy
{
  public:
    void run(SearchContext &ctx, std::mt19937 &rng,
             unsigned budget) override;
};

/** Classic exponential-cooling annealer. Each round draws a batch of
 * random neighbors of the current point, evaluates them together, then
 * walks the acceptance chain in draw order. */
class SimulatedAnnealingStrategy : public SearchStrategy
{
  public:
    void run(SearchContext &ctx, std::mt19937 &rng,
             unsigned budget) override;
};

} // namespace scalehls

#endif // SCALEHLS_DSE_SEARCH_STRATEGY_H
