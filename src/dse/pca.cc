#include "dse/pca.h"

#include <cmath>

namespace scalehls {

namespace {

/** Power iteration for the dominant eigenvector of a symmetric matrix. */
std::vector<double>
dominantEigenvector(const std::vector<std::vector<double>> &matrix)
{
    size_t d = matrix.size();
    std::vector<double> v(d, 1.0 / std::sqrt(static_cast<double>(d)));
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<double> next(d, 0.0);
        for (size_t i = 0; i < d; ++i)
            for (size_t j = 0; j < d; ++j)
                next[i] += matrix[i][j] * v[j];
        double norm = 0;
        for (double x : next)
            norm += x * x;
        norm = std::sqrt(norm);
        if (norm < 1e-12)
            return v;
        for (double &x : next)
            x /= norm;
        v = next;
    }
    return v;
}

} // namespace

std::vector<std::pair<double, double>>
pcaProject2D(const std::vector<std::vector<double>> &samples)
{
    std::vector<std::pair<double, double>> projected;
    if (samples.empty())
        return projected;
    size_t n = samples.size();
    size_t d = samples.front().size();

    // Standardize columns.
    std::vector<double> mean(d, 0.0);
    std::vector<double> stddev(d, 0.0);
    for (const auto &row : samples)
        for (size_t j = 0; j < d; ++j)
            mean[j] += row[j];
    for (size_t j = 0; j < d; ++j)
        mean[j] /= static_cast<double>(n);
    for (const auto &row : samples)
        for (size_t j = 0; j < d; ++j)
            stddev[j] += (row[j] - mean[j]) * (row[j] - mean[j]);
    for (size_t j = 0; j < d; ++j)
        stddev[j] = std::sqrt(stddev[j] / static_cast<double>(n));

    std::vector<std::vector<double>> z(n, std::vector<double>(d, 0.0));
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < d; ++j)
            z[i][j] = stddev[j] > 1e-12
                          ? (samples[i][j] - mean[j]) / stddev[j]
                          : 0.0;

    // Covariance.
    std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
    for (size_t i = 0; i < n; ++i)
        for (size_t a = 0; a < d; ++a)
            for (size_t b = 0; b < d; ++b)
                cov[a][b] += z[i][a] * z[i][b];
    for (size_t a = 0; a < d; ++a)
        for (size_t b = 0; b < d; ++b)
            cov[a][b] /= static_cast<double>(n);

    auto pc0 = dominantEigenvector(cov);

    // Deflate: cov' = cov - lambda * pc0 pc0^T.
    double lambda = 0;
    for (size_t a = 0; a < d; ++a)
        for (size_t b = 0; b < d; ++b)
            lambda += pc0[a] * cov[a][b] * pc0[b];
    for (size_t a = 0; a < d; ++a)
        for (size_t b = 0; b < d; ++b)
            cov[a][b] -= lambda * pc0[a] * pc0[b];
    auto pc1 = dominantEigenvector(cov);

    projected.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double x = 0, y = 0;
        for (size_t j = 0; j < d; ++j) {
            x += z[i][j] * pc0[j];
            y += z[i][j] * pc1[j];
        }
        projected.emplace_back(x, y);
    }
    return projected;
}

} // namespace scalehls
