/**
 * @file
 * The multi-dimensional design space of one HLS kernel (paper Section V-E):
 * each dimension is the on/off switch or tunable parameter of a transform
 * pass — loop perfectization, variable-bound removal, loop order, tile
 * size per loop, and pipeline II. Array partitioning is derived
 * automatically from the access pattern of each materialized point.
 */

#ifndef SCALEHLS_DSE_DESIGN_SPACE_H
#define SCALEHLS_DSE_DESIGN_SPACE_H

#include <memory>
#include <random>

#include "estimate/qor_estimator.h"
#include "transform/pass.h"

namespace scalehls {

/** Options bounding the constructed space. */
struct DesignSpaceOptions
{
    int64_t maxTileSize = 64;      ///< Per-loop tile (unroll) cap.
    int64_t maxTotalUnroll = 512;  ///< Cap on the product of tile sizes.
    int64_t maxII = 64;            ///< Largest candidate target II.
};

/** The tunable design space of a single-band kernel function.
 *
 * Thread-safety: every const method (decode, materialize, neighbors,
 * randomPoint, canonicalSeedPoints, ...) is re-entrant — materialization
 * clones the pristine module per call and mutates only the clone — so
 * concurrent evaluation of distinct points through a shared DesignSpace
 * is safe. QoR evaluation/memoization lives in dse/evaluator.h. */
class DesignSpace
{
  public:
    /** A point: one ordinal per dimension. */
    using Point = std::vector<int>;

    /** @name Dimension layout
     * The first dimensions are the two legalization switches, then the
     * loop-order permutation, then one tile dimension per loop, then the
     * pipeline II. Use these accessors instead of magic indices. */
    ///@{
    size_t dimLoopPerfectization() const { return 0; }
    size_t dimRemoveVariableBound() const { return 1; }
    size_t dimPermutation() const { return 2; }
    size_t dimFirstTile() const { return 3; }
    size_t dimTargetII() const { return 3 + trip_counts_.size(); }
    ///@}

    /** @p module is the unoptimized affine-level module; its top function
     * must contain at least one loop band (the primary compute band is the
     * deepest one). */
    DesignSpace(Operation *module, DesignSpaceOptions options = {});

    /** Number of dimensions: 2 (LP, RVB) + 1 (permutation) + #loops
     * (tile sizes) + 1 (II). */
    size_t numDims() const { return dim_sizes_.size(); }
    const std::vector<int> &dimSizes() const { return dim_sizes_; }
    /** Total number of design points. */
    double spaceSize() const;
    /** Number of loops in the optimized band. */
    size_t bandDepth() const { return trip_counts_.size(); }

    Point randomPoint(std::mt19937 &rng) const;
    /** All ±1 single-dimension neighbors of @p point. */
    std::vector<Point> neighbors(const Point &point) const;

    /** The canonical seed points: the baseline schedule under each
     * combination of the legalization switches. These guarantee the
     * neighbor traversal a feasible frontier even when random tiles are
     * mostly illegal. Degenerate spaces (fewer dims than switches) fall
     * back to the switch settings that exist. */
    std::vector<Point> canonicalSeedPoints() const;

    /** The decoded parameters of a point (for reporting, Table III). */
    struct Decoded
    {
        bool loopPerfectization;
        bool removeVariableBound;
        std::vector<unsigned> permMap;
        std::vector<int64_t> tileSizes;
        int64_t targetII;
    };
    Decoded decode(const Point &point) const;

    /** Clone the pristine module and apply the point's schedule: LP, RVB,
     * permutation, tiling, pipelining, simplification, array partition.
     * Returns nullptr when the point is not materializable (e.g. unroll
     * product too large). */
    std::unique_ptr<Operation> materialize(const Point &point) const;

    /** Per-memref partition factors of a materialized design, formatted
     * like Table III ("A:[8, 16]"). */
    static std::string partitionSummary(Operation *module);

  private:
    std::unique_ptr<Operation> pristine_;
    DesignSpaceOptions options_;
    std::vector<int> dim_sizes_;
    std::vector<std::vector<unsigned>> permutations_;
    std::vector<std::vector<int64_t>> tile_candidates_;
    std::vector<int64_t> trip_counts_;
    std::vector<int64_t> ii_candidates_;
};

} // namespace scalehls

#endif // SCALEHLS_DSE_DESIGN_SPACE_H
