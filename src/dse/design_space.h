/**
 * @file
 * The multi-dimensional design space of one HLS kernel (paper Section V-E):
 * each dimension is the on/off switch or tunable parameter of a transform
 * pass — loop perfectization, variable-bound removal, and, PER top-level
 * loop band, the loop order, tile size per loop, and pipeline II. Array
 * partitioning is derived automatically from the access pattern of each
 * materialized point.
 */

#ifndef SCALEHLS_DSE_DESIGN_SPACE_H
#define SCALEHLS_DSE_DESIGN_SPACE_H

#include <memory>
#include <random>

#include "estimate/qor_estimator.h"
#include "transform/pass.h"

namespace scalehls {

/** Options bounding the constructed space. */
struct DesignSpaceOptions
{
    int64_t maxTileSize = 64;      ///< Per-loop tile (unroll) cap.
    int64_t maxTotalUnroll = 512;  ///< Cap on the tile-size product PER BAND.
    int64_t maxII = 64;            ///< Largest candidate target II.
    /** Band-incremental fast path on dataflow-top functions: replay the
     * stage-overlap composition (interval = slowest stage, double-
     * buffered channel memory) from cached per-band entries. Validated
     * and bit-identical like the sequential fast path; off restricts the
     * fast path to sequential tops (A/B comparison). */
    bool dataflowFastPath = true;
};

/** The tunable design space of a kernel function with one or more
 * top-level loop bands (multi-stage kernels like 2mm/3mm get per-band
 * order/tile/II dimensions; the historical single-band layout is the
 * one-band special case).
 *
 * Thread-safety: every const method (decode, materialize, neighbors,
 * randomPoint, canonicalSeedPoints, ...) is re-entrant — materialization
 * clones the pristine module per call and mutates only the clone — so
 * concurrent evaluation of distinct points through a shared DesignSpace
 * is safe. QoR evaluation/memoization lives in dse/evaluator.h. */
class DesignSpace
{
  public:
    /** A point: one ordinal per dimension. */
    using Point = std::vector<int>;

    /** @name Dimension layout
     * The first dimensions are the two legalization switches; then, for
     * each top-level band in function body order: the loop-order
     * permutation, one tile dimension per loop, and the pipeline II.
     * Use these accessors instead of magic indices. */
    ///@{
    size_t dimLoopPerfectization() const { return 0; }
    size_t dimRemoveVariableBound() const { return 1; }
    size_t dimPermutation(size_t band) const
    {
        return bands_[band].firstDim;
    }
    size_t dimFirstTile(size_t band) const
    {
        return bands_[band].firstDim + 1;
    }
    size_t dimTargetII(size_t band) const
    {
        return bands_[band].firstDim + 1 + bands_[band].tripCounts.size();
    }
    ///@}

    /** @p module is the unoptimized affine-level module; its top function
     * must contain at least one top-level loop band. */
    DesignSpace(Operation *module, DesignSpaceOptions options = {});

    /** Number of dimensions: 2 (LP, RVB) + per band (1 permutation +
     * #loops tile sizes + 1 II). */
    size_t numDims() const { return dim_sizes_.size(); }
    const std::vector<int> &dimSizes() const { return dim_sizes_; }
    /** Total number of design points. */
    double spaceSize() const;
    /** Number of tunable top-level bands. */
    size_t numBands() const { return bands_.size(); }
    /** Number of loops in band @p band. */
    size_t bandDepth(size_t band) const
    {
        return bands_[band].tripCounts.size();
    }
    /** Number of loops in the deepest (primary) band. */
    size_t bandDepth() const
    {
        return bands_[primaryBandIndex()].tripCounts.size();
    }

    Point randomPoint(std::mt19937 &rng) const;
    /** All ±1 single-dimension neighbors of @p point. */
    std::vector<Point> neighbors(const Point &point) const;

    /** The canonical seed points: the baseline schedule under each
     * combination of the legalization switches. These guarantee the
     * neighbor traversal a feasible frontier even when random tiles are
     * mostly illegal. */
    std::vector<Point> canonicalSeedPoints() const;

    /** The decoded schedule of one band. */
    struct BandChoice
    {
        std::vector<unsigned> permMap;
        std::vector<int64_t> tileSizes;
        int64_t targetII;
    };

    /** The decoded parameters of a point (for reporting, Table III). */
    struct Decoded
    {
        bool loopPerfectization;
        bool removeVariableBound;
        /** Per-band schedules, in function body order. */
        std::vector<BandChoice> bands;
        /** @name Primary-band view
         * The deepest band's schedule, mirrored for single-band
         * reporting (Table III kernels have exactly one band). */
        ///@{
        std::vector<unsigned> permMap;
        std::vector<int64_t> tileSizes;
        int64_t targetII;
        ///@}
    };
    Decoded decode(const Point &point) const;

    /** Clone the pristine module and apply the point's schedule: LP, RVB,
     * then per band permutation, tiling, pipelining, followed by
     * simplification and array partition. Returns nullptr when the point
     * is not materializable (e.g. unroll product too large, pipelining
     * fails). Equivalent to finishMaterialize(beginMaterialize(point)). */
    std::unique_ptr<Operation> materialize(const Point &point) const;

    /** Phase 1 of a materialization: the per-band structural transforms
     * (LP/RVB, permutation, tiling, pipelining) plus the fast-path
     * bookkeeping — each band's phase-1 digest and eligibility for the
     * band-incremental evaluation (composeScheduledQoR). Phase 2
     * (finishMaterialize) runs the function-wide cleanup pipeline and
     * array partition; the split lets a caller whose bands all hit the
     * schedule cache tier skip phase 2 — and the estimator walk —
     * entirely. */
    struct Partial
    {
        /** Phase-1 module; nullptr when the point is not
         * materializable. */
        std::unique_ptr<Operation> module;
        Operation *func = nullptr;
        /** Top-level band roots of func, body order. */
        std::vector<Operation *> bandRoots;
        /** Function-level fast-path preconditions hold: a sequential or
         * dataflow (not pipelined) top whose body is bands, constants,
         * allocs and the return only, with every local buffer owned
         * (bandLocalAllocs) — exactly the conditions under which the
         * cleanup pipeline is band-local, so per-band schedule entries
         * keyed by phase-1 digests are publishable even when some bands
         * are individually ineligible. */
        bool funcEligible = false;
        /** funcEligible AND every band digested: the whole-point fast
         * path (composeScheduledQoR) may engage. */
        bool eligible = false;
        /** The function carries the dataflow directive (stage-overlap
         * composition, double-buffered channels). */
        bool dataflowTop = false;
        /** Per-band phase-1 digests, aligned with bandRoots (filled when
         * funcEligible): the per-band eligibility mask — a nullopt band
         * (e.g. one containing a call) neither populates nor consumes
         * the schedule tier, but its digestable siblings still do. */
        std::vector<std::optional<BandDigestInfo>> bandDigests;
        /** Ownership of the function's local buffers (valid when
         * funcEligible). */
        AllocOwnershipInfo ownership;
    };
    Partial beginMaterialize(const Point &point) const;
    /** Phase 2: function-wide cleanup + array partition, in place;
     * returns the finished module (nullptr when phase 1 failed). */
    std::unique_ptr<Operation> finishMaterialize(Partial &partial) const;

    /** True when phase 2 preserved the phase-1 ownership prediction: the
     * surviving allocs of the (finished) function are exactly the
     * buffers the analysis predicted kept. Publishing schedule entries
     * from a point whose cleanup diverged from the prediction would key
     * band content the phase-1 digest does not determine; callers must
     * check this before insertSchedule. */
    static bool finalOwnershipMatches(const Partial &partial);

    /** Per-memref partition factors of a materialized design, formatted
     * like Table III ("A:[8, 16]"). */
    static std::string partitionSummary(Operation *module);

    /** The pristine (untransformed) module every materialization clones.
     * Callers must treat it as immutable — the plan-first evaluator
     * reads it concurrently from every DSE worker. */
    Operation *pristineModule() const { return pristine_.get(); }

    /** The option set the space was built with (the planner must mirror
     * the materializer's eligibility rules, e.g. dataflowFastPath). */
    const DesignSpaceOptions &spaceOptions() const { return options_; }

  private:
    /** The tunable sub-space of one top-level band. */
    struct BandSpace
    {
        size_t firstDim; ///< Index of this band's permutation dimension.
        std::vector<std::vector<unsigned>> permutations;
        std::vector<std::vector<int64_t>> tileCandidates;
        std::vector<int64_t> tripCounts;
    };

    /** The deepest band (ties resolved to the first). */
    size_t primaryBandIndex() const;

    /** The function-level fast-path eligibility rule (see Partial);
     * fills partial.ownership as a side effect. */
    bool fastPathEligible(Partial &partial) const;

    std::unique_ptr<Operation> pristine_;
    DesignSpaceOptions options_;
    std::vector<int> dim_sizes_;
    std::vector<BandSpace> bands_;
    std::vector<int64_t> ii_candidates_;
};

} // namespace scalehls

#endif // SCALEHLS_DSE_DESIGN_SPACE_H
