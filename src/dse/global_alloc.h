/**
 * @file
 * Whole-model resource allocation (paper Section VII-B): pick one
 * retained Pareto-frontier design per dataflow stage so the composed
 * accelerator fits a global device budget. Under dataflow execution the
 * throughput is set by the slowest stage (the initiation interval is the
 * max stage latency), so the allocator is a latency-BALANCING knapsack:
 * it spends DSP/LUT/BRAM where they shorten the bottleneck stage, not
 * where they shorten an already-fast one.
 *
 * The algorithm starts every stage at the cheap end of its frontier and
 * iteratively promotes all current bottleneck stages one strictly-faster
 * step; when a promotion overruns the budget it exchange-refines —
 * demotes slack stages (whose next-slower candidate still stays strictly
 * under the old bottleneck) to free the overrun resources. An iteration
 * is accepted only if the whole set ends budget-feasible; otherwise it is
 * undone and the search stops, so every accepted step strictly lowers
 * the bottleneck and termination is guaranteed.
 */

#ifndef SCALEHLS_DSE_GLOBAL_ALLOC_H
#define SCALEHLS_DSE_GLOBAL_ALLOC_H

#include <string>
#include <vector>

#include "dse/pareto.h"

namespace scalehls {

/** One candidate design of a stage, as seen from the dataflow top: the
 * latency INCLUDES the call overhead (+1 cycle, mirroring the
 * estimator's Call composition) and the resources are the callee's full
 * decomposed usage charged at the call site. Infeasible candidates carry
 * the kInfeasibleQoR sentinel and are never chosen. */
struct StageCandidate
{
    int64_t latency = kInfeasibleQoR;
    ResourceUsage resources;
    bool feasible = false;
};

/** A stage's retained frontier, ascending latency. Non-explored stages
 * (no loop band, or called more than once from the top) carry exactly
 * one fixed baseline candidate. */
struct StageFrontier
{
    std::string name;
    std::vector<StageCandidate> candidates;
};

/** The composed design chosen by an allocator. */
struct GlobalAllocation
{
    /** Chosen candidate index per stage (input order); meaningless when
     * !feasible. */
    std::vector<size_t> choice;
    /** Max chosen stage latency (the dataflow interval, min 1); the
     * kInfeasibleQoR sentinel when !feasible. */
    int64_t bottleneck = kInfeasibleQoR;
    /** Sum of chosen stage resources plus the fixed share. */
    ResourceUsage resources;
    bool feasible = false;
    /** Accepted bottleneck-lowering iterations. */
    size_t refinementSteps = 0;
    /** Slack-stage demotions performed to keep iterations in budget. */
    size_t exchanges = 0;
};

/** Latency-balancing knapsack under @p budget. @p fixed is the resource
 * share of the composed top outside any stage (dataflow channel buffers,
 * control logic) and is charged against the budget before the stages.
 * Infeasible when some stage has no feasible candidate or even the
 * cheapest selection overruns the budget. Deterministic. */
GlobalAllocation allocateGlobalBudget(
    const std::vector<StageFrontier> &stages, const ResourceBudget &budget,
    const ResourceUsage &fixed = {});

/** The naive baseline the refined allocator must beat: split the budget
 * (minus @p fixed) evenly across stages and give every stage its fastest
 * candidate fitting its own share — no stage may borrow another's slack,
 * so unbalanced models leave budget stranded on fast stages. */
GlobalAllocation allocateUniformSplit(
    const std::vector<StageFrontier> &stages, const ResourceBudget &budget,
    const ResourceUsage &fixed = {});

/** Predict the composed QoR of @p choice exactly as the estimator
 * composes a dataflow function: latency = glue + sum of stage latencies
 * (sentinel-guarded), interval = max stage latency (min 1), resources =
 * fixed + sum of stage resources. @p glue_latency is the top's latency
 * share outside the stage calls (the +2 epilogue and any non-call body
 * ops), derived by subtraction from a baseline whole-module estimate.
 * One infeasible chosen candidate poisons latency and interval to the
 * kInfeasibleQoR sentinel. */
QoRResult composeDataflowQoR(const std::vector<StageFrontier> &stages,
                             const std::vector<size_t> &choice,
                             int64_t glue_latency,
                             const ResourceUsage &fixed = {});

} // namespace scalehls

#endif // SCALEHLS_DSE_GLOBAL_ALLOC_H
