/**
 * @file
 * Plan-first point evaluation: predict each band's phase-1 digest from
 * the PRISTINE kernel plus the decoded BandChoice — no clone, no
 * transform — so a point whose bands all hit the PLAN and SCHEDULE cache
 * tiers composes its QoR having built zero IR. Points with a partial
 * miss materialize only the missed bands, through a copy-on-write
 * overlay (ir/overlay.h) that shares every hit band with the pristine
 * base. Predictions are validated whenever an overlay materializes a
 * band (predicted digest != actual digest falls the point back to the
 * legacy full pipeline and bumps a stat counter), so the planner can
 * change wall-clock but never results.
 */

#ifndef SCALEHLS_DSE_BAND_PLAN_H
#define SCALEHLS_DSE_BAND_PLAN_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dse/design_space.h"
#include "estimate/estimate_cache.h"
#include "ir/verifier.h"

namespace scalehls {

/** Plan-first evaluation of design points against a shared
 * EstimateCache. One planner serves every worker of a DSE run: it holds
 * only immutable per-band snapshots of the pristine kernel (plan-key
 * seeds, the external-value tables, the alloc-ownership analysis), so
 * evaluate() is const and re-entrant — all cross-point state lives in
 * the cache's PLAN and SCHEDULE tiers.
 *
 * Eligibility is decided once, at construction, on the PRISTINE
 * function; it mirrors DesignSpace::fastPathEligible (no pipelined top,
 * dataflow only when the dataflow fast path is on, flat body of bands +
 * constants + allocs + return, every alloc owned) and additionally
 * requires every alloc to live at flat scope — pipelining's full unroll
 * would duplicate in-band allocs and diverge the ownership list the
 * plan keys bake in — and every band to be plan-seedable. An ineligible
 * kernel simply disables the planner; the legacy paths are untouched. */
class BandPlanner
{
  public:
    /** The planner's verdict on one point. */
    struct Outcome
    {
        enum class Kind
        {
            /** qor is the composed result, bit-identical to the full
             * pipeline's. */
            Composed,
            /** The point is not materializable (unroll cap, pipelining
             * failure) — return the infeasible sentinel. */
            Infeasible,
            /** The planner cannot decide this point; run the legacy
             * path. */
            Fallback,
        };
        Kind kind = Kind::Fallback;
        QoRResult qor;
        /** The decision built a copy-on-write overlay (vs zero IR). */
        bool usedOverlay = false;
        /** A cached plan's predicted digest contradicted the overlay
         * materialization (always Fallback; the caller counts these). */
        bool mismatched = false;
        /** Audit-mode bookkeeping (zero / empty when auditing is off):
         * how many auditor invocations this evaluation ran, and every
         * finding they produced. Any finding forces Fallback — audited
         * evaluations never answer from state an auditor rejected. */
        size_t auditChecks = 0;
        std::vector<VerifyError> auditFindings;
    };

    /** @p estimates (required, not owned) must outlive the planner.
     * @p masked_band_keys is forwarded to the overlay estimator's band
     * tier (EvaluatorOptions::partitionAwareKeys). @p audit enables the
     * L3/L4 auditors (overlay aliasing, schedule-entry shape, overlay IR
     * verification) on every decision this planner takes. */
    BandPlanner(const DesignSpace &space, EstimateCache *estimates,
                bool masked_band_keys, bool audit = false);

    /** False when the pristine kernel is not plan-eligible; evaluate()
     * then always falls back. */
    bool enabled() const { return enabled_; }

    Outcome evaluate(const DesignSpace::Point &point) const;

    /** The PLAN-tier key of @p band under @p point ("" when disabled).
     * Test hook: lets a test pre-seed or corrupt the plan tier for
     * exactly the key evaluate() will consult. */
    std::string debugPlanKey(const DesignSpace::Point &point,
                             size_t band) const;

  private:
    struct OverlayInputs;
    Outcome overlayEvaluate(const DesignSpace::Decoded &decoded,
                            OverlayInputs &inputs) const;
    /** @p audit_out (optional) collects schedule-entry shape audits when
     * auditing is on; any finding fails the composition. */
    std::optional<QoRResult> composeAll(
        const std::vector<BandScheduleEntry> &entries,
        const std::vector<const std::vector<unsigned> *> &ext_maps,
        Outcome *audit_out = nullptr) const;
    std::string originOf(size_t band) const;
    /** Index of @p base in band @p b's pristine external table; false
     * when absent. */
    bool seedIndexOf(size_t b, Value *base, unsigned &index) const;

    const DesignSpace &space_;
    EstimateCache *estimates_ = nullptr;
    bool masked_band_keys_ = true;
    bool audit_ = false;
    bool enabled_ = false;

    Operation *func_ = nullptr; ///< Pristine top function (read-only).
    std::string func_name_;
    bool dataflow_top_ = false;
    /** Pristine top-level band roots, body order. */
    std::vector<Operation *> roots_;
    /** Pristine alloc ownership (phase-1 verdicts are identical: the
     * structural transforms preserve band membership and load/store
     * kinds of every flat-buffer access). */
    AllocOwnershipInfo ownership_;
    std::vector<BandPlanSeed> seeds_;
    /** Per band: pristine external value -> its seed-table index. */
    std::vector<std::map<Value *, unsigned>> seed_index_;
};

} // namespace scalehls

#endif // SCALEHLS_DSE_BAND_PLAN_H
