/**
 * @file
 * The automated DSE engine (paper Section V-E2): a 5-step
 * neighbor-traversing search for the Pareto frontier of the latency-area
 * space, exploiting the observation that Pareto points cluster in the
 * design-parameter space (paper Fig. 6).
 *
 * Exploration proposes batches of unevaluated points per round and
 * evaluates each batch in parallel over a thread pool (the QoR of
 * distinct points is independent — materialization clones the module per
 * point). The search trajectory is a function of the seed and the batch
 * size only, so for a fixed seed the resulting frontier is bit-identical
 * at any thread count.
 */

#ifndef SCALEHLS_DSE_DSE_ENGINE_H
#define SCALEHLS_DSE_DSE_ENGINE_H

#include <optional>

#include "dse/search_strategy.h"
#include "estimate/cache_io.h"

namespace scalehls {

/** Engine tuning knobs. */
struct DSEOptions
{
    unsigned numInitialSamples = 120; ///< Step 1 random samples.
    unsigned maxIterations = 400;     ///< Step 4 proposal budget.
    unsigned seed = 20220402;         ///< RNG seed (deterministic runs).
    DSEStrategy strategy = DSEStrategy::NeighborTraversal;
    /** QoR evaluation worker threads; 0 = hardware_concurrency. Does NOT
     * affect results, only wall-clock. */
    unsigned numThreads = 0;
    /** Points proposed per exploration round. Part of the deterministic
     * trajectory — keep it fixed when comparing runs (it intentionally
     * does not default to numThreads). */
    unsigned batchSize = 8;
    /** Cross-point estimate cache: reuse per-function estimates between
     * design points whose function content is identical (keyed by
     * function name + directive/structure digest). Purely a wall-clock
     * optimization — keys are content-derived, so hits return exactly
     * what recomputation would. */
    bool crossPointCache = true;
    /** Band-level tier of the estimate cache: additionally reuse
     * per-band estimates between points that differ only INSIDE another
     * band of the same function (keyed by a self-contained band digest,
     * so digest-identical bands share even across functions). Same
     * content-keyed guarantee: never changes results. No effect when
     * crossPointCache is off and no external cache is supplied. */
    bool bandLevelCache = true;
    /** Partition-aware band keys: mask external memref layout dims the
     * band's estimate provably never reads out of the band digest, so
     * retuning band B no longer invalidates band A's cached estimate
     * just because it repartitioned a shared array along a dim A never
     * separates banks on. Content-keyed on everything the estimate can
     * read — never changes results. Off = the partition-sensitive PR 3
     * keying (kept for A/B comparison). */
    bool partitionAwareBandKeys = true;
    /** Band-incremental materialization: a cache-miss point whose bands
     * all hit the schedule tier (phase-1 digests) skips function-wide
     * cleanup, array partition and the estimator walk, composing its QoR
     * from cached per-band entries (validated, bit-identical). Requires
     * the band cache. */
    bool incrementalMaterialize = true;
    /** Plan-first evaluation: predict each band's phase-1 digest from
     * the pristine kernel and the decoded choice through the PLAN cache
     * tier, compose fully predicted points with ZERO IR built, and
     * materialize partial misses through copy-on-write overlays that
     * rebuild only the missed bands. Predictions are validated against
     * every overlay materialization (mismatches fall back to the full
     * pipeline), so results never change. Requires
     * incrementalMaterialize + the band cache. */
    bool planFirstEvaluation = true;
    /** Audit mode (`-dse-audit` / SCALEHLS_DSE_AUDIT): run the L3/L4
     * auditors — overlay aliasing, overlay IR verification, band digest
     * coherence, schedule-entry shape — at every fast-path decision of
     * the evaluator. A finding is counted, reported on stderr, and
     * forces the affected point onto the validated slow path, so an
     * audited run can be slower but never wrong. */
    bool auditMode = EvaluatorOptions::dseAuditEnvDefault();
    /** Max entries PER TIER of the engine-owned estimate cache (coarse
     * LRU eviction; 0 = unbounded). Bounds memory on week-long sweeps
     * without changing results; external sharedEstimates caches are the
     * caller's to bound. */
    size_t estimateCacheCap = 0;
    /** Independent per-tier bounds (func/band/schedule/plan); when any
     * field is nonzero this overrides estimateCacheCap entirely —
     * schedule/plan entries are far heavier than function QoRs, so
     * persistent deployments size the tiers separately
     * (`-dse-cache-cap=f:b:s:p`). */
    EstimateCacheTierCaps estimateCacheTierCaps;
    /** Snapshot persistence (estimate/cache_io): load the estimate cache
     * from cacheLoadPath before exploring and save it to cacheSavePath
     * afterwards — cross-process warm starts. Performed by whoever OWNS
     * the cache the exploration uses: the engine for its per-exploration
     * cache, Compiler::optimizeFunctions/optimizeModel for their shared
     * per-call cache, and the tools for caches they inject via
     * sharedEstimates (external caches are never loaded/saved here).
     * Both default to $SCALEHLS_CACHE_DIR/estimate_cache.shlsnap when
     * that variable is set ("" otherwise = no persistence). Rejected or
     * corrupt snapshots degrade to a cold start with a warning. */
    std::string cacheLoadPath = defaultCacheSnapshotPath();
    std::string cacheSavePath = defaultCacheSnapshotPath();
    /** External estimate cache spanning multiple explorations (e.g. all
     * kernels of optimizeFunctions), NOT owned; nullptr = the engine
     * creates a per-exploration cache when crossPointCache is set. */
    EstimateCache *sharedEstimates = nullptr;

    /** Apply the cache bounds to @p cache: the per-tier caps when any
     * are set, else the uniform estimateCacheCap. */
    void applyCacheBounds(EstimateCache &cache) const;
};

/** The 5-step DSE algorithm over one kernel's design space. */
class DSEEngine
{
  public:
    DSEEngine(DesignSpace &space, DSEOptions options = {})
        : space_(space), options_(options)
    {}

    /** Steps 1-4: sample, then evolve the frontier by proposing batches
     * of nearest unevaluated neighbors of random Pareto points. Returns
     * the frontier in ascending latency order. */
    std::vector<EvaluatedPoint> explore();

    /** Step 5 (design finalization): the fastest Pareto point that meets
     * the resource constraints. */
    static std::optional<EvaluatedPoint> finalize(
        const std::vector<EvaluatedPoint> &frontier,
        const ResourceBudget &budget);

    /** Scope module retention during explore() to designs fitting
     * @p budget (the finalize criterion); call before explore(). Without
     * it the evaluator retains the best feasible module regardless of
     * budget. */
    void setFinalizeBudget(const ResourceBudget &budget)
    {
        finalize_budget_ = budget;
    }

    /** The materialized module of an explore()-evaluated point: reuses
     * the module retained during exploration when it is exactly this
     * point (no re-materialization), re-materializing otherwise (fast
     * path composition never builds modules; retention keeps one). The
     * module is then re-estimated against the warm estimate cache and
     * its QoR asserted equal to the cached result — qorVerified()
     * reports the outcome. */
    std::unique_ptr<Operation> materializeEvaluated(
        const EvaluatedPoint &chosen);
    /** True when materializeEvaluated reused the retained module. */
    bool moduleReused() const { return module_reused_; }
    /** True when the re-estimated module matched the cached QoR. */
    bool qorVerified() const { return qor_verified_; }
    /** The re-estimated QoR of the last materializeEvaluated module —
     * equal to the cached result when qorVerified(); on divergence it
     * is the value consistent with the returned module. */
    const QoRResult &verifiedQoR() const { return verified_qor_; }

    /** All points evaluated during explore() (for Fig. 6 profiling). */
    const std::vector<EvaluatedPoint> &evaluated() const
    {
        return evaluated_;
    }
    /** Number of estimator invocations. */
    size_t numEvaluations() const { return evaluated_.size(); }
    /** Cache misses (points actually materialized) of the last explore. */
    size_t numMaterializations() const { return materializations_; }
    /** Evaluations served from the memo cache in the last explore. */
    size_t numCacheHits() const { return cache_hits_; }
    /** Function-estimate lookups resolved by the cross-point estimate
     * cache during the last explore (delta over the cache used, so a
     * sharedEstimates cache concurrently fed by other engines counts
     * their traffic too — per-engine exact only for engine-local
     * caches). */
    size_t numEstimateHits() const { return estimate_hits_; }
    /** Total function-estimate lookups of the last explore (same sharing
     * caveat as numEstimateHits). */
    size_t numEstimateLookups() const { return estimate_lookups_; }
    /** Band-tier traffic of the last explore (same sharing caveat). */
    size_t numBandEstimateHits() const { return band_hits_; }
    size_t numBandEstimateLookups() const { return band_lookups_; }
    /** Schedule-tier (phase-1 digest) traffic of the last explore (same
     * sharing caveat). Lookups come from fast-path probes; hits count
     * per-band entry reuse, so one fast-path-composed point scores one
     * hit per band. */
    size_t numScheduleHits() const { return schedule_hits_; }
    size_t numScheduleLookups() const { return schedule_lookups_; }
    /** Cache misses that ran the FULL pipeline (cleanup + partition +
     * estimator walk) in the last explore. */
    size_t numFullMaterializations() const
    {
        return full_materializations_;
    }
    /** Cache misses served by the band-incremental fast path. */
    size_t numFastPathHits() const { return fast_path_hits_; }
    /** Band-tier hits whose key masked a partition layout dim (hits the
     * partition-sensitive keying would have missed; sharing caveat as
     * numEstimateHits). */
    size_t numBandMaskedHits() const { return band_masked_hits_; }
    /** Fast-path hits composed with ZERO IR built (plan-first). */
    size_t numPlanComposed() const { return plan_composed_; }
    /** Cache misses materialized through a copy-on-write overlay (only
     * the schedule-missing bands were built). */
    size_t numOverlayMaterializations() const
    {
        return overlay_materializations_;
    }
    /** Points proved infeasible by the planner with zero IR. */
    size_t numPlanInfeasible() const { return plan_infeasible_; }
    /** Plan predictions contradicted by an overlay materialization (the
     * point fell back to the validated full pipeline). */
    size_t numPlanMismatches() const { return plan_mismatches_; }
    /** Schedule-tier hits served by an entry another band (or function)
     * recorded — the canonicalizing digest sharing entries across
     * symmetric bands, e.g. 3mm's stages (sharing caveat as
     * numEstimateHits). */
    size_t numCrossBandHits() const { return cross_band_hits_; }
    /** Auditor invocations of the last explore (0 unless auditMode). */
    size_t numAuditChecks() const { return audit_checks_; }
    /** Audit findings of the last explore. Each finding also forced the
     * affected point onto the validated slow path, so a nonzero count
     * flags a broken invariant without a wrong QoR having escaped. */
    size_t numAuditViolations() const { return audit_violations_; }

  private:
    DesignSpace &space_;
    DSEOptions options_;
    std::vector<EvaluatedPoint> evaluated_;
    size_t materializations_ = 0;
    size_t cache_hits_ = 0;
    size_t estimate_hits_ = 0;
    size_t estimate_lookups_ = 0;
    size_t band_hits_ = 0;
    size_t band_lookups_ = 0;
    size_t schedule_hits_ = 0;
    size_t schedule_lookups_ = 0;
    size_t full_materializations_ = 0;
    size_t fast_path_hits_ = 0;
    size_t band_masked_hits_ = 0;
    size_t plan_composed_ = 0;
    size_t overlay_materializations_ = 0;
    size_t plan_infeasible_ = 0;
    size_t plan_mismatches_ = 0;
    size_t cross_band_hits_ = 0;
    size_t audit_checks_ = 0;
    size_t audit_violations_ = 0;
    std::optional<ResourceBudget> finalize_budget_;
    bool module_reused_ = false;
    bool qor_verified_ = false;
    QoRResult verified_qor_;
    /** Exploration state kept alive across explore() so
     * materializeEvaluated can reuse the retained module and the warm
     * caches. */
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<EstimateCache> local_estimates_;
    EstimateCache *estimates_in_use_ = nullptr;
    std::unique_ptr<CachingEvaluator> evaluator_;
};

/** One retained Pareto-frontier design: the encoded point, its decoded
 * per-band schedule, and the FULL QoR — decomposed ResourceUsage, not
 * just the scalar area — so a global allocator can trade stages against
 * each other per resource. Re-materializing a frontier point is cheap
 * through DSEEngine::materializeEvaluated while the engine (and its warm
 * plan/schedule caches) is alive. */
struct FrontierPoint
{
    DesignSpace::Point point;
    /** Decoded per-band schedule (function body order). */
    std::vector<DesignSpace::BandChoice> bands;
    QoRResult qor;
};

/** Decode and retain @p frontier (an explore() result, ascending
 * latency) as self-contained FrontierPoints. */
std::vector<FrontierPoint> retainFrontier(
    const DesignSpace &space, const std::vector<EvaluatedPoint> &frontier);

/** Convenience: run the full flow on a C-level module — returns the
 * finalized optimized module plus its QoR, or nullopt if no feasible
 * design exists. */
struct DSEResult
{
    DesignSpace::Point point;
    QoRResult qor;
    std::unique_ptr<Operation> module;
    /** The full evaluated Pareto frontier (ascending latency), retained
     * beyond the winner so callers can re-finalize under a different
     * budget or compose whole-model designs. */
    std::vector<FrontierPoint> frontier;
    size_t evaluations = 0;
    /** Cross-point estimate-cache traffic of the exploration (see
     * DSEEngine::numEstimateHits for the shared-cache caveat). */
    size_t estimateHits = 0;
    size_t estimateLookups = 0;
    size_t bandEstimateHits = 0;
    size_t bandEstimateLookups = 0;
    size_t scheduleHits = 0;
    size_t scheduleLookups = 0;
    /** Materialization-side stats: misses that paid the full pipeline
     * vs. misses composed by the band-incremental fast path, and
     * band-tier hits only the partition-aware keying could score. */
    size_t fullMaterializations = 0;
    size_t fastPathHits = 0;
    size_t bandMaskedHits = 0;
    /** Plan-first stats: zero-IR compositions, overlay (partial)
     * materializations, zero-IR infeasibility verdicts, validated
     * digest-prediction mismatches (fallbacks, never wrong answers), and
     * schedule-tier hits on entries born in another band/function. */
    size_t planComposed = 0;
    size_t overlayMaterializations = 0;
    size_t planInfeasible = 0;
    size_t planMismatches = 0;
    size_t crossBandHits = 0;
    /** Audit-mode bookkeeping (zero unless DSEOptions::auditMode): how
     * many auditor invocations ran and how many findings they raised. */
    size_t auditChecks = 0;
    size_t auditViolations = 0;
    /** True when the finalized module was the one retained during
     * exploration (no re-materialization). */
    bool moduleReused = false;
    /** True when the finalized module re-estimated to the cached QoR. */
    bool qorVerified = false;
    double seconds = 0;
};
std::optional<DSEResult> runDSE(Operation *module,
                                const ResourceBudget &budget,
                                DesignSpaceOptions space_options = {},
                                DSEOptions options = {});

} // namespace scalehls

#endif // SCALEHLS_DSE_DSE_ENGINE_H
