/**
 * @file
 * The automated DSE engine (paper Section V-E2): a 5-step
 * neighbor-traversing search for the Pareto frontier of the latency-area
 * space, exploiting the observation that Pareto points cluster in the
 * design-parameter space (paper Fig. 6).
 */

#ifndef SCALEHLS_DSE_DSE_ENGINE_H
#define SCALEHLS_DSE_DSE_ENGINE_H

#include <optional>
#include <set>

#include "dse/design_space.h"
#include "dse/pareto.h"

namespace scalehls {

/** Search strategies. The paper's engine is the neighbor-traversing
 * Pareto search; the alternatives exist for the extensibility the paper
 * calls out (Section VIII) and for the ablation benches. */
enum class DSEStrategy
{
    NeighborTraversal, ///< Paper Section V-E2 (default).
    RandomSampling,    ///< Pure random search at the same budget.
    SimulatedAnnealing ///< Classic annealer over the same space.
};

/** Engine tuning knobs. */
struct DSEOptions
{
    unsigned numInitialSamples = 120; ///< Step 1 random samples.
    unsigned maxIterations = 400;     ///< Step 4 early-termination bound.
    unsigned seed = 20220402;         ///< RNG seed (deterministic runs).
    DSEStrategy strategy = DSEStrategy::NeighborTraversal;
};

/** An evaluated design point. */
struct EvaluatedPoint
{
    DesignSpace::Point point;
    QoRResult qor;
};

/** The 5-step DSE algorithm over one kernel's design space. */
class DSEEngine
{
  public:
    DSEEngine(DesignSpace &space, DSEOptions options = {})
        : space_(space), options_(options)
    {}

    /** Steps 1-4: sample, then evolve the frontier by proposing nearest
     * unevaluated neighbors of random Pareto points. Returns the frontier
     * in ascending latency order. */
    std::vector<EvaluatedPoint> explore();

    /** Step 5 (design finalization): the fastest Pareto point that meets
     * the resource constraints. */
    static std::optional<EvaluatedPoint> finalize(
        const std::vector<EvaluatedPoint> &frontier,
        const ResourceBudget &budget);

    /** All points evaluated during explore() (for Fig. 6 profiling). */
    const std::vector<EvaluatedPoint> &evaluated() const
    {
        return evaluated_;
    }
    /** Number of estimator invocations. */
    size_t numEvaluations() const { return evaluated_.size(); }

  private:
    /** Evaluate and record a point (deduplicated). */
    void probe(const DesignSpace::Point &point);
    /** Recompute frontier indices over evaluated_. */
    std::vector<size_t> frontierIndices() const;
    /** Strategy bodies (step 1 seeding is shared). */
    void exploreNeighborTraversal(std::mt19937 &rng);
    void exploreRandom(std::mt19937 &rng);
    void exploreAnnealing(std::mt19937 &rng);

    DesignSpace &space_;
    DSEOptions options_;
    std::vector<EvaluatedPoint> evaluated_;
    std::set<DesignSpace::Point> seen_;
};

/** Convenience: run the full flow on a C-level module — returns the
 * finalized optimized module plus its QoR, or nullopt if no feasible
 * design exists. */
struct DSEResult
{
    DesignSpace::Point point;
    QoRResult qor;
    std::unique_ptr<Operation> module;
    size_t evaluations = 0;
    double seconds = 0;
};
std::optional<DSEResult> runDSE(Operation *module,
                                const ResourceBudget &budget,
                                DesignSpaceOptions space_options = {},
                                DSEOptions options = {});

} // namespace scalehls

#endif // SCALEHLS_DSE_DSE_ENGINE_H
