/**
 * @file
 * Recursive-descent parser for the HLS C subset, producing a small AST that
 * the IR generator consumes. The subset mirrors what Vivado HLS accepts for
 * synthesizable kernels: void functions, fixed-size arrays, static control
 * flow (counted for loops, if/else), and scalar arithmetic.
 */

#ifndef SCALEHLS_FRONTEND_PARSER_H
#define SCALEHLS_FRONTEND_PARSER_H

#include <memory>
#include <string>
#include <vector>

#include "frontend/lexer.h"

namespace scalehls {

/** C scalar types supported by the front-end. */
enum class CType { Int, Float, Double };

/** Expression AST node. */
struct CExpr
{
    enum class Kind
    {
        IntLit,
        FloatLit,
        Var,
        Subscript,
        Binary,
        Unary,
        Ternary,
    };

    Kind kind;
    int64_t intValue = 0;
    double floatValue = 0.0;
    std::string name; ///< Var name or Subscript base array name.
    std::string op;   ///< Operator spelling for Binary/Unary ("+", "<", ...).
    std::vector<std::unique_ptr<CExpr>> children;
    int line = 0;
};

/** Statement AST node. */
struct CStmt
{
    enum class Kind { Decl, Assign, For, If, Return };

    Kind kind;
    int line = 0;

    // Decl
    CType declType = CType::Int;
    std::string name;
    std::vector<int64_t> arrayDims;
    std::unique_ptr<CExpr> init;

    // Assign ("=", "+=", "-=", "*=")
    std::unique_ptr<CExpr> lhs;
    std::string assignOp;
    std::unique_ptr<CExpr> rhs;

    // For
    std::string ivName;
    std::unique_ptr<CExpr> lowerExpr;
    std::unique_ptr<CExpr> upperExpr; ///< Exclusive after normalization.
    int64_t step = 1;

    // If
    std::unique_ptr<CExpr> cond;
    std::vector<std::unique_ptr<CStmt>> body;
    std::vector<std::unique_ptr<CStmt>> elseBody;
};

/** A function parameter: scalar or fixed-size array. */
struct CParam
{
    CType type = CType::Float;
    std::string name;
    std::vector<int64_t> dims; ///< Empty for scalars.
};

/** A parsed function definition. */
struct CFunc
{
    std::string name;
    std::vector<CParam> params;
    std::vector<std::unique_ptr<CStmt>> body;
};

/** A parsed translation unit. */
struct CProgram
{
    std::vector<CFunc> funcs;
};

/** Parse HLS C source; throws FatalError with a line-located message on
 * unsupported or malformed constructs. */
CProgram parseProgram(const std::string &source);

} // namespace scalehls

#endif // SCALEHLS_FRONTEND_PARSER_H
