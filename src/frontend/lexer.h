/**
 * @file
 * Lexer for the synthesizable HLS C subset accepted by the front-end.
 */

#ifndef SCALEHLS_FRONTEND_LEXER_H
#define SCALEHLS_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace scalehls {

/** Token kinds. Punctuation tokens are named after their spelling. */
enum class TokKind
{
    Eof,
    Identifier,
    IntLiteral,
    FloatLiteral,
    KwVoid,
    KwInt,
    KwFloat,
    KwDouble,
    KwFor,
    KwIf,
    KwElse,
    KwReturn,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Assign,        // =
    PlusAssign,    // +=
    MinusAssign,   // -=
    StarAssign,    // *=
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Less,
    LessEqual,
    Greater,
    GreaterEqual,
    EqualEqual,
    NotEqual,
    Question,
    Colon,
};

/** A lexed token with source location for diagnostics. */
struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;
    int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 0;
    int column = 0;
};

/** Tokenize @p source; throws FatalError on malformed input. Comments
 * (// and block) and #pragma lines are skipped. */
std::vector<Token> tokenize(const std::string &source);

/** Human-readable token kind name for diagnostics. */
std::string tokKindName(TokKind kind);

} // namespace scalehls

#endif // SCALEHLS_FRONTEND_LEXER_H
