#include "frontend/parser.h"

#include "support/utils.h"

namespace scalehls {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    CProgram
    run()
    {
        CProgram program;
        while (peek().kind != TokKind::Eof)
            program.funcs.push_back(parseFunction());
        return program;
    }

  private:
    const Token &
    peek(int offset = 0) const
    {
        size_t i = pos_ + offset;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    Token
    advance()
    {
        Token tok = peek();
        if (pos_ + 1 < tokens_.size())
            ++pos_;
        return tok;
    }

    bool
    check(TokKind kind) const
    {
        return peek().kind == kind;
    }

    bool
    match(TokKind kind)
    {
        if (!check(kind))
            return false;
        advance();
        return true;
    }

    Token
    expect(TokKind kind, const std::string &context)
    {
        if (!check(kind)) {
            fatal("parse error at line " + std::to_string(peek().line) +
                  ": expected " + tokKindName(kind) + " " + context +
                  ", found '" + peek().text + "'");
        }
        return advance();
    }

    [[noreturn]] void
    error(const std::string &msg)
    {
        fatal("parse error at line " + std::to_string(peek().line) + ": " +
              msg);
    }

    bool
    isTypeToken(TokKind kind) const
    {
        return kind == TokKind::KwInt || kind == TokKind::KwFloat ||
               kind == TokKind::KwDouble;
    }

    CType
    parseType()
    {
        Token tok = advance();
        switch (tok.kind) {
          case TokKind::KwInt:
            return CType::Int;
          case TokKind::KwFloat:
            return CType::Float;
          case TokKind::KwDouble:
            return CType::Double;
          default:
            error("expected a type (int/float/double)");
        }
    }

    CFunc
    parseFunction()
    {
        if (!match(TokKind::KwVoid))
            error("HLS kernels must return void (the emitter converts "
                  "returned values to output pointers)");
        CFunc func;
        func.name = expect(TokKind::Identifier, "as function name").text;
        expect(TokKind::LParen, "after function name");
        if (!check(TokKind::RParen)) {
            do {
                CParam param;
                param.type = parseType();
                if (match(TokKind::Star))
                    error("pointer parameters are not supported; use "
                          "fixed-size arrays");
                param.name =
                    expect(TokKind::Identifier, "as parameter name").text;
                while (match(TokKind::LBracket)) {
                    Token dim = expect(TokKind::IntLiteral,
                                       "as array dimension");
                    param.dims.push_back(dim.intValue);
                    expect(TokKind::RBracket, "after array dimension");
                }
                func.params.push_back(std::move(param));
            } while (match(TokKind::Comma));
        }
        expect(TokKind::RParen, "after parameters");
        expect(TokKind::LBrace, "to open function body");
        func.body = parseStmtList();
        expect(TokKind::RBrace, "to close function body");
        return func;
    }

    std::vector<std::unique_ptr<CStmt>>
    parseStmtList()
    {
        std::vector<std::unique_ptr<CStmt>> stmts;
        while (!check(TokKind::RBrace) && !check(TokKind::Eof))
            stmts.push_back(parseStmt());
        return stmts;
    }

    std::vector<std::unique_ptr<CStmt>>
    parseBlockOrSingle()
    {
        if (match(TokKind::LBrace)) {
            auto stmts = parseStmtList();
            expect(TokKind::RBrace, "to close block");
            return stmts;
        }
        std::vector<std::unique_ptr<CStmt>> stmts;
        stmts.push_back(parseStmt());
        return stmts;
    }

    std::unique_ptr<CStmt>
    parseStmt()
    {
        if (isTypeToken(peek().kind))
            return parseDecl();
        if (check(TokKind::KwFor))
            return parseFor();
        if (check(TokKind::KwIf))
            return parseIf();
        if (check(TokKind::KwReturn)) {
            auto stmt = std::make_unique<CStmt>();
            stmt->kind = CStmt::Kind::Return;
            stmt->line = peek().line;
            advance();
            if (!check(TokKind::Semicolon))
                error("only bare 'return;' is supported in void kernels");
            expect(TokKind::Semicolon, "after return");
            return stmt;
        }
        return parseAssign();
    }

    std::unique_ptr<CStmt>
    parseDecl()
    {
        auto stmt = std::make_unique<CStmt>();
        stmt->kind = CStmt::Kind::Decl;
        stmt->line = peek().line;
        stmt->declType = parseType();
        stmt->name = expect(TokKind::Identifier, "as variable name").text;
        while (match(TokKind::LBracket)) {
            Token dim = expect(TokKind::IntLiteral, "as array dimension");
            stmt->arrayDims.push_back(dim.intValue);
            expect(TokKind::RBracket, "after array dimension");
        }
        if (match(TokKind::Assign)) {
            if (!stmt->arrayDims.empty())
                error("array initializers are not supported");
            stmt->init = parseExpr();
        }
        expect(TokKind::Semicolon, "after declaration");
        return stmt;
    }

    std::unique_ptr<CStmt>
    parseAssign()
    {
        auto stmt = std::make_unique<CStmt>();
        stmt->kind = CStmt::Kind::Assign;
        stmt->line = peek().line;
        stmt->lhs = parseUnary();
        if (stmt->lhs->kind != CExpr::Kind::Var &&
            stmt->lhs->kind != CExpr::Kind::Subscript)
            error("assignment target must be a variable or array element");
        if (match(TokKind::Assign))
            stmt->assignOp = "=";
        else if (match(TokKind::PlusAssign))
            stmt->assignOp = "+=";
        else if (match(TokKind::MinusAssign))
            stmt->assignOp = "-=";
        else if (match(TokKind::StarAssign))
            stmt->assignOp = "*=";
        else
            error("expected an assignment operator");
        stmt->rhs = parseExpr();
        expect(TokKind::Semicolon, "after assignment");
        return stmt;
    }

    std::unique_ptr<CStmt>
    parseFor()
    {
        auto stmt = std::make_unique<CStmt>();
        stmt->kind = CStmt::Kind::For;
        stmt->line = peek().line;
        expect(TokKind::KwFor, "");
        expect(TokKind::LParen, "after 'for'");

        // Init: `int i = <expr>` or `i = <expr>`.
        match(TokKind::KwInt);
        stmt->ivName = expect(TokKind::Identifier,
                              "as loop induction variable").text;
        expect(TokKind::Assign, "in loop init");
        stmt->lowerExpr = parseExpr();
        expect(TokKind::Semicolon, "after loop init");

        // Condition: `i < <expr>` or `i <= <expr>`.
        std::string cond_iv =
            expect(TokKind::Identifier, "in loop condition").text;
        if (cond_iv != stmt->ivName)
            error("loop condition must test the induction variable '" +
                  stmt->ivName + "'");
        bool inclusive;
        if (match(TokKind::Less)) {
            inclusive = false;
        } else if (match(TokKind::LessEqual)) {
            inclusive = true;
        } else {
            error("loop condition must use '<' or '<='");
        }
        stmt->upperExpr = parseExpr();
        if (inclusive) {
            // Normalize `i <= e` to `i < e + 1`.
            auto plus_one = std::make_unique<CExpr>();
            plus_one->kind = CExpr::Kind::Binary;
            plus_one->op = "+";
            plus_one->line = stmt->line;
            auto one = std::make_unique<CExpr>();
            one->kind = CExpr::Kind::IntLit;
            one->intValue = 1;
            plus_one->children.push_back(std::move(stmt->upperExpr));
            plus_one->children.push_back(std::move(one));
            stmt->upperExpr = std::move(plus_one);
        }
        expect(TokKind::Semicolon, "after loop condition");

        // Increment: `i++`, `++i`, `i += c`.
        if (match(TokKind::PlusPlus)) {
            std::string name =
                expect(TokKind::Identifier, "after '++'").text;
            if (name != stmt->ivName)
                error("loop increment must update the induction variable");
            stmt->step = 1;
        } else {
            std::string name =
                expect(TokKind::Identifier, "in loop increment").text;
            if (name != stmt->ivName)
                error("loop increment must update the induction variable");
            if (match(TokKind::PlusPlus)) {
                stmt->step = 1;
            } else if (match(TokKind::PlusAssign)) {
                Token step = expect(TokKind::IntLiteral,
                                    "as constant loop step");
                stmt->step = step.intValue;
            } else {
                error("loop increment must be '++' or '+= <constant>'");
            }
        }
        if (stmt->step <= 0)
            error("loop step must be positive");
        expect(TokKind::RParen, "after loop header");
        stmt->body = parseBlockOrSingle();
        return stmt;
    }

    std::unique_ptr<CStmt>
    parseIf()
    {
        auto stmt = std::make_unique<CStmt>();
        stmt->kind = CStmt::Kind::If;
        stmt->line = peek().line;
        expect(TokKind::KwIf, "");
        expect(TokKind::LParen, "after 'if'");
        stmt->cond = parseExpr();
        expect(TokKind::RParen, "after if condition");
        stmt->body = parseBlockOrSingle();
        if (match(TokKind::KwElse))
            stmt->elseBody = parseBlockOrSingle();
        return stmt;
    }

    //
    // Expressions (precedence climbing).
    //

    std::unique_ptr<CExpr>
    parseExpr()
    {
        return parseTernary();
    }

    std::unique_ptr<CExpr>
    parseTernary()
    {
        auto cond = parseComparison();
        if (!match(TokKind::Question))
            return cond;
        auto expr = std::make_unique<CExpr>();
        expr->kind = CExpr::Kind::Ternary;
        expr->line = peek().line;
        expr->children.push_back(std::move(cond));
        expr->children.push_back(parseExpr());
        expect(TokKind::Colon, "in ternary expression");
        expr->children.push_back(parseExpr());
        return expr;
    }

    std::unique_ptr<CExpr>
    parseComparison()
    {
        auto lhs = parseAdditive();
        std::string op;
        if (match(TokKind::Less))
            op = "<";
        else if (match(TokKind::LessEqual))
            op = "<=";
        else if (match(TokKind::Greater))
            op = ">";
        else if (match(TokKind::GreaterEqual))
            op = ">=";
        else if (match(TokKind::EqualEqual))
            op = "==";
        else if (match(TokKind::NotEqual))
            op = "!=";
        else
            return lhs;
        auto expr = std::make_unique<CExpr>();
        expr->kind = CExpr::Kind::Binary;
        expr->op = op;
        expr->line = peek().line;
        expr->children.push_back(std::move(lhs));
        expr->children.push_back(parseAdditive());
        return expr;
    }

    std::unique_ptr<CExpr>
    parseAdditive()
    {
        auto lhs = parseMultiplicative();
        while (check(TokKind::Plus) || check(TokKind::Minus)) {
            std::string op = advance().text;
            auto expr = std::make_unique<CExpr>();
            expr->kind = CExpr::Kind::Binary;
            expr->op = op;
            expr->line = peek().line;
            expr->children.push_back(std::move(lhs));
            expr->children.push_back(parseMultiplicative());
            lhs = std::move(expr);
        }
        return lhs;
    }

    std::unique_ptr<CExpr>
    parseMultiplicative()
    {
        auto lhs = parseUnary();
        while (check(TokKind::Star) || check(TokKind::Slash) ||
               check(TokKind::Percent)) {
            std::string op = advance().text;
            auto expr = std::make_unique<CExpr>();
            expr->kind = CExpr::Kind::Binary;
            expr->op = op;
            expr->line = peek().line;
            expr->children.push_back(std::move(lhs));
            expr->children.push_back(parseUnary());
            lhs = std::move(expr);
        }
        return lhs;
    }

    std::unique_ptr<CExpr>
    parseUnary()
    {
        if (check(TokKind::Minus)) {
            advance();
            auto expr = std::make_unique<CExpr>();
            expr->kind = CExpr::Kind::Unary;
            expr->op = "-";
            expr->line = peek().line;
            expr->children.push_back(parseUnary());
            return expr;
        }
        return parsePrimary();
    }

    std::unique_ptr<CExpr>
    parsePrimary()
    {
        auto expr = std::make_unique<CExpr>();
        expr->line = peek().line;
        if (check(TokKind::IntLiteral)) {
            expr->kind = CExpr::Kind::IntLit;
            expr->intValue = advance().intValue;
            return expr;
        }
        if (check(TokKind::FloatLiteral)) {
            expr->kind = CExpr::Kind::FloatLit;
            expr->floatValue = advance().floatValue;
            return expr;
        }
        if (match(TokKind::LParen)) {
            auto inner = parseExpr();
            expect(TokKind::RParen, "after parenthesized expression");
            return inner;
        }
        if (check(TokKind::Identifier)) {
            std::string name = advance().text;
            if (check(TokKind::LBracket)) {
                expr->kind = CExpr::Kind::Subscript;
                expr->name = name;
                while (match(TokKind::LBracket)) {
                    expr->children.push_back(parseExpr());
                    expect(TokKind::RBracket, "after subscript");
                }
                return expr;
            }
            expr->kind = CExpr::Kind::Var;
            expr->name = name;
            return expr;
        }
        error("expected an expression");
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

} // namespace

CProgram
parseProgram(const std::string &source)
{
    return Parser(tokenize(source)).run();
}

} // namespace scalehls
