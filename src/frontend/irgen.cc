#include "frontend/irgen.h"

#include <map>

#include "dialect/ops.h"
#include "support/utils.h"

namespace scalehls {

namespace {

/** Scalar value type of a C type when used for arithmetic: loop counters
 * and subscripts use index; data uses f32/f64. C `int` data is i32. */
Type
elementType(CType t)
{
    switch (t) {
      case CType::Int:
        return Type::i32();
      case CType::Float:
        return Type::f32();
      case CType::Double:
        return Type::f64();
    }
    return Type::f32();
}

class IRGen
{
  public:
    explicit IRGen(const CProgram &program) : program_(program) {}

    std::unique_ptr<Operation>
    run(const std::string &top_func)
    {
        auto module = createModule();
        for (const CFunc &func : program_.funcs)
            genFunc(module.get(), func);
        if (Operation *top = lookupFunc(
                module.get(),
                top_func.empty() ? program_.funcs.front().name : top_func))
            setTopFunc(top);
        else
            fatal("top function '" + top_func + "' not found");
        return module;
    }

  private:
    /** A named program entity. */
    struct Symbol
    {
        Value *value = nullptr;
        bool isArray = false;
        bool isMutableScalar = false; ///< Backed by a memref<1xT>.
        Type elemType;
    };

    [[noreturn]] void
    error(int line, const std::string &msg)
    {
        fatal("irgen error at line " + std::to_string(line) + ": " + msg);
    }

    Symbol &
    lookup(const std::string &name, int line)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        error(line, "use of undeclared identifier '" + name + "'");
    }

    void
    define(const std::string &name, Symbol symbol)
    {
        scopes_.back()[name] = std::move(symbol);
    }

    void
    genFunc(Operation *module, const CFunc &func)
    {
        std::vector<Type> arg_types;
        for (const CParam &param : func.params) {
            if (param.dims.empty()) {
                arg_types.push_back(param.type == CType::Int
                                        ? Type::index()
                                        : elementType(param.type));
            } else {
                // On-chip dual-port BRAM is the default array resource.
                arg_types.push_back(Type::memref(param.dims,
                                                 elementType(param.type),
                                                 AffineMap(),
                                                 MemKind::BRAM_S2P));
            }
        }
        Operation *func_op = createFunc(module, func.name, arg_types);
        std::string arg_names;
        for (unsigned i = 0; i < func.params.size(); ++i)
            arg_names += (i ? "," : "") + func.params[i].name;
        func_op->setAttr("arg_names", arg_names);
        Block *body = funcBody(func_op);
        builder_ = OpBuilder(body, body->back()); // Before func.return.

        scopes_.clear();
        scopes_.emplace_back();
        for (unsigned i = 0; i < func.params.size(); ++i) {
            const CParam &param = func.params[i];
            Symbol symbol;
            symbol.value = body->argument(i);
            symbol.isArray = !param.dims.empty();
            symbol.elemType = elementType(param.type);
            define(param.name, symbol);
        }
        for (const auto &stmt : func.body)
            genStmt(*stmt);
    }

    //
    // Statements
    //

    void
    genStmt(const CStmt &stmt)
    {
        switch (stmt.kind) {
          case CStmt::Kind::Decl:
            genDecl(stmt);
            break;
          case CStmt::Kind::Assign:
            genAssign(stmt);
            break;
          case CStmt::Kind::For:
            genFor(stmt);
            break;
          case CStmt::Kind::If:
            genIf(stmt);
            break;
          case CStmt::Kind::Return:
            // Kernels are void; a trailing bare return is a no-op.
            break;
        }
    }

    void
    genDecl(const CStmt &stmt)
    {
        Symbol symbol;
        symbol.elemType = elementType(stmt.declType);
        if (!stmt.arrayDims.empty()) {
            symbol.isArray = true;
            symbol.value =
                createAlloc(builder_,
                            Type::memref(stmt.arrayDims, symbol.elemType,
                                         AffineMap(), MemKind::BRAM_S2P))
                    ->result(0);
        } else {
            // Mutable scalars are modeled as single-element memrefs; the
            // -affine-store-forward pass later removes the round trips.
            symbol.isMutableScalar = true;
            symbol.value =
                createAlloc(builder_,
                            Type::memref({1}, symbol.elemType, AffineMap(),
                                         MemKind::BRAM_S2P))
                    ->result(0);
            if (stmt.init) {
                Value *init = genExpr(*stmt.init, symbol.elemType);
                Value *zero = createConstantIndex(builder_, 0)->result(0);
                createMemStore(builder_, init, symbol.value, {zero});
            }
        }
        define(stmt.name, symbol);
    }

    void
    genAssign(const CStmt &stmt)
    {
        // Resolve the store target: memref + indices.
        Value *memref = nullptr;
        std::vector<Value *> indices;
        Type elem_type;
        if (stmt.lhs->kind == CExpr::Kind::Var) {
            Symbol &symbol = lookup(stmt.lhs->name, stmt.line);
            if (!symbol.isMutableScalar)
                error(stmt.line, "cannot assign to '" + stmt.lhs->name +
                                     "' (parameters and induction "
                                     "variables are read-only)");
            memref = symbol.value;
            indices.push_back(createConstantIndex(builder_, 0)->result(0));
            elem_type = symbol.elemType;
        } else {
            Symbol &symbol = lookup(stmt.lhs->name, stmt.line);
            if (!symbol.isArray)
                error(stmt.line,
                      "subscripted variable is not an array: " +
                          stmt.lhs->name);
            memref = symbol.value;
            if (stmt.lhs->children.size() != memref->type().rank())
                error(stmt.line, "subscript count does not match array "
                                 "rank for " + stmt.lhs->name);
            for (const auto &index : stmt.lhs->children)
                indices.push_back(genExpr(*index, Type::index()));
            elem_type = symbol.elemType;
        }

        Value *rhs = genExpr(*stmt.rhs, elem_type);
        if (stmt.assignOp != "=") {
            Value *current =
                createMemLoad(builder_, memref, indices)->result(0);
            std::string_view op_name;
            bool is_float = elem_type.isFloat();
            if (stmt.assignOp == "+=")
                op_name = is_float ? ops::AddF : ops::AddI;
            else if (stmt.assignOp == "-=")
                op_name = is_float ? ops::SubF : ops::SubI;
            else
                op_name = is_float ? ops::MulF : ops::MulI;
            rhs = createBinary(builder_, op_name, current, rhs)->result(0);
        }
        createMemStore(builder_, rhs, memref, indices);
    }

    void
    genFor(const CStmt &stmt)
    {
        Value *lb = genExpr(*stmt.lowerExpr, Type::index());
        Value *ub = genExpr(*stmt.upperExpr, Type::index());
        Value *step = createConstantIndex(builder_, stmt.step)->result(0);
        ScfForOp for_op = createScfFor(builder_, lb, ub, step);

        OpBuilder saved = builder_;
        builder_.setInsertionPointToEnd(for_op.body());
        scopes_.emplace_back();
        Symbol iv;
        iv.value = for_op.inductionVar();
        iv.elemType = Type::index();
        define(stmt.ivName, iv);
        for (const auto &nested : stmt.body)
            genStmt(*nested);
        scopes_.pop_back();
        builder_ = saved;
    }

    void
    genIf(const CStmt &stmt)
    {
        Value *cond = genCond(*stmt.cond);
        Operation *if_op =
            createScfIf(builder_, cond, !stmt.elseBody.empty());

        OpBuilder saved = builder_;
        builder_.setInsertionPointToEnd(&if_op->region(0).front());
        scopes_.emplace_back();
        for (const auto &nested : stmt.body)
            genStmt(*nested);
        scopes_.pop_back();
        if (!stmt.elseBody.empty()) {
            builder_.setInsertionPointToEnd(&if_op->region(1).front());
            scopes_.emplace_back();
            for (const auto &nested : stmt.elseBody)
                genStmt(*nested);
            scopes_.pop_back();
        }
        builder_ = saved;
    }

    //
    // Expressions
    //

    /** Insert a conversion from value's type to @p expected if needed. */
    Value *
    coerce(Value *value, Type expected, int line)
    {
        Type from = value->type();
        if (from == expected)
            return value;
        if (from.isIntOrIndex() && expected.isFloat())
            return builder_
                .create(std::string(ops::SIToFP), {expected}, {value})
                ->result(0);
        if (from.isIntOrIndex() && expected.isIntOrIndex())
            return builder_
                .create(std::string(ops::IndexCast), {expected}, {value})
                ->result(0);
        if (from.isFloat() && expected.isFloat())
            return builder_
                .create(std::string(ops::SIToFP), {expected}, {value})
                ->result(0); // Width change; reuse the cast op name.
        error(line, "unsupported implicit conversion from " +
                        from.toString() + " to " + expected.toString());
    }

    Value *
    genExpr(const CExpr &expr, Type expected)
    {
        switch (expr.kind) {
          case CExpr::Kind::IntLit:
            if (expected.isFloat())
                return createConstantFloat(
                           builder_, static_cast<double>(expr.intValue),
                           expected)
                    ->result(0);
            return createConstantInt(builder_, expr.intValue, expected)
                ->result(0);
          case CExpr::Kind::FloatLit:
            if (!expected.isFloat())
                error(expr.line, "float literal in integer context");
            return createConstantFloat(builder_, expr.floatValue, expected)
                ->result(0);
          case CExpr::Kind::Var: {
            Symbol &symbol = lookup(expr.name, expr.line);
            if (symbol.isArray)
                error(expr.line,
                      "array '" + expr.name + "' used as a scalar");
            if (symbol.isMutableScalar) {
                Value *zero =
                    createConstantIndex(builder_, 0)->result(0);
                Value *loaded =
                    createMemLoad(builder_, symbol.value, {zero})
                        ->result(0);
                return coerce(loaded, expected, expr.line);
            }
            return coerce(symbol.value, expected, expr.line);
          }
          case CExpr::Kind::Subscript: {
            Symbol &symbol = lookup(expr.name, expr.line);
            if (!symbol.isArray)
                error(expr.line, "subscripted variable is not an array: " +
                                     expr.name);
            if (expr.children.size() != symbol.value->type().rank())
                error(expr.line, "subscript count does not match array "
                                 "rank for " + expr.name);
            std::vector<Value *> indices;
            for (const auto &index : expr.children)
                indices.push_back(genExpr(*index, Type::index()));
            Value *loaded =
                createMemLoad(builder_, symbol.value, indices)->result(0);
            return coerce(loaded, expected, expr.line);
          }
          case CExpr::Kind::Binary:
            return genBinary(expr, expected);
          case CExpr::Kind::Unary: {
            Value *zero =
                expected.isFloat()
                    ? createConstantFloat(builder_, 0.0, expected)
                          ->result(0)
                    : createConstantInt(builder_, 0, expected)->result(0);
            Value *operand = genExpr(*expr.children[0], expected);
            return createBinary(builder_,
                                expected.isFloat() ? ops::SubF : ops::SubI,
                                zero, operand)
                ->result(0);
          }
          case CExpr::Kind::Ternary: {
            Value *cond = genCond(*expr.children[0]);
            Value *then_value = genExpr(*expr.children[1], expected);
            Value *else_value = genExpr(*expr.children[2], expected);
            return createSelect(builder_, cond, then_value, else_value)
                ->result(0);
          }
        }
        error(expr.line, "unsupported expression");
    }

    Value *
    genBinary(const CExpr &expr, Type expected)
    {
        const std::string &op = expr.op;
        if (op == "<" || op == "<=" || op == ">" || op == ">=" ||
            op == "==" || op == "!=")
            error(expr.line, "comparison used in a value context "
                             "(use a ternary expression)");
        Value *lhs = genExpr(*expr.children[0], expected);
        Value *rhs = genExpr(*expr.children[1], expected);
        std::string_view name;
        bool is_float = expected.isFloat();
        if (op == "+")
            name = is_float ? ops::AddF : ops::AddI;
        else if (op == "-")
            name = is_float ? ops::SubF : ops::SubI;
        else if (op == "*")
            name = is_float ? ops::MulF : ops::MulI;
        else if (op == "/")
            name = is_float ? ops::DivF : ops::DivSI;
        else if (op == "%") {
            if (is_float)
                error(expr.line, "'%' requires integer operands");
            name = ops::RemSI;
        } else {
            error(expr.line, "unsupported binary operator '" + op + "'");
        }
        return createBinary(builder_, name, lhs, rhs)->result(0);
    }

    /** True if the expression is float-typed (drives cmpf vs cmpi). */
    bool
    isFloatExpr(const CExpr &expr)
    {
        switch (expr.kind) {
          case CExpr::Kind::FloatLit:
            return true;
          case CExpr::Kind::IntLit:
            return false;
          case CExpr::Kind::Var: {
            Symbol &symbol = lookup(expr.name, expr.line);
            return !symbol.isArray && symbol.elemType.isFloat();
          }
          case CExpr::Kind::Subscript: {
            Symbol &symbol = lookup(expr.name, expr.line);
            return symbol.elemType.isFloat();
          }
          case CExpr::Kind::Binary:
          case CExpr::Kind::Unary: {
            for (const auto &child : expr.children)
                if (isFloatExpr(*child))
                    return true;
            return false;
          }
          case CExpr::Kind::Ternary:
            return isFloatExpr(*expr.children[1]) ||
                   isFloatExpr(*expr.children[2]);
        }
        return false;
    }

    Value *
    genCond(const CExpr &expr)
    {
        if (expr.kind != CExpr::Kind::Binary)
            fatal("irgen error at line " + std::to_string(expr.line) +
                  ": conditions must be comparisons");
        CmpPredicate pred;
        if (expr.op == "<")
            pred = CmpPredicate::LT;
        else if (expr.op == "<=")
            pred = CmpPredicate::LE;
        else if (expr.op == ">")
            pred = CmpPredicate::GT;
        else if (expr.op == ">=")
            pred = CmpPredicate::GE;
        else if (expr.op == "==")
            pred = CmpPredicate::EQ;
        else if (expr.op == "!=")
            pred = CmpPredicate::NE;
        else
            fatal("irgen error at line " + std::to_string(expr.line) +
                  ": conditions must be comparisons");

        bool is_float =
            isFloatExpr(*expr.children[0]) || isFloatExpr(*expr.children[1]);
        Type operand_type = is_float ? Type::f32() : Type::index();
        Value *lhs = genExpr(*expr.children[0], operand_type);
        Value *rhs = genExpr(*expr.children[1], operand_type);
        Operation *cmp = is_float ? createCmpF(builder_, pred, lhs, rhs)
                                  : createCmpI(builder_, pred, lhs, rhs);
        return cmp->result(0);
    }

    const CProgram &program_;
    OpBuilder builder_;
    std::vector<std::map<std::string, Symbol>> scopes_;
};

} // namespace

std::unique_ptr<Operation>
buildModule(const CProgram &program, const std::string &top_func)
{
    if (program.funcs.empty())
        fatal("irgen: empty program");
    return IRGen(program).run(top_func);
}

std::unique_ptr<Operation>
parseCToModule(const std::string &source, const std::string &top_func)
{
    return buildModule(parseProgram(source), top_func);
}

} // namespace scalehls
