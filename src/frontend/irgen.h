/**
 * @file
 * IR generation: lowers the parsed HLS C AST into the scf + memref dialects
 * (the paper's C front-end, Section VI-A). The result is then raised to the
 * affine dialect by the -raise-scf-to-affine pass.
 */

#ifndef SCALEHLS_FRONTEND_IRGEN_H
#define SCALEHLS_FRONTEND_IRGEN_H

#include <memory>
#include <string>

#include "frontend/parser.h"
#include "ir/ir.h"

namespace scalehls {

/** Build a module from a parsed program. @p top_func marks the top function
 * (empty selects the first function). */
std::unique_ptr<Operation> buildModule(const CProgram &program,
                                       const std::string &top_func = "");

/** Parse HLS C source and build the scf-level module. */
std::unique_ptr<Operation> parseCToModule(const std::string &source,
                                          const std::string &top_func = "");

} // namespace scalehls

#endif // SCALEHLS_FRONTEND_IRGEN_H
