#include "frontend/lexer.h"

#include <cctype>

#include "support/utils.h"

namespace scalehls {

namespace {

class Lexer
{
  public:
    explicit Lexer(const std::string &source) : src_(source) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> tokens;
        while (true) {
            skipTrivia();
            Token tok = next();
            tokens.push_back(tok);
            if (tok.kind == TokKind::Eof)
                break;
        }
        return tokens;
    }

  private:
    char
    peek(int offset = 0) const
    {
        size_t i = pos_ + offset;
        return i < src_.size() ? src_[i] : '\0';
    }

    char
    advance()
    {
        char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void
    skipTrivia()
    {
        while (true) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (peek() && peek() != '\n')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                advance();
                advance();
                while (peek() && !(peek() == '*' && peek(1) == '/'))
                    advance();
                if (peek()) {
                    advance();
                    advance();
                }
            } else if (c == '#') {
                // Preprocessor / pragma lines are ignored by the front-end.
                while (peek() && peek() != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    Token
    make(TokKind kind, std::string text)
    {
        Token tok;
        tok.kind = kind;
        tok.text = std::move(text);
        tok.line = line_;
        tok.column = column_;
        return tok;
    }

    Token
    next()
    {
        if (pos_ >= src_.size())
            return make(TokKind::Eof, "");
        char c = peek();
        if (std::isalpha(c) || c == '_')
            return identifier();
        if (std::isdigit(c) ||
            (c == '.' && std::isdigit(peek(1))))
            return number();
        return punctuation();
    }

    Token
    identifier()
    {
        std::string text;
        while (std::isalnum(peek()) || peek() == '_')
            text += advance();
        TokKind kind = TokKind::Identifier;
        if (text == "void")
            kind = TokKind::KwVoid;
        else if (text == "int")
            kind = TokKind::KwInt;
        else if (text == "float")
            kind = TokKind::KwFloat;
        else if (text == "double")
            kind = TokKind::KwDouble;
        else if (text == "for")
            kind = TokKind::KwFor;
        else if (text == "if")
            kind = TokKind::KwIf;
        else if (text == "else")
            kind = TokKind::KwElse;
        else if (text == "return")
            kind = TokKind::KwReturn;
        Token tok = make(kind, text);
        return tok;
    }

    Token
    number()
    {
        std::string text;
        bool is_float = false;
        while (std::isdigit(peek()))
            text += advance();
        if (peek() == '.') {
            is_float = true;
            text += advance();
            while (std::isdigit(peek()))
                text += advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            is_float = true;
            text += advance();
            if (peek() == '+' || peek() == '-')
                text += advance();
            while (std::isdigit(peek()))
                text += advance();
        }
        if (peek() == 'f' || peek() == 'F') {
            is_float = true;
            advance();
        }
        Token tok = make(is_float ? TokKind::FloatLiteral
                                  : TokKind::IntLiteral,
                         text);
        if (is_float)
            tok.floatValue = std::stod(text);
        else
            tok.intValue = std::stoll(text);
        return tok;
    }

    Token
    punctuation()
    {
        int line = line_;
        int col = column_;
        char c = advance();
        auto two = [&](char second, TokKind with, TokKind without) {
            if (peek() == second) {
                advance();
                Token tok = make(with, std::string{c, second});
                tok.line = line;
                tok.column = col;
                return tok;
            }
            Token tok = make(without, std::string{c});
            tok.line = line;
            tok.column = col;
            return tok;
        };
        switch (c) {
          case '(':
            return make(TokKind::LParen, "(");
          case ')':
            return make(TokKind::RParen, ")");
          case '{':
            return make(TokKind::LBrace, "{");
          case '}':
            return make(TokKind::RBrace, "}");
          case '[':
            return make(TokKind::LBracket, "[");
          case ']':
            return make(TokKind::RBracket, "]");
          case ';':
            return make(TokKind::Semicolon, ";");
          case ',':
            return make(TokKind::Comma, ",");
          case '+':
            if (peek() == '+') {
                advance();
                return make(TokKind::PlusPlus, "++");
            }
            return two('=', TokKind::PlusAssign, TokKind::Plus);
          case '-':
            if (peek() == '-') {
                advance();
                return make(TokKind::MinusMinus, "--");
            }
            return two('=', TokKind::MinusAssign, TokKind::Minus);
          case '*':
            return two('=', TokKind::StarAssign, TokKind::Star);
          case '/':
            return make(TokKind::Slash, "/");
          case '%':
            return make(TokKind::Percent, "%");
          case '<':
            return two('=', TokKind::LessEqual, TokKind::Less);
          case '>':
            return two('=', TokKind::GreaterEqual, TokKind::Greater);
          case '=':
            return two('=', TokKind::EqualEqual, TokKind::Assign);
          case '!':
            if (peek() == '=') {
                advance();
                return make(TokKind::NotEqual, "!=");
            }
            break;
          case '?':
            return make(TokKind::Question, "?");
          case ':':
            return make(TokKind::Colon, ":");
          default:
            break;
        }
        fatal("lexer: unexpected character '" + std::string{c} +
              "' at line " + std::to_string(line));
    }

    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    return Lexer(source).run();
}

std::string
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::Eof:
        return "<eof>";
      case TokKind::Identifier:
        return "identifier";
      case TokKind::IntLiteral:
        return "integer literal";
      case TokKind::FloatLiteral:
        return "float literal";
      case TokKind::Semicolon:
        return "';'";
      case TokKind::LParen:
        return "'('";
      case TokKind::RParen:
        return "')'";
      case TokKind::LBrace:
        return "'{'";
      case TokKind::RBrace:
        return "'}'";
      case TokKind::LBracket:
        return "'['";
      case TokKind::RBracket:
        return "']'";
      case TokKind::Comma:
        return "','";
      case TokKind::Assign:
        return "'='";
      default:
        return "token";
    }
}

} // namespace scalehls
