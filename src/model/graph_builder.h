/**
 * @file
 * Graph-level model construction: the stand-in for the paper's
 * Torch-MLIR / ONNX-MLIR front-ends. Models are built programmatically as
 * graph-dialect functions with the same layer graphs (ops, shapes,
 * residual/bypass edges) those importers would produce.
 */

#ifndef SCALEHLS_MODEL_GRAPH_BUILDER_H
#define SCALEHLS_MODEL_GRAPH_BUILDER_H

#include "dialect/graph_ops.h"

namespace scalehls {

/** Fluent builder for a graph-dialect model function. */
class ModelBuilder
{
  public:
    /** Creates func @name(tensor<input_shape>) inside @p module. */
    ModelBuilder(Operation *module, const std::string &name,
                 std::vector<int64_t> input_shape);

    Value *input() const { return input_; }

    /** Conv + optional ReLU (batch norms are folded into conv weights, as
     * deployment flows do). */
    Value *conv(Value *x, int64_t out_channels, int64_t kernel,
                int64_t stride, int64_t pad, bool relu = true);
    /** Depthwise conv + optional ReLU. */
    Value *dwconv(Value *x, int64_t kernel, int64_t stride, int64_t pad,
                  bool relu = true);
    Value *dense(Value *x, int64_t out_features);
    Value *relu(Value *x);
    Value *add(Value *a, Value *b);
    Value *maxpool(Value *x, int64_t kernel, int64_t stride);
    Value *avgpool(Value *x, int64_t kernel, int64_t stride);
    Value *flatten(Value *x);

    /** Set the function result and return the function op. */
    Operation *finish(Value *output);

    Operation *func() const { return func_; }

  private:
    Operation *func_ = nullptr;
    Value *input_ = nullptr;
    OpBuilder builder_;
};

/** Total multiply/add operation count of a graph function (the OP count
 * used by the DSP-efficiency metric, paper Eq. 2). */
int64_t modelOpCount(Operation *func);

/** @name Model zoo (CIFAR-10 input shapes, batch 1) */
///@{
Operation *buildResNet18(Operation *module);
Operation *buildVGG16(Operation *module);
Operation *buildMobileNet(Operation *module);
///@}

} // namespace scalehls

#endif // SCALEHLS_MODEL_GRAPH_BUILDER_H
