/**
 * @file
 * MobileNetV1 for CIFAR-10 (paper Table V / Fig. 8c): a 3x3 stem followed
 * by depthwise-separable conv pairs. Depthwise convolutions stress the
 * graph-level cost model differently from dense convs (fewer MACs per
 * byte), which is why the paper includes it.
 */

#include "model/graph_builder.h"

namespace scalehls {

namespace {

/** Depthwise separable unit: 3x3 depthwise + 1x1 pointwise. */
Value *
separable(ModelBuilder &m, Value *x, int64_t out_channels, int64_t stride)
{
    x = m.dwconv(x, 3, stride, 1);
    return m.conv(x, out_channels, 1, 1, 0);
}

} // namespace

Operation *
buildMobileNet(Operation *module)
{
    ModelBuilder m(module, "mobilenet", {1, 3, 32, 32});
    Value *x = m.conv(m.input(), 32, 3, 1, 1);

    x = separable(m, x, 64, 1);
    x = separable(m, x, 128, 2);
    x = separable(m, x, 128, 1);
    x = separable(m, x, 256, 2);
    x = separable(m, x, 256, 1);
    x = separable(m, x, 512, 2);
    for (int i = 0; i < 5; ++i)
        x = separable(m, x, 512, 1);
    x = separable(m, x, 1024, 2);
    x = separable(m, x, 1024, 1);

    x = m.avgpool(x, 2, 2); // Global average pool (2x2 maps).
    x = m.flatten(x);
    x = m.dense(x, 10);
    return m.finish(x);
}

} // namespace scalehls
