#include "model/dnn_dse.h"

#include <map>
#include <set>

#include "analysis/loop_analysis.h"
#include "api/scalehls.h"
#include "estimate/qor_estimator.h"
#include "model/graph_builder.h"

namespace scalehls {

std::vector<DNNStage>
collectDNNStages(Operation *lowered)
{
    std::vector<DNNStage> stages;
    Operation *top = getTopFunc(lowered);
    if (!top)
        return stages;

    // A callee called twice from the top cannot carry two different
    // frontier points; count call sites first so duplicates demote to
    // fixed (non-kernel) stages.
    std::map<Operation *, size_t> call_counts;
    for (auto &op : funcBody(top)->ops()) {
        if (!op->is(ops::Call))
            continue;
        Operation *callee =
            lookupFunc(lowered, op->attr(kCallee).getString());
        if (callee)
            ++call_counts[callee];
    }
    for (auto &op : funcBody(top)->ops()) {
        if (!op->is(ops::Call))
            continue;
        DNNStage stage;
        stage.call = op.get();
        stage.callee = lookupFunc(lowered, op->attr(kCallee).getString());
        stage.kernel = stage.callee &&
                       !getLoopBands(stage.callee).empty() &&
                       call_counts[stage.callee] == 1;
        stages.push_back(stage);
    }
    return stages;
}

std::unique_ptr<Operation>
buildLoweredDNN(const std::string &model, int graph_level)
{
    auto module = createModule();
    if (model == "resnet18")
        buildResNet18(module.get());
    else if (model == "vgg16")
        buildVGG16(module.get());
    else if (model == "mobilenet")
        buildMobileNet(module.get());
    else
        return nullptr;
    Compiler compiler(std::move(module));
    // Graph opt + bufferization only: the schedule (tiling, pipelining,
    // partitioning) is the DSE's to assign, so the loop/directive levels
    // of the fixed flow are intentionally NOT applied here.
    compiler.applyGraphOpt(graph_level).lowerToLoops();
    return compiler.takeModule();
}

std::vector<DNNKernel>
extractDNNKernels(Operation *lowered, size_t max_kernels)
{
    std::vector<DNNKernel> kernels;
    for (auto &op : lowered->region(0).front().ops()) {
        if (!op->is(ops::Func) || getLoopBands(op.get()).empty())
            continue;
        if (max_kernels != 0 && kernels.size() >= max_kernels)
            break;
        Operation *func = op.get();

        // The kernel plus its transitive callee closure (stage functions
        // are usually leaf functions, but the closure keeps any callee
        // estimable), mirroring optimizeFunctions' reduced clones.
        std::set<Operation *> needed;
        std::vector<Operation *> worklist = {func};
        while (!worklist.empty()) {
            Operation *current = worklist.back();
            worklist.pop_back();
            if (!needed.insert(current).second)
                continue;
            for (Operation *callee :
                 collectDistinctCallees(current, lowered))
                worklist.push_back(callee);
        }

        DNNKernel kernel;
        kernel.name = funcName(func);
        kernel.module = createModule();
        Block &body = kernel.module->region(0).front();
        for (auto &candidate : lowered->region(0).front().ops()) {
            if (!candidate->is(ops::Func) || !needed.count(candidate.get()))
                continue;
            Operation *copy = body.pushBack(candidate->clone());
            setTopFunc(copy, candidate.get() == func);
        }
        Operation *top = getTopFunc(kernel.module.get());
        kernel.numBands = getLoopBands(top).size();
        top->walk([&](Operation *nested) {
            kernel.numAllocs += nested->is(ops::Alloc) ? 1 : 0;
        });
        kernels.push_back(std::move(kernel));
    }
    return kernels;
}

std::vector<DNNKernel>
buildDNNKernelModules(const std::string &model, int graph_level,
                      size_t max_kernels)
{
    auto lowered = buildLoweredDNN(model, graph_level);
    if (!lowered)
        return {};
    return extractDNNKernels(lowered.get(), max_kernels);
}

} // namespace scalehls
