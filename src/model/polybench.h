/**
 * @file
 * Parameterized HLS C sources for the six PolyBench-C computation kernels
 * of paper Table III (BICG, GEMM, GESUMMV, SYR2K, SYRK, TRMM), plus the
 * Fig. 5 SYRK example at its original 16x8 size.
 */

#ifndef SCALEHLS_MODEL_POLYBENCH_H
#define SCALEHLS_MODEL_POLYBENCH_H

#include <string>
#include <vector>

namespace scalehls {

/** The kernel names in Table III order. */
const std::vector<std::string> &polybenchKernelNames();

/** HLS C source of a kernel at problem size @p n. Besides the Table III
 * kernels this also serves the multi-stage (multi-band) kernels "2mm"
 * and "3mm", which exercise the per-band design space and the
 * band-level estimate cache. Throws on unknown names. */
std::string polybenchSource(const std::string &kernel, int64_t n);

/** The 16x8 SYRK example of paper Fig. 5 (input C block (i)). */
std::string syrkFig5Source();

} // namespace scalehls

#endif // SCALEHLS_MODEL_POLYBENCH_H
