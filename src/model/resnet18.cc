/**
 * @file
 * ResNet-18 for CIFAR-10 (paper Table V / Fig. 8a): the standard CIFAR
 * variant — 3x3 stem, four stages of two basic blocks (64/128/256/512
 * channels), strided 1x1 projection shortcuts, global average pool, and a
 * 10-way classifier. Residual connections create the bypass paths the
 * -legalize-dataflow pass must handle.
 */

#include "model/graph_builder.h"

namespace scalehls {

namespace {

/** A basic residual block: two 3x3 convs plus an identity or projection
 * shortcut. */
Value *
basicBlock(ModelBuilder &m, Value *x, int64_t channels, int64_t stride)
{
    Value *shortcut = x;
    if (stride != 1 || x->type().shape()[1] != channels)
        shortcut = m.conv(x, channels, 1, stride, 0, /*relu=*/false);
    Value *y = m.conv(x, channels, 3, stride, 1);
    y = m.conv(y, channels, 3, 1, 1, /*relu=*/false);
    return m.relu(m.add(y, shortcut));
}

} // namespace

Operation *
buildResNet18(Operation *module)
{
    ModelBuilder m(module, "resnet18", {1, 3, 32, 32});
    Value *x = m.conv(m.input(), 64, 3, 1, 1);

    x = basicBlock(m, x, 64, 1);
    x = basicBlock(m, x, 64, 1);
    x = basicBlock(m, x, 128, 2);
    x = basicBlock(m, x, 128, 1);
    x = basicBlock(m, x, 256, 2);
    x = basicBlock(m, x, 256, 1);
    x = basicBlock(m, x, 512, 2);
    x = basicBlock(m, x, 512, 1);

    x = m.avgpool(x, 4, 4); // Global average pool (4x4 feature maps).
    x = m.flatten(x);
    x = m.dense(x, 10);
    return m.finish(x);
}

} // namespace scalehls
