#include "model/lower_graph.h"

#include <map>

#include "dialect/graph_ops.h"
#include "support/utils.h"

namespace scalehls {

namespace {

Type
bufferType(Type tensor, MemKind space = MemKind::BRAM_S2P)
{
    assert(tensor.isTensor());
    return Type::memref(tensor.shape(), tensor.elementType(), AffineMap(),
                        space);
}

/** Builds affine loop nests and typed accesses for one lowering site. */
class NestBuilder
{
  public:
    explicit NestBuilder(OpBuilder builder) : b_(std::move(builder)) {}

    /** Open a nest of loops [0, bound) and position inside the innermost
     * body. Returns the induction variables. */
    std::vector<Value *>
    open(const std::vector<int64_t> &bounds)
    {
        std::vector<Value *> ivs;
        for (int64_t bound : bounds) {
            AffineForOp loop = createAffineFor(b_, 0, bound);
            ivs.push_back(loop.inductionVar());
            b_.setInsertionPointToEnd(loop.body());
        }
        return ivs;
    }

    /** Guard: conjunction of 0 <= exprs[i] < limits[i]. Positions the
     * builder inside the guard. */
    void
    guard(const std::vector<AffineExpr> &exprs,
          const std::vector<int64_t> &limits,
          const std::vector<Value *> &operands)
    {
        std::vector<AffineExpr> constraints;
        std::vector<bool> eq_flags;
        for (unsigned i = 0; i < exprs.size(); ++i) {
            constraints.push_back(exprs[i]);                   // e >= 0
            constraints.push_back(getAffineConstantExpr(limits[i] - 1) -
                                  exprs[i]);                   // e <= L-1
            eq_flags.push_back(false);
            eq_flags.push_back(false);
        }
        AffineIfOp if_op = createAffineIf(
            b_,
            IntegerSet(operands.size(), std::move(constraints),
                       std::move(eq_flags)),
            operands);
        b_.setInsertionPointToEnd(if_op.thenBlock());
    }

    Value *
    load(Value *memref, const std::vector<AffineExpr> &exprs,
         const std::vector<Value *> &operands)
    {
        AffineMap map(operands.size(), 0, exprs);
        return createAffineLoad(b_, memref, map, operands)->result(0);
    }

    void
    store(Value *value, Value *memref,
          const std::vector<AffineExpr> &exprs,
          const std::vector<Value *> &operands)
    {
        AffineMap map(operands.size(), 0, exprs);
        createAffineStore(b_, value, memref, map, operands);
    }

    Value *
    constant(double value)
    {
        return createConstantFloat(b_, value, Type::f32())->result(0);
    }

    Value *
    binary(std::string_view name, Value *lhs, Value *rhs)
    {
        return createBinary(b_, name, lhs, rhs)->result(0);
    }

    OpBuilder &builder() { return b_; }

  private:
    OpBuilder b_;
};

/** Dim expressions d0..dn-1. */
std::vector<AffineExpr>
dims(unsigned n)
{
    std::vector<AffineExpr> out;
    for (unsigned i = 0; i < n; ++i)
        out.push_back(getAffineDimExpr(i));
    return out;
}

class FuncLowering
{
  public:
    explicit FuncLowering(Operation *func) : func_(func) {}

    bool
    run()
    {
        Block *body = funcBody(func_);
        bool has_tensors = false;
        for (unsigned i = 0; i < body->numArguments(); ++i)
            has_tensors |= body->argument(i)->type().isTensor();
        for (auto &op : body->ops())
            has_tensors |= isGraphOp(op.get());
        Operation *ret = body->back();
        for (Value *operand : ret->operands())
            has_tensors |= operand->type().isTensor();
        if (!has_tensors)
            return false;

        // Tensor arguments become BRAM buffers in place.
        for (unsigned i = 0; i < body->numArguments(); ++i) {
            Value *arg = body->argument(i);
            if (arg->type().isTensor())
                arg->setType(bufferType(arg->type()));
        }

        for (Operation *op : body->opsVector())
            lowerOp(op);

        // Function results become appended output arguments. A locally
        // allocated result buffer is replaced by the argument outright
        // (the producer writes straight into the caller's buffer); only
        // results aliasing an input need a copy nest.
        std::vector<Value *> results = ret->operands();
        ret->setOperands({});
        for (Value *buffer : results) {
            Value *out_arg = body->addArgument(buffer->type());
            Operation *alloc = buffer->definingOp();
            if (isa(alloc, ops::Alloc)) {
                buffer->replaceAllUsesWith(out_arg);
                alloc->erase();
                continue;
            }
            NestBuilder nest{OpBuilder(body, ret)};
            auto ivs = nest.open(buffer->type().shape());
            auto exprs = dims(ivs.size());
            nest.store(nest.load(buffer, exprs, ivs), out_arg, exprs, ivs);
        }
        return true;
    }

  private:
    /** Allocate the output buffer for a graph op result. All uses are
     * rewired eagerly, so later lowerings read their operands directly. */
    Value *
    allocFor(Operation *op, OpBuilder &b)
    {
        Value *buffer =
            createAlloc(b, bufferType(op->result(0)->type()))->result(0);
        op->result(0)->replaceAllUsesWith(buffer);
        return buffer;
    }

    void
    lowerOp(Operation *op)
    {
        if (op->is(ops::GraphWeight)) {
            OpBuilder b;
            b.setInsertionPoint(op);
            // Weights live off-chip and stream in through AXI.
            Value *buffer =
                createAlloc(b, bufferType(op->result(0)->type(),
                                          MemKind::DRAM))
                    ->result(0);
            op->result(0)->replaceAllUsesWith(buffer);
            op->erase();
            return;
        }
        if (op->is(ops::GraphConv2D) || op->is(ops::GraphDWConv2D)) {
            lowerConv(op, op->is(ops::GraphDWConv2D));
            return;
        }
        if (op->is(ops::GraphDense)) {
            lowerDense(op);
            return;
        }
        if (op->is(ops::GraphRelu)) {
            lowerRelu(op);
            return;
        }
        if (op->is(ops::GraphAdd)) {
            lowerAdd(op);
            return;
        }
        if (op->is(ops::GraphMaxPool) || op->is(ops::GraphAvgPool)) {
            lowerPool(op, op->is(ops::GraphMaxPool));
            return;
        }
        if (op->is(ops::GraphFlatten)) {
            lowerFlatten(op);
            return;
        }
        if (op->is(ops::GraphCopy)) {
            lowerCopy(op);
            return;
        }
        if (op->is(ops::Call)) {
            lowerCall(op);
            return;
        }
        // Non-graph ops (constants, returns) pass through.
    }

    void
    lowerConv(Operation *op, bool depthwise)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        Value *in = op->operand(0);
        Value *weight = op->operand(1);
        Value *out = allocFor(op, b);
        int64_t stride = op->attr(kStrides).getInt();
        int64_t pad = op->attr(kPads).getInt();
        const auto &os = out->type().shape();  // [N, OC, OH, OW]
        const auto &is = in->type().shape();   // [N, IC, IH, IW]
        const auto &ws = weight->type().shape();

        // Init nest: out = 0.
        {
            NestBuilder nest{b};
            auto ivs = nest.open(os);
            nest.store(nest.constant(0.0), out, dims(4), ivs);
        }
        // Compute nest.
        {
            NestBuilder nest{OpBuilder(op->parentBlock(), op)};
            std::vector<int64_t> bounds = {os[0], os[1], os[2], os[3]};
            if (!depthwise)
                bounds.push_back(is[1]); // input channels
            bounds.push_back(ws[2]);
            bounds.push_back(ws[3]);
            auto ivs = nest.open(bounds);
            unsigned n = ivs.size();
            auto d = dims(n);
            // (n, oc, oh, ow, [ic,] kh, kw)
            AffineExpr ih = d[2] * stride + d[n - 2] - pad;
            AffineExpr iw = d[3] * stride + d[n - 1] - pad;
            if (pad > 0)
                nest.guard({ih, iw}, {is[2], is[3]}, ivs);
            AffineExpr ic = depthwise ? d[1] : d[4];
            Value *x = nest.load(in, {d[0], ic, ih, iw}, ivs);
            Value *w = nest.load(
                weight,
                {d[1], depthwise ? getAffineConstantExpr(0) : d[4],
                 d[n - 2], d[n - 1]},
                ivs);
            Value *acc = nest.load(out, {d[0], d[1], d[2], d[3]}, ivs);
            Value *prod = nest.binary(ops::MulF, x, w);
            Value *sum = nest.binary(ops::AddF, acc, prod);
            nest.store(sum, out, {d[0], d[1], d[2], d[3]}, ivs);
        }
        op->erase();
    }

    void
    lowerDense(Operation *op)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        Value *in = op->operand(0);
        Value *weight = op->operand(1);
        Value *out = allocFor(op, b);
        const auto &os = out->type().shape(); // [N, O]
        const auto &is = in->type().shape();  // [N, I]
        {
            NestBuilder nest{b};
            auto ivs = nest.open(os);
            nest.store(nest.constant(0.0), out, dims(2), ivs);
        }
        {
            NestBuilder nest{OpBuilder(op->parentBlock(), op)};
            auto ivs = nest.open({os[0], os[1], is[1]});
            auto d = dims(3);
            Value *x = nest.load(in, {d[0], d[2]}, ivs);
            Value *w = nest.load(weight, {d[1], d[2]}, ivs);
            Value *acc = nest.load(out, {d[0], d[1]}, ivs);
            Value *sum =
                nest.binary(ops::AddF, acc, nest.binary(ops::MulF, x, w));
            nest.store(sum, out, {d[0], d[1]}, ivs);
        }
        op->erase();
    }

    void
    lowerRelu(Operation *op)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        Value *in = op->operand(0);
        // In-place when the input is a local buffer (elementwise update
        // needs no second copy, halving feature-map memory).
        Value *out;
        if (isa(in->definingOp(), ops::Alloc)) {
            out = in;
            op->result(0)->replaceAllUsesWith(out);
        } else {
            out = allocFor(op, b);
        }
        NestBuilder nest{b};
        auto ivs = nest.open(out->type().shape());
        auto d = dims(ivs.size());
        Value *x = nest.load(in, d, ivs);
        Value *y = nest.binary(ops::MaxF, x, nest.constant(0.0));
        nest.store(y, out, d, ivs);
        op->erase();
    }

    void
    lowerAdd(Operation *op)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        Value *lhs = op->operand(0);
        Value *rhs = op->operand(1);
        // Elementwise adds update the left operand in place when it is a
        // local buffer (residual connections reuse the feature map).
        Value *out;
        if (isa(lhs->definingOp(), ops::Alloc)) {
            out = lhs;
            op->result(0)->replaceAllUsesWith(out);
        } else {
            out = allocFor(op, b);
        }
        NestBuilder nest{b};
        auto ivs = nest.open(out->type().shape());
        auto d = dims(ivs.size());
        Value *sum = nest.binary(ops::AddF, nest.load(lhs, d, ivs),
                                 nest.load(rhs, d, ivs));
        nest.store(sum, out, d, ivs);
        op->erase();
    }

    void
    lowerPool(Operation *op, bool is_max)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        Value *in = op->operand(0);
        Value *out = allocFor(op, b);
        int64_t kernel = op->attr(kKernel).getInt();
        int64_t stride = op->attr(kStrides).getInt();
        const auto &os = out->type().shape();
        {
            NestBuilder nest{b};
            auto ivs = nest.open(os);
            nest.store(nest.constant(is_max ? -3.0e38 : 0.0), out, dims(4),
                       ivs);
        }
        {
            NestBuilder nest{OpBuilder(op->parentBlock(), op)};
            auto ivs = nest.open({os[0], os[1], os[2], os[3], kernel,
                                  kernel});
            auto d = dims(6);
            AffineExpr ih = d[2] * stride + d[4];
            AffineExpr iw = d[3] * stride + d[5];
            Value *x = nest.load(in, {d[0], d[1], ih, iw}, ivs);
            Value *acc = nest.load(out, {d[0], d[1], d[2], d[3]}, ivs);
            Value *y = nest.binary(is_max ? ops::MaxF : ops::AddF, acc, x);
            nest.store(y, out, {d[0], d[1], d[2], d[3]}, ivs);
        }
        if (!is_max) {
            // Average: scale by 1/(k*k).
            NestBuilder nest{OpBuilder(op->parentBlock(), op)};
            auto ivs = nest.open(os);
            auto d = dims(4);
            Value *x = nest.load(out, d, ivs);
            Value *y = nest.binary(
                ops::MulF, x,
                nest.constant(1.0 / static_cast<double>(kernel * kernel)));
            nest.store(y, out, d, ivs);
        }
        op->erase();
    }

    void
    lowerFlatten(Operation *op)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        Value *in = op->operand(0);
        Value *out = allocFor(op, b);
        const auto &is = in->type().shape();
        NestBuilder nest{b};
        auto ivs = nest.open(is);
        auto d = dims(is.size());
        // out[n][c*H*W + h*W + w] = in[n][c][h][w] (rank-4 common case;
        // general rank handled by the same linearization).
        AffineExpr linear = getAffineConstantExpr(0);
        int64_t mult = 1;
        for (unsigned i = is.size(); i > 1; --i) {
            linear = linear + d[i - 1] * mult;
            mult *= is[i - 1];
        }
        Value *x = nest.load(in, d, ivs);
        nest.store(x, out, {d[0], linear}, ivs);
        op->erase();
    }

    void
    lowerCopy(Operation *op)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        Value *in = op->operand(0);
        Value *out = allocFor(op, b);
        NestBuilder nest{b};
        auto ivs = nest.open(out->type().shape());
        auto d = dims(ivs.size());
        nest.store(nest.load(in, d, ivs), out, d, ivs);
        op->erase();
    }

    void
    lowerCall(Operation *op)
    {
        OpBuilder b;
        b.setInsertionPoint(op);
        std::vector<Value *> operands = op->operands();
        // Tensor results become caller-allocated output buffers appended
        // to the operand list (the callee lowering appends matching args).
        std::vector<Value *> buffers;
        for (Value *result : op->results()) {
            Type t = result->type();
            Value *buffer =
                createAlloc(b, t.isTensor() ? bufferType(t) : t)
                    ->result(0);
            buffers.push_back(buffer);
            result->replaceAllUsesWith(buffer);
            operands.push_back(buffer);
        }
        AttrMap attrs = op->attrs();
        b.create(std::string(ops::Call), {}, operands, std::move(attrs));
        op->erase();
    }

    Operation *func_;
};

} // namespace

bool
lowerGraphToAffine(Operation *module)
{
    bool changed = false;
    std::vector<Operation *> funcs;
    for (auto &op : module->region(0).front().ops())
        if (op->is(ops::Func))
            funcs.push_back(op.get());
    for (Operation *func : funcs)
        changed |= FuncLowering(func).run();
    return changed;
}

} // namespace scalehls
