#include "model/polybench.h"

#include <sstream>

#include "support/utils.h"

namespace scalehls {

const std::vector<std::string> &
polybenchKernelNames()
{
    static const std::vector<std::string> names = {
        "bicg", "gemm", "gesummv", "syr2k", "syrk", "trmm"};
    return names;
}

namespace {

std::string
gemmSource(int64_t n)
{
    std::ostringstream os;
    os << "void gemm(float alpha, float beta, float C[" << n << "][" << n
       << "], float A[" << n << "][" << n << "], float B[" << n << "][" << n
       << "]) {\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    for (int j = 0; j < " << n << "; j++) {\n"
       << "      C[i][j] *= beta;\n"
       << "      for (int k = 0; k < " << n << "; k++) {\n"
       << "        C[i][j] += alpha * A[i][k] * B[k][j];\n"
       << "      }\n    }\n  }\n}\n";
    return os.str();
}

std::string
syrkSource(int64_t n)
{
    std::ostringstream os;
    os << "void syrk(float alpha, float beta, float C[" << n << "][" << n
       << "], float A[" << n << "][" << n << "]) {\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    for (int j = 0; j <= i; j++) {\n"
       << "      C[i][j] *= beta;\n"
       << "      for (int k = 0; k < " << n << "; k++) {\n"
       << "        C[i][j] += alpha * A[i][k] * A[j][k];\n"
       << "      }\n    }\n  }\n}\n";
    return os.str();
}

std::string
syr2kSource(int64_t n)
{
    std::ostringstream os;
    os << "void syr2k(float alpha, float beta, float C[" << n << "][" << n
       << "], float A[" << n << "][" << n << "], float B[" << n << "][" << n
       << "]) {\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    for (int j = 0; j <= i; j++) {\n"
       << "      C[i][j] *= beta;\n"
       << "      for (int k = 0; k < " << n << "; k++) {\n"
       << "        C[i][j] += A[j][k] * alpha * B[i][k]"
          " + B[j][k] * alpha * A[i][k];\n"
       << "      }\n    }\n  }\n}\n";
    return os.str();
}

std::string
trmmSource(int64_t n)
{
    std::ostringstream os;
    os << "void trmm(float alpha, float A[" << n << "][" << n
       << "], float B[" << n << "][" << n << "]) {\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    for (int j = 0; j < " << n << "; j++) {\n"
       << "      for (int k = i + 1; k < " << n << "; k++) {\n"
       << "        B[i][j] += A[k][i] * B[k][j];\n"
       << "      }\n"
       << "      B[i][j] *= alpha;\n"
       << "    }\n  }\n}\n";
    return os.str();
}

std::string
mm2Source(int64_t n)
{
    // Two sequential matrix-multiply stages (top-level loop bands):
    // tmp = alpha*A*B, then D = beta*D + tmp*C. The multi-band workload
    // class for the band-level estimate cache.
    std::ostringstream os;
    os << "void k2mm(float alpha, float beta, float tmp[" << n << "][" << n
       << "], float A[" << n << "][" << n << "], float B[" << n << "][" << n
       << "], float C[" << n << "][" << n << "], float D[" << n << "][" << n
       << "]) {\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    for (int j = 0; j < " << n << "; j++) {\n"
       << "      tmp[i][j] = 0.0;\n"
       << "      for (int k = 0; k < " << n << "; k++) {\n"
       << "        tmp[i][j] += alpha * A[i][k] * B[k][j];\n"
       << "      }\n    }\n  }\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    for (int j = 0; j < " << n << "; j++) {\n"
       << "      D[i][j] *= beta;\n"
       << "      for (int k = 0; k < " << n << "; k++) {\n"
       << "        D[i][j] += tmp[i][k] * C[k][j];\n"
       << "      }\n    }\n  }\n}\n";
    return os.str();
}

std::string
mm3Source(int64_t n)
{
    // Three matrix-multiply stages: E = A*B, F = C*D, G = E*F. The first
    // two bands are structurally identical up to which interface arrays
    // they touch, which exercises cross-band digest sharing.
    std::ostringstream os;
    auto stage = [&os, n](const char *dst, const char *lhs,
                          const char *rhs) {
        os << "  for (int i = 0; i < " << n << "; i++) {\n"
           << "    for (int j = 0; j < " << n << "; j++) {\n"
           << "      " << dst << "[i][j] = 0.0;\n"
           << "      for (int k = 0; k < " << n << "; k++) {\n"
           << "        " << dst << "[i][j] += " << lhs << "[i][k] * "
           << rhs << "[k][j];\n"
           << "      }\n    }\n  }\n";
    };
    os << "void k3mm(float E[" << n << "][" << n << "], float A[" << n
       << "][" << n << "], float B[" << n << "][" << n << "], float F["
       << n << "][" << n << "], float C[" << n << "][" << n
       << "], float D[" << n << "][" << n << "], float G[" << n << "]["
       << n << "]) {\n";
    stage("E", "A", "B");
    stage("F", "C", "D");
    stage("G", "E", "F");
    os << "}\n";
    return os.str();
}

std::string
bicgSource(int64_t n)
{
    std::ostringstream os;
    os << "void bicg(float A[" << n << "][" << n << "], float s[" << n
       << "], float q[" << n << "], float p[" << n << "], float r[" << n
       << "]) {\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    s[i] = 0.0;\n"
       << "  }\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    q[i] = 0.0;\n"
       << "    for (int j = 0; j < " << n << "; j++) {\n"
       << "      s[j] += r[i] * A[i][j];\n"
       << "      q[i] += A[i][j] * p[j];\n"
       << "    }\n  }\n}\n";
    return os.str();
}

std::string
gesummvSource(int64_t n)
{
    std::ostringstream os;
    os << "void gesummv(float alpha, float beta, float A[" << n << "][" << n
       << "], float B[" << n << "][" << n << "], float tmp[" << n
       << "], float x[" << n << "], float y[" << n << "]) {\n"
       << "  for (int i = 0; i < " << n << "; i++) {\n"
       << "    tmp[i] = 0.0;\n"
       << "    y[i] = 0.0;\n"
       << "    for (int j = 0; j < " << n << "; j++) {\n"
       << "      tmp[i] += A[i][j] * x[j];\n"
       << "      y[i] += B[i][j] * x[j];\n"
       << "    }\n"
       << "    y[i] = alpha * tmp[i] + beta * y[i];\n"
       << "  }\n}\n";
    return os.str();
}

} // namespace

std::string
polybenchSource(const std::string &kernel, int64_t n)
{
    if (kernel == "gemm")
        return gemmSource(n);
    if (kernel == "syrk")
        return syrkSource(n);
    if (kernel == "syr2k")
        return syr2kSource(n);
    if (kernel == "trmm")
        return trmmSource(n);
    if (kernel == "bicg")
        return bicgSource(n);
    if (kernel == "gesummv")
        return gesummvSource(n);
    if (kernel == "2mm")
        return mm2Source(n);
    if (kernel == "3mm")
        return mm3Source(n);
    fatal("unknown PolyBench kernel: " + kernel);
}

std::string
syrkFig5Source()
{
    return "void syrk(float alpha, float beta, float C[16][16],"
           " float A[16][8]) {\n"
           "  for (int i = 0; i < 16; i++) {\n"
           "    for (int j = 0; j <= i; j++) {\n"
           "      C[i][j] *= beta;\n"
           "      for (int k = 0; k < 8; k++) {\n"
           "        C[i][j] += alpha * A[i][k] * A[j][k];\n"
           "      }\n    }\n  }\n}\n";
}

} // namespace scalehls
