/**
 * @file
 * DNN design-space hookup: lower a model-zoo network through the
 * graph-level flow (dataflow legalization, function splitting,
 * bufferization) and extract each kernel function — the alloc-carrying
 * dataflow stages the per-kernel DSE explores — as a standalone module a
 * DesignSpace can be built on. This is the bridge between the paper's
 * Section VII-B multi-level flow and the band-incremental DSE machinery;
 * bench_estimator --dnn and the DNN fast-path tests both drive it.
 */

#ifndef SCALEHLS_MODEL_DNN_DSE_H
#define SCALEHLS_MODEL_DNN_DSE_H

#include <memory>
#include <string>
#include <vector>

#include "dialect/ops.h"

namespace scalehls {

/** One extracted DSE kernel: the stage function (marked top) plus its
 * transitive callee closure, cloned into a standalone module. */
struct DNNKernel
{
    std::string name;
    std::unique_ptr<Operation> module;
    size_t numBands = 0;
    size_t numAllocs = 0;
};

/** One call of the lowered model's dataflow top, in body order — the
 * unit the whole-model allocator assigns one frontier point to. */
struct DNNStage
{
    Operation *call = nullptr;   ///< The call op in the top's body.
    Operation *callee = nullptr; ///< The stage function it invokes.
    /** True when the stage is explorable per-kernel DSE territory: the
     * callee carries at least one loop band AND is called exactly once
     * from the top (a callee shared by several calls cannot take two
     * different frontier points at once, so it stays at its baseline). */
    bool kernel = false;
};

/** The dataflow stages of @p lowered's top function, in body order.
 * Empty when there is no top function. */
std::vector<DNNStage> collectDNNStages(Operation *lowered);

/** Build @p model ("resnet18", "vgg16" or "mobilenet"), lower it at
 * graph level @p graph_level, and return the whole lowered module. At
 * mid levels (e.g. 4) each dataflow stage spans several layers, so the
 * stage functions carry the intermediate feature maps as LOCAL allocs in
 * the init-write / accumulate / consume chain pattern the
 * buffer-ownership analysis classifies. */
std::unique_ptr<Operation> buildLoweredDNN(const std::string &model,
                                           int graph_level);

/** Extract every kernel function (at least one loop band) of
 * @p lowered as a standalone module, in module function order.
 * @p max_kernels bounds the count (0 = all). */
std::vector<DNNKernel> extractDNNKernels(Operation *lowered,
                                         size_t max_kernels = 0);

/** Convenience: buildLoweredDNN + extractDNNKernels. */
std::vector<DNNKernel> buildDNNKernelModules(const std::string &model,
                                             int graph_level,
                                             size_t max_kernels = 0);

} // namespace scalehls

#endif // SCALEHLS_MODEL_DNN_DSE_H
