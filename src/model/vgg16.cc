/**
 * @file
 * VGG-16 for CIFAR-10 (paper Table V / Fig. 8b): five 3x3 conv blocks
 * (64x2, 128x2, 256x3, 512x3, 512x3) separated by 2x2 max pools, then a
 * small classifier head. A pure chain — the easy case for dataflow
 * legalization (no bypass edges).
 */

#include "model/graph_builder.h"

namespace scalehls {

Operation *
buildVGG16(Operation *module)
{
    ModelBuilder m(module, "vgg16", {1, 3, 32, 32});
    Value *x = m.input();

    auto block = [&](int64_t channels, int convs) {
        for (int i = 0; i < convs; ++i)
            x = m.conv(x, channels, 3, 1, 1);
        x = m.maxpool(x, 2, 2);
    };
    block(64, 2);
    block(128, 2);
    block(256, 3);
    block(512, 3);
    block(512, 3);

    x = m.flatten(x); // 512x1x1 after five pools.
    x = m.relu(m.dense(x, 512));
    x = m.dense(x, 10);
    return m.finish(x);
}

} // namespace scalehls
