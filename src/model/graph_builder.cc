#include "model/graph_builder.h"

namespace scalehls {

ModelBuilder::ModelBuilder(Operation *module, const std::string &name,
                           std::vector<int64_t> input_shape)
{
    Type input_type = Type::tensor(std::move(input_shape), Type::f32());
    func_ = createFunc(module, name, {input_type});
    Block *body = funcBody(func_);
    input_ = body->argument(0);
    builder_ = OpBuilder(body, body->back()); // Before func.return.
}

Value *
ModelBuilder::conv(Value *x, int64_t out_channels, int64_t kernel,
                   int64_t stride, int64_t pad, bool relu)
{
    const auto &in = x->type().shape();
    Value *weight =
        createWeight(builder_, {out_channels, in[1], kernel, kernel})
            ->result(0);
    Value *out = createConv2D(builder_, x, weight, stride, pad)->result(0);
    return relu ? createRelu(builder_, out)->result(0) : out;
}

Value *
ModelBuilder::dwconv(Value *x, int64_t kernel, int64_t stride, int64_t pad,
                     bool relu)
{
    const auto &in = x->type().shape();
    Value *weight =
        createWeight(builder_, {in[1], 1, kernel, kernel})->result(0);
    Value *out =
        createDWConv2D(builder_, x, weight, stride, pad)->result(0);
    return relu ? createRelu(builder_, out)->result(0) : out;
}

Value *
ModelBuilder::dense(Value *x, int64_t out_features)
{
    const auto &in = x->type().shape();
    Value *weight =
        createWeight(builder_, {out_features, in[1]})->result(0);
    return createDense(builder_, x, weight)->result(0);
}

Value *
ModelBuilder::relu(Value *x)
{
    return createRelu(builder_, x)->result(0);
}

Value *
ModelBuilder::add(Value *a, Value *b)
{
    return createGraphAdd(builder_, a, b)->result(0);
}

Value *
ModelBuilder::maxpool(Value *x, int64_t kernel, int64_t stride)
{
    return createMaxPool(builder_, x, kernel, stride)->result(0);
}

Value *
ModelBuilder::avgpool(Value *x, int64_t kernel, int64_t stride)
{
    return createAvgPool(builder_, x, kernel, stride)->result(0);
}

Value *
ModelBuilder::flatten(Value *x)
{
    return createFlatten(builder_, x)->result(0);
}

Operation *
ModelBuilder::finish(Value *output)
{
    Block *body = funcBody(func_);
    body->back()->setOperands({output});
    setTopFunc(func_);
    return func_;
}

int64_t
modelOpCount(Operation *func)
{
    int64_t total = 0;
    func->walk([&](Operation *op) { total += graphOpCount(op); });
    return total;
}

} // namespace scalehls
