/**
 * @file
 * Graph-to-loop lowering (bufferization): converts graph-dialect tensor
 * functions into affine loop nests over memrefs, the Pii->iii step of the
 * DNN flow. Feature maps become on-chip (BRAM) buffers; weights become
 * off-chip (DRAM/AXI) arrays, matching the deployment style the paper's
 * Table V memory figures imply.
 */

#ifndef SCALEHLS_MODEL_LOWER_GRAPH_H
#define SCALEHLS_MODEL_LOWER_GRAPH_H

#include "ir/ir.h"

namespace scalehls {

/** Lower every function of @p module from graph level to loop level.
 * Function signatures change: tensor arguments become memref arguments and
 * tensor results become appended output memref arguments (calls are
 * rewritten to match). Returns true if anything was lowered. */
bool lowerGraphToAffine(Operation *module);

} // namespace scalehls

#endif // SCALEHLS_MODEL_LOWER_GRAPH_H
