#include "api/explore_request.h"

#include <limits>

#include "dse/evaluator.h"
#include "estimate/cache_io.h"
#include "support/json.h"

namespace scalehls {

namespace {

/** The zoo models every model-selecting front end accepts. */
bool
isZooModel(const std::string &model)
{
    return model == "resnet18" || model == "vgg16" ||
           model == "mobilenet";
}

/** Shared "-name=<n>" / "key": <n> unsigned decoding. The diagnostic is
 * the one every front end prints, so it names the surface field. */
std::optional<unsigned>
decodeUnsigned(const std::string &value)
{
    // std::stoul alone would wrap "-1" to ULONG_MAX; require digits.
    bool all_digits = !value.empty();
    for (char c : value)
        all_digits &= c >= '0' && c <= '9';
    if (!all_digits)
        return std::nullopt;
    try {
        unsigned long parsed = std::stoul(value);
        if (parsed <= std::numeric_limits<unsigned>::max())
            return static_cast<unsigned>(parsed);
    } catch (const std::exception &) {
    }
    return std::nullopt;
}

std::string
unsignedDiagnostic(const std::string &name, const std::string &value)
{
    return name + " expects an unsigned integer, got '" + value + "'";
}

} // namespace

ExploreRequest &
ExploreRequest::applyEnvDefaults()
{
    // $SCALEHLS_CACHE_DIR -> snapshot persistence ("" when unset), the
    // hook DSEOptions historically applied via applyCacheEnvDefaults.
    // Call this BEFORE applying explicit overrides (flags, JSON): it
    // rewrites the defaults, not user choices made afterwards.
    dse.cacheLoadPath = defaultCacheSnapshotPath();
    dse.cacheSavePath = defaultCacheSnapshotPath();
    // $SCALEHLS_DSE_AUDIT -> L3/L4 auditors on every fast-path decision.
    dse.auditMode = EvaluatorOptions::dseAuditEnvDefault();
    return *this;
}

std::optional<std::string>
ExploreRequest::validate()
{
    auto parsed_budget = parseResourceBudget(budgetSpec);
    if (!parsed_budget)
        return "budget must be xc7z020, vu9p-slr or dsp:lut:bram18k, "
               "got '" +
               budgetSpec + "'";
    budget = *parsed_budget;

    if (!model.empty() && !isZooModel(model))
        return "model must be resnet18, vgg16 or mobilenet, got '" +
               model + "'";

    if (graphLevel < 1 || graphLevel > 7)
        return "graph level must be in 1..7, got " +
               std::to_string(graphLevel);

    if (!cacheCapSpec.empty()) {
        auto caps = parseEstimateCacheCaps(cacheCapSpec);
        if (!caps)
            return "cache cap must be <n> or func:band:sched:plan, "
                   "got '" +
                   cacheCapSpec + "'";
        dse.estimateCacheTierCaps = *caps;
    }

    if (dse.batchSize == 0)
        return "batch size must be positive";
    if (dse.numInitialSamples == 0)
        return "initial samples must be positive";
    if (space.maxTileSize <= 0)
        return "max tile size must be positive";
    if (space.maxII <= 0)
        return "max II must be positive";
    return std::nullopt;
}

bool
parseExploreFlag(ExploreRequest &request, const std::string &arg,
                 std::string *error)
{
    auto pos = arg.find('=');
    std::string name = arg.substr(0, pos);
    std::string value =
        pos == std::string::npos ? std::string() : arg.substr(pos + 1);

    auto set_unsigned = [&](unsigned &field) {
        auto parsed = decodeUnsigned(value);
        if (!parsed) {
            if (error)
                *error = unsignedDiagnostic(name, value);
            return;
        }
        field = *parsed;
    };
    auto set_bool = [&](bool &field) {
        auto parsed = decodeUnsigned(value);
        if (!parsed) {
            if (error)
                *error = unsignedDiagnostic(name, value);
            return;
        }
        field = *parsed != 0;
    };

    if (name == "-dse-budget") {
        request.budgetSpec = value;
    } else if (name == "-dse-model") {
        request.model = value;
    } else if (name == "-dse-graph-level") {
        auto parsed = decodeUnsigned(value);
        if (!parsed) {
            if (error)
                *error = unsignedDiagnostic(name, value);
            return true;
        }
        request.graphLevel = static_cast<int>(*parsed);
    } else if (name == "-dse-threads") {
        set_unsigned(request.dse.numThreads);
    } else if (name == "-dse-batch") {
        set_unsigned(request.dse.batchSize);
    } else if (name == "-dse-seed") {
        set_unsigned(request.dse.seed);
    } else if (name == "-dse-samples") {
        set_unsigned(request.dse.numInitialSamples);
    } else if (name == "-dse-iterations") {
        set_unsigned(request.dse.maxIterations);
    } else if (name == "-dse-cache") {
        set_bool(request.dse.crossPointCache);
    } else if (name == "-dse-band-cache") {
        set_bool(request.dse.bandLevelCache);
    } else if (name == "-dse-partition-keys") {
        set_bool(request.dse.partitionAwareBandKeys);
    } else if (name == "-dse-incremental") {
        set_bool(request.dse.incrementalMaterialize);
    } else if (name == "-dse-dataflow-fastpath") {
        set_bool(request.space.dataflowFastPath);
    } else if (name == "-dse-cache-cap") {
        request.cacheCapSpec = value;
    } else if (name == "-cache-load" || name == "--cache-load") {
        request.dse.cacheLoadPath = value;
    } else if (name == "-cache-save" || name == "--cache-save") {
        request.dse.cacheSavePath = value;
    } else if (name == "-dse-audit") {
        // Bare "-dse-audit" arms the auditors; "=<0|1>" sets explicitly.
        if (value.empty())
            request.dse.auditMode = true;
        else
            set_bool(request.dse.auditMode);
    } else {
        return false;
    }
    return true;
}

std::string
exploreRequestFromJson(ExploreRequest &request, const JsonValue &object)
{
    std::string error;
    auto str = [&](const char *key, std::string &field) {
        const JsonValue *value = object.get(key);
        if (!value)
            return;
        if (!value->isString()) {
            if (error.empty())
                error = std::string(key) + " must be a string";
            return;
        }
        field = value->string;
    };
    auto count = [&](const char *key, unsigned &field) {
        const JsonValue *value = object.get(key);
        if (!value)
            return;
        if (!value->isNumber() || value->number < 0 ||
            value->asInt() >
                static_cast<int64_t>(
                    std::numeric_limits<unsigned>::max())) {
            if (error.empty())
                error = unsignedDiagnostic(
                    key, value->isNumber()
                             ? std::to_string(value->asInt())
                             : value->string);
            return;
        }
        field = static_cast<unsigned>(value->asInt());
    };
    auto flag = [&](const char *key, bool &field) {
        const JsonValue *value = object.get(key);
        if (!value)
            return;
        if (value->kind == JsonValue::Kind::Bool) {
            field = value->boolean;
            return;
        }
        if (!value->isNumber()) {
            if (error.empty())
                error = unsignedDiagnostic(key, value->string);
            return;
        }
        field = value->asInt() != 0;
    };

    str("budget", request.budgetSpec);
    str("model", request.model);
    if (const JsonValue *level = object.get("graph_level")) {
        if (!level->isNumber())
            return "graph_level must be a number";
        request.graphLevel = static_cast<int>(level->asInt());
    }
    count("threads", request.dse.numThreads);
    count("seed", request.dse.seed);
    count("samples", request.dse.numInitialSamples);
    count("iterations", request.dse.maxIterations);
    count("batch", request.dse.batchSize);
    flag("cache", request.dse.crossPointCache);
    flag("band_cache", request.dse.bandLevelCache);
    flag("partition_keys", request.dse.partitionAwareBandKeys);
    flag("incremental", request.dse.incrementalMaterialize);
    flag("dataflow_fastpath", request.space.dataflowFastPath);
    flag("audit", request.dse.auditMode);
    str("cache_cap", request.cacheCapSpec);
    return error;
}

std::optional<DSEResult>
runDSE(Operation *module, const ExploreRequest &request)
{
    return runDSE(module, request.budget, request.space, request.dse);
}

const char *
exploreFlagUsage()
{
    return "  -dse-budget=<xc7z020|vu9p-slr|dsp:lut:bram18k>\n"
           "                 device budget for every DSE mode (default\n"
           "                 xc7z020; custom triple in BRAM18K blocks)\n"
           "  -dse-model=<resnet18|vgg16|mobilenet>  zoo model for\n"
           "                 whole-model DSE\n"
           "  -dse-graph-level=<1..7>  graph granularity for -dse-model\n"
           "                 (default 4)\n"
           "  -dse-threads=<n>  QoR evaluation workers (default: all\n"
           "                    cores; results independent of <n>)\n"
           "  -dse-batch=<n>    points proposed per DSE round (part of\n"
           "                    the deterministic trajectory; default 8)\n"
           "  -dse-seed=<n>     DSE random seed\n"
           "  -dse-samples=<n>  step-1 random samples (default 120)\n"
           "  -dse-iterations=<n>  step-4 proposal budget (default 400)\n"
           "  -dse-cache=<0|1>  cross-point estimate cache (default 1;\n"
           "                    content-keyed, never changes results)\n"
           "  -dse-band-cache=<0|1>  band-level estimate-cache tier\n"
           "                    (default 1)\n"
           "  -dse-partition-keys=<0|1>  partition-aware band keys\n"
           "                    (default 1)\n"
           "  -dse-incremental=<0|1>  band-incremental materialization\n"
           "                    (default 1; validated, bit-identical)\n"
           "  -dse-dataflow-fastpath=<0|1>  extend the fast path to\n"
           "                    dataflow-top / alloc-carrying functions\n"
           "                    (default 1; validated, bit-identical)\n"
           "  -dse-cache-cap=<n|f:b:s:p>  max entries per estimate-\n"
           "                    cache tier (LRU eviction; default 0 =\n"
           "                    unbounded)\n"
           "  -cache-load=<path>  estimate-cache snapshot loaded before\n"
           "                    DSE (corrupt files = cold start)\n"
           "  -cache-save=<path>  snapshot saved after DSE; both paths\n"
           "                    default to $SCALEHLS_CACHE_DIR/\n"
           "                    estimate_cache.shlsnap when set\n"
           "  -dse-audit[=<0|1>]  audit every DSE fast-path decision\n"
           "                    (L3/L4); findings exit nonzero.\n"
           "                    SCALEHLS_DSE_AUDIT sets the default\n";
}

} // namespace scalehls
