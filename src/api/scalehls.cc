#include "api/scalehls.h"

#include <limits>
#include <set>

#include "analysis/loop_analysis.h"
#include "model/dnn_dse.h"
#include "support/thread_pool.h"
#include "support/utils.h"

namespace scalehls {

namespace {

constexpr size_t kNoIndex = static_cast<size_t>(-1);

/** The kernel plus its transitive callee closure, cloned into a
 * standalone module with the kernel marked top: func.call callees stay
 * resolvable and the estimator scores them, but sibling kernels (and
 * their subtrees) are never copied. DesignSpace clones the sub-module
 * once more per materialized point, so shrinking it here shrinks every
 * per-point clone of the exploration. @p module is never mutated. */
std::unique_ptr<Operation>
buildReducedClone(Operation *module, Operation *kernel)
{
    std::set<Operation *> needed;
    std::vector<Operation *> worklist = {kernel};
    while (!worklist.empty()) {
        Operation *func = worklist.back();
        worklist.pop_back();
        if (!needed.insert(func).second)
            continue;
        for (Operation *callee : collectDistinctCallees(func, module))
            worklist.push_back(callee);
    }
    auto sub = createModule();
    Block &sub_body = sub->region(0).front();
    for (auto &op : module->region(0).front().ops()) {
        if (!op->is(ops::Func) || !needed.count(op.get()))
            continue;
        Operation *copy = sub_body.pushBack(op->clone());
        setTopFunc(copy, op.get() == kernel);
    }
    return sub;
}

/** Split the worker budget between function-level concurrency (outer)
 * and point-level concurrency within each exploration: rewrites
 * @p options.numThreads to the inner share and returns the outer pool
 * size. */
unsigned
splitThreads(DSEOptions &options, size_t num_kernels)
{
    unsigned total = options.numThreads == 0 ? defaultThreadCount()
                                             : options.numThreads;
    total = std::max(1u, total);
    unsigned outer = static_cast<unsigned>(
        std::min<size_t>(total, std::max<size_t>(1, num_kernels)));
    options.numThreads = std::max(1u, total / outer);
    return outer;
}

/** One kernel's live exploration: the reduced clone, the design space
 * and engine built on it — kept alive so ANY frontier point can later be
 * re-materialized cheaply through the still-warm plan/schedule caches
 * (DSEEngine::materializeEvaluated) — plus the frontier itself, raw and
 * retained. This is the shared per-kernel stage of optimizeFunctions and
 * optimizeModel. */
struct KernelExploration
{
    std::unique_ptr<Operation> sub;
    std::unique_ptr<DesignSpace> space;
    std::unique_ptr<DSEEngine> engine;
    /** explore() result, ascending latency. */
    std::vector<EvaluatedPoint> frontier;
    /** The same frontier with decoded schedules and full QoR. */
    std::vector<FrontierPoint> retained;
};

KernelExploration
exploreKernel(Operation *module, Operation *kernel,
              const ResourceBudget &retain_budget,
              const DesignSpaceOptions &space_options,
              const DSEOptions &options)
{
    KernelExploration exploration;
    exploration.sub = buildReducedClone(module, kernel);
    exploration.space = std::make_unique<DesignSpace>(
        exploration.sub.get(), space_options);
    exploration.engine =
        std::make_unique<DSEEngine>(*exploration.space, options);
    exploration.engine->setFinalizeBudget(retain_budget);
    exploration.frontier = exploration.engine->explore();
    exploration.retained =
        retainFrontier(*exploration.space, exploration.frontier);
    return exploration;
}

} // namespace

Compiler::Compiler(std::unique_ptr<Operation> module)
    : module_(std::move(module))
{}

Compiler
Compiler::fromC(const std::string &source, const std::string &top_func)
{
    Compiler compiler(parseCToModule(source, top_func));
    compiler.timed([&] { raiseScfToAffine(compiler.module()); });
    return compiler;
}

Compiler &
Compiler::applyGraphOpt(int level)
{
    level = std::clamp(level, 1, 7);
    timed([&] {
        bool insert_copy = level >= 4;
        std::vector<Operation *> funcs;
        for (auto &op : module_->region(0).front().ops())
            if (op->is(ops::Func))
                funcs.push_back(op.get());
        for (Operation *func : funcs) {
            if (!applyLegalizeDataflow(func, insert_copy))
                continue;
            // Count stages, then choose the granularity: level n targets
            // min(stages, 2^(n-1)) dataflow stages.
            int64_t num_stages = 0;
            for (auto &op : funcBody(func)->ops()) {
                Attribute stage = op->attr(kDataflowStage);
                if (stage.is<int64_t>())
                    num_stages =
                        std::max(num_stages, stage.getInt() + 1);
            }
            int64_t target =
                std::min<int64_t>(num_stages, int64_t(1) << (level - 1));
            int64_t min_gran = ceilDiv(num_stages, std::max<int64_t>(
                                                       1, target));
            if (!applySplitFunction(module_.get(), func, min_gran)) {
                // A single stage has no inter-stage overlap: drop the
                // dataflow directive so the QoR reflects reality.
                FuncDirective fd = getFuncDirective(func);
                fd.dataflow = false;
                setFuncDirective(func, fd);
            }
        }
    });
    return *this;
}

Compiler &
Compiler::lowerToLoops()
{
    timed([&] { lowerGraphToAffine(module_.get()); });
    return *this;
}

Compiler &
Compiler::applyLoopOpt(int level)
{
    level = std::clamp(level, 1, 7);
    int64_t factor = int64_t(1) << (level - 1);
    timed([&] {
        module_->walk([&](Operation *op) {
            if (!op->is(ops::Func))
                return;
            for (auto &band_loops : getLoopBands(op)) {
                std::vector<Operation *> band = band_loops;
                // Push recurrence-carrying (reduction) loops outward so
                // the pipelined II is not bound by the accumulator.
                applyLoopOrderOpt(band);
                band = getLoopNest(band.front());
                // Distribute the unroll factor as tile sizes, preferring
                // dims that appear in store subscripts (output-parallel
                // dims): unrolling reduction dims only serializes on the
                // accumulator's write port. Pipelining (the D step) fully
                // unrolls the generated point loops.
                std::vector<bool> parallel(band.size(), false);
                for (const MemAccess &access :
                     collectAccesses(band.front(), bandIVs(band))) {
                    if (!access.isWrite || !access.normalized)
                        continue;
                    for (unsigned level = 0; level < band.size(); ++level)
                        for (const auto &expr : access.indices)
                            if (expr.involvesDim(level))
                                parallel[level] = true;
                }
                std::vector<int64_t> sizes(band.size(), 1);
                int64_t remaining = factor;
                for (int pass = 0; pass < 2 && remaining > 1; ++pass) {
                    bool want_parallel = (pass == 0);
                    for (int i = static_cast<int>(band.size()) - 1;
                         i >= 0 && remaining > 1; --i) {
                        if (parallel[i] != want_parallel || sizes[i] > 1)
                            continue;
                        int64_t trip =
                            getTripCount(AffineForOp(band[i]))
                                .value_or(1);
                        sizes[i] = std::min(remaining, trip);
                        remaining = std::max<int64_t>(
                            1,
                            remaining / std::max<int64_t>(1, sizes[i]));
                    }
                }
                applyLoopTiling(band, sizes);
            }
        });
    });
    return *this;
}

Compiler &
Compiler::applyDirectiveOpt(int64_t target_ii)
{
    timed([&] {
        std::vector<Operation *> funcs;
        for (auto &op : module_->region(0).front().ops())
            if (op->is(ops::Func))
                funcs.push_back(op.get());
        for (Operation *func : funcs) {
            for (auto &band : getLoopBands(func)) {
                // Pipeline the innermost tile loop; intra-tile (point)
                // loops below it get fully unrolled by the legalization.
                Operation *target = band.back();
                for (auto it = band.rbegin(); it != band.rend(); ++it) {
                    if (!(*it)->attr(kPointLoop).is<bool>()) {
                        target = *it;
                        break;
                    }
                }
                applyLoopPipelining(target, target_ii);
            }
        }
    });
    applySimplifications();
    timed([&] {
        Operation *top = getTopFunc(module_.get());
        if (top)
            applyArrayPartition(top);
    });
    return *this;
}

Compiler &
Compiler::applySimplifications()
{
    timed([&] {
        applyCanonicalize(module_.get());
        applySimplifyAffineIf(module_.get());
        applyAffineStoreForward(module_.get());
        applySimplifyMemrefAccess(module_.get());
        applyCSE(module_.get());
        applyCanonicalize(module_.get());
    });
    return *this;
}

namespace {

/** Bridge the deprecated {budget, space, options} overloads onto the
 * unified request (the budget is already resolved, so no validate()). */
ExploreRequest
requestFrom(const ResourceBudget &budget, DesignSpaceOptions space_options,
            DSEOptions options)
{
    ExploreRequest request;
    request.budgetSpec = budget.name;
    request.budget = budget;
    request.space = space_options;
    request.dse = std::move(options);
    return request;
}

} // namespace

std::optional<DSEResult>
Compiler::optimize(const ExploreRequest &request)
{
    auto result =
        runDSE(module_.get(), request.budget, request.space, request.dse);
    if (result) {
        module_ = result->module->clone();
        opt_seconds_ += result->seconds;
    }
    return result;
}

std::optional<DSEResult>
Compiler::optimize(const ResourceBudget &budget,
                   DesignSpaceOptions space_options, DSEOptions options)
{
    return optimize(
        requestFrom(budget, space_options, std::move(options)));
}

std::vector<Compiler::FuncDSEResult>
Compiler::optimizeFunctions(const ResourceBudget &budget,
                            DesignSpaceOptions space_options,
                            DSEOptions options)
{
    return optimizeFunctions(
        requestFrom(budget, space_options, std::move(options)));
}

std::vector<Compiler::FuncDSEResult>
Compiler::optimizeFunctions(const ExploreRequest &request)
{
    const ResourceBudget &budget = request.budget;
    const DesignSpaceOptions &space_options = request.space;
    const DSEOptions &options = request.dse;
    // The kernels: every function with at least one loop band.
    std::vector<Operation *> kernels;
    for (auto &op : module_->region(0).front().ops())
        if (op->is(ops::Func) && !getLoopBands(op.get()).empty())
            kernels.push_back(op.get());
    if (kernels.empty())
        return {};

    // Split the device budget evenly across kernels; each kernel's DSE
    // finalizes against its share.
    ResourceBudget share = budget;
    auto n = static_cast<int64_t>(kernels.size());
    share.dsp /= n;
    share.lut /= n;
    share.memoryBits /= n;

    // Function-level concurrency on top, point-level concurrency within
    // each exploration: split the worker budget between the two levels.
    DSEOptions inner_options = options;
    unsigned outer = splitThreads(inner_options, kernels.size());

    // One estimate cache spans every kernel's exploration: the per-point
    // module clones share all non-target functions verbatim (and often
    // the callee subtrees of the targets), so their content-keyed
    // estimates transfer across kernels and workers alike.
    EstimateCache shared_estimates;
    inner_options.applyCacheBounds(shared_estimates);
    // Snapshot persistence follows cache ownership: when this call
    // creates the shared cache it loads/saves the snapshot ONCE here
    // (the per-kernel engines see sharedEstimates set and skip); when
    // the caller injected a cache, the caller persists it.
    bool owns_cache =
        !inner_options.sharedEstimates && inner_options.crossPointCache;
    if (!inner_options.sharedEstimates && inner_options.crossPointCache)
        inner_options.sharedEstimates = &shared_estimates;
    if (owns_cache && !inner_options.cacheLoadPath.empty())
        loadEstimateCacheLogged(shared_estimates,
                                inner_options.cacheLoadPath);

    std::vector<FuncDSEResult> results(kernels.size());
    std::vector<std::unique_ptr<Operation>> optimized(kernels.size());
    auto start = std::chrono::steady_clock::now();

    ThreadPool pool(outer);
    pool.parallelFor(kernels.size(), [&](size_t i) {
        // Each task explores a private reduced clone (the shared module_
        // is never touched), retains the frontier, then finalizes
        // against this kernel's even share of the budget.
        KernelExploration exploration = exploreKernel(
            module_.get(), kernels[i], share, space_options,
            inner_options);
        FuncDSEResult &out = results[i];
        out.func = funcName(kernels[i]);
        // A default QoRResult claims feasibility; failed kernels must
        // carry the infeasible sentinel instead.
        out.qor.feasible = false;
        out.qor.latency = kInfeasibleQoR;
        out.qor.interval = kInfeasibleQoR;
        out.frontier = exploration.retained;
        out.evaluations = exploration.engine->numEvaluations();
        out.auditChecks = exploration.engine->numAuditChecks();
        out.auditViolations = exploration.engine->numAuditViolations();
        auto chosen = DSEEngine::finalize(exploration.frontier, share);
        if (!chosen)
            return;
        auto module = exploration.engine->materializeEvaluated(*chosen);
        if (!module)
            return;
        out.point = chosen->point;
        // On (release-build) re-estimation divergence, keep the QoR
        // consistent with the module actually spliced in.
        out.qor = exploration.engine->qorVerified()
                      ? chosen->qor
                      : exploration.engine->verifiedQoR();
        optimized[i] = std::move(module);
    });

    // Splice the winners back sequentially, in module function order, so
    // the resulting module is deterministic.
    Block &body = module_->region(0).front();
    for (size_t i = 0; i < kernels.size(); ++i) {
        if (!optimized[i])
            continue;
        Operation *new_func = getTopFunc(optimized[i].get());
        if (!new_func)
            continue;
        auto taken = optimized[i]->region(0).front().take(new_func);
        setTopFunc(taken.get(), isTopFunc(kernels[i]));
        body.insertBefore(kernels[i], std::move(taken));
        body.erase(kernels[i]);
    }
    opt_seconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (owns_cache && !inner_options.cacheSavePath.empty())
        saveEstimateCacheLogged(shared_estimates,
                                inner_options.cacheSavePath);
    return results;
}

std::optional<Compiler::ModelDSEResult>
Compiler::optimizeModel(const ResourceBudget &budget,
                        DesignSpaceOptions space_options,
                        DSEOptions options)
{
    return optimizeModel(
        requestFrom(budget, space_options, std::move(options)));
}

std::optional<Compiler::ModelDSEResult>
Compiler::optimizeModel(const ExploreRequest &request)
{
    const ResourceBudget &budget = request.budget;
    const DesignSpaceOptions &space_options = request.space;
    const DSEOptions &options = request.dse;
    auto start = std::chrono::steady_clock::now();
    Operation *top = getTopFunc(module_.get());
    if (!top || !getFuncDirective(top).dataflow)
        return std::nullopt;
    std::vector<DNNStage> stages = collectDNNStages(module_.get());
    if (stages.empty())
        return std::nullopt;
    size_t n = stages.size();

    ModelDSEResult out;

    // One estimate cache spans the baseline estimation, every kernel
    // exploration and the final re-measurement, so the closing
    // estimateModule resolves mostly from content-keyed entries the
    // exploration already paid for.
    EstimateCache shared_estimates;
    options.applyCacheBounds(shared_estimates);
    DSEOptions inner = options;
    // Same ownership rule as optimizeFunctions: load/save the snapshot
    // only for the cache this call created.
    bool owns_cache = !inner.sharedEstimates && inner.crossPointCache;
    if (!inner.sharedEstimates && inner.crossPointCache)
        inner.sharedEstimates = &shared_estimates;
    if (owns_cache && !inner.cacheLoadPath.empty())
        loadEstimateCacheLogged(shared_estimates, inner.cacheLoadPath);
    EstimateCache *shared = inner.sharedEstimates;

    unsigned total_threads = options.numThreads == 0
                                 ? defaultThreadCount()
                                 : options.numThreads;
    ThreadPool est_pool(std::max(1u, total_threads));

    // Baseline estimates of the whole module and of each stage callee.
    // The top's glue latency (the +2 epilogue plus any non-call body
    // ops) and its fixed resources (double-buffered channel buffers,
    // control logic) are derived by SUBTRACTION, so the composed
    // prediction mirrors the estimator's dataflow composition exactly
    // rather than approximating it.
    QoREstimator baseline(module_.get(), &est_pool, shared,
                          options.bandLevelCache,
                          options.partitionAwareBandKeys);
    QoRResult m0 = baseline.estimateModule();
    std::vector<QoRResult> base(n);
    int64_t glue = m0.latency;
    ResourceUsage fixed = m0.resources;
    for (size_t i = 0; i < n; ++i) {
        if (stages[i].callee)
            base[i] = baseline.estimateFunc(stages[i].callee);
        else
            base[i].feasible = false;
        if (!base[i].feasible) {
            base[i].latency = kInfeasibleQoR;
            base[i].interval = kInfeasibleQoR;
            continue; // Poisons the allocation below; glue is moot.
        }
        glue -= base[i].latency + 1; // The call-site overhead cycle.
        fixed.dsp -= base[i].resources.dsp;
        fixed.lut -= base[i].resources.lut;
        fixed.bram18k -= base[i].resources.bram18k;
        fixed.memoryBits -= base[i].resources.memoryBits;
    }
    glue = std::max<int64_t>(0, glue);

    // The per-kernel stage (shared with optimizeFunctions): explore
    // every kernel stage concurrently, retaining full frontiers. Module
    // retention is scoped to the WHOLE device budget — under global
    // allocation any design fitting the device could be chosen.
    std::vector<size_t> kernel_of_stage(n, kNoIndex);
    std::vector<Operation *> kernel_funcs;
    std::vector<size_t> stage_of_kernel;
    for (size_t i = 0; i < n; ++i) {
        if (!stages[i].kernel)
            continue;
        kernel_of_stage[i] = kernel_funcs.size();
        kernel_funcs.push_back(stages[i].callee);
        stage_of_kernel.push_back(i);
    }
    std::vector<KernelExploration> explorations(kernel_funcs.size());
    if (!kernel_funcs.empty()) {
        DSEOptions per_kernel = inner;
        unsigned outer = splitThreads(per_kernel, kernel_funcs.size());
        ThreadPool pool(outer);
        pool.parallelFor(kernel_funcs.size(), [&](size_t k) {
            explorations[k] = exploreKernel(module_.get(),
                                            kernel_funcs[k], budget,
                                            space_options, per_kernel);
        });
    }

    // Stage frontiers as seen from the top: candidate latencies carry
    // the +1 call overhead; fixed (non-kernel) stages get exactly their
    // baseline design.
    std::vector<StageFrontier> frontiers(n);
    for (size_t i = 0; i < n; ++i) {
        StageFrontier &frontier = frontiers[i];
        frontier.name =
            stages[i].callee ? funcName(stages[i].callee) : std::string();
        auto push = [&](const QoRResult &qor) {
            StageCandidate c;
            c.feasible = qor.feasible;
            c.latency = qor.feasible ? addQoRSaturating(qor.latency, 1)
                                     : kInfeasibleQoR;
            c.resources = qor.resources;
            frontier.candidates.push_back(c);
        };
        size_t k = kernel_of_stage[i];
        if (k != kNoIndex && !explorations[k].retained.empty()) {
            for (const FrontierPoint &fp : explorations[k].retained)
                push(fp.qor);
        } else {
            kernel_of_stage[i] = kNoIndex; // Keep the baseline design.
            push(base[i]);
        }
    }

    out.allocation = allocateGlobalBudget(frontiers, budget, fixed);
    out.uniform = allocateUniformSplit(frontiers, budget, fixed);

    out.stages.resize(n);
    for (size_t i = 0; i < n; ++i) {
        ModelStageResult &stage = out.stages[i];
        stage.func = frontiers[i].name;
        stage.kernel = kernel_of_stage[i] != kNoIndex;
        stage.qor = base[i];
        if (stage.kernel) {
            const KernelExploration &e =
                explorations[kernel_of_stage[i]];
            stage.frontier = e.retained;
            stage.evaluations = e.engine->numEvaluations();
            out.evaluations += stage.evaluations;
        }
        if (out.allocation.feasible) {
            stage.chosen = out.allocation.choice[i];
            if (stage.kernel && stage.chosen < stage.frontier.size())
                stage.qor = stage.frontier[stage.chosen].qor;
        }
    }

    if (!out.allocation.feasible) {
        // No budget-feasible composition: poison the prediction and
        // leave the module untouched.
        out.composed.feasible = false;
        out.composed.latency = kInfeasibleQoR;
        out.composed.interval = kInfeasibleQoR;
        out.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        opt_seconds_ += out.seconds;
        // Even an infeasible composition explored the kernels; the warm
        // entries are worth persisting for the next attempt.
        if (owns_cache && !inner.cacheSavePath.empty())
            saveEstimateCacheLogged(shared_estimates,
                                    inner.cacheSavePath);
        return out;
    }

    out.composed =
        composeDataflowQoR(frontiers, out.allocation.choice, glue, fixed);

    // Stitch the chosen frontier designs back into the model, replacing
    // each kernel stage function in place (deterministic module order:
    // stage_of_kernel is ascending).
    bool stage_qor_ok = true;
    Block &body = module_->region(0).front();
    for (size_t k = 0; k < kernel_funcs.size(); ++k) {
        size_t i = stage_of_kernel[k];
        if (kernel_of_stage[i] == kNoIndex)
            continue; // Demoted to its baseline design above.
        KernelExploration &e = explorations[k];
        size_t chosen = out.allocation.choice[i];
        auto optimized = e.engine->materializeEvaluated(
            e.frontier[chosen]);
        stage_qor_ok &= e.engine->qorVerified();
        if (!optimized) {
            stage_qor_ok = false;
            continue;
        }
        Operation *new_func = getTopFunc(optimized.get());
        if (!new_func) {
            stage_qor_ok = false;
            continue;
        }
        auto taken = optimized->region(0).front().take(new_func);
        // Stage functions are never the module top (the dataflow top
        // is); clear the sub-module's top marker before splicing.
        setTopFunc(taken.get(), false);
        body.insertBefore(stages[i].callee, std::move(taken));
        body.erase(stages[i].callee);
    }

    // Re-verify the composed module: the IR verifier at the -verify-each
    // level (L1 structural + L2 dialect), then the real estimator. The
    // measured QoR is authoritative — the composed prediction is only
    // trusted when it matches bit-identically.
    auto errors = verifyErrors(module_.get());
    QoREstimator measure(module_.get(), &est_pool, shared,
                         options.bandLevelCache,
                         options.partitionAwareBandKeys);
    out.measured = measure.estimateModule();
    out.composedVerified =
        out.measured.latency == out.composed.latency &&
        out.measured.interval == out.composed.interval &&
        out.measured.feasible == out.composed.feasible &&
        out.measured.resources.dsp == out.composed.resources.dsp &&
        out.measured.resources.lut == out.composed.resources.lut &&
        out.measured.resources.bram18k ==
            out.composed.resources.bram18k &&
        out.measured.resources.memoryBits ==
            out.composed.resources.memoryBits;
    out.verified = errors.empty() && stage_qor_ok;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    opt_seconds_ += out.seconds;
    if (owns_cache && !inner.cacheSavePath.empty())
        saveEstimateCacheLogged(shared_estimates, inner.cacheSavePath);
    return out;
}

QoRResult
Compiler::estimate()
{
    QoREstimator estimator(module_.get());
    return estimator.estimateModule();
}

SynthesisReport
Compiler::synthesize(const ResourceBudget &budget)
{
    VirtualSynthesizer synthesizer(module_.get(), budget);
    return synthesizer.synthesize();
}

} // namespace scalehls
