#include "api/scalehls.h"

#include <limits>
#include <set>

#include "analysis/loop_analysis.h"
#include "support/thread_pool.h"
#include "support/utils.h"

namespace scalehls {

Compiler::Compiler(std::unique_ptr<Operation> module)
    : module_(std::move(module))
{}

Compiler
Compiler::fromC(const std::string &source, const std::string &top_func)
{
    Compiler compiler(parseCToModule(source, top_func));
    compiler.timed([&] { raiseScfToAffine(compiler.module()); });
    return compiler;
}

Compiler &
Compiler::applyGraphOpt(int level)
{
    level = std::clamp(level, 1, 7);
    timed([&] {
        bool insert_copy = level >= 4;
        std::vector<Operation *> funcs;
        for (auto &op : module_->region(0).front().ops())
            if (op->is(ops::Func))
                funcs.push_back(op.get());
        for (Operation *func : funcs) {
            if (!applyLegalizeDataflow(func, insert_copy))
                continue;
            // Count stages, then choose the granularity: level n targets
            // min(stages, 2^(n-1)) dataflow stages.
            int64_t num_stages = 0;
            for (auto &op : funcBody(func)->ops()) {
                Attribute stage = op->attr(kDataflowStage);
                if (stage.is<int64_t>())
                    num_stages =
                        std::max(num_stages, stage.getInt() + 1);
            }
            int64_t target =
                std::min<int64_t>(num_stages, int64_t(1) << (level - 1));
            int64_t min_gran = ceilDiv(num_stages, std::max<int64_t>(
                                                       1, target));
            if (!applySplitFunction(module_.get(), func, min_gran)) {
                // A single stage has no inter-stage overlap: drop the
                // dataflow directive so the QoR reflects reality.
                FuncDirective fd = getFuncDirective(func);
                fd.dataflow = false;
                setFuncDirective(func, fd);
            }
        }
    });
    return *this;
}

Compiler &
Compiler::lowerToLoops()
{
    timed([&] { lowerGraphToAffine(module_.get()); });
    return *this;
}

Compiler &
Compiler::applyLoopOpt(int level)
{
    level = std::clamp(level, 1, 7);
    int64_t factor = int64_t(1) << (level - 1);
    timed([&] {
        module_->walk([&](Operation *op) {
            if (!op->is(ops::Func))
                return;
            for (auto &band_loops : getLoopBands(op)) {
                std::vector<Operation *> band = band_loops;
                // Push recurrence-carrying (reduction) loops outward so
                // the pipelined II is not bound by the accumulator.
                applyLoopOrderOpt(band);
                band = getLoopNest(band.front());
                // Distribute the unroll factor as tile sizes, preferring
                // dims that appear in store subscripts (output-parallel
                // dims): unrolling reduction dims only serializes on the
                // accumulator's write port. Pipelining (the D step) fully
                // unrolls the generated point loops.
                std::vector<bool> parallel(band.size(), false);
                for (const MemAccess &access :
                     collectAccesses(band.front(), bandIVs(band))) {
                    if (!access.isWrite || !access.normalized)
                        continue;
                    for (unsigned level = 0; level < band.size(); ++level)
                        for (const auto &expr : access.indices)
                            if (expr.involvesDim(level))
                                parallel[level] = true;
                }
                std::vector<int64_t> sizes(band.size(), 1);
                int64_t remaining = factor;
                for (int pass = 0; pass < 2 && remaining > 1; ++pass) {
                    bool want_parallel = (pass == 0);
                    for (int i = static_cast<int>(band.size()) - 1;
                         i >= 0 && remaining > 1; --i) {
                        if (parallel[i] != want_parallel || sizes[i] > 1)
                            continue;
                        int64_t trip =
                            getTripCount(AffineForOp(band[i]))
                                .value_or(1);
                        sizes[i] = std::min(remaining, trip);
                        remaining = std::max<int64_t>(
                            1,
                            remaining / std::max<int64_t>(1, sizes[i]));
                    }
                }
                applyLoopTiling(band, sizes);
            }
        });
    });
    return *this;
}

Compiler &
Compiler::applyDirectiveOpt(int64_t target_ii)
{
    timed([&] {
        std::vector<Operation *> funcs;
        for (auto &op : module_->region(0).front().ops())
            if (op->is(ops::Func))
                funcs.push_back(op.get());
        for (Operation *func : funcs) {
            for (auto &band : getLoopBands(func)) {
                // Pipeline the innermost tile loop; intra-tile (point)
                // loops below it get fully unrolled by the legalization.
                Operation *target = band.back();
                for (auto it = band.rbegin(); it != band.rend(); ++it) {
                    if (!(*it)->attr(kPointLoop).is<bool>()) {
                        target = *it;
                        break;
                    }
                }
                applyLoopPipelining(target, target_ii);
            }
        }
    });
    applySimplifications();
    timed([&] {
        Operation *top = getTopFunc(module_.get());
        if (top)
            applyArrayPartition(top);
    });
    return *this;
}

Compiler &
Compiler::applySimplifications()
{
    timed([&] {
        applyCanonicalize(module_.get());
        applySimplifyAffineIf(module_.get());
        applyAffineStoreForward(module_.get());
        applySimplifyMemrefAccess(module_.get());
        applyCSE(module_.get());
        applyCanonicalize(module_.get());
    });
    return *this;
}

std::optional<DSEResult>
Compiler::optimize(const ResourceBudget &budget,
                   DesignSpaceOptions space_options, DSEOptions options)
{
    auto result = runDSE(module_.get(), budget, space_options, options);
    if (result) {
        module_ = result->module->clone();
        opt_seconds_ += result->seconds;
    }
    return result;
}

std::vector<Compiler::FuncDSEResult>
Compiler::optimizeFunctions(const ResourceBudget &budget,
                            DesignSpaceOptions space_options,
                            DSEOptions options)
{
    // The kernels: every function with at least one loop band.
    std::vector<Operation *> kernels;
    for (auto &op : module_->region(0).front().ops())
        if (op->is(ops::Func) && !getLoopBands(op.get()).empty())
            kernels.push_back(op.get());
    if (kernels.empty())
        return {};

    // Split the device budget evenly across kernels; each kernel's DSE
    // finalizes against its share.
    ResourceBudget share = budget;
    auto n = static_cast<int64_t>(kernels.size());
    share.dsp /= n;
    share.lut /= n;
    share.memoryBits /= n;

    // Function-level concurrency on top, point-level concurrency within
    // each exploration: split the worker budget between the two levels.
    unsigned total_threads =
        options.numThreads == 0 ? defaultThreadCount() : options.numThreads;
    unsigned outer = std::min<unsigned>(total_threads, kernels.size());
    DSEOptions inner_options = options;
    inner_options.numThreads = std::max(1u, total_threads / outer);

    // One estimate cache spans every kernel's exploration: the per-point
    // module clones share all non-target functions verbatim (and often
    // the callee subtrees of the targets), so their content-keyed
    // estimates transfer across kernels and workers alike.
    EstimateCache shared_estimates;
    if (inner_options.estimateCacheCap != 0)
        shared_estimates.setMaxEntries(inner_options.estimateCacheCap);
    if (!inner_options.sharedEstimates && inner_options.crossPointCache)
        inner_options.sharedEstimates = &shared_estimates;

    std::vector<FuncDSEResult> results(kernels.size());
    std::vector<std::unique_ptr<Operation>> optimized(kernels.size());
    auto start = std::chrono::steady_clock::now();

    ThreadPool pool(outer);
    pool.parallelFor(kernels.size(), [&](size_t i) {
        // Each task explores a private REDUCED clone: its kernel plus
        // the kernel's transitive callee closure, so func.call callees
        // stay resolvable and the estimator scores them — but the other
        // kernels (and their subtrees) are never copied. DesignSpace
        // clones the sub-module once more per materialized point, so
        // shrinking it here shrinks every per-point clone of this
        // exploration. The shared module_ is never touched here.
        std::set<Operation *> needed;
        std::vector<Operation *> worklist = {kernels[i]};
        while (!worklist.empty()) {
            Operation *func = worklist.back();
            worklist.pop_back();
            if (!needed.insert(func).second)
                continue;
            for (Operation *callee :
                 collectDistinctCallees(func, module_.get()))
                worklist.push_back(callee);
        }
        auto sub = createModule();
        Block &sub_body = sub->region(0).front();
        for (auto &op : module_->region(0).front().ops()) {
            if (!op->is(ops::Func) || !needed.count(op.get()))
                continue;
            Operation *copy = sub_body.pushBack(op->clone());
            setTopFunc(copy, op.get() == kernels[i]);
        }

        FuncDSEResult &out = results[i];
        out.func = funcName(kernels[i]);
        // A default QoRResult claims feasibility; failed kernels must
        // carry the infeasible sentinel instead.
        out.qor.feasible = false;
        out.qor.latency = kInfeasibleQoR;
        out.qor.interval = kInfeasibleQoR;
        auto result = runDSE(sub.get(), share, space_options,
                             inner_options);
        if (!result)
            return;
        out.point = result->point;
        out.qor = result->qor;
        out.evaluations = result->evaluations;
        out.auditChecks = result->auditChecks;
        out.auditViolations = result->auditViolations;
        optimized[i] = std::move(result->module);
    });

    // Splice the winners back sequentially, in module function order, so
    // the resulting module is deterministic.
    Block &body = module_->region(0).front();
    for (size_t i = 0; i < kernels.size(); ++i) {
        if (!optimized[i])
            continue;
        Operation *new_func = getTopFunc(optimized[i].get());
        if (!new_func)
            continue;
        auto taken = optimized[i]->region(0).front().take(new_func);
        setTopFunc(taken.get(), isTopFunc(kernels[i]));
        body.insertBefore(kernels[i], std::move(taken));
        body.erase(kernels[i]);
    }
    opt_seconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return results;
}

QoRResult
Compiler::estimate()
{
    QoREstimator estimator(module_.get());
    return estimator.estimateModule();
}

SynthesisReport
Compiler::synthesize(const ResourceBudget &budget)
{
    VirtualSynthesizer synthesizer(module_.get(), budget);
    return synthesizer.synthesize();
}

} // namespace scalehls
